// Machine-level view of a transprecision program: traces the tuned KNN
// kernel, vectorizes it, and prints the head of the resulting instruction
// stream as smallfloat-extension RISC-V assembly — packed flw-style loads,
// vfsub.b/vfmul.b SIMD lanes and all.
//
// Run: ./build/examples/trace_listing [app] [lines]
#include <cstdlib>
#include <iostream>

#include "apps/app.hpp"
#include "isa/disassembler.hpp"
#include "sim/platform.hpp"
#include "tuning/search.hpp"

int main(int argc, char** argv) {
    const std::string app_name = argc > 1 ? argv[1] : "knn";
    const std::size_t lines = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 48;

    auto app = tp::apps::make_app(app_name);
    tp::tuning::SearchOptions options;
    options.epsilon = 1e-1;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    const auto tuning = tp::tuning::distributed_search(*app, options);

    app->prepare(0);
    tp::sim::TpContext ctx;
    (void)app->run(ctx, tuning.type_config());
    const auto program = ctx.take_program(true);

    std::cout << "tuned '" << app_name << "' (" << program.instrs.size()
              << " trace entries, " << program.groups.size()
              << " SIMD groups); first " << lines << " issued instructions:\n\n";
    tp::isa::write_listing(program, std::cout, lines);

    const auto report = tp::sim::simulate(program);
    std::cout << "\n";
    report.print(std::cout);
    return 0;
}
