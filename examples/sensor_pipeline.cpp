// Near-sensor classification scenario: a k-nearest-neighbour stage, as in
// an always-on IoT endpoint, executed on the PULPino-like virtual platform
// in three builds:
//   * binary32 baseline (scalar RISC-V FP);
//   * transprecision-tuned formats, scalar ISA only;
//   * transprecision-tuned formats with sub-word SIMD (the paper's unit).
//
// Run: ./build/examples/sensor_pipeline
#include <iostream>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "tuning/search.hpp"
#include "util/table.hpp"

namespace {

tp::sim::RunReport run(tp::apps::App& app, const tp::apps::TypeConfig& config,
                       bool simd) {
    app.prepare(0);
    tp::sim::TpContext ctx;
    (void)app.run(ctx, config);
    return tp::sim::simulate(ctx.take_program(simd));
}

} // namespace

int main() {
    auto app = tp::apps::make_app("knn");

    // Tune at the loosest paper requirement; KNN famously lands on
    // binary8 for all program variables.
    tp::tuning::SearchOptions options;
    options.epsilon = 1e-1;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    const auto tuning = tp::tuning::distributed_search(*app, options);
    std::cout << "tuned formats:\n";
    for (const auto& sr : tuning.signals) {
        std::cout << "  " << sr.name << " -> " << tp::name_of(sr.bound) << '\n';
    }
    std::cout << '\n';

    const auto baseline = run(*app, app->uniform_config(tp::kBinary32), false);
    const auto tuned_scalar = run(*app, tuning.type_config(), false);
    const auto tuned_simd = run(*app, tuning.type_config(), true);

    tp::util::Table table({"build", "cycles", "mem accesses", "energy [pJ]",
                           "energy vs baseline"});
    const auto add = [&](const char* label, const tp::sim::RunReport& r) {
        table.add_row({label, std::to_string(r.cycles),
                       std::to_string(r.mem_accesses),
                       tp::util::Table::num(r.energy.total(), 1),
                       tp::util::Table::percent(r.energy.total() /
                                                baseline.energy.total())});
    };
    add("binary32 baseline", baseline);
    add("tuned, scalar ISA", tuned_scalar);
    add("tuned + sub-word SIMD", tuned_simd);
    table.print(std::cout);

    std::cout << "\nenergy breakdown of the SIMD build: ";
    tuned_simd.print(std::cout);
    return 0;
}
