// The transprecision programming flow (paper, Fig. 2) end to end on the
// DWT benchmark:
//   1. the kernel is written against per-variable formats;
//   2. DistributedSearch minimizes each variable's precision bits subject
//      to an output-quality (SQNR) requirement;
//   3. precision bits bind to concrete types through the V2 type system;
//   4. the library reports operations and casts per instantiated type;
//   5. the binding is exported as a configuration file.
//
// Run: ./build/examples/precision_tuning_demo [epsilon]
#include <cstdlib>
#include <iostream>

#include "apps/app.hpp"
#include "flexfloat/stats.hpp"
#include "tuning/config_io.hpp"
#include "tuning/quality.hpp"
#include "tuning/search.hpp"

int main(int argc, char** argv) {
    const double epsilon = argc > 1 ? std::atof(argv[1]) : 1e-2;

    auto app = tp::apps::make_app("dwt");
    std::cout << "tuning '" << app->name() << "' for SQNR requirement "
              << epsilon << " under type system V2...\n";

    tp::tuning::SearchOptions options;
    options.epsilon = epsilon;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.input_sets = {0, 1, 2};
    const auto result = tp::tuning::distributed_search(*app, options);
    std::cout << "search ran the program " << result.program_runs << " times\n\n";

    std::cout << "per-variable binding:\n";
    for (const auto& sr : result.signals) {
        std::cout << "  " << sr.name << " (" << sr.elements << " locations): "
                  << sr.precision_bits << " precision bits -> "
                  << tp::name_of(sr.bound) << '\n';
    }

    // Verify the binding on a fresh input set.
    const auto golden = app->golden(3);
    app->prepare(3);
    tp::sim::TpContext ctx{tp::sim::TpContext::Config{.trace = false}};
    tp::thread_stats().set_enabled(true);
    tp::thread_stats().reset();
    const auto out = app->run(ctx, result.type_config());
    tp::thread_stats().set_enabled(false);
    std::cout << "\nquality on an unseen input set: error="
              << tp::tuning::output_error(golden, out)
              << " (SQNR=" << tp::tuning::output_sqnr(golden, out) << ")\n\n";

    std::cout << "operation report (programming-flow step 4):\n";
    tp::thread_stats().print_report(std::cout);

    std::cout << "\nconfiguration file (the DistributedSearch contract):\n";
    tp::tuning::write_precision_config(std::cout, result.precision_config());
    return 0;
}
