// Driving the transprecision FPU model directly (paper, Fig. 3): scalar
// and sub-word SIMD instructions, conversions, and the energy/cycle
// accounting the per-op characterization bench is built on.
//
// Run: ./build/examples/fpu_simd_demo
#include <iostream>
#include <vector>

#include "fpu/transprecision_fpu.hpp"

int main() {
    tp::fpu::TransprecisionFpu fpu;

    std::cout << "--- scalar operations on each slice width ---\n";
    const tp::FlexFloatDyn a32{1.5, tp::kBinary32};
    const tp::FlexFloatDyn b32{2.25, tp::kBinary32};
    std::cout << "  binary32: 1.5 + 2.25 = " << fpu.execute(tp::FpOp::Add, a32, b32)
              << '\n';
    const tp::FlexFloatDyn a16{0.1, tp::kBinary16};
    const tp::FlexFloatDyn b16{0.2, tp::kBinary16};
    std::cout << "  binary16: 0.1 + 0.2 = " << fpu.execute(tp::FpOp::Add, a16, b16)
              << "  (note the half-precision rounding)\n";

    std::cout << "\n--- 4-lane binary8 SIMD (four 8-bit slices) ---\n";
    std::vector<tp::FlexFloatDyn> va;
    std::vector<tp::FlexFloatDyn> vb;
    for (int lane = 0; lane < 4; ++lane) {
        va.emplace_back(0.5 * (lane + 1), tp::kBinary8);
        vb.emplace_back(0.25, tp::kBinary8);
    }
    const auto sum = fpu.execute_simd(tp::FpOp::Add, va, vb);
    std::cout << "  [0.5 1.0 1.5 2.0] + 0.25 = [";
    for (const auto& v : sum) std::cout << ' ' << v;
    std::cout << " ]\n";

    std::cout << "\n--- conversion unit ---\n";
    const tp::FlexFloatDyn wide{3.14159, tp::kBinary32};
    std::cout << "  pi -> binary16alt = " << fpu.convert(wide, tp::kBinary16Alt)
              << '\n';
    std::cout << "  pi -> binary8     = " << fpu.convert(wide, tp::kBinary8)
              << '\n';
    std::cout << "  to_int(2.5), RNE  = " << fpu.to_int(wide) << " (from pi)\n";

    std::cout << "\n--- accounting ---\n";
    const auto& c = fpu.counters();
    std::cout << "  scalar ops:  " << c.scalar_ops << '\n'
              << "  simd instrs: " << c.simd_instrs << " (" << c.simd_lanes
              << " lane ops)\n"
              << "  casts:       " << c.casts << '\n'
              << "  busy cycles: " << c.busy_cycles << '\n'
              << "  energy:      " << c.energy_pj << " pJ\n";
    std::cout << "\nsupports(add, binary8) = "
              << tp::fpu::TransprecisionFpu::supports(tp::FpOp::Add, tp::kBinary8)
              << ", supports(div, binary32) = "
              << tp::fpu::TransprecisionFpu::supports(tp::FpOp::Div, tp::kBinary32)
              << " (division is a model extension, not in the paper's unit)\n";
    return 0;
}
