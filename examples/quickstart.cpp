// Quickstart: the FlexFloat type library in five minutes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iomanip>
#include <iostream>

#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "flexfloat/stats.hpp"

int main() {
    std::cout << "--- 1. flexfloat<e, m>: arbitrary formats with infix math ---\n";
    // The paper's four formats have convenient aliases:
    //   binary8_t  = flexfloat<5, 2>     binary16_t    = flexfloat<5, 10>
    //   binary16alt_t = flexfloat<8, 7>  binary32_t    = flexfloat<8, 23>
    tp::binary16_t a = 1.5;   // literals convert implicitly
    tp::binary16_t b = 0.1;   // rounded to the nearest binary16 (0.0999756)
    tp::binary16_t c = a * b + tp::binary16_t{2.0};
    std::cout << "  1.5 * 0.1 + 2 in binary16 = " << std::setprecision(10) << c
              << "  (bits 0x" << std::hex << c.bits() << std::dec << ")\n";

    // Every operation rounds exactly like a hardware unit of that format
    // (round-to-nearest-even, gradual underflow, Inf/NaN).
    tp::flexfloat<6, 9> custom = 3.14159; // a 16-bit format of your own
    std::cout << "  pi in a (1|6|9) format   = " << custom << "\n";

    std::cout << "\n--- 2. mixed formats need explicit casts ---\n";
    tp::binary32_t wide = 6.2831853f;
    // tp::binary16_t bad = wide;          // does not compile: no implicit mix
    auto narrow = tp::flexfloat_cast<5, 10>(wide); // explicit, like the FPU
    std::cout << "  2*pi cast binary32 -> binary16: " << narrow << "\n";

    std::cout << "\n--- 3. dynamic range matters: binary16 vs binary16alt ---\n";
    tp::binary32_t big = 1.0e20f;
    std::cout << "  1e20 -> binary16    = " << tp::flexfloat_cast<5, 10>(big)
              << "   (saturates: 5-bit exponent)\n";
    std::cout << "  1e20 -> binary16alt = " << tp::flexfloat_cast<8, 7>(big)
              << " (fits: binary32-style 8-bit exponent)\n";

    std::cout << "\n--- 4. runtime formats for tuning loops ---\n";
    // FlexFloatDyn carries its format as a value: the precision-tuning
    // tool changes formats between runs without recompiling.
    const tp::FpFormat trial{8, 5}; // tuner trying 6 precision bits
    tp::FlexFloatDyn x{0.7, trial};
    tp::FlexFloatDyn y{0.2, trial};
    std::cout << "  0.7 + 0.2 at (e=8, m=5) = " << (x + y) << "\n";

    std::cout << "\n--- 5. operation statistics (programming-flow step 4) ---\n";
    tp::thread_stats().set_enabled(true);
    tp::thread_stats().reset();
    tp::binary8_t acc = 0.0;
    {
        tp::VectorRegionGuard vectorizable; // manual tag, as in the paper
        for (int i = 0; i < 8; ++i) {
            acc += tp::binary8_t{0.25} * tp::binary8_t{0.5};
        }
    }
    (void)tp::flexfloat_cast<5, 10>(acc);
    tp::thread_stats().print_report(std::cout);
    tp::thread_stats().set_enabled(false);
    return 0;
}
