// The async tuning service (tuning/service.hpp): submit requests with
// priorities, deadlines, and cancellation instead of hand-rolling
// per-app/per-epsilon loops — and watch a small interactive request
// overtake a queued sweep backlog.
//
// The service routes every request for an app to one long-lived
// EvalEngine, schedules requests by (priority, admission order) on a
// persistent worker pool, and the shared memoized trial cache makes the
// overlap between requests mostly free — exactly one kernel execution
// per distinct (input set, binding), at any concurrency (single-flight).
// Results never depend on scheduling: the same request returns the same
// bits at any priority, thread count, or cache state.
//
// Run: ./build/tuning_service_demo [threads]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "analysis/derive_bounds.hpp"
#include "apps/app.hpp"
#include "tuning/config_io.hpp"
#include "tuning/search.hpp"
#include "tuning/service.hpp"
#include "types/format.hpp"
#include "util/table.hpp"

namespace {

double latency_ms(const tp::tuning::TicketHandle& handle) {
    return std::chrono::duration<double, std::milli>(handle.completed_at() -
                                                     handle.submitted_at())
        .count();
}

} // namespace

int main(int argc, char** argv) {
    using tp::tuning::Priority;
    using tp::tuning::Request;
    using tp::tuning::RequestStatus;
    using tp::tuning::SweepRequest;
    using tp::tuning::TicketHandle;
    using tp::tuning::TuningRequest;

    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
    tp::tuning::TuningService service{
        tp::tuning::TuningService::Options{.threads = threads}};
    std::cout << "async tuning service on " << threads << " worker(s)\n\n";

    // A backlog of bulk work: one three-epsilon sweep per app, admitted
    // at the lowest priority. Sweeps chain epsilons through warm starts
    // by default: each looser search starts from the tighter result's
    // bits instead of the full lattice, so the backlog submits fewer
    // trials than three independent searches would.
    std::vector<TicketHandle> sweeps;
    for (const char* app : {"pca", "dwt", "knn"}) {
        SweepRequest sweep;
        sweep.app = app;
        sweep.epsilons = {1e-3, 1e-2, 1e-1};
        sweeps.push_back(service.submit(
            Request{.work = std::move(sweep), .priority = Priority::kSweep}));
    }

    // An interactive request arrives behind the backlog — and overtakes
    // it: the scheduler pops by priority, so this runs on the next free
    // worker, not after every sweep.
    TuningRequest interactive;
    interactive.app = "jacobi";
    interactive.epsilon = 1e-1;
    const TicketHandle urgent = service.submit(
        Request{.work = interactive,
                .priority = Priority::kInteractive,
                .deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(30)});

    // Bulk work is also refusable: cancel one queued sweep (a running
    // one would finish — cancellation never corrupts results).
    const bool cancelled = sweeps.back().cancel();

    const auto& tuned = urgent.search_result(); // wait()s
    std::cout << "interactive jacobi @1e-1 finished in " << latency_ms(urgent)
              << " ms, " << tuned.program_runs << " trials, while "
              << (cancelled ? "the cancelled sweep never ran and "
                            : "every sweep ran and ")
              << "the backlog kept draining\n\n";

    tp::util::Table table(
        {"app", "epsilon", "status", "trials", "binding (per signal bits)"});
    const auto add_row = [&table](const char* app, double epsilon,
                                  const tp::tuning::TuningResult& result) {
        std::string binding;
        for (const auto& sr : result.signals) {
            if (!binding.empty()) binding += ' ';
            binding += std::to_string(sr.precision_bits);
        }
        table.add_row({app, tp::util::Table::num(epsilon, 3), "done",
                       std::to_string(result.program_runs), binding});
    };
    add_row("jacobi", 1e-1, tuned);
    const char* sweep_apps[] = {"pca", "dwt", "knn"};
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        sweeps[i].wait();
        const RequestStatus status = sweeps[i].status();
        if (status != RequestStatus::kDone) {
            // A failed sweep is a real error, not a cancellation — say so.
            table.add_row({sweep_apps[i], "-",
                           status == RequestStatus::kCancelled ? "cancelled"
                                                               : "failed",
                           "0", "-"});
            continue;
        }
        const auto& results = sweeps[i].sweep_results();
        const double epsilons[] = {1e-3, 1e-2, 1e-1};
        for (std::size_t e = 0; e < results.size(); ++e) {
            add_row(sweep_apps[i], epsilons[e], results[e]);
        }
    }
    table.print(std::cout);

    const auto stats = service.stats();
    std::cout << "\nservice totals: " << stats.trials << " trials, "
              << stats.kernel_runs << " kernel executions, "
              << stats.cache_hits << " served from shared caches ("
              << static_cast<int>(100.0 * stats.hit_rate())
              << "% eliminated), " << stats.trials_skipped_by_bounds
              << " bisection steps never submitted (warm-start clamps)\n";

    // A tuned result is also a reusable artifact: store it as a config
    // file, load it back against the app's signal table, and seed the
    // next search with it. Quality is monotone in epsilon, so a 1e-3
    // result is a feasible (and aggressive) starting point at 1e-2.
    if (sweeps.front().status() == RequestStatus::kDone) {
        std::stringstream config_file;
        tp::tuning::write_precision_config(
            config_file, sweeps.front().sweep_results()[0].precision_config());
        const auto app = tp::apps::make_app("pca");
        tp::tuning::SearchOptions seeded;
        seeded.epsilon = 1e-2;
        tp::tuning::WarmStart seed;
        seed.seed_bits =
            tp::tuning::read_warm_start_seed(config_file, app->signal_table());
        seeded.warm_start = std::move(seed);
        const auto warm = tp::tuning::distributed_search(
            service.engine("pca"), seeded);
        std::cout << "re-tuning pca @1e-2 seeded from the saved 1e-3 "
                     "config: "
                  << warm.program_runs << " trials\n";
    }

    // Before any of those trials ran, the static analysis could already
    // have said a lot: one shadow reference execution per input set yields
    // sound per-signal precision lower bounds (what static_bounds feeds
    // the search) plus a precision lint over the captured dataflow —
    // redundant casts, double-rounding hazards, signals whose whole range
    // sits below the narrow formats' normal numbers, and dead casts whose
    // endpoints the bounds pin to one and the same member format.
    {
        const auto app = tp::apps::make_app("iir");
        tp::analysis::DeriveOptions options;
        options.input_sets = {0, 1};
        const auto analysis = tp::analysis::analyze(*app, 1e-2, options);
        std::cout << "\nstatic analysis (no trials):\n"
                  << analysis.to_string();
        std::cout << "dead casts (elide under every reachable binding): "
                  << analysis.lint.count(tp::analysis::LintKind::DeadCast)
                  << '\n';
    }

    // The synchronous batch API survives as a wrapper over submit():
    // repeating the drained work through run() is pure cache. (The batch
    // runs independent per-epsilon searches, not chained ones — but the
    // cache keys on (input set, config), not epsilon, and the trials
    // above cover every config these searches revisit.)
    std::vector<TuningRequest> batch;
    for (const char* app : {"pca", "dwt"}) {
        for (const double epsilon : {1e-3, 1e-2, 1e-1}) {
            TuningRequest request;
            request.app = app;
            request.epsilon = epsilon;
            batch.push_back(std::move(request));
        }
    }
    const auto repeat = service.run(batch);
    std::cout << "re-running " << batch.size()
              << " of those requests through run(): " << repeat.stats.kernel_runs
              << " kernel executions ("
              << static_cast<int>(100.0 * repeat.hit_rate())
              << "% served from cache)\n";

    // Under sustained overload the service sheds load instead of letting
    // latency grow without bound: per-class queue caps and deadline-aware
    // admission refuse requests AT SUBMIT with a typed RequestRejected —
    // no ticket, no queue entry, no engine work — and an aging quantum
    // keeps a saturated interactive stream from starving queued sweeps
    // forever. Demonstrate on a deliberately tiny service: one worker,
    // one queued request per class.
    {
        tp::tuning::TuningService overloaded{tp::tuning::TuningService::Options{
            .threads = 1,
            .max_queued_per_class = 1,
            .aging_quantum = std::chrono::milliseconds(50),
            .deadline_admission = true}};
        TuningRequest small;
        small.app = "jacobi";
        small.epsilon = 1e-1;
        small.input_sets = {0};
        const TicketHandle running = overloaded.submit(Request{.work = small});
        // Let the worker pop the first request before filling the queue:
        // the cap counts QUEUED requests, not running ones.
        while (running.status() == RequestStatus::kQueued) {
            std::this_thread::yield();
        }
        const TicketHandle queued = overloaded.submit(Request{.work = small});
        std::cout << "\nadmission control (cap 1/class, 1 worker): ";
        try {
            (void)overloaded.submit(Request{.work = small});
        } catch (const tp::tuning::RequestRejected& rejected) {
            std::cout << "third submit rejected (" << rejected.what() << ")";
        }
        try {
            (void)overloaded.submit(Request{
                .work = small,
                .deadline = std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(1)});
        } catch (const tp::tuning::RequestRejected& rejected) {
            std::cout << "\n  and a hopeless deadline is refused up front ("
                      << (rejected.reason() == tp::tuning::RequestRejected::
                                                   Reason::kDeadlineUnmeetable
                              ? "kDeadlineUnmeetable"
                              : "kQueueFull")
                      << ")";
        }
        queued.wait();
        running.wait();
        const auto admission = overloaded.admission_stats();
        std::cout << "\n  admitted " << admission.admitted << ", shed "
                  << admission.rejected_queue_full << ", deadline-refused "
                  << admission.rejected_deadline
                  << " — every admitted request still completed\n";
    }
    return 0;
}
