// The batched tuning service (tuning/service.hpp): tune a whole request
// mix in one call instead of hand-rolling per-app/per-epsilon loops.
//
// Before the service, sweeping several quality requirements meant an
// ad-hoc loop of distributed_search calls, each paying for its own golden
// runs and re-running probes the previous iteration already evaluated.
// The service routes every request for an app to one long-lived
// EvalEngine, runs independent searches on a worker pool, and the shared
// memoized trial cache makes the overlap between requests mostly free —
// exactly one kernel execution per distinct (input set, binding), at any
// concurrency (single-flight).
//
// Run: ./build/tuning_service_demo [threads]
#include <cstdlib>
#include <iostream>

#include "tuning/service.hpp"
#include "types/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    const unsigned threads =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;

    // The request mix: three apps, the paper's three requirements each.
    std::vector<tp::tuning::TuningRequest> batch;
    for (const char* app : {"pca", "dwt", "knn"}) {
        for (const double epsilon : {1e-3, 1e-2, 1e-1}) {
            tp::tuning::TuningRequest request;
            request.app = app;
            request.epsilon = epsilon;
            batch.push_back(std::move(request));
        }
    }

    tp::tuning::TuningService service{
        tp::tuning::TuningService::Options{.threads = threads}};
    std::cout << "tuning " << batch.size() << " requests on " << threads
              << " worker(s)...\n\n";
    const auto outcome = service.run(batch);

    tp::util::Table table(
        {"app", "epsilon", "trials submitted", "binding (per signal bits)"});
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto& tuning = outcome.results[i];
        std::string binding;
        for (const auto& sr : tuning.signals) {
            if (!binding.empty()) binding += ' ';
            binding += std::to_string(sr.precision_bits);
        }
        table.add_row({batch[i].app, tp::util::Table::num(batch[i].epsilon, 3),
                       std::to_string(tuning.program_runs), binding});
    }
    table.print(std::cout);

    const auto& stats = outcome.stats;
    std::cout << "\nbatch totals: " << stats.trials << " trials, "
              << stats.kernel_runs << " kernel executions, " << stats.cache_hits
              << " served from shared caches ("
              << static_cast<int>(100.0 * outcome.hit_rate())
              << "% of the batch eliminated)\n";

    // The service is long-lived: a repeated burst is pure cache.
    const auto repeat = service.run(batch);
    std::cout << "repeating the whole batch: " << repeat.stats.kernel_runs
              << " kernel executions ("
              << static_cast<int>(100.0 * repeat.hit_rate())
              << "% served from cache)\n";
    return 0;
}
