// End-to-end integration: the full transprecision flow — tune, bind,
// trace, vectorize, simulate — exercised across modules, asserting the
// qualitative outcomes the paper's evaluation is built on.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "tuning/quality.hpp"
#include "tuning/search.hpp"

namespace {

using tp::apps::make_app;
using tp::sim::RunReport;
using tp::sim::TpContext;

RunReport simulate(tp::apps::App& app, const tp::apps::TypeConfig& config,
                   bool simd, unsigned input_set = 0) {
    app.prepare(input_set);
    TpContext ctx;
    (void)app.run(ctx, config);
    return tp::sim::simulate(ctx.take_program(simd));
}

tp::tuning::TuningResult tune(tp::apps::App& app, double epsilon) {
    tp::tuning::SearchOptions options;
    options.epsilon = epsilon;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.input_sets = {0, 1};
    return tp::tuning::distributed_search(app, options);
}

TEST(Integration, ReportInternalConsistency) {
    for (const auto& name : tp::apps::app_names()) {
        auto app = make_app(name);
        const auto report = simulate(*app, app->uniform_config(tp::kBinary32),
                                     /*simd=*/false);
        // Cycles cover at least one per issued slot.
        EXPECT_GE(report.cycles, report.issue_slots) << name;
        // Energy buckets are all populated and finite.
        EXPECT_GT(report.energy.fp_ops, 0.0) << name;
        EXPECT_GT(report.energy.memory, 0.0) << name;
        EXPECT_GT(report.energy.other, 0.0) << name;
        // The baseline has no SIMD activity and no FP->FP casts.
        EXPECT_EQ(report.fp_simd_instrs, 0u) << name;
        EXPECT_EQ(report.mem_accesses_vector, 0u) << name;
        // Per-format activity sums to the instruction counters.
        std::uint64_t scalar = 0;
        for (const auto& [fmt, act] : report.per_format) {
            scalar += act.scalar_ops;
        }
        EXPECT_EQ(scalar, report.fp_ops) << name;
    }
}

TEST(Integration, TunedVectorizableAppsSaveEnergyAndAccesses) {
    // The paper's headline for the vectorizable kernels.
    for (const auto& name : {"knn", "dwt", "svm", "conv"}) {
        auto app = make_app(name);
        const auto tuning = tune(*app, 1e-1);
        const auto baseline =
            simulate(*app, app->uniform_config(tp::kBinary32), false);
        const auto tuned = simulate(*app, tuning.type_config(), true);
        EXPECT_LT(tuned.energy.total(), baseline.energy.total()) << name;
        EXPECT_LT(tuned.mem_accesses, baseline.mem_accesses) << name;
        EXPECT_LT(tuned.cycles, baseline.cycles) << name;
        EXPECT_GT(tuned.fp_simd_instrs, 0u) << name;
    }
}

TEST(Integration, JacobiStaysNearBaseline) {
    // JACOBI cannot vectorize; the paper reports ~97% energy.
    auto app = make_app("jacobi");
    const auto tuning = tune(*app, 1e-2);
    const auto baseline = simulate(*app, app->uniform_config(tp::kBinary32), false);
    const auto tuned = simulate(*app, tuning.type_config(), true);
    const double ratio = tuned.energy.total() / baseline.energy.total();
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.05);
    EXPECT_EQ(tuned.fp_simd_instrs, 0u);
}

TEST(Integration, TunedConfigMeetsRequirementOnTrainingSets) {
    // The DistributedSearch contract: the joined binding satisfies the
    // requirement on every input set it was refined over.
    for (const auto& name : tp::apps::app_names()) {
        auto app = make_app(name);
        const double epsilon = 1e-2;
        const auto tuning = tune(*app, epsilon); // sets {0, 1}
        for (unsigned set : {0u, 1u}) {
            const auto golden = app->golden(set);
            app->prepare(set);
            TpContext ctx{TpContext::Config{.trace = false}};
            const auto out = app->run(ctx, tuning.type_config());
            const double err = tp::tuning::output_error(golden, out);
            EXPECT_LE(err * err, epsilon) << name << " set " << set;
        }
    }
}

TEST(Integration, TunedConfigMostlyGeneralizesToUnseenInput) {
    // Generalization is statistical, not guaranteed (a binding can overfit
    // the dynamic range of its training sets — the reason the paper's
    // phase 2 joins several sets). Require most applications to stay
    // within a 4x slack of the requirement on a set never seen in tuning.
    int generalized = 0;
    int total = 0;
    for (const auto& name : tp::apps::app_names()) {
        auto app = make_app(name);
        const double epsilon = 1e-2;
        const auto tuning = tune(*app, epsilon);
        const auto golden = app->golden(7);
        app->prepare(7);
        TpContext ctx{TpContext::Config{.trace = false}};
        const auto out = app->run(ctx, tuning.type_config());
        const double err = tp::tuning::output_error(golden, out);
        ++total;
        if (err * err <= epsilon * 4.0) ++generalized;
    }
    EXPECT_GE(generalized * 3, total * 2)
        << generalized << " of " << total << " apps generalized";
}

TEST(Integration, ManualVectorizationImprovesPca) {
    auto scalar_pca = make_app("pca");
    const auto tuning = tune(*scalar_pca, 1e-2);
    const auto baseline =
        simulate(*scalar_pca, scalar_pca->uniform_config(tp::kBinary32), false);
    const auto tuned_scalar = simulate(*scalar_pca, tuning.type_config(), true);
    auto vec_pca = make_app("pca-manual-vec");
    const auto tuned_vec = simulate(*vec_pca, tuning.type_config(), true);
    // Same values, better schedule.
    EXPECT_LT(tuned_vec.energy.total(), tuned_scalar.energy.total());
    EXPECT_LT(tuned_vec.cycles, tuned_scalar.cycles);
    (void)baseline;
}

TEST(Integration, TighterRequirementNeverSavesMore) {
    // Energy at 10^-3 >= energy at 10^-1 for the same app (monotone
    // resource/quality trade-off).
    for (const auto& name : {"knn", "svm"}) {
        auto app = make_app(name);
        const auto loose = tune(*app, 1e-1);
        const auto tight = tune(*app, 1e-3);
        const auto loose_report = simulate(*app, loose.type_config(), true);
        const auto tight_report = simulate(*app, tight.type_config(), true);
        EXPECT_LE(loose_report.energy.total(), tight_report.energy.total() * 1.02)
            << name;
    }
}

TEST(Integration, StatsRegistryMatchesTraceCounts) {
    // The FlexFloat statistics layer (programming-flow step 4) and the
    // trace-driven platform must agree on arithmetic operation counts.
    auto app = make_app("conv");
    app->prepare(0);
    tp::thread_stats().reset();
    tp::thread_stats().set_enabled(true);
    TpContext ctx;
    (void)app->run(ctx, app->uniform_config(tp::kBinary16));
    tp::thread_stats().set_enabled(false);
    const auto report = tp::sim::simulate(ctx.take_program(false));
    std::uint64_t stats_arith = 0;
    for (const auto& [fmt, counts] : tp::thread_stats().ops()) {
        stats_arith += counts.arithmetic_total();
    }
    std::uint64_t trace_arith = 0;
    for (const auto& [fmt, act] : report.per_format) {
        trace_arith += act.scalar_ops + act.vector_ops;
    }
    // The trace also records cmp/neg/abs under FpArith; exclude them the
    // same way the registry's arithmetic_total does by comparing against
    // fp_ops minus non-arithmetic records is brittle — instead assert the
    // registry count is within the trace count and non-zero.
    EXPECT_GT(stats_arith, 0u);
    EXPECT_LE(stats_arith, trace_arith);
    tp::thread_stats().reset();
}

} // namespace
