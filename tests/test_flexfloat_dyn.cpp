#include "flexfloat/flexfloat_dyn.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "flexfloat/flexfloat.hpp"
#include "types/encoding.hpp"
#include "util/random.hpp"

namespace {

using tp::FlexFloatDyn;
using tp::FpFormat;

TEST(FlexFloatDyn, ConstructionSanitizes) {
    const FlexFloatDyn a{0.3, tp::kBinary8};
    EXPECT_EQ(a.value(), 0.3125);
    EXPECT_EQ(a.format(), tp::kBinary8);
}

TEST(FlexFloatDyn, DefaultIsBinary32Zero) {
    const FlexFloatDyn a;
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(a.format(), tp::kBinary32);
}

TEST(FlexFloatDyn, ArithmeticMatchesTemplateForm) {
    tp::util::Xoshiro256 rng{0xD1};
    for (int i = 0; i < 50000; ++i) {
        const double x = rng.normal(0.0, 100.0);
        const double y = rng.normal(0.0, 100.0);
        const FlexFloatDyn a{x, tp::kBinary16};
        const FlexFloatDyn b{y, tp::kBinary16};
        const tp::binary16_t ta = x;
        const tp::binary16_t tb = y;
        ASSERT_EQ((a + b).value(), static_cast<double>(ta + tb));
        ASSERT_EQ((a - b).value(), static_cast<double>(ta - tb));
        ASSERT_EQ((a * b).value(), static_cast<double>(ta * tb));
    }
}

TEST(FlexFloatDyn, CompoundAssignment) {
    FlexFloatDyn a{1.5, tp::kBinary16};
    a += FlexFloatDyn{0.25, tp::kBinary16};
    EXPECT_EQ(a.value(), 1.75);
    a *= FlexFloatDyn{2.0, tp::kBinary16};
    EXPECT_EQ(a.value(), 3.5);
    a -= FlexFloatDyn{0.5, tp::kBinary16};
    EXPECT_EQ(a.value(), 3.0);
    a /= FlexFloatDyn{2.0, tp::kBinary16};
    EXPECT_EQ(a.value(), 1.5);
}

TEST(FlexFloatDyn, CastChangesFormatAndRounds) {
    const FlexFloatDyn wide{3.14159, tp::kBinary32};
    const FlexFloatDyn narrow = wide.cast_to(tp::kBinary8);
    EXPECT_EQ(narrow.format(), tp::kBinary8);
    EXPECT_EQ(narrow.value(), tp::quantize(wide.value(), tp::kBinary8));
}

TEST(FlexFloatDyn, BitsRoundTrip) {
    const FlexFloatDyn a{-1.5, tp::kBinary16};
    EXPECT_EQ(a.bits(), 0xbe00u);
    const FlexFloatDyn b = FlexFloatDyn::from_bits(0xbe00u, tp::kBinary16);
    EXPECT_EQ(b.value(), -1.5);
    EXPECT_EQ(b.format(), tp::kBinary16);
}

TEST(FlexFloatDyn, SqrtAbsNeg) {
    const FlexFloatDyn a{2.25, tp::kBinary16};
    EXPECT_EQ(sqrt(a).value(), 1.5);
    EXPECT_EQ(abs(FlexFloatDyn{-2.0, tp::kBinary16}).value(), 2.0);
    EXPECT_EQ((-a).value(), -2.25);
}

TEST(FlexFloatDyn, Comparisons) {
    const FlexFloatDyn a{1.0, tp::kBinary16};
    const FlexFloatDyn b{2.0, tp::kBinary16};
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a <= b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(b >= a);
    EXPECT_TRUE(a != b);
    EXPECT_FALSE(a == b);
}

TEST(FlexFloatDyn, StreamInsertion) {
    std::ostringstream os;
    os << FlexFloatDyn{0.25, tp::kBinary8};
    EXPECT_EQ(os.str(), "0.25");
}

TEST(FlexFloatDyn, ArbitraryFormatQuantization) {
    // A (e=6, m=9) value: precision steps of 2^-9 at magnitude ~1.
    const FlexFloatDyn v{1.0 + 1.0 / 1024.0, FpFormat{6, 9}};
    EXPECT_EQ(v.value(), 1.0); // ties to even
    const FlexFloatDyn w{1.0 + 3.0 / 1024.0, FpFormat{6, 9}};
    EXPECT_EQ(w.value(), 1.0 + 4.0 / 1024.0);
}

} // namespace
