// App-conformance battery: the shared, parameterized test suite every
// registered apps::App must pass.
//
// Before this harness each app-facing property lived as a hand-copied
// check in test_apps.cpp (kernel behaviour) or test_eval_engine.cpp
// (engine determinism, run only for pca and dwt). Registering a new app
// meant remembering to extend both files. Now the whole battery is
// parameterized over the app name: include this header from a test binary
// and instantiate with TP_INSTANTIATE_APP_CONFORMANCE — every app listed
// gets, for free,
//
//   * kernel conformance — well-formed signal declarations, deterministic
//     golden outputs that differ across input sets, a near-exact binary32
//     baseline, traced/untraced agreement, a simulatable trace, no FP->FP
//     casts under a uniform binding, and graceful degradation at the
//     narrowest formats;
//   * clone independence — a clone shares the immutable SignalTable but
//     carries its own workload, so re-preparing one never disturbs the
//     other (what the engine's worker-private clone pool relies on);
//   * engine conformance — config-size validation, golden caching, and
//     the cache-coherent determinism contract (tuning/search.hpp): cold,
//     warm, memoization-disabled, and threads=4 searches return
//     bit-identical TuningResults with exact EvalStats counters.
//
// The battery is a header (not a library) because gtest's TEST_P
// registration must live in the binary that instantiates it; each test
// executable includes it at most once.
#pragma once

#include <cmath>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "analysis/derive_bounds.hpp"
#include "analysis/range_analysis.hpp"
#include "analysis/region_impact.hpp"
#include "analysis/signal_flow.hpp"
#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "tuning/cast_aware.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/quality.hpp"
#include "tuning/search.hpp"

namespace tp::testing {

/// Search options small enough to run the full determinism battery over
/// every registered app in one test binary: two input sets, two greedy
/// passes, the paper's V2 type system.
[[nodiscard]] inline tuning::SearchOptions conformance_search_options() {
    tuning::SearchOptions options;
    options.epsilon = 1e-2;
    options.type_system = TypeSystem{TypeSystemKind::V2};
    options.input_sets = {0, 1};
    options.max_passes = 2;
    return options;
}

/// Memberwise TuningResult equality with per-field messages first, so a
/// regression names the diverging signal instead of "a != b".
inline void expect_identical_results(const tuning::TuningResult& a,
                                     const tuning::TuningResult& b,
                                     const std::string& label) {
    EXPECT_EQ(a.program_runs, b.program_runs) << label;
    ASSERT_EQ(a.signals.size(), b.signals.size()) << label;
    for (std::size_t i = 0; i < a.signals.size(); ++i) {
        EXPECT_EQ(a.signals[i].name, b.signals[i].name) << label;
        EXPECT_EQ(a.signals[i].precision_bits, b.signals[i].precision_bits)
            << label << " signal " << a.signals[i].name;
        EXPECT_EQ(a.signals[i].bound, b.signals[i].bound)
            << label << " signal " << a.signals[i].name;
    }
    // The full memberwise predicate covers fields added later.
    EXPECT_TRUE(a == b) << label;
}

class AppConformanceTest : public ::testing::TestWithParam<std::string> {
protected:
    [[nodiscard]] static std::unique_ptr<apps::App> app() {
        return apps::make_app(GetParam());
    }
};

// --- kernel conformance ------------------------------------------------------

TEST_P(AppConformanceTest, SignalsAreWellFormed) {
    const auto app = this->app();
    const auto& signals = app->signals();
    EXPECT_GE(signals.size(), 3u);
    std::set<std::string> names;
    for (const auto& spec : signals) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GE(spec.elements, 1u);
        EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    }
}

TEST_P(AppConformanceTest, SignalTableMatchesDeclarations) {
    const auto app = this->app();
    const apps::SignalTable& table = app->signal_table();
    const auto& specs = app->signals();
    ASSERT_EQ(table.size(), specs.size());
    for (apps::SignalId id = 0; id < specs.size(); ++id) {
        EXPECT_EQ(table.id(specs[id].name), id);
        EXPECT_EQ(table.name(id), specs[id].name);
    }
    EXPECT_EQ(app->uniform_config(kBinary32).size(), table.size());
}

TEST_P(AppConformanceTest, GoldenIsDeterministic) {
    const auto app = this->app();
    const auto out1 = app->golden(0);
    const auto out2 = app->golden(0);
    ASSERT_EQ(out1.size(), out2.size());
    for (std::size_t i = 0; i < out1.size(); ++i) {
        EXPECT_EQ(out1[i], out2[i]) << i;
    }
    EXPECT_GE(out1.size(), 8u); // enough samples for a stable SQNR
}

TEST_P(AppConformanceTest, InputSetsDiffer) {
    const auto app = this->app();
    const auto out0 = app->golden(0);
    const auto out1 = app->golden(1);
    ASSERT_EQ(out0.size(), out1.size());
    bool any_different = false;
    for (std::size_t i = 0; i < out0.size(); ++i) {
        any_different = any_different || out0[i] != out1[i];
    }
    EXPECT_TRUE(any_different);
}

TEST_P(AppConformanceTest, OutputsAreFinite) {
    const auto app = this->app();
    for (unsigned set = 0; set < 3; ++set) {
        for (const double v : app->golden(set)) {
            EXPECT_TRUE(std::isfinite(v));
        }
    }
}

TEST_P(AppConformanceTest, Binary32RunIsCloseToGolden) {
    const auto app = this->app();
    const auto golden = app->golden(0);
    app->prepare(0);
    sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
    const auto out = app->run(ctx, app->uniform_config(kBinary32));
    ASSERT_EQ(out.size(), golden.size());
    EXPECT_LE(tuning::output_error(golden, out), 1e-3)
        << "binary32 should be a near-exact baseline";
}

TEST_P(AppConformanceTest, TracedAndUntracedRunsAgree) {
    const auto app = this->app();
    app->prepare(0);
    sim::TpContext traced;
    const auto out_traced = app->run(traced, app->uniform_config(kBinary32));
    app->prepare(0);
    sim::TpContext untraced{sim::TpContext::Config{.trace = false}};
    const auto out_untraced = app->run(untraced, app->uniform_config(kBinary32));
    ASSERT_EQ(out_traced.size(), out_untraced.size());
    for (std::size_t i = 0; i < out_traced.size(); ++i) {
        EXPECT_EQ(out_traced[i], out_untraced[i]) << i;
    }
    EXPECT_FALSE(traced.take_program(false).instrs.empty());
}

TEST_P(AppConformanceTest, TraceSimulates) {
    const auto app = this->app();
    app->prepare(0);
    sim::TpContext ctx;
    (void)app->run(ctx, app->uniform_config(kBinary32));
    const auto report = sim::simulate(ctx.take_program(true));
    EXPECT_GT(report.cycles, 0u);
    EXPECT_GT(report.fp_ops + report.fp_simd_lane_ops, 0u);
    EXPECT_GT(report.mem_accesses, 0u);
    EXPECT_GT(report.energy.total(), 0.0);
}

TEST_P(AppConformanceTest, UniformBinary32HasNoCasts) {
    const auto app = this->app();
    app->prepare(0);
    sim::TpContext ctx;
    (void)app->run(ctx, app->uniform_config(kBinary32));
    std::uint64_t fp_casts = 0;
    for (const auto& instr : ctx.take_program(false).instrs) {
        if (instr.kind == sim::InstrKind::FpCast && instr.op != FpOp::FromInt &&
            instr.op != FpOp::ToInt && !(instr.fmt == instr.fmt2)) {
            ++fp_casts;
        }
    }
    EXPECT_EQ(fp_casts, 0u);
}

TEST_P(AppConformanceTest, NarrowFormatsDegradeGracefully) {
    // The narrowest member format may be arbitrarily inaccurate but must
    // not crash, and the wide-range binary16alt run must not saturate to
    // infinity (its dynamic range equals binary32's).
    const auto app = this->app();
    const auto golden = app->golden(0);
    app->prepare(0);
    sim::TpContext ctx8{sim::TpContext::Config{.trace = false}};
    const auto out8 = app->run(ctx8, app->uniform_config(kBinary8));
    EXPECT_EQ(out8.size(), golden.size());
    app->prepare(0);
    sim::TpContext ctx_alt{sim::TpContext::Config{.trace = false}};
    const auto out_alt = app->run(ctx_alt, app->uniform_config(kBinary16Alt));
    ASSERT_EQ(out_alt.size(), golden.size());
    for (const double v : out_alt) EXPECT_TRUE(std::isfinite(v));
}

// --- clone independence ------------------------------------------------------

TEST_P(AppConformanceTest, CloneSharesTableButNotWorkload) {
    const auto app = this->app();
    app->prepare(0);
    const auto clone = app->clone();
    EXPECT_EQ(app->name(), clone->name());
    // One immutable table instance serves the app and every clone.
    EXPECT_EQ(&app->signal_table(), &clone->signal_table());

    // The clone carries the prepared workload...
    const auto config = app->uniform_config(kBinary32);
    sim::TpContext c1{sim::TpContext::Config{.trace = false}};
    const auto original = app->run(c1, config);
    sim::TpContext c2{sim::TpContext::Config{.trace = false}};
    const auto copied = clone->run(c2, config);
    EXPECT_EQ(original, copied);

    // ...but re-preparing it never disturbs the original (the property the
    // engine's worker-private clone pool relies on).
    clone->prepare(1);
    sim::TpContext c3{sim::TpContext::Config{.trace = false}};
    EXPECT_EQ(app->run(c3, config), original);
    sim::TpContext c4{sim::TpContext::Config{.trace = false}};
    const auto reprepared = clone->run(c4, config);
    EXPECT_NE(reprepared, original);
    app->prepare(1);
    sim::TpContext c5{sim::TpContext::Config{.trace = false}};
    EXPECT_EQ(app->run(c5, config), reprepared);
}

// --- engine conformance ------------------------------------------------------

TEST_P(AppConformanceTest, EngineValidatesConfigSize) {
    const auto app = this->app();
    tuning::EvalEngine engine{*app, tuning::EvalEngine::Options{}};
    EXPECT_THROW((void)engine.output(0, apps::TypeConfig{}),
                 std::invalid_argument);
    EXPECT_THROW((void)engine.meets(
                     0, apps::TypeConfig{app->signals().size() + 1, kBinary32},
                     1e-1),
                 std::invalid_argument);
    EXPECT_THROW((void)engine.report(0, apps::TypeConfig{1}, false),
                 std::invalid_argument);
    // Rejected configs leave the counters untouched.
    EXPECT_EQ(engine.stats(), tuning::EvalStats{});
    EXPECT_NO_THROW((void)engine.output(0, app->uniform_config(kBinary32)));
}

TEST_P(AppConformanceTest, EngineGoldenMatchesAppGoldenAndIsPinned) {
    const auto app = this->app();
    tuning::EvalEngine engine{*app, tuning::EvalEngine::Options{}};
    const auto expected = apps::make_app(GetParam())->golden(1);
    const auto& actual = engine.golden(1);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << i;
    }
    // The second request is a cache hit on pinned storage.
    EXPECT_EQ(&engine.golden(1), &actual);
    EXPECT_EQ(engine.stats().golden_runs, 1u);
}

// Cold cache, warm cache, disabled cache and the threads=4 path must all
// yield bit-identical TuningResults, program_runs included, with exact
// EvalStats at any thread count (the cache-coherent determinism contract,
// tuning/search.hpp).
TEST_P(AppConformanceTest, SearchIsCacheCoherentAndThreadCountInvariant) {
    const auto app = this->app();
    const auto options = conformance_search_options();

    tuning::EvalEngine cached{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const tuning::TuningResult cold = distributed_search(cached, options);
    const std::size_t cold_runs = cached.stats().kernel_runs;
    const tuning::TuningResult warm = distributed_search(cached, options);
    expect_identical_results(cold, warm, GetParam() + ": warm vs cold");
    // The warm search re-ran nothing.
    EXPECT_EQ(cached.stats().kernel_runs, cold_runs);
    EXPECT_GT(cached.stats().cache_hits, 0u);

    tuning::EvalEngine uncached{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = false}};
    const tuning::TuningResult reference = distributed_search(uncached, options);
    expect_identical_results(cold, reference, GetParam() + ": cold vs uncached");
    EXPECT_EQ(uncached.stats().cache_hits, 0u);

    tuning::EvalEngine parallel{
        *app, tuning::EvalEngine::Options{.threads = 4, .memoize = true}};
    const tuning::TuningResult threaded_cold = distributed_search(parallel, options);
    const tuning::TuningResult threaded_warm = distributed_search(parallel, options);
    expect_identical_results(cold, threaded_cold, GetParam() + ": threads=4 cold");
    expect_identical_results(cold, threaded_warm, GetParam() + ": threads=4 warm");

    // Counters are EXACT at any thread count (single-flight execution).
    EXPECT_EQ(parallel.stats(), cached.stats());
}

// Cross-epsilon warm-starting (tuning/search.hpp): the chained sweep's
// per-signal tuned minima are ordered across 1e-3/1e-2/1e-1 and never
// above the independent searches', every result meets its requirement
// end-to-end under the bound formats, the chain submits strictly fewer
// trials than the independent sweep (the cut visible in
// trials_skipped_by_bounds), and the chained results are bit-identical
// at threads=4 — the warm-start axis of the determinism contract.
TEST_P(AppConformanceTest, WarmChainedSweepIsMonotoneFrugalAndFeasible) {
    const auto app = this->app();
    const auto base = conformance_search_options();
    const std::vector<double> epsilons{1e-3, 1e-2, 1e-1};

    tuning::EvalEngine independent_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const auto independent = tuning::sweep_search(independent_engine, base,
                                                  epsilons,
                                                  /*warm_start_chain=*/false);
    tuning::EvalEngine warm_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const auto warm =
        tuning::sweep_search(warm_engine, base, epsilons,
                             /*warm_start_chain=*/true);
    ASSERT_EQ(independent.size(), epsilons.size());
    ASSERT_EQ(warm.size(), epsilons.size());

    std::size_t independent_trials = 0;
    std::size_t warm_trials = 0;
    for (std::size_t e = 0; e < epsilons.size(); ++e) {
        independent_trials += independent[e].program_runs;
        warm_trials += warm[e].program_runs;
    }
    EXPECT_LT(warm_trials, independent_trials);
    EXPECT_GT(warm_engine.stats().trials_skipped_by_bounds, 0u);
    // An unchained sweep clamps nothing.
    EXPECT_EQ(independent_engine.stats().trials_skipped_by_bounds, 0u);

    for (std::size_t e = 0; e < epsilons.size(); ++e) {
        for (const unsigned set : base.input_sets) {
            EXPECT_TRUE(warm_engine.meets(set, warm[e].type_config(),
                                          epsilons[e]))
                << GetParam() << ": epsilon " << epsilons[e] << " set " << set;
        }
        for (std::size_t i = 0; i < warm[e].signals.size(); ++i) {
            EXPECT_LE(warm[e].signals[i].precision_bits,
                      independent[e].signals[i].precision_bits)
                << GetParam() << ": epsilon " << epsilons[e] << " signal "
                << warm[e].signals[i].name;
            if (e > 0) {
                EXPECT_LE(warm[e].signals[i].precision_bits,
                          warm[e - 1].signals[i].precision_bits)
                    << GetParam() << ": minima not ordered at epsilon "
                    << epsilons[e] << " signal " << warm[e].signals[i].name;
            }
        }
    }

    // Warm-started results are thread-count invariant like everything else.
    tuning::EvalEngine parallel{
        *app, tuning::EvalEngine::Options{.threads = 4, .memoize = true}};
    const auto threaded =
        tuning::sweep_search(parallel, base, epsilons, /*warm_start_chain=*/true);
    ASSERT_EQ(threaded.size(), warm.size());
    for (std::size_t e = 0; e < warm.size(); ++e) {
        expect_identical_results(warm[e], threaded[e],
                                 GetParam() + ": threads=4 chained sweep");
    }
    EXPECT_EQ(parallel.stats().trials_skipped_by_bounds,
              warm_engine.stats().trials_skipped_by_bounds);
}

// --- static-analysis soundness -----------------------------------------------

// The soundness contract of src/analysis/ (derive_bounds.hpp), checked
// dynamically on every app:
//
//   (a) enclosure — every value a genuinely rounded execution records
//       sits inside the static range of its producing signal, with the
//       ranges evaluated at that execution's per-signal rounding steps;
//   (b) bound validity — the tuned per-signal minimum the full search
//       finds is never below the analysis lower bound, at threads=1 and
//       threads=4;
//   (c) result identity — a static_bounds search returns the cold
//       search's result bit-identically, in no more trials, and books
//       its savings in trials_skipped_by_bounds.
TEST_P(AppConformanceTest, StaticAnalysisBoundsAreSound) {
    const auto app = this->app();
    const auto options = conformance_search_options();
    const std::size_t S = app->signals().size();

    for (const unsigned set : options.input_sets) {
        const auto capture = analysis::capture_trace(*app, set);
        const auto flow = analysis::build_signal_flow(capture.program, S);
        const auto model = analysis::build_error_model(capture.program, flow);

        // (a) A real rounded run under the staircase config (pairwise
        // distinct formats, so it aligns with the capture).
        app->prepare(set);
        sim::TpContext ctx{sim::TpContext::Config{.trace = true,
                                                  .force_emulated = true,
                                                  .record_values = true,
                                                  .binary64_shadow = false}};
        const apps::TypeConfig probe = analysis::staircase_config(S);
        (void)app->run(ctx, probe);
        const sim::TraceProgram observed = ctx.take_program(false);

        std::vector<double> u(S, 0.0);
        for (std::size_t s = 0; s < S; ++s) {
            u[s] = std::ldexp(
                1.0, -(static_cast<int>(
                           probe[static_cast<apps::SignalId>(s)].mant_bits) +
                       1));
        }
        const auto ranges =
            analysis::static_signal_ranges(model, flow, u, /*inflation=*/4.0);

        auto mapped = analysis::align_value_signals(observed, flow,
                                                    capture.program);
        if (mapped.empty()) {
            // Rounding flipped a data-dependent branch: fall back to
            // stream-level attribution (stream ids are run-invariant).
            const auto streams = analysis::stream_signals(capture.program, S);
            mapped.assign(observed.value_count, analysis::kUnknownSignal);
            for (const sim::Instr& instr : observed.instrs) {
                if (instr.kind == sim::InstrKind::Load && instr.dst >= 0 &&
                    instr.stream < streams.size()) {
                    mapped[static_cast<std::size_t>(instr.dst)] =
                        streams[instr.stream];
                }
            }
        }
        ASSERT_EQ(mapped.size(), observed.value_count);
        ASSERT_EQ(observed.values.size(), observed.value_count);
        for (std::size_t id = 0; id < observed.values.size(); ++id) {
            const std::int32_t sig = mapped[id];
            if (sig < 0) continue;
            const analysis::StaticRange& range =
                ranges[static_cast<std::size_t>(sig)];
            if (!range.populated) continue;
            const double v = observed.values[id].value;
            if (!std::isfinite(v)) continue; // overflowed formats are lint's job
            EXPECT_GE(v, range.lo) << GetParam() << ": set " << set
                                   << " value " << id << " signal " << sig;
            EXPECT_LE(v, range.hi) << GetParam() << ": set " << set
                                   << " value " << id << " signal " << sig;
        }
    }

    // (b) Tuned minima never undercut the static lower bounds.
    const tuning::WarmStart warm = analysis::derive_warm_start(
        *app, options.epsilon, options.input_sets, options.type_system);
    ASSERT_EQ(warm.lower_bounds.size(), S);
    for (const unsigned threads : {1u, 4u}) {
        tuning::EvalEngine engine{
            *app,
            tuning::EvalEngine::Options{.threads = threads, .memoize = true}};
        const tuning::TuningResult tuned = distributed_search(engine, options);
        ASSERT_EQ(tuned.signals.size(), S);
        for (std::size_t s = 0; s < S; ++s) {
            EXPECT_GE(tuned.signals[s].precision_bits, warm.lower_bounds[s])
                << GetParam() << ": threads " << threads << " signal "
                << tuned.signals[s].name;
        }
    }

    // (c) static_bounds reproduces the cold result exactly, cheaper.
    tuning::EvalEngine cold_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const tuning::TuningResult cold = distributed_search(cold_engine, options);
    auto bounded_options = options;
    bounded_options.static_bounds = true;
    tuning::EvalEngine bounded_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const tuning::TuningResult bounded =
        distributed_search(bounded_engine, bounded_options);
    ASSERT_EQ(bounded.signals.size(), cold.signals.size());
    for (std::size_t s = 0; s < S; ++s) {
        EXPECT_EQ(bounded.signals[s].precision_bits,
                  cold.signals[s].precision_bits)
            << GetParam() << ": signal " << cold.signals[s].name;
        EXPECT_EQ(bounded.signals[s].bound, cold.signals[s].bound)
            << GetParam() << ": signal " << cold.signals[s].name;
    }
    EXPECT_LE(bounded.program_runs, cold.program_runs) << GetParam();
    EXPECT_EQ(cold_engine.stats().trials_skipped_by_bounds, 0u);
}

// --- delta-cost soundness ----------------------------------------------------

// The delta-cost soundness contract (eval_engine.hpp): a cast-aware
// search whose candidate probes route through EvalEngine::report_delta
// returns a byte-identical CastAwareResult to the full-recost search —
// base search, binding, energies, cast counts, moves, and every EvalStats
// counter except the regions_recosted / regions_skipped_by_impact split,
// which is exactly where the saved work shows up. Checked at threads=1
// and threads=4 (the delta path must not perturb the cache-coherent
// determinism contract).
TEST_P(AppConformanceTest, DeltaCostedCastAwareIsExact) {
    tuning::CastAwareOptions options;
    options.search = conformance_search_options();
    options.max_rounds = 2;

    // Whether the static analysis can prove anything for this app: a
    // (signal, region) pair with no impact edge. An app whose whole trace
    // is one unbroken vector window (no non-vectorizable FP/memory
    // barrier) soundly smears every signal over every region and the
    // delta path degenerates to full recosting — identical bits either
    // way, just no savings to assert.
    bool provable = false;
    {
        const auto probe_app = this->app();
        const std::size_t S = probe_app->signals().size();
        const auto capture =
            analysis::capture_trace(*probe_app, options.cost_input_set);
        const auto impact = analysis::build_region_impact(capture.program, S);
        for (std::size_t s = 0; s < S && !provable; ++s) {
            for (std::size_t r = 0; r < impact.region_count; ++r) {
                if (impact.impact[s][r] == 0 && impact.always_impacted[r] == 0) {
                    provable = true;
                    break;
                }
            }
        }
    }

    for (const unsigned threads : {1u, 4u}) {
        const std::string label =
            GetParam() + ": threads=" + std::to_string(threads);
        options.search.threads = threads;

        auto full_options = options;
        full_options.delta_cost = false;
        const auto full_app = this->app();
        tuning::EvalEngine full_engine{
            *full_app,
            tuning::EvalEngine::Options{.threads = threads, .memoize = true}};
        const tuning::CastAwareResult full =
            cast_aware_search(full_engine, full_options);

        const auto delta_app = this->app();
        tuning::EvalEngine delta_engine{
            *delta_app,
            tuning::EvalEngine::Options{.threads = threads, .memoize = true}};
        const tuning::CastAwareResult delta =
            cast_aware_search(delta_engine, options);

        expect_identical_results(full.base, delta.base, label + " base search");
        ASSERT_EQ(full.config.size(), delta.config.size()) << label;
        for (apps::SignalId id = 0; id < full.config.size(); ++id) {
            EXPECT_EQ(full.config.at(id), delta.config.at(id))
                << label << " signal " << id;
        }
        EXPECT_EQ(full.base_energy_pj, delta.base_energy_pj) << label;
        EXPECT_EQ(full.tuned_energy_pj, delta.tuned_energy_pj) << label;
        EXPECT_EQ(full.base_casts, delta.base_casts) << label;
        EXPECT_EQ(full.tuned_casts, delta.tuned_casts) << label;
        EXPECT_EQ(full.moves_accepted, delta.moves_accepted) << label;

        // Identical work, except the recost/skip split: zero that out and
        // the stats match counter-for-counter.
        tuning::EvalStats full_stats = full.eval_stats;
        tuning::EvalStats delta_stats = delta.eval_stats;
        EXPECT_EQ(full_stats.regions_skipped_by_impact, 0u) << label;
        full_stats.regions_recosted = 0;
        full_stats.regions_skipped_by_impact = 0;
        delta_stats.regions_recosted = 0;
        delta_stats.regions_skipped_by_impact = 0;
        EXPECT_EQ(full_stats, delta_stats) << label;

        // When the impact map decouples at least one (signal, region)
        // pair, the probes must actually splice: provable independence
        // may not silently degenerate to full recosting.
        if (provable) {
            EXPECT_GT(delta.eval_stats.regions_skipped_by_impact, 0u) << label;
            EXPECT_LT(delta.eval_stats.regions_recosted,
                      full.eval_stats.regions_recosted)
                << label;
        } else {
            EXPECT_EQ(delta.eval_stats.regions_skipped_by_impact, 0u) << label;
        }
    }
}

} // namespace tp::testing

/// Instantiates the battery for a list of app names. `suite_prefix` keys
/// the gtest instantiation; the name generator keeps parameters readable
/// in ctest output ('-' is not a valid test-name character). The
/// using-declaration is what lets INSTANTIATE_TEST_SUITE_P see the fixture
/// from the caller's namespace (repeating it is legal).
#define TP_INSTANTIATE_APP_CONFORMANCE(suite_prefix, ...)                      \
    using tp::testing::AppConformanceTest;                                     \
    INSTANTIATE_TEST_SUITE_P(                                                  \
        suite_prefix, AppConformanceTest, __VA_ARGS__,                         \
        [](const ::testing::TestParamInfo<std::string>& info) {                \
            std::string name = info.param;                                     \
            for (char& c : name) {                                             \
                if (c == '-') c = '_';                                         \
            }                                                                  \
            return name;                                                       \
        })
