// The shared app-conformance battery (app_conformance.hpp), instantiated
// over every registered application plus the pca manual-vectorization
// variant. Registering a new app in apps::app_names() automatically
// enrolls it here — CMake labels this binary `apps` so the battery can run
// in isolation (ctest -L apps).
#include "app_conformance.hpp"

namespace {

TP_INSTANTIATE_APP_CONFORMANCE(AllApps,
                               ::testing::ValuesIn(tp::apps::app_names()));

// Factory-only variant (not in app_names()): same battery, same terms.
TP_INSTANTIATE_APP_CONFORMANCE(Variants,
                               ::testing::Values(std::string{"pca-manual-vec"}));

} // namespace
