// The async submission surface of TuningService (tuning/service.hpp) and
// the PriorityScheduler underneath it (util/priority_scheduler.hpp).
//
// The contracts under test: workers pop by (priority, admission order);
// cancel() takes effect on queued requests only and never runs a kernel
// for them; a queued request past its deadline is rejected with the typed
// DeadlineExpired instead of running; results are bit-identical to a
// direct distributed_search of the same request regardless of priority,
// cancellation of other requests, or worker count (the
// scheduling-independence half of the determinism contract); per-ticket
// EvalStats deltas are exact and sum to the engines' deltas; and the
// service destructor cancels queued work and drains running work without
// deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "tuning/cast_aware.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"
#include "tuning/service.hpp"
#include "util/priority_scheduler.hpp"

namespace {

using tp::tuning::CastAwareOptions;
using tp::tuning::CastAwareRequest;
using tp::tuning::DeadlineExpired;
using tp::tuning::distributed_search;
using tp::tuning::EvalStats;
using tp::tuning::Priority;
using tp::tuning::Request;
using tp::tuning::RequestCancelled;
using tp::tuning::RequestStatus;
using tp::tuning::SearchOptions;
using tp::tuning::SweepRequest;
using tp::tuning::TicketHandle;
using tp::tuning::TuningRequest;
using tp::tuning::TuningResult;
using tp::tuning::TuningService;

SearchOptions fast_options() {
    SearchOptions options;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.max_passes = 2;
    return options;
}

TuningRequest plain(std::string app, double epsilon,
                    std::vector<unsigned> input_sets = {0, 1}) {
    TuningRequest request;
    request.app = std::move(app);
    request.epsilon = epsilon;
    request.input_sets = std::move(input_sets);
    request.options = fast_options();
    return request;
}

/// A request heavy enough to occupy a worker for a macroscopic time: a
/// three-epsilon sweep.
Request sweep(std::string app, Priority priority = Priority::kSweep) {
    SweepRequest work;
    work.app = std::move(app);
    work.epsilons = {1e-3, 1e-2, 1e-1};
    work.input_sets = {0, 1};
    work.options = fast_options();
    return Request{.work = std::move(work), .priority = priority};
}

/// The direct-search reference for one plain request.
TuningResult direct(const TuningRequest& request) {
    const auto app = tp::apps::make_app(request.app);
    SearchOptions options = request.options;
    options.epsilon = request.epsilon;
    options.input_sets = request.input_sets;
    return distributed_search(*app, options);
}

/// The chained-sweep reference a SweepRequest (warm_start on, the
/// default) must reproduce bit-for-bit: a standalone sweep_search over
/// the same epsilons on a private engine.
std::vector<TuningResult> direct_sweep(const std::string& app_name) {
    const auto app = tp::apps::make_app(app_name);
    SearchOptions base = fast_options();
    base.input_sets = {0, 1};
    return tp::tuning::sweep_search(*app, base, {1e-3, 1e-2, 1e-1},
                                    /*warm_start_chain=*/true);
}

/// Spins until `handle` leaves kQueued — i.e. a worker has picked it up
/// (or it completed). Used to pin "the only worker is busy" states.
void wait_until_started(const TicketHandle& handle) {
    while (handle.status() == RequestStatus::kQueued) {
        std::this_thread::yield();
    }
}

// --- PriorityScheduler (deterministic unit tests) ---------------------------

TEST(PriorityScheduler, PopsByPriorityThenAdmissionOrder) {
    tp::util::PriorityScheduler scheduler{1};

    // Gate the single worker so every subsequent submission queues; wait
    // until the worker has actually picked the gate up, or the first
    // submissions below could be popped ahead of it.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(0, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    std::mutex order_mutex;
    std::vector<int> order;
    std::atomic<int> remaining{6};
    const auto record = [&order_mutex, &order, &remaining](int tag) {
        const std::lock_guard<std::mutex> lock{order_mutex};
        order.push_back(tag);
        --remaining;
    };
    // Admitted in tag order; must pop by (priority desc, admission asc).
    scheduler.submit(0, [&record] { record(0); });
    scheduler.submit(2, [&record] { record(1); });
    scheduler.submit(1, [&record] { record(2); });
    scheduler.submit(2, [&record] { record(3); });
    scheduler.submit(0, [&record] { record(4); });
    scheduler.submit(1, [&record] { record(5); });
    EXPECT_EQ(scheduler.pending(), 6u);

    gate.set_value();
    while (remaining.load() != 0) std::this_thread::yield();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 5, 0, 4}));
}

TEST(PriorityScheduler, DestructionDrainsAdmittedTasks) {
    std::atomic<int> ran{0};
    {
        tp::util::PriorityScheduler scheduler{1};
        std::promise<void> gate;
        std::shared_future<void> open = gate.get_future().share();
        scheduler.submit(0, [open] { open.wait(); });
        for (int i = 0; i < 5; ++i) {
            scheduler.submit(i % 3, [&ran] { ++ran; });
        }
        gate.set_value();
        // Destructor runs with (most of) the queue still pending.
    }
    EXPECT_EQ(ran.load(), 5);
}

/// A fake time source over an atomic millisecond counter: aging and
/// expiry become fully deterministic — no sleeps, no real clock.
struct FakeClock {
    std::atomic<std::int64_t> ms{0};

    [[nodiscard]] std::function<tp::util::PriorityScheduler::Clock::time_point()>
    source() {
        return [this] {
            return tp::util::PriorityScheduler::Clock::time_point{} +
                   std::chrono::milliseconds(ms.load());
        };
    }
    [[nodiscard]] tp::util::PriorityScheduler::Clock::time_point at(
        std::int64_t when_ms) const {
        return tp::util::PriorityScheduler::Clock::time_point{} +
               std::chrono::milliseconds(when_ms);
    }
};

// Anti-starvation aging: with a quantum set, a queued task's effective
// priority is base + waited / quantum, so an old low-priority task
// overtakes fresh high-priority arrivals (ties break by admission order,
// which the aged task wins by being older). Strict priority would pop
// 1, 2, 0 here; aging pops 0 first.
TEST(PriorityScheduler, AgingPromotesStarvedClasses) {
    FakeClock clock;
    tp::util::PriorityScheduler scheduler{tp::util::PriorityScheduler::Options{
        .threads = 1,
        .aging_quantum = std::chrono::milliseconds(100),
        .now = clock.source()}};

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(3, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    std::mutex order_mutex;
    std::vector<int> order;
    std::atomic<int> remaining{3};
    const auto record = [&order_mutex, &order, &remaining](int tag) {
        const std::lock_guard<std::mutex> lock{order_mutex};
        order.push_back(tag);
        --remaining;
    };
    // Admitted at t=0ms with base priority 0: by t=250ms it has aged
    // floor(250/100) = 2 steps, to effective 2.
    scheduler.submit(0, [&record] { record(0); });
    clock.ms = 250;
    // Fresh arrivals at t=250ms: effective 2 and 1. The aged task ties
    // the priority-2 arrival and wins on admission order.
    scheduler.submit(2, [&record] { record(1); });
    scheduler.submit(1, [&record] { record(2); });

    gate.set_value();
    while (remaining.load() != 0) std::this_thread::yield();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Regression for the submit/shutdown race: the old scheduler admitted a
// task after stop() had begun and enqueued it onto a queue no worker
// would ever drain — silently dropped, violating the drain guarantee.
// Post-stop submission must fail loudly instead. Deterministic: the
// gated worker pins stop() mid-flight, stopping() pins the window.
TEST(PriorityScheduler, SubmitDuringStopFailsLoudlyInsteadOfDropping) {
    tp::util::PriorityScheduler scheduler{1};
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(0, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    // stop() blocks joining the gated worker; the submit window is open
    // exactly once stopping() turns true.
    std::thread stopper{[&scheduler] { scheduler.stop(); }};
    while (!scheduler.stopping()) std::this_thread::yield();

    std::atomic<bool> dropped_task_ran{false};
    EXPECT_THROW(
        scheduler.submit(0, [&dropped_task_ran] { dropped_task_ran = true; }),
        tp::util::PriorityScheduler::Stopped);

    gate.set_value();
    stopper.join();
    // The refused task never ran — and was never admitted to be dropped.
    EXPECT_FALSE(dropped_task_ran.load());
    EXPECT_EQ(scheduler.pending(), 0u);
}

// Admission control: the per-class cap bounds LIVE queued tasks of one
// base-priority class; other classes are untouched, and discarding an
// entry frees its slot immediately.
TEST(PriorityScheduler, PerClassCapShedsLoadTyped) {
    tp::util::PriorityScheduler scheduler{tp::util::PriorityScheduler::Options{
        .threads = 1, .per_class_cap = 2}};
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(0, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    std::atomic<int> ran{0};
    scheduler.submit(1, [&ran] { ++ran; });
    const std::uint64_t second = scheduler.submit(1, [&ran] { ++ran; });
    EXPECT_EQ(scheduler.pending(1), 2u);
    try {
        scheduler.submit(1, [&ran] { ++ran; });
        FAIL() << "expected ClassFull";
    } catch (const tp::util::PriorityScheduler::ClassFull& full) {
        EXPECT_EQ(full.priority(), 1);
        EXPECT_EQ(full.cap(), 2u);
    }
    // The cap is per class: class 2 has room.
    scheduler.submit(2, [&ran] { ++ran; });
    // Discarding a live entry frees its class slot on the spot.
    EXPECT_TRUE(scheduler.discard(second));
    EXPECT_EQ(scheduler.pending(1), 1u);
    scheduler.submit(1, [&ran] { ++ran; });

    gate.set_value();
    scheduler.stop();
    // Admitted and not discarded: first, the class-2 task, the refill.
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(scheduler.discarded(), 1u);
}

// discard() erases the still-queued entry, releases its closure (and
// captured payload) immediately, runs on_discard, and stops counting it.
TEST(PriorityScheduler, DiscardReleasesEntryAndPayloadEagerly) {
    tp::util::PriorityScheduler scheduler{1};
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(0, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    auto payload = std::make_shared<int>(42);
    std::weak_ptr<int> watch = payload;
    std::atomic<bool> notified{false};
    const std::uint64_t id = scheduler.submit(
        0, [payload] { ADD_FAILURE() << "discarded task ran"; },
        tp::util::PriorityScheduler::TaskOptions{
            .expiry = {}, .on_discard = [&notified] { notified = true; }});
    payload.reset();
    EXPECT_FALSE(watch.expired()); // the queue entry holds the payload
    EXPECT_EQ(scheduler.pending(), 1u);

    EXPECT_TRUE(scheduler.discard(id));
    EXPECT_TRUE(watch.expired()); // released at discard, not at pop
    EXPECT_TRUE(notified.load());
    EXPECT_EQ(scheduler.pending(), 0u);
    EXPECT_FALSE(scheduler.discard(id)); // already gone
    EXPECT_FALSE(scheduler.discard(tp::util::PriorityScheduler::kNoTask));

    gate.set_value();
}

// Expired entries are purged at the next queue-lock acquisition — here a
// later submit — without a worker ever popping them: pending() reports
// live work only (the old scheduler counted such tombstones) and the
// captured payload is released on the spot.
TEST(PriorityScheduler, ExpiryPurgesWithoutAPopAndReleasesPayload) {
    FakeClock clock;
    tp::util::PriorityScheduler scheduler{tp::util::PriorityScheduler::Options{
        .threads = 1, .now = clock.source()}};
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    scheduler.submit(0, [&started, open] {
        started.set_value();
        open.wait();
    });
    started.get_future().wait();

    auto payload = std::make_shared<int>(7);
    std::weak_ptr<int> watch = payload;
    std::atomic<bool> expired{false};
    scheduler.submit(0, [payload] { ADD_FAILURE() << "expired task ran"; },
                     tp::util::PriorityScheduler::TaskOptions{
                         .expiry = clock.at(100),
                         .on_discard = [&expired] { expired = true; }});
    payload.reset();
    EXPECT_EQ(scheduler.pending(), 1u);
    EXPECT_FALSE(watch.expired());

    clock.ms = 150;
    // The worker is still gated: only this submit can purge. By the time
    // it returns, the expired entry is gone, its payload freed, and its
    // owner notified — no pop involved.
    std::atomic<bool> live_ran{false};
    scheduler.submit(0, [&live_ran] { live_ran = true; });
    EXPECT_TRUE(expired.load());
    EXPECT_TRUE(watch.expired());
    EXPECT_EQ(scheduler.pending(), 1u); // the live trigger task only
    EXPECT_EQ(scheduler.discarded(), 1u);

    gate.set_value();
    scheduler.stop();
    EXPECT_TRUE(live_ran.load());
}

// --- Submission, variants, wrappers -----------------------------------------

TEST(ServiceScheduler, SubmitMatchesDirectSearchAndReportsExactStats) {
    TuningService service;
    const TuningRequest request = plain("pca", 1e-2);
    const TicketHandle handle = service.submit(Request{.work = request});
    ASSERT_TRUE(handle.valid());

    const TuningResult& result = handle.search_result();
    EXPECT_TRUE(result == direct(request));
    EXPECT_EQ(handle.status(), RequestStatus::kDone);
    EXPECT_LE(handle.submitted_at(), handle.completed_at());

    // The per-ticket delta is the engine's whole history here (one
    // request on a fresh service), and trials are exactly the trials the
    // search submitted.
    EXPECT_EQ(handle.stats(), service.stats());
    EXPECT_EQ(handle.stats().trials, result.program_runs);
}

TEST(ServiceScheduler, SweepVariantMatchesChainedSweepSearch) {
    TuningService service;
    const TicketHandle handle = service.submit(sweep("dwt"));
    const std::vector<TuningResult>& results = handle.sweep_results();
    ASSERT_EQ(results.size(), 3u);
    const std::vector<TuningResult> reference = direct_sweep("dwt");
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_TRUE(results[i] == reference[i]) << "sweep step " << i;
    }
    // One engine serves the sweep; its overlap is served from cache, and
    // the warm-start chain skipped probe ranges outright.
    EXPECT_EQ(service.engine_count(), 1u);
    EXPECT_GT(handle.stats().cache_hits, 0u);
    EXPECT_GT(handle.stats().trials_skipped_by_bounds, 0u);
}

TEST(ServiceScheduler, UnchainedSweepMatchesPerEpsilonDirectSearches) {
    TuningService service;
    Request request = sweep("dwt");
    std::get<SweepRequest>(request.work).warm_start = false;
    const TicketHandle handle = service.submit(std::move(request));
    const std::vector<TuningResult>& results = handle.sweep_results();
    ASSERT_EQ(results.size(), 3u);
    const std::vector<double> epsilons{1e-3, 1e-2, 1e-1};
    for (std::size_t i = 0; i < epsilons.size(); ++i) {
        EXPECT_TRUE(results[i] == direct(plain("dwt", epsilons[i])))
            << "epsilon " << epsilons[i];
    }
    EXPECT_EQ(handle.stats().trials_skipped_by_bounds, 0u);
}

// The warm-start axis of the determinism contract, exercised through the
// service: a chained sweep returns the same bits on a one-worker service
// with a cold engine and on a four-worker service whose engine was warmed
// and raced by other queued requests on the same app.
TEST(ServiceScheduler, WarmSweepIsIndependentOfWorkersCacheAndNoise) {
    TuningService cold_service{TuningService::Options{.threads = 1}};
    const TicketHandle cold = cold_service.submit(sweep("dwt"));

    TuningService noisy_service{TuningService::Options{.threads = 4}};
    std::vector<TicketHandle> noise;
    noise.push_back(noisy_service.submit(
        Request{.work = plain("dwt", 1e-2),
                .priority = Priority::kInteractive}));
    noise.push_back(noisy_service.submit(Request{.work = plain("dwt", 1e-1)}));
    const TicketHandle warm = noisy_service.submit(sweep("dwt"));
    for (const TicketHandle& handle : noise) handle.wait();

    const std::vector<TuningResult>& cold_results = cold.sweep_results();
    const std::vector<TuningResult>& warm_results = warm.sweep_results();
    ASSERT_EQ(cold_results.size(), warm_results.size());
    for (std::size_t i = 0; i < cold_results.size(); ++i) {
        EXPECT_TRUE(cold_results[i] == warm_results[i]) << "sweep step " << i;
    }
    // Exact per-ticket attribution covers the skip counter too.
    EXPECT_EQ(cold.stats().trials_skipped_by_bounds,
              warm.stats().trials_skipped_by_bounds);
}

TEST(ServiceScheduler, CastAwareVariantMatchesDirectPass) {
    CastAwareOptions options;
    options.search = fast_options();
    options.search.epsilon = 1e-2;
    options.search.input_sets = {0, 1};
    options.max_rounds = 1;

    const auto app = tp::apps::make_app("knn");
    const auto reference = tp::tuning::cast_aware_search(*app, options);

    TuningService service;
    const TicketHandle handle =
        service.submit(Request{.work = CastAwareRequest{"knn", options}});
    const auto& result = handle.cast_aware_result();
    EXPECT_TRUE(result.base == reference.base);
    EXPECT_EQ(result.config, reference.config);
    EXPECT_EQ(result.tuned_energy_pj, reference.tuned_energy_pj);
    // Cold service engine, serial pass: the scoped delta equals the
    // private engine's lifetime delta — and equals the ticket's.
    EXPECT_EQ(result.eval_stats, reference.eval_stats);
    EXPECT_EQ(handle.stats(), result.eval_stats);
    // Accessing the wrong variant is a loud error, not garbage.
    EXPECT_THROW((void)handle.search_result(), std::bad_variant_access);
}

TEST(ServiceScheduler, RunIsAThinWrapperOverSubmit) {
    const std::vector<TuningRequest> batch{plain("pca", 1e-2),
                                           plain("dwt", 1e-1),
                                           plain("pca", 1e-2)};
    TuningService wrapper_service{TuningService::Options{.threads = 2}};
    const auto batch_result = wrapper_service.run(batch);

    TuningService submit_service{TuningService::Options{.threads = 2}};
    std::vector<TicketHandle> handles;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        // Mixed priorities: scheduling must not change any result.
        handles.push_back(submit_service.submit(Request{
            .work = batch[i],
            .priority = i % 2 == 0 ? Priority::kSweep : Priority::kInteractive}));
    }
    EvalStats summed;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        EXPECT_TRUE(handles[i].search_result() == batch_result.results[i])
            << "request " << i;
        summed += handles[i].stats();
    }
    // The batch stats are exactly the sum of the per-ticket deltas, and
    // both sides account for every engine bump.
    EXPECT_EQ(summed, batch_result.stats);
    EXPECT_EQ(summed, submit_service.stats());
}

TEST(ServiceScheduler, UnknownAppIsRejectedAtAdmission) {
    TuningService service;
    EXPECT_THROW((void)service.submit(Request{.work = plain("nonesuch", 1e-2)}),
                 std::out_of_range);
    EXPECT_THROW((void)service.submit(Request{.work = CastAwareRequest{
                     "nonesuch", CastAwareOptions{}}}),
                 std::out_of_range);
    EXPECT_EQ(service.engine_count(), 0u);
    EXPECT_EQ(service.stats().trials, 0u);
}

// --- Cancellation and deadlines ---------------------------------------------

TEST(ServiceScheduler, CancelBeforeStartRunsNoKernel) {
    TuningService service{TuningService::Options{.threads = 1}};
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);

    // The only worker is now busy, so this request is pinned in the
    // queue when cancel() lands.
    const TicketHandle victim =
        service.submit(Request{.work = plain("svm", 1e-1)});
    EXPECT_EQ(victim.status(), RequestStatus::kQueued);
    EXPECT_TRUE(victim.cancel());
    EXPECT_EQ(victim.status(), RequestStatus::kCancelled);
    EXPECT_THROW((void)victim.get(), RequestCancelled);
    EXPECT_EQ(victim.stats(), EvalStats{});

    blocker.wait();
    // The victim's engine exists (admission resolved it) but never ran:
    // no golden, no trial, no kernel.
    EXPECT_EQ(service.engine("svm").stats(), EvalStats{});
    // Cancelling an already-cancelled ticket stays a no-op.
    EXPECT_FALSE(victim.cancel());
}

TEST(ServiceScheduler, CancelAfterCompletionIsANoOp) {
    TuningService service;
    const TicketHandle handle =
        service.submit(Request{.work = plain("jacobi", 1e-1)});
    const TuningResult result = handle.search_result(); // waits
    EXPECT_FALSE(handle.cancel());
    EXPECT_EQ(handle.status(), RequestStatus::kDone);
    // The result is still there, bit-identical.
    EXPECT_TRUE(handle.search_result() == result);
}

TEST(ServiceScheduler, ExpiredDeadlineIsATypedRejection) {
    TuningService service{TuningService::Options{.threads = 1}};
    // Already past when admitted: the worker pops it, rejects it, and
    // never runs a kernel.
    const TicketHandle expired = service.submit(
        Request{.work = plain("jacobi", 1e-1),
                .deadline = std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(1)});
    expired.wait();
    EXPECT_EQ(expired.status(), RequestStatus::kExpired);
    EXPECT_THROW((void)expired.get(), DeadlineExpired);
    EXPECT_EQ(expired.stats(), EvalStats{});
    EXPECT_EQ(service.engine("jacobi").stats(), EvalStats{});

    // A generous deadline changes nothing about execution.
    const TuningRequest request = plain("jacobi", 1e-1);
    const TicketHandle met = service.submit(
        Request{.work = request,
                .deadline = std::chrono::steady_clock::now() +
                            std::chrono::hours(1)});
    EXPECT_TRUE(met.search_result() == direct(request));
}

// --- Priority ordering ------------------------------------------------------

// One worker: after the running blocker, the queued high-priority request
// must run before the earlier-admitted sweep. Fully deterministic — a
// single worker executes strictly in pop order.
TEST(ServiceScheduler, NoPriorityInversionWithOneWorker) {
    TuningService service{TuningService::Options{.threads = 1}};
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);

    const TicketHandle low = service.submit(sweep("dwt", Priority::kSweep));
    const TuningRequest small = plain("jacobi", 1e-1, {0});
    const TicketHandle high = service.submit(
        Request{.work = small, .priority = Priority::kInteractive});

    low.wait();
    high.wait();
    // The high-priority request overtook the sweep admitted before it...
    EXPECT_LT(high.completed_at(), low.completed_at());
    // ...and overtaking changed nothing about either result.
    EXPECT_TRUE(high.search_result() == direct(small));
    const std::vector<TuningResult>& sweep_results = low.sweep_results();
    EXPECT_TRUE(sweep_results[2] == direct_sweep("dwt")[2]);
}

// Four workers: saturate them, queue four sweeps and two interactive
// requests behind, and every interactive request must complete before the
// last sweep does — the QoS property the redesign exists for.
TEST(ServiceScheduler, NoPriorityInversionWithFourWorkers) {
    TuningService service{TuningService::Options{.threads = 4}};
    std::vector<TicketHandle> blockers;
    for (const char* app : {"pca", "dwt", "knn", "svm"}) {
        blockers.push_back(service.submit(sweep(app)));
    }
    for (const TicketHandle& blocker : blockers) wait_until_started(blocker);

    std::vector<TicketHandle> lows;
    for (const char* app : {"pca", "dwt", "knn", "svm"}) {
        lows.push_back(service.submit(sweep(app)));
    }
    const TuningRequest small_a = plain("jacobi", 1e-1, {0});
    const TuningRequest small_b = plain("conv", 1e-1, {0});
    const TicketHandle high_a = service.submit(
        Request{.work = small_a, .priority = Priority::kInteractive});
    const TicketHandle high_b = service.submit(
        Request{.work = small_b, .priority = Priority::kInteractive});

    for (const TicketHandle& low : lows) low.wait();
    auto last_low = lows.front().completed_at();
    for (const TicketHandle& low : lows) {
        last_low = std::max(last_low, low.completed_at());
    }
    EXPECT_LT(high_a.completed_at(), last_low);
    EXPECT_LT(high_b.completed_at(), last_low);
    // Identical results regardless of the scheduling pressure.
    EXPECT_TRUE(high_a.search_result() == direct(small_a));
    EXPECT_TRUE(high_b.search_result() == direct(small_b));
}

// --- Concurrency and teardown -----------------------------------------------

TEST(ServiceScheduler, ConcurrentSubmittersGetDeterministicResults) {
    TuningService service{TuningService::Options{.threads = 2}};
    constexpr int kSubmitters = 4;
    std::vector<std::vector<TicketHandle>> handles(kSubmitters);
    {
        std::vector<std::thread> submitters;
        submitters.reserve(kSubmitters);
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([s, &service, &handles] {
                // Overlapping mixes at clashing priorities: the shared
                // caches and single-flight path get concurrent traffic.
                handles[s].push_back(service.submit(Request{
                    .work = plain("pca", 1e-2),
                    .priority = s % 2 == 0 ? Priority::kInteractive
                                           : Priority::kSweep}));
                handles[s].push_back(service.submit(
                    Request{.work = plain("dwt", 1e-1)}));
            });
        }
        for (std::thread& submitter : submitters) submitter.join();
    }
    const TuningResult pca = direct(plain("pca", 1e-2));
    const TuningResult dwt = direct(plain("dwt", 1e-1));
    EvalStats summed;
    for (int s = 0; s < kSubmitters; ++s) {
        EXPECT_TRUE(handles[s][0].search_result() == pca) << "submitter " << s;
        EXPECT_TRUE(handles[s][1].search_result() == dwt) << "submitter " << s;
        summed += handles[s][0].stats() + handles[s][1].stats();
    }
    // Exact attribution even with requests racing on shared engines: the
    // scoped per-ticket deltas sum to the engines' lifetime counters.
    EXPECT_EQ(summed, service.stats());
}

TEST(ServiceScheduler, DestructorCancelsQueuedAndDrainsRunning) {
    TicketHandle running;
    std::vector<TicketHandle> queued;
    {
        TuningService service{TuningService::Options{.threads = 1}};
        running = service.submit(sweep("pca"));
        wait_until_started(running);
        queued.push_back(service.submit(Request{.work = plain("dwt", 1e-1)}));
        queued.push_back(service.submit(
            Request{.work = plain("svm", 1e-1),
                    .priority = Priority::kInteractive}));
        queued.push_back(service.submit(sweep("knn")));
        // Destructor: must not deadlock on the queued work.
    }
    // The running sweep was drained to completion and is still
    // retrievable through the surviving handle...
    EXPECT_EQ(running.status(), RequestStatus::kDone);
    EXPECT_EQ(running.sweep_results().size(), 3u);
    // ...and everything queued was cancelled, not silently dropped.
    for (const TicketHandle& handle : queued) {
        EXPECT_EQ(handle.status(), RequestStatus::kCancelled);
        EXPECT_THROW((void)handle.get(), RequestCancelled);
        EXPECT_EQ(handle.stats(), EvalStats{});
    }
}

// --- Admission control and live accounting ----------------------------------

// max_queued_per_class: the third live interactive request is refused
// with a typed RequestRejected{kQueueFull}; other classes are untouched;
// cancelling a queued request frees its slot immediately (no tombstone).
TEST(ServiceScheduler, QueueCapRejectsTypedAndCancelFreesTheSlot) {
    TuningService service{TuningService::Options{
        .threads = 1, .max_queued_per_class = 2}};
    // Occupy the only worker for a macroscopic time so submissions below
    // stay queued for the duration of the test body.
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);

    const auto interactive = [] {
        return Request{.work = plain("jacobi", 1e-1, {0}),
                       .priority = Priority::kInteractive};
    };
    const TicketHandle first = service.submit(interactive());
    const TicketHandle second = service.submit(interactive());
    EXPECT_EQ(service.queued(), 2u);
    try {
        (void)service.submit(interactive());
        FAIL() << "expected RequestRejected";
    } catch (const tp::tuning::RequestRejected& rejected) {
        EXPECT_EQ(rejected.reason(),
                  tp::tuning::RequestRejected::Reason::kQueueFull);
    }
    // The cap is per class: a sweep-class request still gets in.
    const TicketHandle low = service.submit(sweep("dwt"));
    // Cancelling a queued request frees its slot on the spot — the old
    // tombstoned queue would still have counted it.
    EXPECT_TRUE(second.cancel());
    EXPECT_EQ(service.queued(), 2u); // first + low
    const TicketHandle refill = service.submit(interactive());

    const tp::tuning::AdmissionStats admission = service.admission_stats();
    EXPECT_EQ(admission.admitted, 5u); // blocker, first, second, low, refill
    EXPECT_EQ(admission.rejected_queue_full, 1u);
    EXPECT_EQ(admission.rejected_deadline, 0u);
    EXPECT_EQ(admission.submitted(), 6u);

    // Rejection sheds load but never touches results: everything admitted
    // and not cancelled completes with reference bits.
    EXPECT_TRUE(first.search_result() == direct(plain("jacobi", 1e-1, {0})));
    EXPECT_TRUE(refill.search_result() == direct(plain("jacobi", 1e-1, {0})));
    EXPECT_THROW((void)second.get(), RequestCancelled);
}

// deadline_admission: a hopeless deadline is refused at submit() — both
// the trivially hopeless (already past) and the backlog-estimated kind —
// with no ticket and no queue entry.
TEST(ServiceScheduler, DeadlineAdmissionRejectsAtSubmit) {
    TuningService service{TuningService::Options{
        .threads = 1, .deadline_admission = true}};

    // Already past: rejected deterministically even with a cold estimator.
    try {
        (void)service.submit(Request{
            .work = plain("jacobi", 1e-1, {0}),
            .deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(1)});
        FAIL() << "expected RequestRejected";
    } catch (const tp::tuning::RequestRejected& rejected) {
        EXPECT_EQ(rejected.reason(),
                  tp::tuning::RequestRejected::Reason::kDeadlineUnmeetable);
    }
    EXPECT_EQ(service.queued(), 0u);
    // Rejected means never admitted: no engine work ran or will run.
    EXPECT_EQ(service.engine("jacobi").stats(), EvalStats{});

    // Warm the run-time estimator with one completed request, then build
    // a backlog: a busy worker plus a queued sweep. A sweep-class request
    // due in 1us cannot beat a backlog estimated from real sweep runs.
    const TuningRequest small = plain("jacobi", 1e-1, {0});
    EXPECT_TRUE(service.submit(Request{.work = small}).search_result() ==
                direct(small));
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);
    const TicketHandle queued_sweep = service.submit(sweep("dwt"));
    try {
        (void)service.submit(Request{
            .work = plain("conv", 1e-1, {0}),
            .priority = Priority::kSweep,
            .deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(1)});
        FAIL() << "expected RequestRejected";
    } catch (const tp::tuning::RequestRejected& rejected) {
        EXPECT_EQ(rejected.reason(),
                  tp::tuning::RequestRejected::Reason::kDeadlineUnmeetable);
    }
    const tp::tuning::AdmissionStats admission = service.admission_stats();
    EXPECT_EQ(admission.rejected_deadline, 2u);
    EXPECT_EQ(admission.admitted, 3u);
    // A roomy deadline sails through and completes with reference bits.
    const TicketHandle met = service.submit(Request{
        .work = small,
        .priority = Priority::kInteractive,
        .deadline = std::chrono::steady_clock::now() + std::chrono::hours(1)});
    EXPECT_TRUE(met.search_result() == direct(small));
    (void)queued_sweep.sweep_results();
}

// Eager deadline expiry: a queued request whose deadline passes goes
// kExpired at the next queue touch (here: an unrelated submit), while
// the only worker is still busy — no pop involved. Deterministic: the
// deadline is already past at admission (deadline_admission off keeps
// the lazy semantics), so the very next purge must catch it.
TEST(ServiceScheduler, QueuedDeadlineExpiresWithoutAPop) {
    TuningService service{TuningService::Options{.threads = 1}};
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);

    const TicketHandle doomed = service.submit(Request{
        .work = plain("jacobi", 1e-1, {0}),
        .deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1)});
    EXPECT_EQ(doomed.status(), RequestStatus::kQueued);
    EXPECT_EQ(service.queued(), 1u);

    // The trigger: any later submit purges expired entries before it
    // enqueues. By the time it returns, `doomed` is terminal even though
    // the worker never popped it (it is still inside the blocker sweep).
    const TicketHandle trigger =
        service.submit(Request{.work = plain("conv", 1e-1, {0})});
    EXPECT_EQ(doomed.status(), RequestStatus::kExpired);
    EXPECT_THROW((void)doomed.get(), DeadlineExpired);
    EXPECT_EQ(doomed.stats(), EvalStats{});
    EXPECT_EQ(service.queued(), 1u); // the trigger only — no tombstone

    EXPECT_TRUE(trigger.search_result() == direct(plain("conv", 1e-1, {0})));
}

// Cancelled tickets leave no tombstones behind: queued() drops the
// moment cancel() returns, long before any worker pops.
TEST(ServiceScheduler, CancelledTicketsLeaveNoTombstones) {
    TuningService service{TuningService::Options{.threads = 1}};
    const TicketHandle blocker = service.submit(sweep("pca"));
    wait_until_started(blocker);

    std::vector<TicketHandle> queued;
    for (int i = 0; i < 3; ++i) {
        queued.push_back(
            service.submit(Request{.work = plain("jacobi", 1e-1, {0})}));
    }
    EXPECT_EQ(service.queued(), 3u);
    for (const TicketHandle& handle : queued) EXPECT_TRUE(handle.cancel());
    EXPECT_EQ(service.queued(), 0u);
    for (const TicketHandle& handle : queued) {
        EXPECT_EQ(handle.status(), RequestStatus::kCancelled);
    }
}

// The determinism contract across the new fairness knobs: a sustained
// mixed-priority arrival stream with aging enabled returns bit-identical
// results at one worker and at four — and both match the direct-search
// reference.
TEST(ServiceScheduler, SustainedArrivalsBitIdenticalAcrossThreadCounts) {
    const std::vector<TuningRequest> mix = {
        plain("jacobi", 1e-1, {0}), plain("conv", 1e-1, {0}),
        plain("jacobi", 1e-2, {0}), plain("conv", 1e-2, {0}),
    };
    constexpr Priority kPriorities[] = {Priority::kInteractive,
                                        Priority::kNormal, Priority::kSweep};

    const auto run_stream = [&mix, &kPriorities](unsigned threads) {
        TuningService service{TuningService::Options{
            .threads = threads,
            .aging_quantum = std::chrono::microseconds(200)}};
        std::vector<TicketHandle> handles;
        for (int i = 0; i < 8; ++i) {
            handles.push_back(service.submit(Request{
                .work = mix[static_cast<std::size_t>(i) % mix.size()],
                .priority = kPriorities[static_cast<std::size_t>(i) % 3]}));
            // Open-loop-ish spacing: arrivals keep coming while earlier
            // requests run, so aging actually reorders pops.
            std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
        std::vector<TuningResult> results;
        results.reserve(handles.size());
        for (const TicketHandle& handle : handles) {
            results.push_back(handle.search_result());
        }
        return results;
    };

    const std::vector<TuningResult> one = run_stream(1);
    const std::vector<TuningResult> four = run_stream(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_TRUE(one[i] == four[i]) << "request " << i;
        EXPECT_TRUE(one[i] == direct(mix[i % mix.size()])) << "request " << i;
    }
}

} // namespace
