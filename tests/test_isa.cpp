#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "sim/context.hpp"

namespace {

using tp::isa::decode_instr;
using tp::isa::Decoded;
using tp::isa::disassemble;
using tp::isa::encode_instr;
using tp::sim::Instr;
using tp::sim::InstrKind;

Instr fp_instr(tp::FpOp op, tp::FpFormat fmt, std::int32_t dst = 3,
               std::int32_t s1 = 1, std::int32_t s2 = 2, std::int32_t s3 = -1) {
    Instr instr;
    instr.kind = InstrKind::FpArith;
    instr.op = op;
    instr.fmt = fmt;
    instr.dst = dst;
    instr.src1 = s1;
    instr.src2 = s2;
    instr.src3 = s3;
    return instr;
}

TEST(IsaEncoding, FmtCodesRoundTrip) {
    for (const tp::FormatKind kind : tp::kAllFormatKinds) {
        const tp::FpFormat fmt = tp::format_of(kind);
        EXPECT_EQ(tp::isa::format_of(tp::isa::fmt_code_of(fmt)), fmt);
    }
}

TEST(IsaEncoding, ScalarArithmeticRoundTrip) {
    const tp::FpOp ops[] = {tp::FpOp::Add, tp::FpOp::Sub, tp::FpOp::Mul,
                            tp::FpOp::Div, tp::FpOp::Sqrt, tp::FpOp::Neg,
                            tp::FpOp::Abs, tp::FpOp::Cmp};
    for (const tp::FormatKind kind : tp::kAllFormatKinds) {
        const tp::FpFormat fmt = tp::format_of(kind);
        for (const tp::FpOp op : ops) {
            const Instr instr = fp_instr(op, fmt);
            const auto decoded = decode_instr(encode_instr(instr));
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(decoded->kind, InstrKind::FpArith);
            EXPECT_EQ(decoded->op, op);
            EXPECT_EQ(decoded->fmt, fmt);
            EXPECT_EQ(decoded->lanes, 1);
            EXPECT_EQ(decoded->rd, 3);
            EXPECT_EQ(decoded->rs1, 1);
        }
    }
}

TEST(IsaEncoding, VectorArithmeticRoundTrip) {
    const struct {
        tp::FpFormat fmt;
        int lanes;
    } cases[] = {{tp::kBinary16, 2}, {tp::kBinary16Alt, 2}, {tp::kBinary8, 4},
                 {tp::kBinary8, 2}};
    for (const auto& c : cases) {
        for (const tp::FpOp op : {tp::FpOp::Add, tp::FpOp::Sub, tp::FpOp::Mul}) {
            const Instr instr = fp_instr(op, c.fmt);
            const auto decoded = decode_instr(encode_instr(instr, c.lanes));
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(decoded->op, op);
            EXPECT_EQ(decoded->fmt, c.fmt);
            EXPECT_EQ(decoded->lanes, c.lanes);
        }
    }
}

TEST(IsaEncoding, FmaUsesR4Encoding) {
    const Instr instr = fp_instr(tp::FpOp::Fma, tp::kBinary16, 6, 1, 2, 9);
    const std::uint32_t word = encode_instr(instr);
    EXPECT_EQ(word & 0x7f, static_cast<std::uint32_t>(tp::isa::MajorOpcode::Madd));
    const auto decoded = decode_instr(word);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, tp::FpOp::Fma);
    EXPECT_EQ(decoded->fmt, tp::kBinary16);
    EXPECT_EQ(decoded->rs3, 9);
}

TEST(IsaEncoding, CastsRoundTrip) {
    Instr instr;
    instr.kind = InstrKind::FpCast;
    instr.dst = 4;
    instr.src1 = 2;
    for (const tp::FormatKind from : tp::kAllFormatKinds) {
        for (const tp::FormatKind to : tp::kAllFormatKinds) {
            instr.op = tp::FpOp::Add; // generic FP->FP
            instr.fmt = tp::format_of(from);
            instr.fmt2 = tp::format_of(to);
            const auto decoded = decode_instr(encode_instr(instr));
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(decoded->kind, InstrKind::FpCast);
            EXPECT_EQ(decoded->fmt, tp::format_of(from));
            EXPECT_EQ(decoded->fmt2, tp::format_of(to));
        }
    }
    // Integer conversions.
    instr.op = tp::FpOp::FromInt;
    instr.fmt = instr.fmt2 = tp::kBinary8;
    auto decoded = decode_instr(encode_instr(instr));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, tp::FpOp::FromInt);
    instr.op = tp::FpOp::ToInt;
    decoded = decode_instr(encode_instr(instr));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, tp::FpOp::ToInt);
}

TEST(IsaEncoding, MemoryWidthsRoundTrip) {
    Instr instr;
    instr.kind = InstrKind::Load;
    instr.dst = 7;
    instr.stream = 2;
    for (const int bytes : {1, 2, 4}) {
        instr.bytes = static_cast<std::uint8_t>(bytes);
        const auto decoded = decode_instr(encode_instr(instr));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->kind, InstrKind::Load);
        EXPECT_EQ(decoded->bytes, bytes);
    }
    // A packed group of four byte elements encodes as a word access.
    instr.bytes = 1;
    const auto packed = decode_instr(encode_instr(instr, 4));
    ASSERT_TRUE(packed.has_value());
    EXPECT_EQ(packed->bytes, 4);
}

TEST(IsaEncoding, UnknownWordsRejected) {
    EXPECT_FALSE(decode_instr(0xffffffffu).has_value());
    EXPECT_FALSE(decode_instr(0x0000007fu).has_value());
}

TEST(IsaDisassembler, Mnemonics) {
    EXPECT_EQ(disassemble(fp_instr(tp::FpOp::Add, tp::kBinary16)),
              "fadd.h f3, f1, f2");
    EXPECT_EQ(disassemble(fp_instr(tp::FpOp::Mul, tp::kBinary8), 4),
              "vfmul.b f3, f1, f2");
    EXPECT_EQ(disassemble(fp_instr(tp::FpOp::Sub, tp::kBinary16Alt), 2),
              "vfsub.ah f3, f1, f2");
    EXPECT_EQ(disassemble(fp_instr(tp::FpOp::Fma, tp::kBinary32, 6, 1, 2, 9)),
              "fmadd.s f6, f1, f2, f9");
    Instr cast;
    cast.kind = InstrKind::FpCast;
    cast.fmt = tp::kBinary32;
    cast.fmt2 = tp::kBinary16Alt;
    cast.dst = 5;
    cast.src1 = 1;
    EXPECT_EQ(disassemble(cast), "fcvt.ah.s f5, f1");
    Instr load;
    load.kind = InstrKind::Load;
    load.bytes = 2;
    load.dst = 8;
    EXPECT_EQ(disassemble(load), "flh f8, 0(x5)");
    EXPECT_EQ(disassemble(0xffffffffu).substr(0, 5), ".word");
}

TEST(IsaDisassembler, ListingOfRealProgram) {
    auto app = tp::apps::make_app("knn");
    app->prepare(0);
    tp::sim::TpContext ctx;
    (void)app->run(ctx, app->uniform_config(tp::kBinary8));
    const auto program = ctx.take_program(true);
    std::ostringstream os;
    tp::isa::write_listing(program, os, 200);
    const std::string listing = os.str();
    EXPECT_NE(listing.find("vfsub.b"), std::string::npos)
        << "KNN's vectorized distance loop should appear";
    EXPECT_NE(listing.find("lanes"), std::string::npos);
    EXPECT_NE(listing.find("flb"), std::string::npos); // scalar binary8 loads
}

TEST(IsaEncoding, EveryTraceInstrOfEveryAppEncodes) {
    for (const auto& name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(name);
        app->prepare(0);
        tp::sim::TpContext ctx;
        (void)app->run(ctx, app->uniform_config(tp::kBinary16));
        const auto program = ctx.take_program(true);
        for (std::size_t i = 0; i < program.instrs.size(); ++i) {
            const auto& instr = program.instrs[i];
            const int lanes =
                instr.simd_group != 0
                    ? program.groups[instr.simd_group - 1].lanes
                    : 1;
            const auto decoded = decode_instr(encode_instr(instr, lanes));
            ASSERT_TRUE(decoded.has_value()) << name << " @" << i;
            ASSERT_EQ(decoded->kind, instr.kind) << name << " @" << i;
        }
    }
}

} // namespace
