#include "sim/context.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "types/encoding.hpp"

namespace {

using tp::sim::InstrKind;
using tp::sim::simulate;
using tp::sim::TpContext;

TEST(Context, ValuesComputeWithFlexFloatSemantics) {
    TpContext ctx;
    const auto a = ctx.constant(0.3, tp::kBinary8);
    EXPECT_EQ(a.to_double(), 0.3125); // sanitized on construction
    const auto b = ctx.constant(0.25, tp::kBinary8);
    EXPECT_EQ((a + b).to_double(), tp::quantize(0.3125 + 0.25, tp::kBinary8));
}

TEST(Context, ConstantEmitsNoInstruction) {
    TpContext ctx;
    (void)ctx.constant(1.0, tp::kBinary32);
    EXPECT_TRUE(ctx.take_program(false).instrs.empty());
}

TEST(Context, ArithmeticEmitsTypedInstr) {
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary16);
    const auto b = ctx.constant(2.0, tp::kBinary16);
    (void)(a * b);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].kind, InstrKind::FpArith);
    EXPECT_EQ(program.instrs[0].op, tp::FpOp::Mul);
    EXPECT_EQ(program.instrs[0].fmt, tp::kBinary16);
    EXPECT_GE(program.instrs[0].dst, 0);
}

TEST(Context, CastEmitsCastInstr) {
    TpContext ctx;
    const auto a = ctx.constant(1.5, tp::kBinary32);
    const auto b = a.cast_to(tp::kBinary8);
    EXPECT_EQ(b.format(), tp::kBinary8);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].kind, InstrKind::FpCast);
    EXPECT_EQ(program.instrs[0].fmt, tp::kBinary32);
    EXPECT_EQ(program.instrs[0].fmt2, tp::kBinary8);
}

TEST(Context, LoadsAndStoresCarryWidth) {
    TpContext ctx;
    auto arr8 = ctx.make_array(tp::kBinary8, 4);
    auto arr32 = ctx.make_array(tp::kBinary32, 4);
    arr8.set_raw(0, 0.5);
    (void)arr8.load(0);
    const auto v = ctx.constant(1.0, tp::kBinary32);
    arr32.store(1, v);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 2u);
    EXPECT_EQ(program.instrs[0].kind, InstrKind::Load);
    EXPECT_EQ(program.instrs[0].bytes, 1);
    EXPECT_EQ(program.instrs[1].kind, InstrKind::Store);
    EXPECT_EQ(program.instrs[1].bytes, 4);
    EXPECT_EQ(arr32.raw(1), 1.0);
}

TEST(Context, StoreQuantizesToElementFormat) {
    TpContext ctx;
    auto arr = ctx.make_array(tp::kBinary8, 1);
    const auto v = ctx.constant(0.3, tp::kBinary8);
    arr.store(0, v);
    EXPECT_EQ(arr.raw(0), 0.3125);
}

TEST(Context, SetRawQuantizes) {
    TpContext ctx;
    auto arr = ctx.make_array(tp::kBinary16, 1);
    arr.set_raw(0, 1.0 + std::ldexp(1.0, -11));
    EXPECT_EQ(arr.raw(0), 1.0);
}

TEST(Context, UntracedModeStillComputes) {
    TpContext ctx{TpContext::Config{.trace = false}};
    auto arr = ctx.make_array(tp::kBinary16, 2);
    arr.set_raw(0, 1.5);
    const auto x = arr.load(0);
    const auto y = x * x;
    arr.store(1, y);
    EXPECT_EQ(arr.raw(1), 2.25);
    EXPECT_TRUE(ctx.take_program(false).instrs.empty());
}

TEST(Context, FromIntEmitsConversion) {
    TpContext ctx;
    const auto v = ctx.from_int(7, tp::kBinary16);
    EXPECT_EQ(v.to_double(), 7.0);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].kind, InstrKind::FpCast);
    EXPECT_EQ(program.instrs[0].op, tp::FpOp::FromInt);
}

TEST(Context, ComparisonEmitsCmp) {
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary16);
    const auto b = ctx.constant(2.0, tp::kBinary16);
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(a > b);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 2u);
    EXPECT_EQ(program.instrs[0].op, tp::FpOp::Cmp);
}

TEST(Context, LoopOverheadEmitsIntAndBranch) {
    TpContext ctx;
    ctx.loop_iteration();
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 2u);
    EXPECT_EQ(program.instrs[0].kind, InstrKind::IntAlu);
    EXPECT_EQ(program.instrs[1].kind, InstrKind::Branch);
}

TEST(Context, SimulateProducesConsistentReport) {
    TpContext ctx;
    auto a = ctx.make_array(tp::kBinary16, 8);
    auto out = ctx.make_array(tp::kBinary16, 8);
    for (std::size_t i = 0; i < 8; ++i) a.set_raw(i, 0.25 * static_cast<double>(i));
    for (std::size_t i = 0; i < 8; ++i) {
        ctx.loop_iteration();
        const auto x = a.load(i);
        out.store(i, x * x);
    }
    const auto report = simulate(ctx.take_program(false));
    EXPECT_EQ(report.mem_accesses, 16u);
    EXPECT_EQ(report.fp_ops, 8u);
    EXPECT_EQ(report.int_ops, 8u);
    EXPECT_EQ(report.branches, 8u);
    EXPECT_GT(report.cycles, 0u);
    EXPECT_GT(report.energy.total(), 0.0);
    EXPECT_GT(report.energy.fp_ops, 0.0);
    EXPECT_GT(report.energy.memory, 0.0);
    EXPECT_GT(report.energy.other, 0.0);
    // Per-format activity recorded under binary16.
    const auto it = report.per_format.find(tp::kBinary16);
    ASSERT_NE(it, report.per_format.end());
    EXPECT_EQ(it->second.scalar_ops, 8u);
}

TEST(Context, VectorizedRunReducesAccessesAndEnergy) {
    const auto build = [](TpContext& ctx) {
        auto a = ctx.make_array(tp::kBinary8, 32);
        auto b = ctx.make_array(tp::kBinary8, 32);
        auto c = ctx.make_array(tp::kBinary8, 32);
        const auto region = ctx.vector_region();
        for (std::size_t i = 0; i < 32; ++i) {
            const auto x = a.load(i);
            const auto y = b.load(i);
            c.store(i, x + y);
        }
    };
    TpContext scalar_ctx;
    build(scalar_ctx);
    const auto scalar = simulate(scalar_ctx.take_program(false));
    TpContext simd_ctx;
    build(simd_ctx);
    const auto simd = simulate(simd_ctx.take_program(true));
    EXPECT_LT(simd.mem_accesses, scalar.mem_accesses);
    EXPECT_EQ(simd.mem_accesses_vector, simd.mem_accesses);
    EXPECT_LT(simd.energy.total(), scalar.energy.total());
    EXPECT_LT(simd.cycles, scalar.cycles);
}

} // namespace
