#include "flexfloat/flexfloat.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <type_traits>

#include <gtest/gtest.h>

#include "flexfloat/sanitize.hpp"
#include "softfloat/softfloat.hpp"
#include "types/encoding.hpp"
#include "util/random.hpp"

namespace {

namespace sf = tp::softfloat;
using tp::flexfloat;
using tp::FpFormat;

TEST(FlexFloat, LiteralConstructionRoundsToFormat) {
    const tp::binary16_t a = 1.0 + std::ldexp(1.0, -11); // ties to even
    EXPECT_EQ(static_cast<double>(a), 1.0);
    const tp::binary8_t b = 0.3; // nearest binary8 is 0.3125
    EXPECT_EQ(static_cast<double>(b), 0.3125);
    const tp::binary32_t c = 0.1f;
    EXPECT_EQ(static_cast<double>(c), static_cast<double>(0.1f));
}

TEST(FlexFloat, IntLiteralsWorkThroughDoubleConversion) {
    const tp::binary16_t a = 2; // int -> double -> flexfloat
    EXPECT_EQ(static_cast<double>(a), 2.0);
}

TEST(FlexFloat, DefaultIsZero) {
    const tp::binary16_t a;
    EXPECT_EQ(static_cast<double>(a), 0.0);
}

TEST(FlexFloat, ArithmeticInfixNotation) {
    const tp::binary16_t a = 1.5;
    const tp::binary16_t b = 0.25;
    EXPECT_EQ(static_cast<double>(a + b), 1.75);
    EXPECT_EQ(static_cast<double>(a - b), 1.25);
    EXPECT_EQ(static_cast<double>(a * b), 0.375);
    EXPECT_EQ(static_cast<double>(a / b), 6.0);
    EXPECT_EQ(static_cast<double>(-a), -1.5);
    tp::binary16_t c = a;
    c += b;
    c *= b;
    EXPECT_EQ(static_cast<double>(c), 0.4375);
}

TEST(FlexFloat, NoImplicitMixedFormatArithmetic) {
    // Distinct instantiations must not convert into each other implicitly;
    // this is the compile-time control the paper highlights.
    static_assert(!std::is_convertible_v<tp::binary16_t, tp::binary16alt_t>);
    static_assert(!std::is_convertible_v<tp::binary32_t, tp::binary16_t>);
    static_assert(std::is_constructible_v<tp::binary16alt_t, tp::binary16_t>);
    // Conversion to native types is explicit only.
    static_assert(!std::is_convertible_v<tp::binary16_t, double>);
    static_assert(std::is_constructible_v<double, tp::binary16_t>);
    // Construction from native FP types is implicit (literals work).
    static_assert(std::is_convertible_v<double, tp::binary16_t>);
    static_assert(std::is_convertible_v<float, tp::binary8_t>);
}

TEST(FlexFloat, ExplicitCastBetweenInstances) {
    const tp::binary32_t wide = 3.14159f;
    const auto narrow = tp::flexfloat_cast<5, 10>(wide);
    EXPECT_EQ(static_cast<double>(narrow),
              tp::quantize(static_cast<double>(wide), tp::kBinary16));
    const tp::binary16alt_t alt{wide}; // constructor form
    EXPECT_EQ(static_cast<double>(alt),
              tp::quantize(static_cast<double>(wide), tp::kBinary16Alt));
}

TEST(FlexFloat, Binary16SaturatesLargeValuesButBinary16AltDoesNot) {
    // The paper's core argument for binary16alt: it shares binary32's
    // dynamic range, so large-magnitude conversions do not saturate.
    const tp::binary32_t big = 1.0e20f;
    const auto as16 = tp::flexfloat_cast<5, 10>(big);
    const auto as16alt = tp::flexfloat_cast<8, 7>(big);
    EXPECT_TRUE(std::isinf(static_cast<double>(as16)));
    EXPECT_FALSE(std::isinf(static_cast<double>(as16alt)));
    EXPECT_NEAR(static_cast<double>(as16alt), 1.0e20, 1.0e20 * 0.01);
}

TEST(FlexFloat, Binary8MirrorsBinary16Range) {
    // Conversions binary8 <-> binary16 only affect precision, not range.
    const tp::binary16_t v = 40000.0;
    const auto as8 = tp::flexfloat_cast<5, 2>(v);
    EXPECT_TRUE(std::isfinite(static_cast<double>(as8)));
}

TEST(FlexFloat, BitsRoundTrip) {
    const tp::binary16_t a = -1.5;
    EXPECT_EQ(a.bits(), 0xbe00u);
    EXPECT_EQ(static_cast<double>(tp::binary16_t::from_bits(0xbe00u)), -1.5);
}

TEST(FlexFloat, ComparisonSemantics) {
    const tp::binary16_t a = 1.0;
    const tp::binary16_t b = 2.0;
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a <= b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(b >= a);
    EXPECT_TRUE(a != b);
    EXPECT_FALSE(a == b);
    const tp::binary16_t nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(nan == nan);
    EXPECT_FALSE(nan < a);
    EXPECT_FALSE(nan >= a);
}

TEST(FlexFloat, SqrtAndAbs) {
    const tp::binary16_t a = 2.25;
    EXPECT_EQ(static_cast<double>(sqrt(a)), 1.5);
    EXPECT_EQ(static_cast<double>(abs(tp::binary16_t{-3.0})), 3.0);
}

TEST(FlexFloat, StreamInsertion) {
    std::ostringstream os;
    os << tp::binary16_t{1.5};
    EXPECT_EQ(os.str(), "1.5");
}

TEST(FlexFloat, NaNAndInfPropagation) {
    const tp::binary16_t inf = std::numeric_limits<double>::infinity();
    const tp::binary16_t one = 1.0;
    EXPECT_TRUE(std::isinf(static_cast<double>(inf + one)));
    EXPECT_TRUE(std::isnan(static_cast<double>(inf - inf)));
    EXPECT_TRUE(std::isnan(static_cast<double>(inf * tp::binary16_t{0.0})));
}

TEST(FlexFloat, DenormalSupport) {
    const double sub = std::ldexp(3.0, -24); // 3 binary16 subnormal ulps
    const tp::binary16_t a = sub;
    EXPECT_EQ(static_cast<double>(a), sub);
    EXPECT_EQ(a.bits(), 0x0003u);
}

// --- bit-exactness against the independent softfloat oracle ---------------

template <int E, int M>
void cross_check_ops(std::uint64_t seed, int iterations) {
    constexpr FpFormat f{E, M};
    tp::util::Xoshiro256 rng{seed};
    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t abits = rng() & tp::bit_mask(f);
        const std::uint64_t bbits = rng() & tp::bit_mask(f);
        if (sf::is_nan(abits, f) || sf::is_nan(bbits, f)) continue;
        const auto a = flexfloat<E, M>::from_bits(abits);
        const auto b = flexfloat<E, M>::from_bits(bbits);
        ASSERT_EQ((a + b).bits(), sf::add(abits, bbits, f)) << i;
        ASSERT_EQ((a - b).bits(), sf::sub(abits, bbits, f)) << i;
        ASSERT_EQ((a * b).bits(), sf::mul(abits, bbits, f)) << i;
        const auto q = (a / b).bits();
        const auto qs = sf::div(abits, bbits, f);
        if (sf::is_nan(q, f) || sf::is_nan(qs, f)) {
            ASSERT_EQ(sf::is_nan(q, f), sf::is_nan(qs, f)) << i;
        } else {
            ASSERT_EQ(q, qs) << i;
        }
    }
}

TEST(FlexFloatBitExact, Binary8) { cross_check_ops<5, 2>(1, 100000); }
TEST(FlexFloatBitExact, Binary16) { cross_check_ops<5, 10>(2, 100000); }
TEST(FlexFloatBitExact, Binary16Alt) { cross_check_ops<8, 7>(3, 100000); }
TEST(FlexFloatBitExact, Binary32) { cross_check_ops<8, 23>(4, 100000); }
TEST(FlexFloatBitExact, OddFormat_e6m9) { cross_check_ops<6, 9>(5, 100000); }
TEST(FlexFloatBitExact, TinyFormat_e3m3) { cross_check_ops<3, 3>(6, 100000); }

// --- the sanitize fast path must equal the exact quantize ------------------

TEST(FlexFloatSanitize, FastPathMatchesQuantizeEverywhere) {
    tp::util::Xoshiro256 rng{0x5A71};
    const FpFormat formats[] = {tp::kBinary8, tp::kBinary16, tp::kBinary16Alt,
                                tp::kBinary32, FpFormat{4, 6}, FpFormat{11, 52}};
    for (const FpFormat f : formats) {
        for (int i = 0; i < 200000; ++i) {
            // Bias the exponent distribution towards the format's interesting
            // boundaries (overflow, underflow, subnormals).
            const int exp = static_cast<int>(rng.uniform_int(-1060, 1023));
            double v = std::ldexp(rng.uniform(1.0, 2.0), exp);
            if (rng() & 1) v = -v;
            const double fast = tp::detail::sanitize(v, f);
            const double slow = tp::quantize(v, f);
            ASSERT_EQ(fast, slow) << "v=" << v << " e=" << int{f.exp_bits}
                                  << " m=" << int{f.mant_bits};
            ASSERT_EQ(std::signbit(fast), std::signbit(slow));
        }
    }
}

TEST(FlexFloatSanitize, SpecialInputs) {
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isinf(tp::detail::sanitize(inf, tp::kBinary16)));
    EXPECT_TRUE(std::isnan(tp::detail::sanitize(nan, tp::kBinary8)));
    EXPECT_EQ(tp::detail::sanitize(0.0, tp::kBinary8), 0.0);
    EXPECT_TRUE(std::signbit(tp::detail::sanitize(-0.0, tp::kBinary8)));
    // Double subnormals flush through the slow path correctly.
    const double dsub = std::ldexp(1.0, -1050);
    EXPECT_EQ(tp::detail::sanitize(dsub, tp::kBinary64), dsub);
    EXPECT_EQ(tp::detail::sanitize(dsub, tp::kBinary32), 0.0);
}

TEST(FlexFloatSanitize, OverflowBoundary) {
    // Largest binary16 value and the first value that rounds to infinity.
    EXPECT_EQ(tp::detail::sanitize(65504.0, tp::kBinary16), 65504.0);
    EXPECT_EQ(tp::detail::sanitize(65519.9, tp::kBinary16), 65504.0);
    EXPECT_TRUE(std::isinf(tp::detail::sanitize(65520.0, tp::kBinary16)));
    EXPECT_TRUE(std::isinf(tp::detail::sanitize(-65520.0, tp::kBinary16)));
    EXPECT_LT(tp::detail::sanitize(-65520.0, tp::kBinary16), 0.0);
}

} // namespace
