// The bench JSON emitter (bench/json.hpp): every value it writes must be
// valid RFC 8259 JSON — the BENCH_*.json files are consumed by tooling,
// not eyeballed — and numbers must round-trip bit-exactly.
#include "json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace {

using tp::bench::Json;

std::string field_value(std::string_view value) {
    // {"k": <emitted>} -> <emitted>
    const std::string doc = Json::object().field("k", value).str();
    const auto colon = doc.find(": ");
    return doc.substr(colon + 2, doc.rfind('\n') - colon - 2);
}

TEST(BenchJson, QuotesAndBackslashesAreEscaped) {
    EXPECT_EQ(field_value("say \"hi\""), "\"say \\\"hi\\\"\"");
    EXPECT_EQ(field_value("a\\b"), "\"a\\\\b\"");
}

TEST(BenchJson, CommonControlCharactersUseShortEscapes) {
    EXPECT_EQ(field_value("line1\nline2"), "\"line1\\nline2\"");
    EXPECT_EQ(field_value("col1\tcol2"), "\"col1\\tcol2\"");
    EXPECT_EQ(field_value("cr\rlf"), "\"cr\\rlf\"");
}

TEST(BenchJson, RemainingControlCharactersAreUnicodeEscaped) {
    EXPECT_EQ(field_value(std::string("a\x01z", 3)), "\"a\\u0001z\"");
    EXPECT_EQ(field_value(std::string("a\x1fz", 3)), "\"a\\u001fz\"");
    EXPECT_EQ(field_value(std::string("nul\0!", 5)), "\"nul\\u0000!\"");
    EXPECT_EQ(field_value("bell\x07"), "\"bell\\u0007\"");
}

TEST(BenchJson, KeysAreEscapedToo) {
    const std::string doc = Json::object().field("a\nb", 1).str();
    EXPECT_NE(doc.find("\"a\\nb\": 1"), std::string::npos);
}

TEST(BenchJson, NonAsciiBytesPassThrough) {
    // UTF-8 payloads are legal JSON unescaped.
    EXPECT_EQ(field_value("µs"), "\"µs\"");
}

TEST(BenchJson, NonFiniteDoublesBecomeNull) {
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(field_value("x"), "\"x\""); // sanity: helper works
    EXPECT_NE(Json::object().field("v", inf).str().find("\"v\": null"),
              std::string::npos);
    EXPECT_NE(Json::object().field("v", -inf).str().find("\"v\": null"),
              std::string::npos);
    EXPECT_NE(Json::object()
                  .field("v", std::numeric_limits<double>::quiet_NaN())
                  .str()
                  .find("\"v\": null"),
              std::string::npos);
}

TEST(BenchJson, DoublesRoundTrip) {
    for (const double value :
         {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, 1.7976931348623157e308,
          -0.0, 123456789.123456789}) {
        const std::string doc = Json::object().field("v", value).str();
        const auto colon = doc.find(": ");
        const std::string emitted =
            doc.substr(colon + 2, doc.rfind('\n') - colon - 2);
        const double parsed = std::strtod(emitted.c_str(), nullptr);
        EXPECT_EQ(parsed, value) << emitted;
        // -0.0 round-trips with its sign.
        EXPECT_EQ(std::signbit(parsed), std::signbit(value)) << emitted;
    }
}

TEST(BenchJson, IntegerAndBoolFields) {
    const std::string doc = Json::object()
                                .field("n", std::size_t{18446744073709551615ULL})
                                .field("i", -42)
                                .field("yes", true)
                                .field("no", false)
                                .str();
    EXPECT_NE(doc.find("\"n\": 18446744073709551615"), std::string::npos);
    EXPECT_NE(doc.find("\"i\": -42"), std::string::npos);
    EXPECT_NE(doc.find("\"yes\": true"), std::string::npos);
    EXPECT_NE(doc.find("\"no\": false"), std::string::npos);
}

TEST(BenchJson, NestedStructureSerializes) {
    auto inner = Json::array();
    inner.item(1.5);
    inner.item_raw("\"two\"");
    const std::string doc =
        Json::object().raw("list", inner.str(0)).field("tag", "t").str();
    EXPECT_EQ(doc, "{\n  \"list\": [\n    1.5,\n    \"two\"\n  ],\n"
                   "  \"tag\": \"t\"\n}");
}

TEST(BenchJson, EmptyContainers) {
    EXPECT_EQ(Json::object().str(), "{}");
    EXPECT_EQ(Json::array().str(), "[]");
}

} // namespace
