// Signal interning, TypeConfig hashing, and the EvalEngine's
// cache-coherent determinism contract (see tuning/eval_engine.hpp and the
// contract block in tuning/search.hpp).
#include "tuning/eval_engine.hpp"

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "apps/signal_table.hpp"
#include "tuning/cast_aware.hpp"
#include "tuning/search.hpp"

namespace {

using tp::apps::SignalId;
using tp::apps::SignalSpec;
using tp::apps::SignalTable;
using tp::apps::TypeConfig;
using tp::tuning::distributed_search;
using tp::tuning::EvalEngine;
using tp::tuning::SearchOptions;
using tp::tuning::TuningResult;

// --- SignalTable interning --------------------------------------------------

TEST(SignalTable, IdsFollowDeclarationOrder) {
    const SignalTable table{{{"grid", 16}, {"coeff", 1}, {"acc", 1}}};
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.id("grid"), 0u);
    EXPECT_EQ(table.id("coeff"), 1u);
    EXPECT_EQ(table.id("acc"), 2u);
    EXPECT_EQ(table.name(0), "grid");
    EXPECT_EQ(table.spec(1).elements, 1u);
    EXPECT_EQ(table.spec(0).elements, 16u);
}

TEST(SignalTable, UnknownNamesAreLoud) {
    const SignalTable table{{{"a", 1}, {"b", 1}}};
    EXPECT_FALSE(table.find("c").has_value());
    EXPECT_TRUE(table.contains("a"));
    EXPECT_FALSE(table.contains("ab"));
    EXPECT_THROW((void)table.id("c"), std::out_of_range);
    EXPECT_THROW((void)table.name(5), std::out_of_range);
}

TEST(SignalTable, RejectsDuplicateNames) {
    EXPECT_THROW(SignalTable({{"x", 1}, {"y", 1}, {"x", 2}}),
                 std::invalid_argument);
}

// Per-app table/clone conformance (declaration-order ids, table shared
// with clones) runs for every registered app in the shared battery —
// tests/app_conformance.hpp, instantiated by test_app_conformance.cpp.

// --- TypeConfig hashing and equality ----------------------------------------

TEST(TypeConfig, EqualityAndHashTrackContents) {
    TypeConfig a{3, tp::kBinary16};
    TypeConfig b{3, tp::kBinary16};
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());

    b.set(1, tp::kBinary32);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());

    a.set(1, tp::kBinary32);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(TypeConfig, PositionMattersForHash) {
    // binary16 {5,10} vs binary16alt {8,7} swapped between two slots: same
    // multiset of formats, different binding.
    TypeConfig a{2, tp::kBinary16};
    a.set(1, tp::kBinary16Alt);
    TypeConfig b{2, tp::kBinary16Alt};
    b.set(1, tp::kBinary16);
    EXPECT_NE(a, b);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(TypeConfig, IndexedAccess) {
    TypeConfig config{4, tp::kBinary32};
    config.set(2, tp::kBinary8);
    EXPECT_EQ(config[2], tp::kBinary8);
    EXPECT_EQ(config.at(3), tp::kBinary32);
    EXPECT_THROW((void)config.at(4), std::out_of_range);
    EXPECT_THROW(config.set(4, tp::kBinary8), std::out_of_range);
    EXPECT_EQ(config.size(), 4u);
}

TEST(TypeConfig, UniformConfigCoversEverySignal) {
    const auto app = tp::apps::make_app("svm");
    const TypeConfig config = app->uniform_config(tp::kBinary16);
    ASSERT_EQ(config.size(), app->signals().size());
    for (SignalId id = 0; id < config.size(); ++id) {
        EXPECT_EQ(config[id], tp::kBinary16);
    }
}

// --- EvalEngine memoization -------------------------------------------------

// Golden caching against App::golden is covered per app by the battery
// (AppConformanceTest.EngineGoldenMatchesAppGoldenAndIsPinned).

TEST(EvalEngine, RepeatedTrialsHitTheCache) {
    const auto app = tp::apps::make_app("conv");
    EvalEngine engine{*app, EvalEngine::Options{}};
    const TypeConfig config = app->uniform_config(tp::kBinary16);

    const auto first = engine.output(0, config);
    const auto second = engine.output(0, config);
    EXPECT_EQ(first, second);
    auto stats = engine.stats();
    EXPECT_EQ(stats.trials, 2u);
    EXPECT_EQ(stats.kernel_runs, 1u);
    EXPECT_EQ(stats.cache_hits, 1u);

    // A different input set is a different trial.
    (void)engine.output(1, config);
    stats = engine.stats();
    EXPECT_EQ(stats.kernel_runs, 2u);

    // meets() applies epsilon to the cached output: two requirements, one
    // kernel execution.
    (void)engine.meets(0, config, 1e-1);
    (void)engine.meets(0, config, 1e-6);
    stats = engine.stats();
    EXPECT_EQ(stats.trials, 5u);
    EXPECT_EQ(stats.kernel_runs, 2u);
    EXPECT_EQ(stats.cache_hits, 3u);
}

TEST(EvalEngine, RejectsAnotherAppsConfig) {
    // Size validation itself runs per app in the battery
    // (AppConformanceTest.EngineValidatesConfigSize); this pins the
    // cross-app flavor — a config interned for one table must not flow
    // into another app's engine.
    const auto app = tp::apps::make_app("pca"); // 7 signals
    EvalEngine engine{*app, EvalEngine::Options{}};
    const auto other = tp::apps::make_app("jacobi"); // 4 signals
    EXPECT_THROW((void)engine.meets(0, other->uniform_config(tp::kBinary32), 1e-1),
                 std::invalid_argument);
    EXPECT_EQ(engine.stats().trials, 0u);
}

TEST(EvalEngine, MemoizationCanBeDisabled) {
    const auto app = tp::apps::make_app("knn");
    EvalEngine engine{*app, EvalEngine::Options{.threads = 1, .memoize = false}};
    const TypeConfig config = app->uniform_config(tp::kBinary16);
    const auto first = engine.output(0, config);
    const auto second = engine.output(0, config);
    EXPECT_EQ(first, second); // determinism, not caching
    const auto stats = engine.stats();
    EXPECT_EQ(stats.trials, 2u);
    EXPECT_EQ(stats.kernel_runs, 2u);
    EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(EvalEngine, ReportCacheKeysOnSimd) {
    const auto app = tp::apps::make_app("dwt");
    EvalEngine engine{*app, EvalEngine::Options{}};
    const TypeConfig config = app->uniform_config(tp::kBinary16);
    const auto scalar = engine.report(0, config, /*simd=*/false);
    const auto simd = engine.report(0, config, /*simd=*/true);
    EXPECT_LT(simd.cycles, scalar.cycles); // DWT vectorizes
    const auto again = engine.report(0, config, /*simd=*/true);
    EXPECT_EQ(again.cycles, simd.cycles);
    EXPECT_EQ(again.energy.total(), simd.energy.total());
    const auto stats = engine.stats();
    EXPECT_EQ(stats.trials, 3u);
    EXPECT_EQ(stats.kernel_runs, 2u); // (simd=false), (simd=true); third hit
    EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(EvalEngine, ClearCacheForcesRerunsButKeepsGoldens) {
    const auto app = tp::apps::make_app("knn");
    EvalEngine engine{*app, EvalEngine::Options{}};
    const TypeConfig config = app->uniform_config(tp::kBinary8);
    const auto& golden = engine.golden(0);
    const auto first = engine.output(0, config);
    engine.clear_cache();
    const auto second = engine.output(0, config);
    EXPECT_EQ(first, second);
    EXPECT_EQ(engine.stats().kernel_runs, 2u);
    // The golden reference survives clear_cache (documented contract).
    EXPECT_EQ(&engine.golden(0), &golden);
    EXPECT_EQ(engine.stats().golden_runs, 1u);
}

// --- Single-flight execution -------------------------------------------------

// Concurrent first requests for one key execute the kernel exactly once:
// the counters are exact, not approximate, at any thread count. (Before
// single-flight both racers executed and kernel_runs was inflated.)
TEST(EvalEngine, ConcurrentFirstRequestsSingleFlight) {
    const auto app = tp::apps::make_app("dwt");
    EvalEngine engine{*app, EvalEngine::Options{}};
    const TypeConfig config = app->uniform_config(tp::kBinary16);

    constexpr unsigned kCallers = 8;
    const auto expected = engine.output(5, config); // a warm sibling key
    std::latch start{kCallers};
    std::vector<std::thread> callers;
    std::vector<std::vector<double>> outputs(kCallers);
    for (unsigned i = 0; i < kCallers; ++i) {
        callers.emplace_back([&engine, &config, &start, &outputs, i] {
            start.arrive_and_wait(); // maximize the overlap window
            outputs[i] = engine.output(0, config);
        });
    }
    for (std::thread& caller : callers) caller.join();

    for (const auto& out : outputs) EXPECT_EQ(out, outputs[0]);
    EXPECT_NE(outputs[0], expected); // different input set, different data

    const auto stats = engine.stats();
    EXPECT_EQ(stats.trials, kCallers + 1);
    EXPECT_EQ(stats.kernel_runs, 2u); // input set 5, then exactly one for 0
    EXPECT_EQ(stats.cache_hits, kCallers - 1);
}

TEST(EvalEngine, ConcurrentGoldenRequestsComputeOnce) {
    const auto app = tp::apps::make_app("conv");
    EvalEngine engine{*app, EvalEngine::Options{}};
    constexpr unsigned kCallers = 8;
    std::latch start{kCallers};
    std::vector<std::thread> callers;
    std::vector<const std::vector<double>*> goldens(kCallers);
    for (unsigned i = 0; i < kCallers; ++i) {
        callers.emplace_back([&engine, &start, &goldens, i] {
            start.arrive_and_wait();
            goldens[i] = &engine.golden(2);
        });
    }
    for (std::thread& caller : callers) caller.join();
    for (const auto* golden : goldens) EXPECT_EQ(golden, goldens[0]);
    EXPECT_EQ(engine.stats().golden_runs, 1u);
}

// --- LRU memory budget -------------------------------------------------------

TEST(EvalEngine, MemoryBudgetBoundsTheCache) {
    const auto app = tp::apps::make_app("knn");
    constexpr std::size_t kBudget = 4 * 1024;
    EvalEngine engine{*app, EvalEngine::Options{.threads = 1,
                                                .memoize = true,
                                                .cache_budget_bytes = kBudget}};
    // Many distinct configs: more payload than the budget can hold.
    std::vector<TypeConfig> configs;
    for (std::uint8_t mant = 1; mant <= 23; ++mant) {
        configs.push_back(app->uniform_config(tp::FpFormat{8, mant}));
        configs.push_back(app->uniform_config(tp::FpFormat{5, std::min<std::uint8_t>(mant, 10)}));
    }
    std::vector<std::vector<double>> first;
    for (const TypeConfig& config : configs) {
        first.push_back(engine.output(0, config));
        EXPECT_LE(engine.cache_bytes(), kBudget);
    }
    const auto churned = engine.stats();
    EXPECT_GT(churned.evictions, 0u);
    EXPECT_GT(engine.cache_bytes(), 0u); // bounded, not empty

    // Evicted trials re-run to identical bytes (the determinism contract
    // extended to eviction state).
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(engine.output(0, configs[i]), first[i]) << i;
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.trials, stats.kernel_runs + stats.cache_hits);
}

TEST(EvalEngine, UnboundedBudgetNeverEvicts) {
    const auto app = tp::apps::make_app("knn");
    EvalEngine engine{*app, EvalEngine::Options{}};
    for (std::uint8_t mant = 1; mant <= 23; ++mant) {
        (void)engine.output(0, app->uniform_config(tp::FpFormat{8, mant}));
    }
    EXPECT_EQ(engine.stats().evictions, 0u);
    EXPECT_GT(engine.cache_bytes(), 0u);
}

TEST(EvalEngine, LeastRecentlyUsedEntryIsEvictedFirst) {
    const auto app = tp::apps::make_app("knn");
    // Budget sized to hold a few entries: touch A constantly while
    // inserting B, C, D... — A must survive longer than untouched peers.
    EvalEngine probe{*app, EvalEngine::Options{}};
    const TypeConfig a = app->uniform_config(tp::kBinary16);
    (void)probe.output(0, a);
    const std::size_t one_entry = probe.cache_bytes();
    ASSERT_GT(one_entry, 0u);

    EvalEngine engine{*app,
                      EvalEngine::Options{.threads = 1,
                                          .memoize = true,
                                          .cache_budget_bytes = 3 * one_entry}};
    (void)engine.output(0, a); // A resident
    for (std::uint8_t mant = 1; mant <= 8; ++mant) {
        (void)engine.output(0, app->uniform_config(tp::FpFormat{8, mant}));
        (void)engine.output(0, a); // touch A: most recently used again
    }
    const auto stats = engine.stats();
    EXPECT_GT(stats.evictions, 0u);
    // A was never evicted: its 9 requests were 1 run + 8 hits.
    const std::size_t runs_before = stats.kernel_runs;
    (void)engine.output(0, a);
    EXPECT_EQ(engine.stats().kernel_runs, runs_before);
}

// --- Cache-coherent determinism contract ------------------------------------

SearchOptions fast_options() {
    SearchOptions options;
    options.epsilon = 1e-2;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.input_sets = {0, 1};
    options.max_passes = 2;
    return options;
}

// The cache-coherence battery (cold vs warm vs uncached vs threads=4 with
// exact counters) runs for EVERY registered app in the shared conformance
// harness — AppConformanceTest.SearchIsCacheCoherentAndThreadCountInvariant
// in tests/app_conformance.hpp (it used to run here, for pca and dwt only).

TEST(EvalEngine, SharedEngineAccountsAcrossSearches) {
    const auto app = tp::apps::make_app("dwt");
    EvalEngine engine{*app, EvalEngine::Options{}};
    const auto options = fast_options();
    (void)distributed_search(engine, options);
    (void)distributed_search(engine, options);
    const auto stats = engine.stats();
    EXPECT_EQ(stats.trials, stats.kernel_runs + stats.cache_hits);
    // The second search was fully memoized, so at least half of all trials
    // were hits.
    EXPECT_GE(2 * stats.cache_hits, stats.trials);
}

TEST(EvalEngine, CastAwareReportsEngineStats) {
    auto app = tp::apps::make_app("knn");
    tp::tuning::CastAwareOptions options;
    options.search = fast_options();
    options.max_rounds = 1;
    const auto result = tp::tuning::cast_aware_search(*app, options);
    EXPECT_EQ(result.eval_stats.trials,
              result.eval_stats.kernel_runs + result.eval_stats.cache_hits);
    EXPECT_GT(result.eval_stats.trials, 0u);
    EXPECT_GT(result.eval_stats.cache_hits, 0u);
}

} // namespace
