#include "apps/app.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "tuning/quality.hpp"

namespace {

using tp::apps::App;
using tp::apps::make_app;
using tp::sim::TpContext;

class AppsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppsTest, SignalsAreWellFormed) {
    const auto app = make_app(GetParam());
    const auto signals = app->signals();
    EXPECT_GE(signals.size(), 3u);
    std::set<std::string> names;
    for (const auto& spec : signals) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GE(spec.elements, 1u);
        EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    }
}

TEST_P(AppsTest, GoldenIsDeterministic) {
    const auto app = make_app(GetParam());
    const auto out1 = app->golden(0);
    const auto out2 = app->golden(0);
    ASSERT_EQ(out1.size(), out2.size());
    for (std::size_t i = 0; i < out1.size(); ++i) {
        EXPECT_EQ(out1[i], out2[i]) << i;
    }
    EXPECT_GE(out1.size(), 8u); // enough samples for a stable SQNR
}

TEST_P(AppsTest, InputSetsDiffer) {
    const auto app = make_app(GetParam());
    const auto out0 = app->golden(0);
    const auto out1 = app->golden(1);
    ASSERT_EQ(out0.size(), out1.size());
    bool any_different = false;
    for (std::size_t i = 0; i < out0.size(); ++i) {
        any_different = any_different || out0[i] != out1[i];
    }
    EXPECT_TRUE(any_different);
}

TEST_P(AppsTest, OutputsAreFinite) {
    const auto app = make_app(GetParam());
    for (unsigned set = 0; set < 3; ++set) {
        for (const double v : app->golden(set)) {
            EXPECT_TRUE(std::isfinite(v));
        }
    }
}

TEST_P(AppsTest, Binary32RunIsCloseToGolden) {
    const auto app = make_app(GetParam());
    const auto golden = app->golden(0);
    app->prepare(0);
    TpContext ctx{TpContext::Config{.trace = false}};
    const auto out = app->run(ctx, app->uniform_config(tp::kBinary32));
    ASSERT_EQ(out.size(), golden.size());
    EXPECT_LE(tp::tuning::output_error(golden, out), 1e-3)
        << "binary32 should be a near-exact baseline";
}

TEST_P(AppsTest, TracedAndUntracedRunsAgree) {
    const auto app = make_app(GetParam());
    app->prepare(0);
    TpContext traced;
    const auto out_traced = app->run(traced, app->uniform_config(tp::kBinary32));
    app->prepare(0);
    TpContext untraced{TpContext::Config{.trace = false}};
    const auto out_untraced = app->run(untraced, app->uniform_config(tp::kBinary32));
    ASSERT_EQ(out_traced.size(), out_untraced.size());
    for (std::size_t i = 0; i < out_traced.size(); ++i) {
        EXPECT_EQ(out_traced[i], out_untraced[i]) << i;
    }
    EXPECT_FALSE(traced.take_program(false).instrs.empty());
}

TEST_P(AppsTest, TraceSimulates) {
    const auto app = make_app(GetParam());
    app->prepare(0);
    TpContext ctx;
    (void)app->run(ctx, app->uniform_config(tp::kBinary32));
    const auto report = tp::sim::simulate(ctx.take_program(true));
    EXPECT_GT(report.cycles, 0u);
    EXPECT_GT(report.fp_ops + report.fp_simd_lane_ops, 0u);
    EXPECT_GT(report.mem_accesses, 0u);
    EXPECT_GT(report.energy.total(), 0.0);
}

TEST_P(AppsTest, UniformBinary32HasNoCasts) {
    const auto app = make_app(GetParam());
    app->prepare(0);
    TpContext ctx;
    (void)app->run(ctx, app->uniform_config(tp::kBinary32));
    const auto report = tp::sim::simulate(ctx.take_program(false));
    // from_int conversions may exist; FP->FP casts must not.
    const auto program_casts = report.casts;
    // Count FpCast instructions that are genuine FP->FP casts by rerunning.
    app->prepare(0);
    TpContext ctx2;
    (void)app->run(ctx2, app->uniform_config(tp::kBinary32));
    std::uint64_t fp_casts = 0;
    for (const auto& instr : ctx2.take_program(false).instrs) {
        if (instr.kind == tp::sim::InstrKind::FpCast &&
            instr.op != tp::FpOp::FromInt && instr.op != tp::FpOp::ToInt &&
            !(instr.fmt == instr.fmt2)) {
            ++fp_casts;
        }
    }
    EXPECT_EQ(fp_casts, 0u);
    (void)program_casts;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppsTest,
                         ::testing::Values("jacobi", "knn", "pca", "dwt", "svm",
                                           "conv"),
                         [](const auto& info) { return info.param; });

TEST(Apps, RegistryListsSix) {
    EXPECT_EQ(tp::apps::app_names().size(), 6u);
    EXPECT_EQ(tp::apps::make_all_apps().size(), 6u);
}

TEST(Apps, UnknownNameThrows) {
    EXPECT_THROW((void)make_app("nope"), std::out_of_range);
}

TEST(Apps, PcaManualVectorizationVariantExists) {
    const auto app = make_app("pca-manual-vec");
    EXPECT_EQ(app->name(), "pca-manual-vec");
    // Outputs match the scalar PCA bit-for-bit (vectorization only changes
    // the schedule, not the values).
    const auto scalar = make_app("pca");
    const auto a = app->golden(0);
    const auto b = scalar->golden(0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Apps, PcaManualVectorizationProducesSimdGroups) {
    const auto app = make_app("pca-manual-vec");
    app->prepare(0);
    TpContext ctx;
    tp::apps::TypeConfig config = app->uniform_config(tp::kBinary16);
    (void)app->run(ctx, config);
    const auto program = ctx.take_program(true);
    EXPECT_FALSE(program.groups.empty());

    const auto scalar_app = make_app("pca");
    scalar_app->prepare(0);
    TpContext scalar_ctx;
    (void)scalar_app->run(scalar_ctx, scalar_app->uniform_config(tp::kBinary16));
    EXPECT_TRUE(scalar_ctx.take_program(true).groups.empty());
}

TEST(Apps, JacobiStaysScalarButKnnVectorizes) {
    const auto jacobi = make_app("jacobi");
    jacobi->prepare(0);
    TpContext jctx;
    (void)jacobi->run(jctx, jacobi->uniform_config(tp::kBinary16));
    EXPECT_TRUE(jctx.take_program(true).groups.empty());

    const auto knn = make_app("knn");
    knn->prepare(0);
    TpContext kctx;
    (void)knn->run(kctx, knn->uniform_config(tp::kBinary8));
    EXPECT_FALSE(kctx.take_program(true).groups.empty());
}

TEST(Apps, NarrowFormatsDegradeGracefully) {
    // An all-binary8 run may be inaccurate but must not crash, and the
    // binary16alt run must not saturate to infinity on PCA's wide-range
    // data (binary16 may).
    auto pca = make_app("pca");
    const auto golden = pca->golden(0);
    pca->prepare(0);
    TpContext ctx{TpContext::Config{.trace = false}};
    const auto alt_out = pca->run(ctx, pca->uniform_config(tp::kBinary16Alt));
    ASSERT_EQ(alt_out.size(), golden.size());
    for (const double v : alt_out) EXPECT_TRUE(std::isfinite(v));
}

} // namespace
