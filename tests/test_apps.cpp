// App registry and per-app specifics. The per-app battery every
// application must pass (golden determinism, clone independence, engine
// determinism, ...) lives in the shared conformance harness
// (app_conformance.hpp), instantiated over all registered apps by
// test_app_conformance.cpp — this file keeps only what is specific to one
// app: which kernels vectorize, and the pca manual-vectorization variant.
#include "apps/app.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "tuning/quality.hpp"

namespace {

using tp::apps::make_app;
using tp::sim::TpContext;

TEST(Apps, RegistryListsNine) {
    EXPECT_EQ(tp::apps::app_names().size(), 9u);
    EXPECT_EQ(tp::apps::make_all_apps().size(), 9u);
}

TEST(Apps, UnknownNameThrows) {
    EXPECT_THROW((void)make_app("nope"), std::out_of_range);
}

TEST(Apps, PcaManualVectorizationVariantExists) {
    const auto app = make_app("pca-manual-vec");
    EXPECT_EQ(app->name(), "pca-manual-vec");
    // Outputs match the scalar PCA bit-for-bit (vectorization only changes
    // the schedule, not the values).
    const auto scalar = make_app("pca");
    const auto a = app->golden(0);
    const auto b = scalar->golden(0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Apps, PcaManualVectorizationProducesSimdGroups) {
    const auto app = make_app("pca-manual-vec");
    app->prepare(0);
    TpContext ctx;
    tp::apps::TypeConfig config = app->uniform_config(tp::kBinary16);
    (void)app->run(ctx, config);
    const auto program = ctx.take_program(true);
    EXPECT_FALSE(program.groups.empty());

    const auto scalar_app = make_app("pca");
    scalar_app->prepare(0);
    TpContext scalar_ctx;
    (void)scalar_app->run(scalar_ctx, scalar_app->uniform_config(tp::kBinary16));
    EXPECT_TRUE(scalar_ctx.take_program(true).groups.empty());
}

TEST(Apps, JacobiStaysScalarButKnnVectorizes) {
    const auto jacobi = make_app("jacobi");
    jacobi->prepare(0);
    TpContext jctx;
    (void)jacobi->run(jctx, jacobi->uniform_config(tp::kBinary16));
    EXPECT_TRUE(jctx.take_program(true).groups.empty());

    const auto knn = make_app("knn");
    knn->prepare(0);
    TpContext kctx;
    (void)knn->run(kctx, knn->uniform_config(tp::kBinary8));
    EXPECT_FALSE(kctx.take_program(true).groups.empty());
}

TEST(Apps, FftAndMlpVectorizeButIirStaysScalar) {
    // The FFT's butterflies and the MLP's dot-product lanes are
    // independent; the IIR cascade's recurrence forbids grouping.
    for (const char* vectorized : {"fft", "mlp"}) {
        const auto app = make_app(vectorized);
        app->prepare(0);
        TpContext ctx;
        (void)app->run(ctx, app->uniform_config(tp::kBinary16));
        EXPECT_FALSE(ctx.take_program(true).groups.empty()) << vectorized;
    }
    const auto iir = make_app("iir");
    iir->prepare(0);
    TpContext ictx;
    (void)iir->run(ictx, iir->uniform_config(tp::kBinary16));
    EXPECT_TRUE(ictx.take_program(true).groups.empty());
}

TEST(Apps, FftSpectrumRecoversInjectedTones) {
    // Sanity anchor for the golden: the dominant spectral line of input
    // set 0 must dwarf the leakage floor — a wrong butterfly or twiddle
    // table flattens the spectrum long before it perturbs determinism.
    const auto app = make_app("fft");
    const auto spectrum = app->golden(0); // interleaved re/im, 32 bins
    double peak = 0.0;
    double total = 0.0;
    for (std::size_t bin = 0; bin < spectrum.size() / 2; ++bin) {
        const double re = spectrum[2 * bin];
        const double im = spectrum[2 * bin + 1];
        const double power = re * re + im * im;
        peak = std::max(peak, power);
        total += power;
    }
    EXPECT_GT(peak, 0.0);
    EXPECT_GT(peak / total, 0.2) << "no dominant line in the FFT golden";
}

TEST(Apps, IirAttenuatesTheStopbandTone) {
    // The cascade is a lowpass at ~0.1 of the sample rate; the 0.31 tone
    // of the prepared input must come out much smaller than it went in.
    const auto app = make_app("iir");
    const auto out = app->golden(0);
    // Correlate the output against the stopband tone frequency.
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    double re = 0.0;
    double im = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const double t = static_cast<double>(i);
        re += out[i] * std::cos(kTwoPi * 0.31 * t);
        im += out[i] * std::sin(kTwoPi * 0.31 * t);
    }
    const double stop_amplitude =
        2.0 * std::sqrt(re * re + im * im) / static_cast<double>(out.size());
    EXPECT_LT(stop_amplitude, 1.5) << "input stopband amplitude was 15";
}

TEST(Apps, MlpModelIsFixedAcrossInputSets) {
    // The MLP's weights are one trained model: only the inference batch
    // varies with the input set. Identical batches must reproduce, and
    // different batches must produce different (nonzero) logits through
    // the same weights.
    const auto app = make_app("mlp");
    const auto out0 = app->golden(0);
    const auto out1 = app->golden(1);
    EXPECT_NE(out0, out1);
    bool any_nonzero = false;
    for (const double v : out0) any_nonzero = any_nonzero || v != 0.0;
    EXPECT_TRUE(any_nonzero);
}

} // namespace
