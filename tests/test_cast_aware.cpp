#include "tuning/cast_aware.hpp"

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "tuning/quality.hpp"

namespace {

using tp::tuning::cast_aware_search;
using tp::tuning::CastAwareOptions;

CastAwareOptions fast_options(const char* unused = nullptr) {
    (void)unused;
    CastAwareOptions options;
    options.search.epsilon = 1e-2;
    options.search.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.search.input_sets = {0, 1};
    options.search.max_passes = 2;
    options.max_rounds = 2;
    return options;
}

TEST(CastAware, NeverIncreasesEnergy) {
    for (const auto& name : {"pca", "dwt", "knn"}) {
        auto app = tp::apps::make_app(name);
        const auto result = cast_aware_search(*app, fast_options());
        EXPECT_LE(result.tuned_energy_pj, result.base_energy_pj) << name;
    }
}

TEST(CastAware, QualityStillHoldsOnAllTrainingSets) {
    auto app = tp::apps::make_app("pca");
    const auto options = fast_options();
    const auto result = cast_aware_search(*app, options);
    for (unsigned set : options.search.input_sets) {
        const auto golden = app->golden(set);
        app->prepare(set);
        tp::sim::TpContext ctx{tp::sim::TpContext::Config{.trace = false}};
        const auto out = app->run(ctx, result.config);
        EXPECT_TRUE(tp::tuning::meets_requirement(golden, out,
                                                  options.search.epsilon))
            << "set " << set;
    }
}

TEST(CastAware, ConfigCoversEverySignal) {
    auto app = tp::apps::make_app("svm");
    const auto result = cast_aware_search(*app, fast_options());
    // The config is indexed by SignalId: one slot per declared signal.
    ASSERT_EQ(result.config.size(), app->signals().size());
    for (const auto& spec : app->signals()) {
        const tp::apps::SignalId id = app->signal_table().id(spec.name);
        EXPECT_NO_THROW((void)result.config.at(id));
    }
    EXPECT_EQ(result.base.signals.size(), app->signals().size());
}

TEST(CastAware, RespectsTypeSystemMembership) {
    auto app = tp::apps::make_app("conv");
    auto options = fast_options();
    options.search.type_system = tp::TypeSystem{tp::TypeSystemKind::V1};
    const auto result = cast_aware_search(*app, options);
    for (tp::apps::SignalId id = 0; id < result.config.size(); ++id) {
        EXPECT_NE(result.config[id], tp::kBinary16Alt)
            << app->signal_table().name(id) << ": V1 has no binary16alt";
    }
}

TEST(CastAware, ParallelMatchesSerial) {
    auto serial_app = tp::apps::make_app("pca");
    const auto serial = cast_aware_search(*serial_app, fast_options());

    auto parallel_app = tp::apps::make_app("pca");
    auto parallel_options = fast_options();
    parallel_options.search.threads = 4;
    const auto parallel = cast_aware_search(*parallel_app, parallel_options);

    EXPECT_EQ(serial.config, parallel.config);
    EXPECT_EQ(serial.moves_accepted, parallel.moves_accepted);
    EXPECT_EQ(serial.base_energy_pj, parallel.base_energy_pj);
    EXPECT_EQ(serial.tuned_energy_pj, parallel.tuned_energy_pj);
    EXPECT_EQ(serial.base_casts, parallel.base_casts);
    EXPECT_EQ(serial.tuned_casts, parallel.tuned_casts);
    EXPECT_EQ(serial.base.program_runs, parallel.base.program_runs);
}

TEST(CastAware, MovesReportedConsistently) {
    auto app = tp::apps::make_app("pca");
    const auto result = cast_aware_search(*app, fast_options());
    int changed = 0;
    for (tp::apps::SignalId id = 0; id < result.base.signals.size(); ++id) {
        const auto& sr = result.base.signals[id];
        if (!(result.config.at(id) == tp::format_of(sr.bound))) ++changed;
    }
    // Every differing signal required at least one accepted move (a signal
    // can move more than once across rounds).
    EXPECT_LE(changed, result.moves_accepted);
    if (result.moves_accepted == 0) {
        EXPECT_EQ(result.tuned_energy_pj, result.base_energy_pj);
    }
}

} // namespace
