#include "tuning/cast_aware.hpp"

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/quality.hpp"
#include "tuning/search.hpp"

namespace {

using tp::tuning::cast_aware_search;
using tp::tuning::CastAwareOptions;
using tp::tuning::CastAwareResult;
using tp::tuning::EvalEngine;

void expect_identical_cast_aware(const CastAwareResult& a,
                                 const CastAwareResult& b) {
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.moves_accepted, b.moves_accepted);
    EXPECT_EQ(a.base_energy_pj, b.base_energy_pj);
    EXPECT_EQ(a.tuned_energy_pj, b.tuned_energy_pj);
    EXPECT_EQ(a.base_casts, b.base_casts);
    EXPECT_EQ(a.tuned_casts, b.tuned_casts);
    EXPECT_TRUE(a.base == b.base);
}

CastAwareOptions fast_options(const char* unused = nullptr) {
    (void)unused;
    CastAwareOptions options;
    options.search.epsilon = 1e-2;
    options.search.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.search.input_sets = {0, 1};
    options.search.max_passes = 2;
    options.max_rounds = 2;
    return options;
}

TEST(CastAware, NeverIncreasesEnergy) {
    for (const auto& name : {"pca", "dwt", "knn"}) {
        auto app = tp::apps::make_app(name);
        const auto result = cast_aware_search(*app, fast_options());
        EXPECT_LE(result.tuned_energy_pj, result.base_energy_pj) << name;
    }
}

TEST(CastAware, QualityStillHoldsOnAllTrainingSets) {
    auto app = tp::apps::make_app("pca");
    const auto options = fast_options();
    const auto result = cast_aware_search(*app, options);
    for (unsigned set : options.search.input_sets) {
        const auto golden = app->golden(set);
        app->prepare(set);
        tp::sim::TpContext ctx{tp::sim::TpContext::Config{.trace = false}};
        const auto out = app->run(ctx, result.config);
        EXPECT_TRUE(tp::tuning::meets_requirement(golden, out,
                                                  options.search.epsilon))
            << "set " << set;
    }
}

TEST(CastAware, ConfigCoversEverySignal) {
    auto app = tp::apps::make_app("svm");
    const auto result = cast_aware_search(*app, fast_options());
    // The config is indexed by SignalId: one slot per declared signal.
    ASSERT_EQ(result.config.size(), app->signals().size());
    for (const auto& spec : app->signals()) {
        const tp::apps::SignalId id = app->signal_table().id(spec.name);
        EXPECT_NO_THROW((void)result.config.at(id));
    }
    EXPECT_EQ(result.base.signals.size(), app->signals().size());
}

TEST(CastAware, RespectsTypeSystemMembership) {
    auto app = tp::apps::make_app("conv");
    auto options = fast_options();
    options.search.type_system = tp::TypeSystem{tp::TypeSystemKind::V1};
    const auto result = cast_aware_search(*app, options);
    for (tp::apps::SignalId id = 0; id < result.config.size(); ++id) {
        EXPECT_NE(result.config[id], tp::kBinary16Alt)
            << app->signal_table().name(id) << ": V1 has no binary16alt";
    }
}

TEST(CastAware, ParallelMatchesSerial) {
    auto serial_app = tp::apps::make_app("pca");
    const auto serial = cast_aware_search(*serial_app, fast_options());

    auto parallel_app = tp::apps::make_app("pca");
    auto parallel_options = fast_options();
    parallel_options.search.threads = 4;
    const auto parallel = cast_aware_search(*parallel_app, parallel_options);

    EXPECT_EQ(serial.config, parallel.config);
    EXPECT_EQ(serial.moves_accepted, parallel.moves_accepted);
    EXPECT_EQ(serial.base_energy_pj, parallel.base_energy_pj);
    EXPECT_EQ(serial.tuned_energy_pj, parallel.tuned_energy_pj);
    EXPECT_EQ(serial.base_casts, parallel.base_casts);
    EXPECT_EQ(serial.tuned_casts, parallel.tuned_casts);
    EXPECT_EQ(serial.base.program_runs, parallel.base.program_runs);
}

// A caller-supplied engine must produce the same result as the private
// one for any cache state (the determinism contract), and its eval_stats
// must be this call's delta, not the engine's lifetime counters.
TEST(CastAware, CallerSuppliedEngineMatchesPrivateEngine) {
    auto app = tp::apps::make_app("knn");
    const auto options = fast_options();
    const CastAwareResult reference = cast_aware_search(*app, options);

    EvalEngine engine{*app, EvalEngine::Options{}};
    // Warm the shared engine with an unrelated plain search first: the
    // cast-aware pass must not double-report that work...
    (void)tp::tuning::distributed_search(engine, options.search);
    const auto warmup = engine.stats();
    const CastAwareResult shared = cast_aware_search(engine, options);
    expect_identical_cast_aware(reference, shared);
    // ...so its delta plus the warm-up equals the engine lifetime.
    EXPECT_EQ(warmup + shared.eval_stats, engine.stats());
    // The warm cache served the base search's trials as hits.
    EXPECT_GT(shared.eval_stats.cache_hits, reference.eval_stats.cache_hits);
    EXPECT_LT(shared.eval_stats.kernel_runs, reference.eval_stats.kernel_runs);
}

// options.search carries warm starts into the base search verbatim: a
// cast-aware pass seeded from a completed plain search at the same
// epsilon reproduces that warm-started search as its base, submits fewer
// base trials than the cold pass, and still meets the requirement.
TEST(CastAware, AcceptsWarmStartedBaseSearch) {
    auto app = tp::apps::make_app("dwt");
    const auto options = fast_options();
    const CastAwareResult cold = cast_aware_search(*app, options);

    auto seed_app = tp::apps::make_app("dwt");
    const auto seed =
        tp::tuning::distributed_search(*seed_app, options.search);

    auto warm_options = options;
    warm_options.search.warm_start = tp::tuning::warm_start_from(seed);
    auto warm_app = tp::apps::make_app("dwt");
    const CastAwareResult warm = cast_aware_search(*warm_app, warm_options);

    // The base is exactly the warm-started plain search...
    auto base_app = tp::apps::make_app("dwt");
    EXPECT_TRUE(warm.base ==
                tp::tuning::distributed_search(*base_app, warm_options.search));
    // ...which is cheaper than the cold base but no less precise-frugal.
    EXPECT_LT(warm.base.program_runs, cold.base.program_runs);
    ASSERT_EQ(warm.base.signals.size(), cold.base.signals.size());
    for (std::size_t i = 0; i < warm.base.signals.size(); ++i) {
        EXPECT_LE(warm.base.signals[i].precision_bits,
                  cold.base.signals[i].precision_bits)
            << warm.base.signals[i].name;
    }
    EXPECT_LE(warm.tuned_energy_pj, warm.base_energy_pj);
    for (unsigned set : options.search.input_sets) {
        const auto golden = warm_app->golden(set);
        warm_app->prepare(set);
        tp::sim::TpContext ctx{tp::sim::TpContext::Config{.trace = false}};
        const auto out = warm_app->run(ctx, warm.config);
        EXPECT_TRUE(tp::tuning::meets_requirement(golden, out,
                                                  options.search.epsilon))
            << "set " << set;
    }
}

TEST(CastAware, MovesReportedConsistently) {
    auto app = tp::apps::make_app("pca");
    const auto result = cast_aware_search(*app, fast_options());
    int changed = 0;
    for (tp::apps::SignalId id = 0; id < result.base.signals.size(); ++id) {
        const auto& sr = result.base.signals[id];
        if (!(result.config.at(id) == tp::format_of(sr.bound))) ++changed;
    }
    // Every differing signal required at least one accepted move (a signal
    // can move more than once across rounds).
    EXPECT_LE(changed, result.moves_accepted);
    if (result.moves_accepted == 0) {
        EXPECT_EQ(result.tuned_energy_pj, result.base_energy_pj);
    }
}

} // namespace
