#include "util/statistics.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace {

using tp::util::RunningStats;

TEST(Statistics, MeanOfEmptyIsZero) {
    EXPECT_EQ(tp::util::mean({}), 0.0);
}

TEST(Statistics, MeanBasic) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(tp::util::mean(xs), 2.5);
}

TEST(Statistics, RmsBasic) {
    const std::vector<double> xs{3.0, 4.0};
    EXPECT_DOUBLE_EQ(tp::util::rms(xs), std::sqrt(12.5));
}

TEST(Statistics, SqnrExactMatchIsInfinite) {
    const std::vector<double> xs{1.0, -2.0, 3.0};
    EXPECT_TRUE(std::isinf(tp::util::sqnr(xs, xs)));
}

TEST(Statistics, SqnrHalvesWithDoubleNoise) {
    const std::vector<double> ref{1.0, 1.0, 1.0, 1.0};
    const std::vector<double> a{1.1, 1.1, 1.1, 1.1};
    const std::vector<double> b{1.2, 1.2, 1.2, 1.2};
    EXPECT_NEAR(tp::util::sqnr(ref, a) / tp::util::sqnr(ref, b), 4.0, 1e-9);
}

TEST(Statistics, RelativeRmsErrorMatchesDefinition) {
    const std::vector<double> ref{2.0, 0.0, -2.0};
    const std::vector<double> out{2.2, 0.0, -2.2};
    // noise rms = sqrt((0.04+0+0.04)/3), signal rms = sqrt(8/3)
    EXPECT_NEAR(tp::util::relative_rms_error(ref, out), 0.1, 1e-12);
}

TEST(Statistics, RelativeRmsErrorNaNIsInfinite) {
    const std::vector<double> ref{1.0, 2.0};
    const std::vector<double> out{1.0, std::numeric_limits<double>::quiet_NaN()};
    EXPECT_TRUE(std::isinf(tp::util::relative_rms_error(ref, out)));
}

TEST(Statistics, RelativeRmsErrorZeroSignal) {
    const std::vector<double> zero{0.0, 0.0};
    const std::vector<double> nonzero{0.0, 1.0};
    EXPECT_EQ(tp::util::relative_rms_error(zero, zero), 0.0);
    EXPECT_TRUE(std::isinf(tp::util::relative_rms_error(zero, nonzero)));
}

TEST(Statistics, GeometricMean) {
    const std::vector<double> xs{2.0, 8.0};
    EXPECT_NEAR(tp::util::geometric_mean(xs), 4.0, 1e-12);
}

TEST(Statistics, RunningStatsMatchesBatch) {
    tp::util::Xoshiro256 rng{42};
    RunningStats stats;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-5.0, 5.0);
        xs.push_back(x);
        stats.add(x);
    }
    EXPECT_EQ(stats.count(), 1000u);
    EXPECT_NEAR(stats.mean(), tp::util::mean(xs), 1e-9);
    double var = 0.0;
    for (double x : xs) var += (x - stats.mean()) * (x - stats.mean());
    var /= 999.0;
    EXPECT_NEAR(stats.variance(), var, 1e-9);
    EXPECT_LE(stats.min(), stats.mean());
    EXPECT_GE(stats.max(), stats.mean());
}

TEST(Random, DeterministicForFixedSeed) {
    tp::util::Xoshiro256 a{7};
    tp::util::Xoshiro256 b{7};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Random, UniformInRange) {
    tp::util::Xoshiro256 rng{3};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Random, UniformIntCoversRange) {
    tp::util::Xoshiro256 rng{11};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == 0;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, NormalMomentsRoughlyStandard) {
    tp::util::Xoshiro256 rng{19};
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

} // namespace
