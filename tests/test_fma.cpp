// Fused multiply-add across all backends: softfloat (integer), flexfloat
// (binary64 fast path / exact fallback), FlexFloatDyn, the FPU model and
// the traced context.
#include <bit>
#include <cfenv>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "flexfloat/fma_exact.hpp"
#include "fpu/transprecision_fpu.hpp"
#include "sim/context.hpp"
#include "sim/pipeline.hpp"
#include "softfloat/softfloat.hpp"
#include "types/encoding.hpp"
#include "util/random.hpp"

namespace {

namespace sf = tp::softfloat;
using tp::decode;
using tp::encode;
using tp::FpFormat;

/// Round-to-odd oracle. A round-to-NEAREST binary64 intermediate is wrong
/// for fma (ties at the target can be broken by an addend far below the
/// 53-bit reach), but a round-to-ODD intermediate is innocuous with just
/// two spare bits: compute toward zero, then force the last bit when the
/// result was inexact. Independent of the softfloat implementation.
std::uint64_t oracle_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                         FpFormat f) {
    const double da = decode(a, f);
    const double db = decode(b, f);
    const double dc = decode(c, f);
    const int old_mode = std::fegetround();
    std::fesetround(FE_TOWARDZERO);
    std::feclearexcept(FE_INEXACT);
    double t = std::fma(da, db, dc);
    const bool inexact = std::fetestexcept(FE_INEXACT) != 0;
    std::fesetround(old_mode);
    // Note: an inexact zero (deep underflow toward zero) must also jam to
    // the minimal subnormal of the right sign — |= 1 on the pattern does.
    if (inexact && std::isfinite(t)) {
        auto bits = std::bit_cast<std::uint64_t>(t);
        bits |= 1; // round-to-odd: jam the sticky into the last bit
        t = std::bit_cast<double>(bits);
    }
    return encode(t, f);
}

void expect_fma(std::uint64_t a, std::uint64_t b, std::uint64_t c, FpFormat f) {
    const std::uint64_t got = sf::fma(a, b, c, f);
    const std::uint64_t want = oracle_fma(a, b, c, f);
    const bool got_nan = sf::is_nan(got, f);
    const bool want_nan = std::isnan(decode(want, f));
    if (got_nan || want_nan) {
        ASSERT_EQ(got_nan, want_nan) << std::hex << a << ' ' << b << ' ' << c;
        return;
    }
    ASSERT_EQ(got, want) << std::hex << "a=" << a << " b=" << b << " c=" << c;
}

TEST(SoftFloatFma, ExhaustiveBinary8PairsSampledAddend) {
    // All (a, b) pairs with a rotating sample of addends: ~2M cases.
    const FpFormat f = tp::kBinary8;
    for (std::uint64_t a = 0; a < 256; ++a) {
        for (std::uint64_t b = 0; b < 256; ++b) {
            for (std::uint64_t c = (a * 7 + b) % 8; c < 256; c += 8) {
                expect_fma(a, b, c, f);
            }
        }
    }
}

class FmaRandom : public ::testing::TestWithParam<FpFormat> {};

TEST_P(FmaRandom, MatchesRoundToOddOracle) {
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0xF3A + f.exp_bits * 41u + f.mant_bits};
    const std::uint64_t mask = tp::bit_mask(f);
    for (int i = 0; i < 300000; ++i) {
        expect_fma(rng() & mask, rng() & mask, rng() & mask, f);
    }
}

INSTANTIATE_TEST_SUITE_P(NarrowFormats, FmaRandom,
                         ::testing::Values(tp::kBinary8, tp::kBinary16,
                                           tp::kBinary16Alt, FpFormat{3, 3},
                                           FpFormat{6, 9}, FpFormat{8, 11}),
                         [](const auto& info) {
                             return "e" + std::to_string(info.param.exp_bits) +
                                    "m" + std::to_string(info.param.mant_bits);
                         });

TEST(SoftFloatFma, Binary32AlgebraicProperties) {
    // binary32 sits outside the double-fma oracle envelope; check the
    // algebraic anchors instead.
    const FpFormat f = tp::kBinary32;
    tp::util::Xoshiro256 rng{0xFA32};
    const std::uint64_t mask = tp::bit_mask(f);
    const std::uint64_t one = encode(1.0, f);
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        const std::uint64_t c = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f) || sf::is_nan(c, f)) continue;
        // fma(a, b, 0) == a * b whenever the product is not a zero whose
        // sign the +0 addend would flip.
        const std::uint64_t prod = sf::mul(a, b, f);
        if (!sf::is_zero(prod, f) && !sf::is_nan(prod, f)) {
            ASSERT_EQ(sf::fma(a, b, 0, f), prod);
        }
        // fma(a, 1, c) == a + c.
        const std::uint64_t sum = sf::add(a, c, f);
        const std::uint64_t got = sf::fma(a, one, c, f);
        if (sf::is_nan(sum, f)) {
            ASSERT_TRUE(sf::is_nan(got, f));
        } else {
            ASSERT_EQ(got, sum);
        }
    }
}

TEST(SoftFloatFma, Binary32WithinOneUlpOfDoubleFma) {
    const FpFormat f = tp::kBinary32;
    tp::util::Xoshiro256 rng{0x1A32};
    const std::uint64_t mask = tp::bit_mask(f);
    const std::uint64_t sign_bit = 1ULL << 31;
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        const std::uint64_t c = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f) || sf::is_nan(c, f)) continue;
        const std::uint64_t got = sf::fma(a, b, c, f);
        const std::uint64_t approx = oracle_fma(a, b, c, f);
        if (sf::is_nan(got, f) || std::isnan(decode(approx, f))) continue;
        if (sf::is_zero(got, f) && sf::is_zero(approx, f)) continue;
        ASSERT_EQ(got & sign_bit, approx & sign_bit);
        const std::uint64_t mg = got & ~sign_bit;
        const std::uint64_t ma = approx & ~sign_bit;
        ASSERT_LE(mg > ma ? mg - ma : ma - mg, 1u)
            << std::hex << "a=" << a << " b=" << b << " c=" << c;
    }
}

TEST(SoftFloatFma, SingleRoundingBeatsMulThenAdd) {
    // The defining FMA property: there exist inputs where mul-then-add
    // double-rounds but fma does not.
    const FpFormat f = tp::kBinary16;
    tp::util::Xoshiro256 rng{0x0FF5};
    const std::uint64_t mask = tp::bit_mask(f);
    int divergences = 0;
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        const std::uint64_t c = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f) || sf::is_nan(c, f)) continue;
        const std::uint64_t fused = sf::fma(a, b, c, f);
        const std::uint64_t split = sf::add(sf::mul(a, b, f), c, f);
        if (sf::is_nan(fused, f) || sf::is_nan(split, f)) continue;
        if (fused != split) ++divergences;
    }
    EXPECT_GT(divergences, 0);
}

TEST(SoftFloatFma, SpecialValues) {
    const FpFormat f = tp::kBinary16;
    const std::uint64_t inf = sf::infinity(f, false);
    const std::uint64_t ninf = sf::infinity(f, true);
    const std::uint64_t one = encode(1.0, f);
    const std::uint64_t zero = 0;
    EXPECT_TRUE(sf::is_nan(sf::fma(inf, zero, one, f), f));   // inf * 0
    EXPECT_TRUE(sf::is_nan(sf::fma(one, inf, ninf, f), f));   // inf - inf
    EXPECT_EQ(sf::fma(inf, one, one, f), inf);
    EXPECT_EQ(sf::fma(one, one, ninf, f), ninf);
    EXPECT_TRUE(sf::is_nan(sf::fma(sf::quiet_nan(f), one, one, f), f));
    // Exact cancellation gives +0: 1 * 1 + (-1).
    EXPECT_EQ(sf::fma(one, one, encode(-1.0, f), f), 0u);
    // Zero product passes the addend through.
    EXPECT_EQ(sf::fma(zero, one, encode(2.5, f), f), encode(2.5, f));
}

TEST(FlexFloatFma, MatchesSoftFloatOnEveryPaperFormat) {
    tp::util::Xoshiro256 rng{0xFF3A};
    const auto check = [&]<int E, int M>(std::integral_constant<int, E>,
                                         std::integral_constant<int, M>) {
        constexpr FpFormat f{E, M};
        const std::uint64_t mask = tp::bit_mask(f);
        for (int i = 0; i < 50000; ++i) {
            const std::uint64_t a = rng() & mask;
            const std::uint64_t b = rng() & mask;
            const std::uint64_t c = rng() & mask;
            if (sf::is_nan(a, f) || sf::is_nan(b, f) || sf::is_nan(c, f)) continue;
            const auto fa = tp::flexfloat<E, M>::from_bits(a);
            const auto fb = tp::flexfloat<E, M>::from_bits(b);
            const auto fc = tp::flexfloat<E, M>::from_bits(c);
            const std::uint64_t got = fma(fa, fb, fc).bits();
            const std::uint64_t want = sf::fma(a, b, c, f);
            if (sf::is_nan(got, f) || sf::is_nan(want, f)) {
                ASSERT_EQ(sf::is_nan(got, f), sf::is_nan(want, f));
                continue;
            }
            ASSERT_EQ(got, want)
                << "E=" << E << " M=" << M << std::hex << " a=" << a
                << " b=" << b << " c=" << c;
        }
    };
    check(std::integral_constant<int, 5>{}, std::integral_constant<int, 2>{});
    check(std::integral_constant<int, 5>{}, std::integral_constant<int, 10>{});
    check(std::integral_constant<int, 8>{}, std::integral_constant<int, 7>{});
    check(std::integral_constant<int, 8>{}, std::integral_constant<int, 23>{});
}

TEST(FlexFloatFma, DynMatchesTemplate) {
    tp::util::Xoshiro256 rng{0xD13A};
    for (int i = 0; i < 20000; ++i) {
        const double a = rng.normal(0.0, 10.0);
        const double b = rng.normal(0.0, 10.0);
        const double c = rng.normal(0.0, 10.0);
        const tp::FlexFloatDyn da{a, tp::kBinary16};
        const tp::FlexFloatDyn db{b, tp::kBinary16};
        const tp::FlexFloatDyn dc{c, tp::kBinary16};
        const tp::binary16_t ta = a;
        const tp::binary16_t tb = b;
        const tp::binary16_t tc = c;
        ASSERT_EQ(fma(da, db, dc).value(), static_cast<double>(fma(ta, tb, tc)));
    }
}

TEST(FlexFloatFma, NearestDoubleFmaOracleWouldBeWrong) {
    // Documents why flexfloat routes fma through the integer path: there
    // exist ties the 53-bit round-to-nearest intermediate resolves wrongly.
    const FpFormat f = tp::kBinary16Alt;
    tp::util::Xoshiro256 rng{0x0DD1};
    const std::uint64_t mask = tp::bit_mask(f);
    int divergences = 0;
    for (int i = 0; i < 500000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        const std::uint64_t c = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f) || sf::is_nan(c, f)) continue;
        const std::uint64_t nearest_oracle =
            encode(std::fma(decode(a, f), decode(b, f), decode(c, f)), f);
        const std::uint64_t exact = sf::fma(a, b, c, f);
        if (sf::is_nan(exact, f)) continue;
        if (exact != nearest_oracle) ++divergences;
    }
    EXPECT_GT(divergences, 0);
}

TEST(FpuFma, ExecuteAndAccount) {
    tp::fpu::TransprecisionFpu fpu;
    const tp::FlexFloatDyn a{1.5, tp::kBinary16};
    const tp::FlexFloatDyn b{2.0, tp::kBinary16};
    const tp::FlexFloatDyn c{0.25, tp::kBinary16};
    EXPECT_EQ(fpu.execute_fma(a, b, c).value(), 3.25);
    EXPECT_EQ(fpu.counters().scalar_ops, 1u);
    EXPECT_THROW((void)fpu.execute_fma(a, b, tp::FlexFloatDyn{1.0, tp::kBinary8}),
                 std::invalid_argument);
    // An FMA costs less than a separate mul + add at the same format.
    const auto& m = tp::fpu::default_energy_model();
    EXPECT_LT(m.fp_op(tp::FpOp::Fma, tp::kBinary16),
              m.fp_op(tp::FpOp::Add, tp::kBinary16) +
                  m.fp_op(tp::FpOp::Mul, tp::kBinary16));
    EXPECT_FALSE(tp::fpu::TransprecisionFpu::supports(tp::FpOp::Fma, tp::kBinary32));
}

TEST(ContextFma, EmitsTernaryInstr) {
    tp::sim::TpContext ctx;
    const auto a = ctx.constant(1.5, tp::kBinary16);
    const auto b = ctx.constant(2.0, tp::kBinary16);
    const auto c = ctx.constant(0.25, tp::kBinary16);
    const auto r = fma(a, b, c);
    EXPECT_EQ(r.to_double(), 3.25);
    const auto program = ctx.take_program(false);
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].op, tp::FpOp::Fma);
    EXPECT_GE(program.instrs[0].src3, 0);
}

TEST(ContextFma, DependencyThroughThirdOperandStalls) {
    tp::sim::TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary32);
    const auto c = a * a;      // 2-cycle producer
    (void)fma(a, a, c);        // consumer via src3
    const auto program = ctx.take_program(false);
    const auto result = tp::sim::run_pipeline(program);
    EXPECT_GE(result.stall_cycles, 1u);
}

} // namespace
