#include "fpu/transprecision_fpu.hpp"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fpu/energy_model.hpp"
#include "fpu/latency_model.hpp"

namespace {

using tp::FlexFloatDyn;
using tp::FpOp;
using tp::fpu::default_energy_model;
using tp::fpu::EnergyModel;
using tp::fpu::TransprecisionFpu;

TEST(LatencyModel, PaperTimings) {
    // 32-bit and both 16-bit formats: pipelined, latency 2.
    EXPECT_EQ(tp::fpu::latency_cycles(FpOp::Add, tp::kBinary32), 2);
    EXPECT_EQ(tp::fpu::latency_cycles(FpOp::Mul, tp::kBinary16), 2);
    EXPECT_EQ(tp::fpu::latency_cycles(FpOp::Sub, tp::kBinary16Alt), 2);
    // binary8 arithmetic and all conversions: single cycle.
    EXPECT_EQ(tp::fpu::latency_cycles(FpOp::Add, tp::kBinary8), 1);
    EXPECT_EQ(tp::fpu::latency_cycles(FpOp::Mul, tp::kBinary8), 1);
    EXPECT_EQ(tp::fpu::cast_latency_cycles(), 1);
    // Pipelined ops accept one operation per cycle.
    EXPECT_EQ(tp::fpu::initiation_interval(FpOp::Add, tp::kBinary32), 1);
    EXPECT_EQ(tp::fpu::initiation_interval(FpOp::Mul, tp::kBinary16), 1);
    // Iterative div/sqrt block the unit.
    EXPECT_FALSE(tp::fpu::is_pipelined(FpOp::Div, tp::kBinary32));
    EXPECT_EQ(tp::fpu::initiation_interval(FpOp::Div, tp::kBinary32),
              tp::fpu::latency_cycles(FpOp::Div, tp::kBinary32));
    EXPECT_GT(tp::fpu::latency_cycles(FpOp::Div, tp::kBinary32),
              tp::fpu::latency_cycles(FpOp::Div, tp::kBinary8));
}

TEST(EnergyModelTest, NarrowerIsCheaper) {
    const EnergyModel& m = default_energy_model();
    EXPECT_LT(m.fp_op(FpOp::Add, tp::kBinary8), m.fp_op(FpOp::Add, tp::kBinary16));
    EXPECT_LT(m.fp_op(FpOp::Add, tp::kBinary16), m.fp_op(FpOp::Add, tp::kBinary32));
    EXPECT_LT(m.fp_op(FpOp::Mul, tp::kBinary8), m.fp_op(FpOp::Mul, tp::kBinary16));
    EXPECT_LT(m.fp_op(FpOp::Mul, tp::kBinary16Alt),
              m.fp_op(FpOp::Mul, tp::kBinary16)); // smaller mantissa multiplier
    EXPECT_LT(m.fp_op(FpOp::Mul, tp::kBinary16), m.fp_op(FpOp::Mul, tp::kBinary32));
}

TEST(EnergyModelTest, SimdAmortizesPerLaneCost) {
    const EnergyModel& m = default_energy_model();
    const double scalar4 = 4.0 * m.fp_op(FpOp::Add, tp::kBinary8);
    const double simd4 = m.fp_op_simd(FpOp::Add, tp::kBinary8, 4);
    EXPECT_LT(simd4, scalar4);
    EXPECT_GT(simd4, m.fp_op(FpOp::Add, tp::kBinary8)); // but not free
    const double scalar2 = 2.0 * m.fp_op(FpOp::Add, tp::kBinary16);
    EXPECT_LT(m.fp_op_simd(FpOp::Add, tp::kBinary16, 2), scalar2);
    EXPECT_EQ(m.fp_op_simd(FpOp::Add, tp::kBinary16, 1),
              m.fp_op(FpOp::Add, tp::kBinary16));
}

TEST(EnergyModelTest, SameExponentCastsAreCheaper) {
    const EnergyModel& m = default_energy_model();
    EXPECT_LT(m.cast(tp::kBinary32, tp::kBinary16Alt),
              m.cast(tp::kBinary32, tp::kBinary16));
    EXPECT_LT(m.cast(tp::kBinary16, tp::kBinary8),
              m.cast(tp::kBinary16Alt, tp::kBinary8));
}

TEST(EnergyModelTest, IdleSliceInventory) {
    // Slices: 1x32 + 2x16 + 4x8 = 7 total.
    EXPECT_EQ(EnergyModel::idle_slices(tp::kBinary32, 1), 6);
    EXPECT_EQ(EnergyModel::idle_slices(tp::kBinary16, 1), 6);
    EXPECT_EQ(EnergyModel::idle_slices(tp::kBinary16, 2), 5);
    EXPECT_EQ(EnergyModel::idle_slices(tp::kBinary8, 4), 3);
    EXPECT_EQ(EnergyModel::idle_slices(tp::kBinary8, 1), 6);
}

TEST(EnergyModelTest, MemAccessScalesWithBytes) {
    const EnergyModel& m = default_energy_model();
    EXPECT_LT(m.mem_access(1), m.mem_access(2));
    EXPECT_LT(m.mem_access(2), m.mem_access(4));
    // One packed 32-bit access is cheaper than four byte accesses.
    EXPECT_LT(m.mem_access(4), 4 * m.mem_access(1));
}

TEST(Fpu, SupportsPaperOps) {
    EXPECT_TRUE(TransprecisionFpu::supports(FpOp::Add, tp::kBinary8));
    EXPECT_TRUE(TransprecisionFpu::supports(FpOp::Sub, tp::kBinary16Alt));
    EXPECT_TRUE(TransprecisionFpu::supports(FpOp::Mul, tp::kBinary32));
    // Division is a model extension, not part of the paper's unit.
    EXPECT_FALSE(TransprecisionFpu::supports(FpOp::Div, tp::kBinary32));
    // Unknown (non-named) formats are not wired into any slice.
    EXPECT_FALSE(TransprecisionFpu::supports(FpOp::Add, tp::FpFormat{6, 9}));
}

TEST(Fpu, MaxLanesPerWidth) {
    EXPECT_EQ(TransprecisionFpu::max_lanes(tp::kBinary8), 4);
    EXPECT_EQ(TransprecisionFpu::max_lanes(tp::kBinary16), 2);
    EXPECT_EQ(TransprecisionFpu::max_lanes(tp::kBinary16Alt), 2);
    EXPECT_EQ(TransprecisionFpu::max_lanes(tp::kBinary32), 1);
}

TEST(Fpu, ScalarExecuteComputesAndAccounts) {
    TransprecisionFpu fpu;
    const FlexFloatDyn a{1.5, tp::kBinary16};
    const FlexFloatDyn b{0.25, tp::kBinary16};
    const FlexFloatDyn r = fpu.execute(FpOp::Add, a, b);
    EXPECT_EQ(r.value(), 1.75);
    EXPECT_EQ(fpu.counters().scalar_ops, 1u);
    EXPECT_GT(fpu.counters().energy_pj, 0.0);
    EXPECT_EQ(fpu.counters().busy_cycles, 1u); // II of a pipelined op
}

TEST(Fpu, MixedFormatOperandsRejected) {
    TransprecisionFpu fpu;
    const FlexFloatDyn a{1.0, tp::kBinary16};
    const FlexFloatDyn b{1.0, tp::kBinary16Alt};
    EXPECT_THROW((void)fpu.execute(FpOp::Add, a, b), std::invalid_argument);
}

TEST(Fpu, SimdExecute) {
    TransprecisionFpu fpu;
    std::vector<FlexFloatDyn> a;
    std::vector<FlexFloatDyn> b;
    for (int i = 0; i < 4; ++i) {
        a.emplace_back(0.5 * i, tp::kBinary8);
        b.emplace_back(0.25, tp::kBinary8);
    }
    const auto r = fpu.execute_simd(FpOp::Add, a, b);
    ASSERT_EQ(r.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(r[i].value(), tp::quantize(0.5 * i + 0.25, tp::kBinary8));
    }
    EXPECT_EQ(fpu.counters().simd_instrs, 1u);
    EXPECT_EQ(fpu.counters().simd_lanes, 4u);
}

TEST(Fpu, SimdLaneLimitEnforced) {
    TransprecisionFpu fpu;
    std::vector<FlexFloatDyn> a(3, FlexFloatDyn{1.0, tp::kBinary16});
    std::vector<FlexFloatDyn> b(3, FlexFloatDyn{1.0, tp::kBinary16});
    EXPECT_THROW((void)fpu.execute_simd(FpOp::Add, a, b), std::invalid_argument);
}

TEST(Fpu, SimdEnergyBelowScalarEnergy) {
    const EnergyModel& m = default_energy_model();
    TransprecisionFpu scalar_fpu;
    TransprecisionFpu simd_fpu;
    std::vector<FlexFloatDyn> a(4, FlexFloatDyn{1.0, tp::kBinary8});
    std::vector<FlexFloatDyn> b(4, FlexFloatDyn{2.0, tp::kBinary8});
    for (int i = 0; i < 4; ++i) {
        (void)scalar_fpu.execute(FpOp::Add, a[static_cast<std::size_t>(i)],
                                 b[static_cast<std::size_t>(i)]);
    }
    (void)simd_fpu.execute_simd(FpOp::Add, a, b);
    EXPECT_LT(simd_fpu.counters().energy_pj, scalar_fpu.counters().energy_pj);
    (void)m;
}

TEST(Fpu, ConvertAndIntConversions) {
    TransprecisionFpu fpu;
    const FlexFloatDyn wide{3.14159, tp::kBinary32};
    const FlexFloatDyn narrow = fpu.convert(wide, tp::kBinary16Alt);
    EXPECT_EQ(narrow.format(), tp::kBinary16Alt);
    EXPECT_EQ(narrow.value(), tp::quantize(wide.value(), tp::kBinary16Alt));
    EXPECT_EQ(fpu.convert(FlexFloatDyn{2.5, tp::kBinary16}, tp::kBinary16).value(),
              2.5);
    EXPECT_EQ(fpu.from_int(7, tp::kBinary16).value(), 7.0);
    EXPECT_EQ(fpu.to_int(FlexFloatDyn{2.5, tp::kBinary32}), 2); // RNE
    EXPECT_EQ(fpu.to_int(FlexFloatDyn{3.5, tp::kBinary32}), 4);
    EXPECT_EQ(fpu.counters().casts, 5u);
}

TEST(Fpu, UnaryOps) {
    TransprecisionFpu fpu;
    EXPECT_EQ(fpu.execute_unary(FpOp::Neg, FlexFloatDyn{1.5, tp::kBinary16}).value(),
              -1.5);
    EXPECT_EQ(fpu.execute_unary(FpOp::Abs, FlexFloatDyn{-2.0, tp::kBinary16}).value(),
              2.0);
    EXPECT_EQ(fpu.execute_unary(FpOp::Sqrt, FlexFloatDyn{2.25, tp::kBinary16}).value(),
              1.5);
}

TEST(Fpu, ResetCounters) {
    TransprecisionFpu fpu;
    (void)fpu.execute(FpOp::Add, FlexFloatDyn{1.0, tp::kBinary8},
                      FlexFloatDyn{1.0, tp::kBinary8});
    fpu.reset_counters();
    EXPECT_EQ(fpu.counters().scalar_ops, 0u);
    EXPECT_EQ(fpu.counters().energy_pj, 0.0);
}

} // namespace
