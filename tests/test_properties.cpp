// Parameterized property suites over the format space: invariants that
// must hold for *every* supported (e, m), not just the four paper formats.
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "flexfloat/sanitize.hpp"
#include "softfloat/softfloat.hpp"
#include "types/encoding.hpp"
#include "types/format.hpp"
#include "util/random.hpp"

namespace {

namespace sf = tp::softfloat;
using tp::decode;
using tp::encode;
using tp::FpFormat;
using tp::quantize;

class FormatProperty : public ::testing::TestWithParam<FpFormat> {};

std::string format_name(const ::testing::TestParamInfo<FpFormat>& info) {
    // append instead of operator+: GCC 12 -Wrestrict false positive (PR105651)
    std::string name{"e"};
    name.append(std::to_string(info.param.exp_bits));
    name.append("m");
    name.append(std::to_string(info.param.mant_bits));
    return name;
}

TEST_P(FormatProperty, QuantizeIsMonotone) {
    // x <= y implies quantize(x) <= quantize(y): rounding never reorders.
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0x10301 + f.exp_bits * 131u + f.mant_bits};
    for (int i = 0; i < 20000; ++i) {
        const int exp = static_cast<int>(rng.uniform_int(-40, 40));
        const double x = std::ldexp(rng.uniform(-2.0, 2.0), exp);
        const double y = x + std::ldexp(rng.uniform(0.0, 1.0), exp - 3);
        ASSERT_LE(quantize(x, f), quantize(y, f)) << "x=" << x << " y=" << y;
    }
}

TEST_P(FormatProperty, QuantizeRoundsToNearest) {
    // |quantize(x) - x| <= |g - x| for the representable neighbours g.
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0x4e4 + f.exp_bits * 17u + f.mant_bits};
    for (int i = 0; i < 20000; ++i) {
        const double x = std::ldexp(rng.uniform(-2.0, 2.0),
                                    static_cast<int>(rng.uniform_int(-12, 12)));
        const double q = quantize(x, f);
        if (!std::isfinite(q)) continue;
        // Neighbouring representable values around q.
        const std::uint64_t bits = encode(q, f);
        const std::uint64_t mag = bits & (tp::bit_mask(f) >> 1);
        const double err_q = std::fabs(q - x);
        if (mag > 0) {
            const double below = decode(bits - 1, f); // same sign, one ulp down
            ASSERT_LE(err_q, std::fabs(below - x) * (1 + 1e-15));
        }
        const double above = decode(bits + 1, f);
        if (std::isfinite(above)) {
            ASSERT_LE(err_q, std::fabs(above - x) * (1 + 1e-15));
        }
    }
}

TEST_P(FormatProperty, SanitizeAgreesWithQuantize) {
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0x5A52 + f.exp_bits * 31u + f.mant_bits};
    for (int i = 0; i < 30000; ++i) {
        const int exp = static_cast<int>(rng.uniform_int(-1074, 1023));
        double v = std::ldexp(rng.uniform(1.0, 2.0), exp);
        if (rng() & 1) v = -v;
        ASSERT_EQ(tp::detail::sanitize(v, f), quantize(v, f)) << v;
    }
}

TEST_P(FormatProperty, SoftFloatAddIdentityAndInverse) {
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0xADD + f.exp_bits * 7u + f.mant_bits};
    const std::uint64_t mask = tp::bit_mask(f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_inf(a, f)) continue;
        // a + 0 == a (exactly, including sign of non-zero values)
        ASSERT_TRUE(sf::eq(sf::add(a, 0, f), a, f));
        // a - a == +0
        ASSERT_EQ(sf::sub(a, a, f), 0u);
        // a * 1 == a
        ASSERT_TRUE(sf::eq(sf::mul(a, encode(1.0, f), f), a, f));
        // a / 1 == a
        ASSERT_TRUE(sf::eq(sf::div(a, encode(1.0, f), f), a, f));
    }
}

TEST_P(FormatProperty, SoftFloatMulSignSymmetry) {
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0x517 + f.exp_bits * 13u + f.mant_bits};
    const std::uint64_t mask = tp::bit_mask(f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f)) continue;
        // Inf * 0 is NaN; NaN carries a canonical (positive) sign, so the
        // symmetry only applies to non-NaN products.
        if (sf::is_nan(sf::mul(a, b, f), f)) continue;
        ASSERT_EQ(sf::mul(sf::neg(a, f), b, f), sf::neg(sf::mul(a, b, f), f));
        ASSERT_EQ(sf::mul(a, sf::neg(b, f), f), sf::neg(sf::mul(a, b, f), f));
    }
}

TEST_P(FormatProperty, SoftFloatSterbenz) {
    // Sterbenz lemma: b/2 <= a <= 2b implies a - b is exact.
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0x57E4 + f.exp_bits * 3u + f.mant_bits};
    for (int i = 0; i < 20000; ++i) {
        const double b = std::ldexp(rng.uniform(1.0, 2.0),
                                    static_cast<int>(rng.uniform_int(-8, 8)));
        const double a = b * rng.uniform(0.5, 2.0);
        const double qa = quantize(a, f);
        const double qb = quantize(b, f);
        if (!std::isfinite(qa) || !std::isfinite(qb)) continue; // tiny e overflows
        if (!(qb / 2 <= qa && qa <= 2 * qb)) continue;
        const std::uint64_t diff = sf::sub(encode(qa, f), encode(qb, f), f);
        ASSERT_EQ(decode(diff, f), qa - qb);
    }
}

TEST_P(FormatProperty, CastUpIsExact) {
    // Widening within the same or larger exponent range is exact.
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0xCA5 + f.exp_bits * 11u + f.mant_bits};
    const FpFormat wide{11, 52}; // binary64 dominates every supported format
    const std::uint64_t mask = tp::bit_mask(f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = rng() & mask;
        if (sf::is_nan(a, f)) continue;
        const std::uint64_t up = sf::cast(a, f, wide);
        ASSERT_EQ(decode(up, wide), decode(a, f));
        // And casting straight back recovers the original value.
        const std::uint64_t back = sf::cast(up, wide, f);
        ASSERT_TRUE(sf::eq(back, a, f));
    }
}

TEST_P(FormatProperty, ComparisonTotalOrderOnFinites) {
    const FpFormat f = GetParam();
    tp::util::Xoshiro256 rng{0xC03 + f.exp_bits * 19u + f.mant_bits};
    const std::uint64_t mask = tp::bit_mask(f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        if (sf::is_nan(a, f) || sf::is_nan(b, f)) continue;
        // Exactly one of <, ==, > holds.
        const int count = (sf::lt(a, b, f) ? 1 : 0) + (sf::eq(a, b, f) ? 1 : 0) +
                          (sf::lt(b, a, f) ? 1 : 0);
        ASSERT_EQ(count, 1);
        // And it is consistent with the decoded doubles.
        ASSERT_EQ(sf::lt(a, b, f), decode(a, f) < decode(b, f));
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatProperty,
                         ::testing::Values(tp::kBinary8, tp::kBinary16,
                                           tp::kBinary16Alt, tp::kBinary32,
                                           FpFormat{2, 2}, FpFormat{3, 6},
                                           FpFormat{6, 9}, FpFormat{7, 16},
                                           FpFormat{9, 22}, FpFormat{11, 24}),
                         format_name);

// --- exhaustive encode/decode round-trips for every narrow format ----------

class NarrowFormatExhaustive : public ::testing::TestWithParam<FpFormat> {};

TEST_P(NarrowFormatExhaustive, AllPatternsRoundTrip) {
    const FpFormat f = GetParam();
    const std::uint64_t patterns = 1ULL << f.width_bits();
    for (std::uint64_t bits = 0; bits < patterns; ++bits) {
        const double v = decode(bits, f);
        if (std::isnan(v)) continue;
        ASSERT_EQ(encode(v, f), bits) << "pattern " << bits;
    }
}

TEST_P(NarrowFormatExhaustive, DecodeIsMonotoneInMagnitude) {
    const FpFormat f = GetParam();
    const std::uint64_t sign_bit = 1ULL << (f.exp_bits + f.mant_bits);
    double prev = 0.0;
    for (std::uint64_t mag = 0; mag < sign_bit; ++mag) {
        const double v = decode(mag, f);
        if (std::isnan(v)) break; // NaNs occupy the top of the magnitude range
        ASSERT_GE(v, prev) << "magnitude " << mag;
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(NarrowFormats, NarrowFormatExhaustive,
                         ::testing::Values(tp::kBinary8, FpFormat{2, 2},
                                           FpFormat{3, 4}, FpFormat{4, 5},
                                           FpFormat{5, 6}, FpFormat{2, 9},
                                           FpFormat{9, 2}),
                         format_name);

} // namespace
