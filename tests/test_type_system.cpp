#include "types/type_system.hpp"

#include <gtest/gtest.h>

namespace {

using tp::FormatKind;
using tp::kTypeSystemV1;
using tp::kTypeSystemV2;

TEST(TypeSystem, V1BandsMatchPaper) {
    // (0,3] -> binary8, (3,11] -> binary16, above -> binary32.
    for (int p = 1; p <= 3; ++p) {
        EXPECT_EQ(kTypeSystemV1.format_for_precision(p), FormatKind::Binary8) << p;
    }
    for (int p = 4; p <= 11; ++p) {
        EXPECT_EQ(kTypeSystemV1.format_for_precision(p), FormatKind::Binary16) << p;
    }
    for (int p = 12; p <= tp::kMaxPrecisionBits; ++p) {
        EXPECT_EQ(kTypeSystemV1.format_for_precision(p), FormatKind::Binary32) << p;
    }
}

TEST(TypeSystem, V2BandsMatchPaper) {
    // (0,3] -> binary8, (3,8] -> binary16alt, (8,11] -> binary16,
    // above -> binary32. Column 9 of Fig. 4 is "the minimum number of
    // precision bits required for a binary16 type" in V2.
    for (int p = 1; p <= 3; ++p) {
        EXPECT_EQ(kTypeSystemV2.format_for_precision(p), FormatKind::Binary8) << p;
    }
    for (int p = 4; p <= 8; ++p) {
        EXPECT_EQ(kTypeSystemV2.format_for_precision(p), FormatKind::Binary16Alt)
            << p;
    }
    for (int p = 9; p <= 11; ++p) {
        EXPECT_EQ(kTypeSystemV2.format_for_precision(p), FormatKind::Binary16) << p;
    }
    for (int p = 12; p <= tp::kMaxPrecisionBits; ++p) {
        EXPECT_EQ(kTypeSystemV2.format_for_precision(p), FormatKind::Binary32) << p;
    }
}

TEST(TypeSystem, HypothesisMapExponents) {
    // The dynamic-range hypothesis assigns e=5 to binary8/16 bands and e=8
    // to binary16alt/32 bands.
    EXPECT_EQ(kTypeSystemV1.exp_bits_for_precision(2), 5);
    EXPECT_EQ(kTypeSystemV1.exp_bits_for_precision(8), 5);
    EXPECT_EQ(kTypeSystemV1.exp_bits_for_precision(15), 8);
    EXPECT_EQ(kTypeSystemV2.exp_bits_for_precision(2), 5);
    EXPECT_EQ(kTypeSystemV2.exp_bits_for_precision(8), 8);
    EXPECT_EQ(kTypeSystemV2.exp_bits_for_precision(10), 5);
    EXPECT_EQ(kTypeSystemV2.exp_bits_for_precision(20), 8);
}

TEST(TypeSystem, TrialFormats) {
    // Trial format carries precision-1 stored mantissa bits.
    EXPECT_EQ(kTypeSystemV2.trial_format(3), (tp::FpFormat{5, 2}));
    EXPECT_EQ(kTypeSystemV2.trial_format(8), (tp::FpFormat{8, 7}));
    EXPECT_EQ(kTypeSystemV2.trial_format(11), (tp::FpFormat{5, 10}));
    EXPECT_EQ(kTypeSystemV2.trial_format(24), (tp::FpFormat{8, 23}));
    EXPECT_EQ(kTypeSystemV1.trial_format(24), (tp::FpFormat{8, 23}));
    // Mid-band trials shrink only the mantissa, keeping the band's range.
    EXPECT_EQ(kTypeSystemV2.trial_format(6), (tp::FpFormat{8, 5}));
    EXPECT_EQ(kTypeSystemV1.trial_format(6), (tp::FpFormat{5, 5}));
}

TEST(TypeSystem, BandBoundariesBindToFullFormats) {
    // At each band's top, the trial format IS the concrete bound format.
    EXPECT_EQ(kTypeSystemV2.trial_format(3), tp::format_of(FormatKind::Binary8));
    EXPECT_EQ(kTypeSystemV2.trial_format(8),
              tp::format_of(FormatKind::Binary16Alt));
    EXPECT_EQ(kTypeSystemV2.trial_format(11),
              tp::format_of(FormatKind::Binary16));
    EXPECT_EQ(kTypeSystemV2.trial_format(24),
              tp::format_of(FormatKind::Binary32));
}

TEST(TypeSystem, Membership) {
    EXPECT_TRUE(kTypeSystemV1.contains(FormatKind::Binary8));
    EXPECT_TRUE(kTypeSystemV1.contains(FormatKind::Binary32));
    EXPECT_FALSE(kTypeSystemV1.contains(FormatKind::Binary16Alt));
    EXPECT_TRUE(kTypeSystemV2.contains(FormatKind::Binary16Alt));
    EXPECT_EQ(kTypeSystemV1.member_count(), 3);
    EXPECT_EQ(kTypeSystemV2.member_count(), 4);
}

TEST(TypeSystem, Names) {
    EXPECT_EQ(kTypeSystemV1.name(), "V1");
    EXPECT_EQ(kTypeSystemV2.name(), "V2");
}

} // namespace
