#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

using tp::util::indexed_map;
using tp::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4u);
    auto f1 = pool.submit([] { return 7; });
    auto f2 = pool.submit([] { return std::string{"ok"}; });
    EXPECT_EQ(f1.get(), 7);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
    ThreadPool pool{0};
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    constexpr int kTasks = 200;
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, ExceptionSurfacesAtGet) {
    ThreadPool pool{2};
    auto f = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
    EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool{2};
        for (int i = 0; i < 50; ++i) {
            (void)pool.submit([&counter] { ++counter; });
        }
    } // ~ThreadPool joins after running everything already submitted
    EXPECT_EQ(counter.load(), 50);
}

TEST(IndexedMap, InlineAndPooledAgree) {
    const auto square = [](std::size_t i) {
        return static_cast<int>(i) * static_cast<int>(i);
    };
    const std::vector<int> serial = indexed_map(nullptr, 32, square);
    ThreadPool pool{4};
    const std::vector<int> pooled = indexed_map(&pool, 32, square);
    EXPECT_EQ(serial, pooled);
    ASSERT_EQ(serial.size(), 32u);
    EXPECT_EQ(serial[5], 25);
}

TEST(IndexedMap, ResultsOrderedByIndexNotCompletion) {
    ThreadPool pool{4};
    // Later indices finish first; results must still arrive index-ordered.
    const std::vector<std::size_t> out =
        indexed_map(&pool, 16, [](std::size_t i) {
            std::this_thread::sleep_for(std::chrono::microseconds(500 * (16 - i)));
            return i;
        });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), std::size_t{0});
    EXPECT_EQ(out, expected);
}

} // namespace
