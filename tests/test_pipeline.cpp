#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/context.hpp"
#include "sim/trace.hpp"

namespace {

using tp::sim::run_pipeline;
using tp::sim::TpContext;
using tp::sim::TraceProgram;

TEST(Pipeline, EmptyTraceZeroCycles) {
    const TraceProgram program;
    const auto result = run_pipeline(program);
    EXPECT_EQ(result.cycles, 0u);
    EXPECT_EQ(result.stall_cycles, 0u);
}

TEST(Pipeline, IndependentIntOpsIssueBackToBack) {
    TpContext ctx;
    ctx.int_ops(10);
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.cycles, 10u);
    EXPECT_EQ(result.stall_cycles, 0u);
    EXPECT_EQ(result.issue_slots, 10u);
}

TEST(Pipeline, BranchPaysOneBubble) {
    TpContext ctx;
    ctx.branch(1);
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.cycles, 2u);
    EXPECT_EQ(result.stall_cycles, 1u);
}

TEST(Pipeline, DependentFp32OpsStall) {
    // c = a + b; d = c + a: the second add must wait for the first's
    // 2-cycle latency, costing one stall in between.
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary32);
    const auto b = ctx.constant(2.0, tp::kBinary32);
    const auto c = a + b;
    const auto d = c + a;
    (void)d;
    const auto result = run_pipeline(ctx.take_program(false));
    // add1 issues @0 (ready @2), add2 issues @2: one stall cycle (@1).
    EXPECT_EQ(result.stall_cycles, 1u);
    EXPECT_EQ(result.cycles, 4u); // add2 result ready at cycle 4
}

TEST(Pipeline, IndependentFp32OpsDoNotStall) {
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary32);
    const auto b = ctx.constant(2.0, tp::kBinary32);
    (void)(a + b);
    (void)(a * b);
    (void)(b - a);
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.stall_cycles, 0u);
    EXPECT_EQ(result.issue_slots, 3u);
}

TEST(Pipeline, Binary8DependentOpsDoNotStall) {
    // binary8 arithmetic is single cycle, so even a dependence chain
    // issues back-to-back.
    TpContext ctx;
    auto acc = ctx.constant(0.0, tp::kBinary8);
    const auto x = ctx.constant(1.0, tp::kBinary8);
    for (int i = 0; i < 8; ++i) acc = acc + x;
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.stall_cycles, 0u);
    EXPECT_EQ(result.cycles, 8u);
}

TEST(Pipeline, CompilerCanHideFpLatencyWithIndependentWork) {
    // The paper notes measured cycles depend on the compiler's ability to
    // fill latency slots. An independent int op between producer and
    // consumer hides the stall entirely.
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary16);
    const auto c = a + a;
    ctx.int_ops(1); // independent filler
    (void)(c + a);
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.stall_cycles, 0u);
}

TEST(Pipeline, IterativeDivBlocksTheUnit) {
    TpContext ctx;
    const auto a = ctx.constant(1.0, tp::kBinary32);
    const auto b = ctx.constant(3.0, tp::kBinary32);
    (void)(a / b);
    (void)(a / b); // second div waits for the non-pipelined unit
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_GE(result.stall_cycles, 10u);
}

TEST(Pipeline, LoadLatencyOneNoStallOnImmediateUse) {
    TpContext ctx;
    auto arr = ctx.make_array(tp::kBinary32, 2);
    const auto x = arr.load(0);
    const auto y = arr.load(1);
    (void)(x + y);
    const auto result = run_pipeline(ctx.take_program(false));
    EXPECT_EQ(result.stall_cycles, 0u);
}

TEST(Pipeline, SimdGroupIssuesOnce) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary8);
            const auto b = ctx.constant(2.0, tp::kBinary8);
            (void)(a + b);
        }
    }
    const auto program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 1u);
    const auto result = run_pipeline(program);
    EXPECT_EQ(result.issue_slots, 1u);
    EXPECT_EQ(result.cycles, 1u);
}

TEST(Pipeline, VectorizationShortensExecution) {
    const auto build = [](TpContext& ctx) {
        auto a = ctx.make_array(tp::kBinary8, 64);
        auto b = ctx.make_array(tp::kBinary8, 64);
        auto c = ctx.make_array(tp::kBinary8, 64);
        const auto region = ctx.vector_region();
        for (std::size_t i = 0; i < 64; ++i) {
            const auto x = a.load(i);
            const auto y = b.load(i);
            c.store(i, x + y);
        }
    };
    TpContext scalar_ctx;
    build(scalar_ctx);
    const auto scalar = run_pipeline(scalar_ctx.take_program(false));
    TpContext simd_ctx;
    build(simd_ctx);
    const auto simd = run_pipeline(simd_ctx.take_program(true));
    EXPECT_LT(simd.cycles, scalar.cycles);
    // Four lanes over loads, adds and stores: close to a 4x reduction.
    EXPECT_LT(simd.cycles * 3, scalar.cycles);
}

TEST(Pipeline, GroupDependencyStillStalls) {
    // Two dependent 16-bit SIMD adds: the second group waits for the
    // first group's 2-cycle latency.
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        const auto a = ctx.constant(1.0, tp::kBinary16);
        const auto b = ctx.constant(2.0, tp::kBinary16);
        const auto c = a + b;  // lane 0 of group 1
        const auto d = a * b;  // (mul bucket)
        const auto e = b + b;  // lane 1 of group 1
        const auto f = b * b;  // (mul bucket)
        (void)(c + e);         // depends on group 1
        (void)(d + f);
    }
    const auto program = ctx.take_program(true);
    const auto result = run_pipeline(program);
    EXPECT_GE(result.stall_cycles, 1u);
}

} // namespace
