// Static precision-dataflow analysis (src/analysis/): capture machinery,
// signal-flow construction, error model, lint, and the derived warm-start
// bounds — including the Instr::fmt2 sentinel regression and the
// soundness/identity contract of SearchOptions::static_bounds on a real
// app. The all-apps soundness battery lives in the conformance suite
// (tests/app_conformance.hpp); these tests pin the building blocks.
#include <array>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string_view>

#include <gtest/gtest.h>

#include "analysis/derive_bounds.hpp"
#include "analysis/error_model.hpp"
#include "analysis/lint.hpp"
#include "analysis/range_analysis.hpp"
#include "analysis/region_impact.hpp"
#include "analysis/signal_flow.hpp"
#include "apps/app.hpp"
#include "fpu/energy_model.hpp"
#include "sim/platform.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/quality.hpp"
#include "tuning/search.hpp"
#include "types/encoding.hpp"

namespace tp {
namespace {

using analysis::LintKind;

// --- Instr::fmt2 sentinel (regression) --------------------------------------

// fmt2 used to default to binary32, so any consumer that read it without
// checking the kind silently saw a valid-looking cast target on every
// arithmetic instruction. It now defaults to the invalid sentinel.
TEST(TraceInstr, Fmt2DefaultsToInvalidSentinel) {
    const sim::Instr instr;
    EXPECT_FALSE(instr.fmt2.valid());
    EXPECT_FALSE(instr.has_cast_target());
    EXPECT_FALSE(kNoFormat.valid());
}

TEST(TraceInstr, CastsAlwaysCarryATarget) {
    auto app = apps::make_app("dwt");
    app->prepare(0);
    sim::TpContext ctx;
    (void)app->run(ctx, app->uniform_config(kBinary16));
    const sim::TraceProgram program = ctx.take_program(false);
    for (const sim::Instr& instr : program.instrs) {
        if (instr.kind == sim::InstrKind::FpCast) {
            EXPECT_TRUE(instr.has_cast_target());
        } else {
            EXPECT_FALSE(instr.has_cast_target());
        }
    }
}

// --- lint_trace on hand-built traces ----------------------------------------

sim::Instr make_cast(FpFormat from, FpFormat to, std::int32_t src,
                     std::int32_t dst) {
    sim::Instr instr;
    instr.kind = sim::InstrKind::FpCast;
    instr.fmt = from;
    instr.fmt2 = to;
    instr.src1 = src;
    instr.dst = dst;
    return instr;
}

TEST(LintTrace, PinsRedundantCast) {
    sim::TraceProgram program;
    program.instrs.push_back(make_cast(kBinary32, kBinary32, 0, 1));
    program.value_count = 2;
    const analysis::LintReport report = analysis::lint_trace(program);
    EXPECT_EQ(report.count(LintKind::RedundantCast), 1u);
    EXPECT_EQ(report.count(LintKind::DoubleRounding), 0u);
}

TEST(LintTrace, PinsDoubleRoundingChain) {
    // binary64 -> e8m15 -> binary16: the intermediate's 16 precision bits
    // are below 2*11+2, so the two roundings can differ from one direct
    // rounding. Executed twice to check occurrence folding.
    sim::TraceProgram program;
    program.instrs.push_back(make_cast(kBinary64, FpFormat{8, 15}, 0, 1));
    program.instrs.push_back(make_cast(FpFormat{8, 15}, kBinary16, 1, 2));
    program.instrs.push_back(make_cast(kBinary64, FpFormat{8, 15}, 3, 4));
    program.instrs.push_back(make_cast(FpFormat{8, 15}, kBinary16, 4, 5));
    program.value_count = 6;
    const analysis::LintReport report = analysis::lint_trace(program);
    ASSERT_EQ(report.count(LintKind::DoubleRounding), 1u);
    EXPECT_NE(report.diagnostics[0].message.find("2 occurrences"),
              std::string::npos);
}

TEST(LintTrace, WideIntermediateIsInnocuous) {
    // binary64 -> binary32 -> binary16: 24 >= 2*11 + 2, the classic safe
    // double rounding — no diagnostic.
    sim::TraceProgram program;
    program.instrs.push_back(make_cast(kBinary64, kBinary32, 0, 1));
    program.instrs.push_back(make_cast(kBinary32, kBinary16, 1, 2));
    program.value_count = 3;
    EXPECT_TRUE(analysis::lint_trace(program).empty());
}

TEST(LintTrace, IgnoresNonCastInstructions) {
    // An FpArith whose fmt2 happens to equal fmt must not be mistaken for
    // a redundant cast (the pre-sentinel failure mode), and FromInt
    // conversions (fmt == fmt2 by construction) are not redundant casts.
    sim::TraceProgram program;
    sim::Instr arith;
    arith.kind = sim::InstrKind::FpArith;
    arith.op = FpOp::Add;
    arith.fmt = kBinary32;
    arith.fmt2 = kBinary32;
    arith.dst = 2;
    arith.src1 = 0;
    arith.src2 = 1;
    program.instrs.push_back(arith);
    sim::Instr from_int = make_cast(kBinary32, kBinary32, -1, 3);
    from_int.op = FpOp::FromInt;
    program.instrs.push_back(from_int);
    program.value_count = 4;
    EXPECT_TRUE(analysis::lint_trace(program).empty());
}

// --- tagging / capture -------------------------------------------------------

TEST(SignalFlow, TaggingConfigRoundTrips) {
    const auto config = analysis::tagging_config(9);
    for (std::size_t s = 0; s < 9; ++s) {
        const FpFormat tag = config.at(static_cast<apps::SignalId>(s));
        EXPECT_TRUE(tag.valid());
        EXPECT_EQ(analysis::signal_of_tag(tag, 9), static_cast<std::int32_t>(s));
    }
    EXPECT_EQ(analysis::signal_of_tag(kBinary32, 9), analysis::kUnknownSignal);
    // binary64 IS signal 0's tag; formats past the signal count are not tags.
    EXPECT_EQ(analysis::signal_of_tag(kBinary64, 3), 0);
    EXPECT_EQ(analysis::signal_of_tag(FpFormat{11, 49}, 3),
              analysis::kUnknownSignal);
    EXPECT_THROW((void)analysis::tagging_config(52), std::invalid_argument);
}

TEST(SignalFlow, ShadowCaptureTracksGolden) {
    // The binary64 shadow run follows the golden execution; only app-level
    // input staging through the near-binary64 tag formats perturbs it.
    for (const char* name : {"jacobi", "knn", "fft"}) {
        auto app = apps::make_app(name);
        const auto golden = app->golden(0);
        const auto capture = analysis::capture_trace(*app, 0);
        ASSERT_EQ(capture.output.size(), golden.size()) << name;
        EXPECT_LE(tuning::output_error(golden, capture.output), 1e-9) << name;
        EXPECT_EQ(capture.program.values.size(), capture.program.value_count)
            << name;
        EXPECT_FALSE(capture.program.output_taps.empty()) << name;
    }
}

TEST(SignalFlow, BuildsSignalLevelDag) {
    auto app = apps::make_app("jacobi");
    const auto capture = analysis::capture_trace(*app, 0);
    const std::size_t S = app->signals().size();
    const auto flow = analysis::build_signal_flow(capture.program, S);
    ASSERT_EQ(flow.value_signal.size(), capture.program.value_count);
    // Every recorded value maps to a signal (tag formats only).
    std::size_t tagged = 0;
    for (const std::int32_t sig : flow.value_signal) {
        if (sig >= 0) ++tagged;
        EXPECT_LT(sig, static_cast<std::int32_t>(S));
    }
    EXPECT_EQ(tagged, capture.program.value_count);
    // Jacobi averages neighbours: some signal accumulates and some signal
    // depends on another.
    bool any_edge = false;
    bool any_chain = false;
    for (std::size_t a = 0; a < S; ++a) {
        any_chain = any_chain || flow.max_accumulation_chain[a] > 1;
        for (std::size_t b = 0; b < S; ++b) {
            any_edge = any_edge || (a != b && flow.depends_on[a][b] != 0);
        }
    }
    EXPECT_TRUE(any_edge);
    EXPECT_TRUE(any_chain);
}

TEST(SignalFlow, AlignmentTransfersSignalsAndDetectsMismatch) {
    auto app = apps::make_app("dwt");
    const auto capture = analysis::capture_trace(*app, 0);
    const std::size_t S = app->signals().size();
    const auto flow = analysis::build_signal_flow(capture.program, S);

    // A real run only aligns with the capture when its config keeps every
    // signal's format distinct — a uniform config elides the casts the tag
    // config emits at signal junctions, so the instruction streams differ
    // structurally. The staircase config is the designated probe for this.
    app->prepare(0);
    sim::TpContext ctx{sim::TpContext::Config{.trace = true,
                                              .force_emulated = true,
                                              .record_values = true,
                                              .binary64_shadow = false}};
    (void)app->run(ctx, analysis::staircase_config(S));
    sim::TraceProgram observed = ctx.take_program(false);
    const auto mapped =
        analysis::align_value_signals(observed, flow, capture.program);
    ASSERT_EQ(mapped.size(), observed.value_count);
    // Every aligned value is attributed to a real signal of the app.
    for (const std::int32_t sig : mapped) {
        EXPECT_GE(sig, 0);
        EXPECT_LT(sig, static_cast<std::int32_t>(S));
    }

    // A structurally diverged trace (as from a flipped data-dependent
    // branch) is rejected, not mis-attributed.
    observed.instrs.pop_back();
    EXPECT_TRUE(
        analysis::align_value_signals(observed, flow, capture.program).empty());

    // The stream fallback maps every tagged array to its signal and
    // survives divergence (stream ids come from make_array order).
    const auto streams = analysis::stream_signals(capture.program, S);
    int tagged = 0;
    for (const std::int32_t sig : streams) {
        tagged += sig >= 0;
        EXPECT_LT(sig, static_cast<std::int32_t>(S));
    }
    EXPECT_GE(tagged, 2);
}

// --- error model / ranges ----------------------------------------------------

TEST(ErrorModel, ObservationsAndCoefficientsArePopulated) {
    auto app = apps::make_app("svm");
    const auto capture = analysis::capture_trace(*app, 0);
    const std::size_t S = app->signals().size();
    const auto flow = analysis::build_signal_flow(capture.program, S);
    const auto model = analysis::build_error_model(capture.program, flow);
    ASSERT_EQ(model.observed.size(), S);
    bool any_observation = false;
    for (const auto& obs : model.observed) {
        any_observation = any_observation || obs.count > 0;
        EXPECT_GE(obs.max_value, obs.min_value);
    }
    EXPECT_TRUE(any_observation);
    // Output taps carry accumulated error sensitivity to some signal.
    double total = 0.0;
    for (const auto& tap : capture.program.output_taps) {
        if (tap.value_id < 0) continue;
        for (const double c : model.var_row(tap.value_id)) total += c;
    }
    EXPECT_GT(total, 0.0);

    const auto ranges =
        analysis::static_signal_ranges_at_uniform(model, flow, 24, 4.0);
    ASSERT_EQ(ranges.size(), S);
    for (std::size_t s = 0; s < S; ++s) {
        if (!ranges[s].populated) continue;
        EXPECT_LE(ranges[s].lo, model.observed[s].min_value);
        EXPECT_GE(ranges[s].hi, model.observed[s].max_value);
        EXPECT_GE(ranges[s].exp_floor_bits, 1);
        EXPECT_LE(ranges[s].exp_floor_bits, 11);
    }
}

// --- analyze: signal-level lint ----------------------------------------------

TEST(Analyze, InfeasibleAccumulationAtAbsurdEpsilon) {
    auto app = apps::make_app("jacobi");
    analysis::DeriveOptions options;
    options.input_sets = {0};
    const auto result = analysis::analyze(*app, 1e-12, options);
    EXPECT_GT(result.lint.count(LintKind::InfeasibleAccumulation), 0u);
    bool any_above_floor = false;
    for (const auto& sb : result.signals) {
        any_above_floor = any_above_floor || sb.lower_bits > kMinPrecisionBits;
    }
    EXPECT_TRUE(any_above_floor);
    EXPECT_FALSE(result.to_string().empty());
}

/// Minimal two-signal app whose values all sit deep in the subnormal range
/// of the e=5 formats — the SubnormalRange lint target.
class TinyValuesApp final : public apps::App {
public:
    TinyValuesApp()
        : App({{"in", kN}, {"out", kN}}) {}

    [[nodiscard]] std::string_view name() const override { return "tiny"; }
    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<TinyValuesApp>(*this);
    }
    void prepare(unsigned input_set) override {
        for (std::size_t i = 0; i < kN; ++i) {
            input_[i] = 1e-30 * static_cast<double>(i + 1 + input_set);
        }
    }
    std::vector<double> run(sim::TpContext& ctx,
                            const apps::TypeConfig& config) override {
        auto in = ctx.make_array(config.at(0), kN);
        auto out = ctx.make_array(config.at(1), kN);
        for (std::size_t i = 0; i < kN; ++i) in.set_raw(i, input_[i]);
        for (std::size_t i = 0; i < kN; ++i) {
            const sim::TpValue v = in.load(i);
            out.store(i, apps::to(v + v, config.at(1)));
            ctx.loop_iteration();
        }
        std::vector<double> output;
        output.reserve(kN);
        for (std::size_t i = 0; i < kN; ++i) output.push_back(out.raw(i));
        return output;
    }

private:
    static constexpr std::size_t kN = 16;
    std::array<double, kN> input_{};
};

TEST(Analyze, SubnormalRangeDiagnosed) {
    TinyValuesApp app;
    analysis::DeriveOptions options;
    options.input_sets = {0};
    const auto result = analysis::analyze(app, 1e-2, options);
    EXPECT_EQ(result.lint.count(LintKind::SubnormalRange), 2u);
    for (const auto& sb : result.signals) {
        // 1e-30 needs e=8's range; the floor must see that.
        EXPECT_GE(sb.exp_floor_bits, 1);
    }
    ASSERT_EQ(result.ranges.size(), 2u);
    EXPECT_TRUE(result.ranges[0].populated);
    EXPECT_LT(result.ranges[0].max_abs, std::ldexp(1.0, -14));
}

// --- derive_warm_start + SearchOptions::static_bounds ------------------------

TEST(DeriveBounds, WarmStartIsSoundAndPrunesTrials) {
    auto app = apps::make_app("dwt");
    tuning::SearchOptions options;
    options.epsilon = 1e-3;
    options.input_sets = {0, 1};
    options.max_passes = 2;

    const tuning::WarmStart warm = analysis::derive_warm_start(
        *app, options.epsilon, options.input_sets, options.type_system);
    ASSERT_EQ(warm.seed_bits.size(), app->signals().size());
    ASSERT_EQ(warm.lower_bounds.size(), app->signals().size());
    EXPECT_TRUE(warm.upper_bounds.empty());
    for (std::size_t i = 0; i < warm.seed_bits.size(); ++i) {
        EXPECT_EQ(warm.seed_bits[i], kMaxPrecisionBits);
        EXPECT_GE(warm.lower_bounds[i], kMinPrecisionBits);
        EXPECT_LE(warm.lower_bounds[i], kMaxPrecisionBits);
    }

    tuning::EvalEngine cold_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const tuning::TuningResult cold = distributed_search(cold_engine, options);

    // Soundness: no tuned signal below its derived bound.
    for (std::size_t i = 0; i < cold.signals.size(); ++i) {
        EXPECT_GE(cold.signals[i].precision_bits, warm.lower_bounds[i])
            << cold.signals[i].name;
    }

    // static_bounds resolves to exactly this warm start: same tuned
    // signals, never more submitted trials, and the pruned bisection steps
    // booked on the engine.
    tuning::EvalEngine bounded_engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    tuning::SearchOptions bounded_options = options;
    bounded_options.static_bounds = true;
    const tuning::TuningResult bounded =
        distributed_search(bounded_engine, bounded_options);
    ASSERT_EQ(bounded.signals.size(), cold.signals.size());
    for (std::size_t i = 0; i < cold.signals.size(); ++i) {
        EXPECT_EQ(bounded.signals[i].precision_bits,
                  cold.signals[i].precision_bits)
            << cold.signals[i].name;
        EXPECT_EQ(bounded.signals[i].bound, cold.signals[i].bound)
            << cold.signals[i].name;
    }
    EXPECT_LE(bounded.program_runs, cold.program_runs);
    EXPECT_GT(bounded_engine.stats().trials_skipped_by_bounds, 0u);
    EXPECT_EQ(cold_engine.stats().trials_skipped_by_bounds, 0u);
}

// --- cost regions (sim/platform.hpp) -----------------------------------------

sim::Instr make_branch() {
    sim::Instr instr;
    instr.kind = sim::InstrKind::Branch;
    return instr;
}

sim::Instr make_arith(FpFormat fmt, bool vectorizable, FpOp op = FpOp::Add) {
    sim::Instr instr;
    instr.kind = sim::InstrKind::FpArith;
    instr.op = op;
    instr.fmt = fmt;
    instr.vectorizable = vectorizable;
    return instr;
}

sim::Instr make_mem(sim::InstrKind kind, FpFormat fmt, bool vectorizable,
                    std::uint32_t stream) {
    sim::Instr instr;
    instr.kind = kind;
    instr.fmt = fmt;
    instr.bytes = 4;
    instr.vectorizable = vectorizable;
    instr.stream = stream;
    return instr;
}

sim::TraceProgram branchy_program(std::size_t branches,
                                  std::size_t arith_per_segment) {
    sim::TraceProgram program;
    for (std::size_t b = 0; b <= branches; ++b) {
        for (std::size_t a = 0; a < arith_per_segment; ++a) {
            program.instrs.push_back(make_arith(kBinary32, false));
        }
        if (b < branches) program.instrs.push_back(make_branch());
    }
    return program;
}

TEST(CostRegions, CountIsAPureFunctionOfBranchCount) {
    // Empty trace: the trailing region is always emitted.
    const auto none = sim::cost_regions(sim::TraceProgram{});
    ASSERT_EQ(none.size(), 1u);
    EXPECT_EQ(none[0], (sim::CostRegion{0, 0}));

    for (const std::size_t branches : {0ul, 5ul, 127ul, 128ul, 300ul, 1000ul}) {
        const auto a = sim::cost_regions(branchy_program(branches, 1));
        const auto b = sim::cost_regions(branchy_program(branches, 7));
        // Same branch skeleton, different instruction counts: identical
        // region COUNT (what the delta path's partition gate relies on).
        EXPECT_EQ(a.size(), b.size()) << branches << " branches";
        EXPECT_LE(a.size(), sim::kMaxCostRegions) << branches << " branches";
        const std::size_t per = sim::segments_per_cost_region(branches);
        EXPECT_EQ(a.size(), (branches + 1 + per - 1) / per)
            << branches << " branches";
        // Contiguous cover of the whole trace.
        const auto program = branchy_program(branches, 7);
        const auto regions = sim::cost_regions(program);
        std::size_t expect_begin = 0;
        for (const auto& region : regions) {
            EXPECT_EQ(region.begin, expect_begin);
            EXPECT_GE(region.end, region.begin);
            expect_begin = region.end;
        }
        EXPECT_EQ(expect_begin, program.instrs.size());
    }
}

TEST(CostRegions, FoldReproducesMonolithicSimulation) {
    auto app = apps::make_app("dwt");
    app->prepare(0);
    sim::TpContext ctx;
    (void)app->run(ctx, app->uniform_config(kBinary16));
    const sim::TraceProgram program = ctx.take_program(true);

    const auto& model = fpu::default_energy_model();
    const sim::CoreParams core{};
    const sim::RegionReport rr = sim::simulate_regions(program, model, core);
    EXPECT_EQ(rr.report, sim::simulate(program, model, core));

    // Each region's cost and signature are reproducible in isolation, and
    // the counters sum exactly to the per-instruction report fields.
    const auto regions = sim::cost_regions(program);
    ASSERT_EQ(rr.regions.size(), regions.size());
    std::uint64_t fp_ops = 0;
    std::uint64_t mem_accesses = 0;
    std::uint64_t branches = 0;
    std::uint64_t casts = 0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        EXPECT_EQ(rr.regions[i], sim::cost_region(program, regions[i], model,
                                                  core));
        EXPECT_EQ(rr.regions[i].signature,
                  sim::region_signature(program, regions[i]));
        fp_ops += rr.regions[i].fp_ops;
        mem_accesses += rr.regions[i].mem_accesses;
        branches += rr.regions[i].branches;
        casts += rr.regions[i].casts;
    }
    EXPECT_EQ(fp_ops, rr.report.fp_ops);
    EXPECT_EQ(mem_accesses, rr.report.mem_accesses);
    EXPECT_EQ(branches, rr.report.branches);
    EXPECT_EQ(casts, rr.report.casts);
    EXPECT_EQ(sim::assemble_regions(program, rr.regions, model, core),
              rr.report);
}

// --- region impact (analysis/region_impact.hpp) ------------------------------

TEST(RegionImpact, ExactAttributionWithoutVectorWindows) {
    // Two scalar (non-vectorizable) arithmetic segments: signal 0's cost
    // lives in region 0 only, signal 1's in region 1 only, signal 2 is
    // untouched — the exact-attribution half of the analysis, no smearing.
    const std::size_t S = 3;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_arith(tags.at(0), false));
    program.instrs.push_back(make_branch());
    program.instrs.push_back(make_arith(tags.at(1), false));

    const auto map = analysis::build_region_impact(program, S);
    ASSERT_EQ(map.region_count, 2u);
    EXPECT_EQ(map.branch_count, 1u);
    EXPECT_EQ(map.impact[0], (std::vector<char>{1, 0}));
    EXPECT_EQ(map.impact[1], (std::vector<char>{0, 1}));
    EXPECT_EQ(map.impact[2], (std::vector<char>{0, 0}));
    EXPECT_EQ(map.always_impacted, (std::vector<char>{0, 0}));

    EXPECT_TRUE(map.region_impacted(0, {0}));
    EXPECT_FALSE(map.region_impacted(1, {0}));
    EXPECT_FALSE(map.region_impacted(0, {2}));
    // Out-of-map probe signals are conservatively impacted everywhere.
    EXPECT_TRUE(map.region_impacted(0, {static_cast<std::int32_t>(S)}));
}

TEST(RegionImpact, VectorWindowSmearsAcrossRegions) {
    // A vectorizable load (signal 0) and a vectorizable add (signal 1)
    // with a branch between them, closed by a scalar barrier (signal 2):
    // the vectorizer may bucket the load/add and relocate their cost
    // anywhere up to the barrier, so BOTH signals smear over BOTH regions.
    // The barrier itself cannot drift and stays exactly attributed.
    const std::size_t S = 3;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_mem(sim::InstrKind::Load, tags.at(0), true, 0));
    program.instrs.push_back(make_branch());
    program.instrs.push_back(make_arith(tags.at(1), true));
    program.instrs.push_back(make_arith(tags.at(2), false));

    const auto map = analysis::build_region_impact(program, S);
    ASSERT_EQ(map.region_count, 2u);
    EXPECT_EQ(map.impact[0], (std::vector<char>{1, 1}));
    EXPECT_EQ(map.impact[1], (std::vector<char>{1, 1}));
    EXPECT_EQ(map.impact[2], (std::vector<char>{0, 1}));
    EXPECT_EQ(map.always_impacted, (std::vector<char>{0, 0}));
}

TEST(RegionImpact, NonBucketableWindowStaysExact) {
    // Vectorizable instructions that can never enter a SIMD bucket under
    // any binding (Div is not a bucketed op) open a window but smear
    // nothing: attribution stays exact.
    const std::size_t S = 2;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_arith(tags.at(0), true, FpOp::Div));
    program.instrs.push_back(make_branch());
    program.instrs.push_back(make_arith(tags.at(1), true, FpOp::Div));

    const auto map = analysis::build_region_impact(program, S);
    ASSERT_EQ(map.region_count, 2u);
    EXPECT_EQ(map.impact[0], (std::vector<char>{1, 0}));
    EXPECT_EQ(map.impact[1], (std::vector<char>{0, 1}));
}

TEST(RegionImpact, StreamRoundTripChargesTheArraySignal) {
    // A value produced in signal 1, stored into signal 0's array, then
    // loaded back in a later region: the memory round trip is charged to
    // the ARRAY's signal at both ends (store and load carry signal 0's
    // format under every binding), and the producer's region is charged
    // to signal 1 — but signal 1 never impacts the later load's region.
    const std::size_t S = 3;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_arith(tags.at(1), false));
    program.instrs.push_back(
        make_mem(sim::InstrKind::Store, tags.at(0), false, 0));
    program.instrs.push_back(make_branch());
    program.instrs.push_back(
        make_mem(sim::InstrKind::Load, tags.at(0), false, 0));

    const auto map = analysis::build_region_impact(program, S);
    ASSERT_EQ(map.region_count, 2u);
    EXPECT_EQ(map.impact[0], (std::vector<char>{1, 1}));
    EXPECT_EQ(map.impact[1], (std::vector<char>{1, 0}));
    EXPECT_EQ(map.impact[2], (std::vector<char>{0, 0}));
}

TEST(RegionImpact, CastsTouchBothSignalsAndUnknownTagsAlwaysImpact) {
    const std::size_t S = 2;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_cast(tags.at(0), tags.at(1), 0, 1));
    program.instrs.push_back(make_branch());
    // binary32 is no signal's tag: the region must be pessimized.
    program.instrs.push_back(make_arith(kBinary32, false));

    const auto map = analysis::build_region_impact(program, S);
    ASSERT_EQ(map.region_count, 2u);
    EXPECT_EQ(map.impact[0], (std::vector<char>{1, 0}));
    EXPECT_EQ(map.impact[1], (std::vector<char>{1, 0}));
    EXPECT_EQ(map.always_impacted, (std::vector<char>{0, 1}));
    EXPECT_TRUE(map.region_impacted(1, {}));
}

TEST(RegionImpact, CollectsAndFoldsCastSites) {
    const std::size_t S = 3;
    const auto tags = analysis::tagging_config(S);
    sim::TraceProgram program;
    program.instrs.push_back(make_cast(tags.at(0), tags.at(1), 0, 1));
    program.instrs.push_back(make_cast(tags.at(1), tags.at(2), 1, 2));
    program.instrs.push_back(make_cast(tags.at(0), tags.at(1), 3, 4));
    sim::Instr from_int = make_cast(tags.at(2), tags.at(2), -1, 5);
    from_int.op = FpOp::FromInt;
    program.instrs.push_back(from_int); // not a format-boundary cast

    const auto sites = analysis::collect_cast_sites(program, S);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0].src_signal, 0);
    EXPECT_EQ(sites[0].dst_signal, 1);
    EXPECT_EQ(sites[0].first_instr, 0u);
    EXPECT_EQ(sites[0].occurrences, 2u);
    EXPECT_EQ(sites[1].src_signal, 1);
    EXPECT_EQ(sites[1].dst_signal, 2);
    EXPECT_EQ(sites[1].occurrences, 1u);
}

// --- analyze: dead-cast lint -------------------------------------------------

/// Two-signal app whose output demands binary32-level precision: at a
/// tight epsilon the derived bounds pin BOTH signals' reachable member
/// sets to {binary32}, so the in->out cast elides under every reachable
/// binding — the DeadCast lint target.
class CoupledPrecisionApp final : public apps::App {
public:
    CoupledPrecisionApp()
        : App({{"in", kN}, {"out", kN}}) {}

    [[nodiscard]] std::string_view name() const override { return "coupled"; }
    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<CoupledPrecisionApp>(*this);
    }
    void prepare(unsigned input_set) override {
        for (std::size_t i = 0; i < kN; ++i) {
            input_[i] =
                1.0 + 1e-6 * static_cast<double>(i + 1 + input_set);
        }
    }
    std::vector<double> run(sim::TpContext& ctx,
                            const apps::TypeConfig& config) override {
        auto in = ctx.make_array(config.at(0), kN);
        auto out = ctx.make_array(config.at(1), kN);
        for (std::size_t i = 0; i < kN; ++i) in.set_raw(i, input_[i]);
        for (std::size_t i = 0; i < kN; ++i) {
            const sim::TpValue v = in.load(i);
            out.store(i, apps::to(v + v, config.at(1)));
            ctx.loop_iteration();
        }
        std::vector<double> output;
        output.reserve(kN);
        for (std::size_t i = 0; i < kN; ++i) output.push_back(out.raw(i));
        return output;
    }

private:
    static constexpr std::size_t kN = 16;
    std::array<double, kN> input_{};
};

TEST(Analyze, DeadCastDiagnosedWhenBoundsPinBothEndpoints) {
    CoupledPrecisionApp app;
    analysis::DeriveOptions options;
    options.input_sets = {0};

    // Tight epsilon: representing 1.0 + O(1e-6) outputs to within the
    // budget needs more than binary16's 11 bits at both endpoints, so
    // only binary32 remains reachable and the cast is provably dead.
    const auto tight = analysis::analyze(app, 1e-12, options);
    EXPECT_GE(tight.lint.count(LintKind::DeadCast), 1u);
    bool found = false;
    for (const auto& d : tight.lint.diagnostics) {
        if (d.kind != LintKind::DeadCast) continue;
        found = true;
        EXPECT_NE(d.message.find("in -> out"), std::string::npos) << d.message;
        EXPECT_NE(d.message.find("binary32"), std::string::npos) << d.message;
    }
    EXPECT_TRUE(found);
    EXPECT_NE(tight.to_string().find("dead-cast"), std::string::npos);

    // Loose epsilon: several member formats stay reachable for each
    // endpoint, so nothing is provably dead.
    const auto loose = analysis::analyze(app, 1e-1, options);
    EXPECT_EQ(loose.lint.count(LintKind::DeadCast), 0u);
}

TEST(DeriveBounds, StaticBoundsComposeWithCallerWarmStart) {
    auto app = apps::make_app("dwt");
    tuning::SearchOptions options;
    options.epsilon = 1e-2;
    options.input_sets = {0};
    options.max_passes = 2;
    options.static_bounds = true;
    // A caller-provided warm start survives: lower bounds combine by max.
    tuning::WarmStart caller;
    caller.seed_bits.assign(app->signals().size(), kMaxPrecisionBits);
    caller.lower_bounds.assign(app->signals().size(), kMinPrecisionBits + 1);
    options.warm_start = caller;

    tuning::EvalEngine engine{
        *app, tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const tuning::TuningResult result = distributed_search(engine, options);
    for (const auto& sr : result.signals) {
        EXPECT_GE(sr.precision_bits, kMinPrecisionBits + 1) << sr.name;
    }
}

} // namespace
} // namespace tp
