// TuningService (tuning/service.hpp): the synchronous batch surface,
// which since the async redesign is a thin submit-all-then-wait wrapper
// over submit(). The contract under test: results are bit-identical for
// any service thread count and any cache/eviction state, EvalStats
// counters are exact at any thread count (single-flight + per-ticket
// scopes), the LRU budget is respected, and goldens survive eviction —
// i.e. the pre-async behavior, byte for byte, through the wrapper. The
// async-only surface (priorities, deadlines, cancellation, the scheduler)
// is covered by test_service_scheduler.cpp; both files carry the ctest
// label `service`.
#include "tuning/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace {

using tp::tuning::distributed_search;
using tp::tuning::EvalEngine;
using tp::tuning::EvalStats;
using tp::tuning::SearchOptions;
using tp::tuning::TuningBatchResult;
using tp::tuning::TuningRequest;
using tp::tuning::TuningResult;
using tp::tuning::TuningService;

SearchOptions fast_options() {
    SearchOptions options;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.max_passes = 2;
    return options;
}

TuningRequest request_for(std::string app, double epsilon) {
    TuningRequest request;
    request.app = std::move(app);
    request.epsilon = epsilon;
    request.input_sets = {0, 1};
    request.options = fast_options();
    return request;
}

/// The overlapping batch the service exists for: two apps, the paper's
/// three requirements each, plus one exact repeat per app.
std::vector<TuningRequest> overlapping_batch() {
    std::vector<TuningRequest> batch;
    for (const char* app : {"pca", "dwt"}) {
        for (const double epsilon : {1e-3, 1e-2, 1e-1}) {
            batch.push_back(request_for(app, epsilon));
        }
        batch.push_back(request_for(app, 1e-2)); // repeat
    }
    return batch;
}

void expect_identical_batches(const TuningBatchResult& a,
                              const TuningBatchResult& b,
                              const std::string& label) {
    ASSERT_EQ(a.results.size(), b.results.size()) << label;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_TRUE(a.results[i] == b.results[i])
            << label << ": request " << i;
    }
}

TEST(TuningService, MatchesDirectSearch) {
    TuningService service;
    const auto batch_result = service.run({request_for("pca", 1e-2)});
    ASSERT_EQ(batch_result.results.size(), 1u);

    const auto app = tp::apps::make_app("pca");
    SearchOptions options = fast_options();
    options.epsilon = 1e-2;
    options.input_sets = {0, 1};
    const TuningResult direct = distributed_search(*app, options);
    EXPECT_TRUE(batch_result.results[0] == direct);
}

TEST(TuningService, ResultsInRequestOrderOneEnginePerApp) {
    TuningService service;
    const auto batch = std::vector<TuningRequest>{request_for("dwt", 1e-1),
                                                  request_for("pca", 1e-2),
                                                  request_for("dwt", 1e-1)};
    const auto result = service.run(batch);
    ASSERT_EQ(result.results.size(), 3u);
    // Identical requests produce identical results; distinct apps don't.
    EXPECT_TRUE(result.results[0] == result.results[2]);
    EXPECT_FALSE(result.results[0] == result.results[1]);
    EXPECT_EQ(result.results[1].epsilon, 1e-2);
    // dwt and pca each got one long-lived engine.
    EXPECT_EQ(service.engine_count(), 2u);
    EXPECT_EQ(&service.engine("dwt"), &service.engine("dwt"));
}

TEST(TuningService, UnknownAppRejectsBatchBeforeScheduling) {
    TuningService service;
    EXPECT_THROW((void)service.run({request_for("pca", 1e-2),
                                    request_for("nonesuch", 1e-2)}),
                 std::out_of_range);
    // The pca engine may exist (requests resolve in order), but no search
    // ran: the failing batch submitted no trials.
    EXPECT_EQ(service.stats().trials, 0u);
}

// The exactness half of the single-flight contract: the same overlapping
// batch, serial vs four workers, must produce identical results AND
// identical counters — concurrent first requests for the same key execute
// once, so threads=4 cannot inflate kernel_runs (the pre-single-flight
// engine double-counted here).
TEST(TuningService, ThreadCountInvariantResultsAndExactCounters) {
    TuningService serial{TuningService::Options{.threads = 1}};
    TuningService threaded{TuningService::Options{.threads = 4}};
    const auto batch = overlapping_batch();

    const auto serial_result = serial.run(batch);
    const auto threaded_result = threaded.run(batch);
    expect_identical_batches(serial_result, threaded_result,
                             "threads=4 vs serial");

    const EvalStats s = serial_result.stats;
    const EvalStats t = threaded_result.stats;
    EXPECT_EQ(t.trials, s.trials);
    EXPECT_EQ(t.kernel_runs, s.kernel_runs);
    EXPECT_EQ(t.cache_hits, s.cache_hits);
    EXPECT_EQ(t.golden_runs, s.golden_runs);
    EXPECT_EQ(t, s);
    // The invariant the counters promise.
    EXPECT_EQ(t.trials, t.kernel_runs + t.cache_hits);
    // The batch overlaps, so the cache must have eliminated work.
    EXPECT_GT(t.cache_hits, 0u);
    EXPECT_GT(t.hit_rate(), 0.0);
}

TEST(TuningService, WarmServiceServesRepeatBatchFromCache) {
    TuningService service{TuningService::Options{.threads = 4}};
    const auto batch = overlapping_batch();
    const auto cold = service.run(batch);
    const auto warm = service.run(batch);
    expect_identical_batches(cold, warm, "warm vs cold batch");
    // Every trial of the repeat batch was a hit: no kernel ran.
    EXPECT_EQ(warm.stats.kernel_runs, 0u);
    EXPECT_EQ(warm.stats.golden_runs, 0u);
    EXPECT_EQ(warm.stats.cache_hits, warm.stats.trials);
    EXPECT_EQ(warm.hit_rate(), 1.0);
    // Lifetime aggregate covers both batches.
    EXPECT_EQ(service.stats().trials, cold.stats.trials + warm.stats.trials);
}

// The eviction half of the determinism contract: cold, warm, and
// constantly-evicting caches return bit-identical batches; eviction only
// costs kernel re-runs.
TEST(TuningService, EvictingCacheReturnsIdenticalResults) {
    const auto batch = overlapping_batch();

    TuningService unbounded{TuningService::Options{.threads = 4}};
    const auto cold = unbounded.run(batch);
    const auto warm = unbounded.run(batch);

    // A budget far too small for these workloads: entries churn the whole
    // time.
    TuningService evicting{TuningService::Options{
        .threads = 4, .cache_budget_bytes = 16 * 1024}};
    const auto evicted = evicting.run(batch);

    expect_identical_batches(cold, evicted, "evicting vs cold");
    expect_identical_batches(warm, evicted, "evicting vs warm");

    EXPECT_GT(evicted.stats.evictions, 0u);
    // Eviction forces re-runs the unbounded cache avoided.
    EXPECT_GT(evicted.stats.kernel_runs, cold.stats.kernel_runs);
    // Same trials were submitted either way; the invariant still holds.
    EXPECT_EQ(evicted.stats.trials, cold.stats.trials);
    EXPECT_EQ(evicted.stats.trials,
              evicted.stats.kernel_runs + evicted.stats.cache_hits);
}

TEST(TuningService, MemoryBudgetIsRespected) {
    constexpr std::size_t kBudget = 16 * 1024;
    TuningService service{
        TuningService::Options{.threads = 2, .cache_budget_bytes = kBudget}};
    (void)service.run(overlapping_batch());
    for (const char* app : {"pca", "dwt"}) {
        EXPECT_LE(service.engine(app).cache_bytes(), kBudget) << app;
    }
}

TEST(TuningService, GoldensSurviveEviction) {
    TuningService service{
        TuningService::Options{.threads = 2, .cache_budget_bytes = 16 * 1024}};
    EvalEngine& engine = service.engine("pca");
    const std::vector<double>& before = engine.golden(0);
    (void)service.run(overlapping_batch());
    EXPECT_GT(engine.stats().evictions, 0u);
    // Same pinned storage, no recomputation: the reference the service
    // handed out before the churn is still the live golden.
    EXPECT_EQ(&engine.golden(0), &before);
    const auto app = tp::apps::make_app("pca");
    EXPECT_EQ(before, app->golden(0));
}

// A heterogeneous batch mixing the paper's six kernels with the new fft /
// iir / mlp workloads: results come back in request order (each app's
// signal table proves which search produced a slot), one engine per
// distinct app, and the counters stay exact at threads=4.
TEST(TuningService, HeterogeneousBatchAcrossAllNineApps) {
    const auto& names = tp::apps::app_names();
    ASSERT_EQ(names.size(), 9u);
    std::vector<TuningRequest> batch;
    for (const std::string& name : names) {
        batch.push_back(request_for(name, 1e-1));
    }
    // Interleaved repeats: cross-request hits must span app boundaries
    // without mixing up engines.
    batch.push_back(request_for("fft", 1e-1));
    batch.push_back(request_for("jacobi", 1e-1));

    TuningService serial{TuningService::Options{.threads = 1}};
    TuningService threaded{TuningService::Options{.threads = 4}};
    const auto serial_result = serial.run(batch);
    const auto threaded_result = threaded.run(batch);

    ASSERT_EQ(serial_result.results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        // Request order: slot i carries exactly request i's app (signal
        // names match that app's table) and epsilon.
        const auto app = tp::apps::make_app(batch[i].app);
        const auto& signals = serial_result.results[i].signals;
        ASSERT_EQ(signals.size(), app->signals().size()) << "request " << i;
        for (std::size_t s = 0; s < signals.size(); ++s) {
            EXPECT_EQ(signals[s].name, app->signals()[s].name)
                << "request " << i;
        }
        EXPECT_EQ(serial_result.results[i].epsilon, batch[i].epsilon);
    }
    // The repeats reproduced their originals bit-for-bit.
    EXPECT_TRUE(serial_result.results[9] == serial_result.results[6]);
    EXPECT_TRUE(serial_result.results[10] == serial_result.results[0]);

    expect_identical_batches(serial_result, threaded_result,
                             "nine-app batch, threads=4 vs serial");
    EXPECT_EQ(threaded_result.stats, serial_result.stats);
    EXPECT_EQ(threaded_result.stats.trials,
              threaded_result.stats.kernel_runs +
                  threaded_result.stats.cache_hits);
    // One engine per distinct app, not per request.
    EXPECT_EQ(serial.engine_count(), 9u);
    EXPECT_EQ(threaded.engine_count(), 9u);
    // The repeated requests were served from their apps' caches.
    EXPECT_GT(threaded_result.stats.cache_hits, 0u);
}

// Cast-aware requests routed through the service share the per-app engine
// caches with batched plain searches (the ROADMAP engine-sharing item).
TEST(TuningService, CastAwareSharesTheServiceEngineCaches) {
    tp::tuning::CastAwareOptions options;
    options.search = fast_options();
    options.search.epsilon = 1e-2;
    options.search.input_sets = {0, 1};
    options.max_rounds = 1;

    // Reference: the same pass on a cold private engine.
    const auto app = tp::apps::make_app("knn");
    const auto reference = tp::tuning::cast_aware_search(*app, options);

    TuningService service;
    // A plain batched search first, at the same requirement, warms the
    // app's engine...
    (void)service.run({request_for("knn", 1e-2)});
    const auto warm_stats = service.stats();
    const auto shared = service.cast_aware("knn", options);

    // ...and the cast-aware pass reuses it: same result bit-for-bit, with
    // the base search served from cache (fewer kernel runs than cold).
    EXPECT_EQ(shared.config, reference.config);
    EXPECT_TRUE(shared.base == reference.base);
    EXPECT_EQ(shared.tuned_energy_pj, reference.tuned_energy_pj);
    EXPECT_EQ(shared.moves_accepted, reference.moves_accepted);
    EXPECT_GT(shared.eval_stats.cache_hits, reference.eval_stats.cache_hits);
    EXPECT_LT(shared.eval_stats.kernel_runs, reference.eval_stats.kernel_runs);
    // eval_stats is the call's delta on the service engine.
    EXPECT_EQ(warm_stats + shared.eval_stats, service.stats());
    // Still one engine for the app; the pass created none of its own.
    EXPECT_EQ(service.engine_count(), 1u);

    // The sharing works both ways: a repeat of the plain request after the
    // cast-aware pass is still fully cached.
    const auto repeat = service.run({request_for("knn", 1e-2)});
    EXPECT_EQ(repeat.stats.kernel_runs, 0u);
}

// The wrapper and the async path are one cache: a batch warmed through
// run() serves an interactive submit() of the same request entirely from
// memory, and the results agree bit-for-bit.
TEST(TuningService, RunAndSubmitShareTheSameEngineCaches) {
    TuningService service;
    const TuningRequest request = request_for("pca", 1e-2);
    const auto batch_result = service.run({request});

    const tp::tuning::TicketHandle handle = service.submit(tp::tuning::Request{
        .work = request,
        .priority = tp::tuning::Priority::kInteractive,
        .deadline =
            std::chrono::steady_clock::now() + std::chrono::minutes(5)});
    EXPECT_TRUE(handle.search_result() == batch_result.results[0]);
    const EvalStats repeat = handle.stats();
    EXPECT_EQ(repeat.kernel_runs, 0u);
    EXPECT_EQ(repeat.golden_runs, 0u);
    EXPECT_EQ(repeat.cache_hits, repeat.trials);
}

TEST(TuningService, PerRequestOptionsAreHonored) {
    TuningService service;
    TuningRequest v1 = request_for("jacobi", 1e-2);
    v1.options.type_system = tp::TypeSystem{tp::TypeSystemKind::V1};
    const TuningRequest v2 = request_for("jacobi", 1e-2);
    const auto result = service.run({v1, v2});
    EXPECT_EQ(result.results[0].type_system, tp::TypeSystemKind::V1);
    EXPECT_EQ(result.results[1].type_system, tp::TypeSystemKind::V2);
    // One app, one engine, even across type systems.
    EXPECT_EQ(service.engine_count(), 1u);
}

} // namespace
