#include "sim/vectorize.hpp"

#include <cstdint>
#include <map>

#include <gtest/gtest.h>

#include "sim/context.hpp"
#include "sim/trace.hpp"

namespace {

using tp::sim::InstrKind;
using tp::sim::TpContext;
using tp::sim::TraceProgram;

TEST(Vectorize, LanesForWidths) {
    EXPECT_EQ(tp::sim::simd_lanes_for(tp::kBinary8), 4);
    EXPECT_EQ(tp::sim::simd_lanes_for(tp::kBinary16), 2);
    EXPECT_EQ(tp::sim::simd_lanes_for(tp::kBinary16Alt), 2);
    EXPECT_EQ(tp::sim::simd_lanes_for(tp::kBinary32), 1);
}

TEST(Vectorize, IndependentBinary8AddsGroupByFour) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 8; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary8);
            const auto b = ctx.constant(2.0, tp::kBinary8);
            (void)(a + b);
        }
    }
    TraceProgram program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 2u);
    EXPECT_EQ(program.groups[0].lanes, 4);
    EXPECT_EQ(program.groups[1].lanes, 4);
    for (const auto& instr : program.instrs) {
        EXPECT_NE(instr.simd_group, 0u); // everything grouped
    }
}

TEST(Vectorize, SixteenBitGroupsByTwo) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary16);
            (void)(a * a);
        }
    }
    TraceProgram program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 2u);
    EXPECT_EQ(program.groups[0].lanes, 2);
}

TEST(Vectorize, ThirtyTwoBitNeverGroups) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary32);
            (void)(a + a);
        }
    }
    TraceProgram program = ctx.take_program(true);
    EXPECT_TRUE(program.groups.empty());
}

TEST(Vectorize, SerialChainStaysScalar) {
    // acc = ((((acc+x)+x)+x)+x) is a dependence chain: fusing it into one
    // SIMD slot would be wrong, so members must stay scalar.
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        auto acc = ctx.constant(0.0, tp::kBinary8);
        const auto x = ctx.constant(1.0, tp::kBinary8);
        for (int i = 0; i < 4; ++i) acc = acc + x;
    }
    TraceProgram program = ctx.take_program(true);
    EXPECT_TRUE(program.groups.empty());
    for (const auto& instr : program.instrs) {
        EXPECT_EQ(instr.simd_group, 0u);
    }
}

TEST(Vectorize, OutsideRegionNothingGroups) {
    TpContext ctx;
    for (int i = 0; i < 8; ++i) {
        const auto a = ctx.constant(1.0, tp::kBinary8);
        (void)(a + a);
    }
    TraceProgram program = ctx.take_program(true);
    EXPECT_TRUE(program.groups.empty());
}

TEST(Vectorize, NarrowLoadsPackIntoWordAccess) {
    TpContext ctx;
    auto arr = ctx.make_array(tp::kBinary8, 8);
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 8; ++i) (void)arr.load(static_cast<std::size_t>(i));
    }
    TraceProgram program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 2u);
    EXPECT_EQ(program.groups[0].kind, InstrKind::Load);
    EXPECT_EQ(program.groups[0].lanes, 4);
    EXPECT_EQ(program.groups[0].bytes, 4);
}

TEST(Vectorize, LoadsFromDifferentArraysDoNotMix) {
    TpContext ctx;
    auto a = ctx.make_array(tp::kBinary16, 4);
    auto b = ctx.make_array(tp::kBinary16, 4);
    {
        const auto region = ctx.vector_region();
        (void)a.load(0);
        (void)b.load(0);
        (void)a.load(1);
        (void)b.load(1);
    }
    TraceProgram program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 2u);
    for (const auto& group : program.groups) {
        EXPECT_EQ(group.lanes, 2);
        EXPECT_EQ(group.bytes, 4);
    }
}

TEST(Vectorize, LoadFeedingGroupedMulStaysGrouped) {
    // The canonical pattern: packed loads feed a packed multiply.
    TpContext ctx;
    auto a = ctx.make_array(tp::kBinary8, 4);
    auto b = ctx.make_array(tp::kBinary8, 4);
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto x = a.load(static_cast<std::size_t>(i));
            const auto y = b.load(static_cast<std::size_t>(i));
            (void)(x * y);
        }
    }
    TraceProgram program = ctx.take_program(true);
    // Three groups: load a, load b, mul.
    ASSERT_EQ(program.groups.size(), 3u);
    int loads = 0;
    int muls = 0;
    for (const auto& group : program.groups) {
        EXPECT_EQ(group.lanes, 4);
        if (group.kind == InstrKind::Load) ++loads;
        if (group.kind == InstrKind::FpArith) ++muls;
    }
    EXPECT_EQ(loads, 2);
    EXPECT_EQ(muls, 1);
}

TEST(Vectorize, PartialGroupAtRegionEnd) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 3; ++i) { // 3 of 4 lanes
            const auto a = ctx.constant(1.0, tp::kBinary8);
            (void)(a + a);
        }
    }
    // A scalar op outside the region forces the flush.
    const auto s = ctx.constant(1.0, tp::kBinary32);
    (void)(s + s);
    TraceProgram program = ctx.take_program(true);
    ASSERT_EQ(program.groups.size(), 1u);
    EXPECT_EQ(program.groups[0].lanes, 3); // partial group, lanes silenced
}

TEST(Vectorize, DependencyOrderPreserved) {
    // Producers must appear before consumers in the rewritten trace.
    TpContext ctx;
    auto arr = ctx.make_array(tp::kBinary8, 8);
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 8; ++i) {
            const auto x = arr.load(static_cast<std::size_t>(i));
            (void)(x * x);
        }
    }
    TraceProgram program = ctx.take_program(true);
    std::map<std::int32_t, std::size_t> def_pos;
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        if (program.instrs[i].dst >= 0) def_pos[program.instrs[i].dst] = i;
    }
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        for (std::int32_t src :
             {program.instrs[i].src1, program.instrs[i].src2}) {
            if (src < 0) continue;
            const auto it = def_pos.find(src);
            if (it == def_pos.end()) continue;
            EXPECT_LE(it->second, i) << "consumer before producer at " << i;
        }
    }
}

TEST(Vectorize, CmpNeverGroups) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary8);
            const auto b = ctx.constant(2.0, tp::kBinary8);
            (void)(a < b);
        }
    }
    TraceProgram program = ctx.take_program(true);
    EXPECT_TRUE(program.groups.empty());
}

TEST(Vectorize, SimdDisabledLeavesTraceAlone) {
    TpContext ctx;
    {
        const auto region = ctx.vector_region();
        for (int i = 0; i < 4; ++i) {
            const auto a = ctx.constant(1.0, tp::kBinary8);
            (void)(a + a);
        }
    }
    TraceProgram program = ctx.take_program(false);
    EXPECT_TRUE(program.groups.empty());
    for (const auto& instr : program.instrs) EXPECT_EQ(instr.simd_group, 0u);
}

} // namespace
