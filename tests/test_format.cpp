#include "types/format.hpp"

#include <gtest/gtest.h>

namespace {

using tp::FpFormat;
using tp::FormatKind;

TEST(Format, PaperFormatsMatchFig1) {
    // binary8: 1 | 5 | 2 — same dynamic range as binary16.
    EXPECT_EQ(tp::kBinary8.exp_bits, 5);
    EXPECT_EQ(tp::kBinary8.mant_bits, 2);
    EXPECT_EQ(tp::kBinary8.width_bits(), 8);
    // binary16: IEEE half.
    EXPECT_EQ(tp::kBinary16.exp_bits, 5);
    EXPECT_EQ(tp::kBinary16.mant_bits, 10);
    EXPECT_EQ(tp::kBinary16.width_bits(), 16);
    // binary16alt: 1 | 8 | 7 — same dynamic range as binary32.
    EXPECT_EQ(tp::kBinary16Alt.exp_bits, 8);
    EXPECT_EQ(tp::kBinary16Alt.mant_bits, 7);
    EXPECT_EQ(tp::kBinary16Alt.width_bits(), 16);
    // binary32: IEEE single.
    EXPECT_EQ(tp::kBinary32.exp_bits, 8);
    EXPECT_EQ(tp::kBinary32.mant_bits, 23);
    EXPECT_EQ(tp::kBinary32.width_bits(), 32);
}

TEST(Format, DynamicRangeRelationsFromThePaper) {
    // binary8 and binary16 share their exponent range; binary16alt and
    // binary32 share theirs.
    EXPECT_EQ(tp::kBinary8.max_exp(), tp::kBinary16.max_exp());
    EXPECT_EQ(tp::kBinary8.min_exp(), tp::kBinary16.min_exp());
    EXPECT_EQ(tp::kBinary16Alt.max_exp(), tp::kBinary32.max_exp());
    EXPECT_EQ(tp::kBinary16Alt.min_exp(), tp::kBinary32.min_exp());
    // binary16 has less dynamic range than binary32.
    EXPECT_LT(tp::kBinary16.max_exp(), tp::kBinary32.max_exp());
}

TEST(Format, BiasAndExponents) {
    EXPECT_EQ(tp::kBinary32.bias(), 127);
    EXPECT_EQ(tp::kBinary32.max_exp(), 127);
    EXPECT_EQ(tp::kBinary32.min_exp(), -126);
    EXPECT_EQ(tp::kBinary16.bias(), 15);
    EXPECT_EQ(tp::kBinary64.bias(), 1023);
}

TEST(Format, StorageBytes) {
    EXPECT_EQ(tp::kBinary8.storage_bytes(), 1);
    EXPECT_EQ(tp::kBinary16.storage_bytes(), 2);
    EXPECT_EQ(tp::kBinary16Alt.storage_bytes(), 2);
    EXPECT_EQ(tp::kBinary32.storage_bytes(), 4);
    EXPECT_EQ(tp::kBinary64.storage_bytes(), 8);
    EXPECT_EQ((FpFormat{4, 2}).storage_bytes(), 1); // 7-bit format
}

TEST(Format, ExactViaDoubleEnvelope) {
    EXPECT_TRUE(tp::kBinary8.exact_via_double());
    EXPECT_TRUE(tp::kBinary16.exact_via_double());
    EXPECT_TRUE(tp::kBinary16Alt.exact_via_double());
    EXPECT_TRUE(tp::kBinary32.exact_via_double());
    // m = 24 is the last width with innocuous double rounding.
    EXPECT_TRUE((FpFormat{8, 24}).exact_via_double());
    EXPECT_FALSE((FpFormat{8, 25}).exact_via_double());
    EXPECT_FALSE(tp::kBinary64.exact_via_double());
}

TEST(Format, Validity) {
    EXPECT_TRUE((FpFormat{1, 1}).valid());
    EXPECT_TRUE((FpFormat{11, 52}).valid());
    EXPECT_FALSE((FpFormat{0, 5}).valid());
    EXPECT_FALSE((FpFormat{12, 5}).valid());
    EXPECT_FALSE((FpFormat{5, 0}).valid());
    EXPECT_FALSE((FpFormat{5, 53}).valid());
}

TEST(Format, KindRoundTrip) {
    for (FormatKind kind : tp::kAllFormatKinds) {
        FormatKind out;
        ASSERT_TRUE(tp::kind_of(tp::format_of(kind), out));
        EXPECT_EQ(out, kind);
    }
    FormatKind out;
    EXPECT_FALSE(tp::kind_of(FpFormat{6, 9}, out));
}

TEST(Format, Names) {
    EXPECT_EQ(tp::name_of(FormatKind::Binary8), "binary8");
    EXPECT_EQ(tp::name_of(FormatKind::Binary16), "binary16");
    EXPECT_EQ(tp::name_of(FormatKind::Binary16Alt), "binary16alt");
    EXPECT_EQ(tp::name_of(FormatKind::Binary32), "binary32");
}

TEST(Format, Comparisons) {
    EXPECT_EQ(tp::kBinary16, (FpFormat{5, 10}));
    EXPECT_NE(tp::kBinary16, tp::kBinary16Alt);
}

} // namespace
