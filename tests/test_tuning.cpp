#include "tuning/search.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "tuning/config_io.hpp"
#include "tuning/quality.hpp"

namespace {

using tp::tuning::distributed_search;
using tp::tuning::SearchOptions;

TEST(Quality, MeetsRequirementThresholds) {
    const std::vector<double> golden{1.0, 2.0, 3.0};
    const std::vector<double> close{1.01, 2.01, 3.01};
    // Amplitude error ~0.0046 -> power ratio ~2.2e-5.
    EXPECT_TRUE(tp::tuning::meets_requirement(golden, close, 1e-1));
    EXPECT_TRUE(tp::tuning::meets_requirement(golden, close, 1e-4));
    EXPECT_FALSE(tp::tuning::meets_requirement(golden, close, 1e-5));
    EXPECT_TRUE(tp::tuning::meets_requirement(golden, golden, 0.0));
}

TEST(ConfigIo, RoundTrip) {
    tp::tuning::PrecisionConfig config{{"grid", 12}, {"coeff", 3}};
    std::stringstream ss;
    tp::tuning::write_precision_config(ss, config);
    const auto parsed = tp::tuning::read_precision_config(ss);
    EXPECT_EQ(parsed, config);
}

TEST(ConfigIo, ParsesCommentsAndBlankLines) {
    std::istringstream is{"# header\n\ngrid 12 # trailing\n  coeff 3\n"};
    const auto parsed = tp::tuning::read_precision_config(is);
    EXPECT_EQ(parsed.at("grid"), 12);
    EXPECT_EQ(parsed.at("coeff"), 3);
}

TEST(ConfigIo, RejectsMalformedLines) {
    std::istringstream missing{"grid\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(missing),
                 std::runtime_error);
    std::istringstream range{"grid 40\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(range),
                 std::runtime_error);
    std::istringstream zero{"grid 0\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(zero),
                 std::runtime_error);
    // Precision 1 would construct the invalid format {e, m=0}
    // (kMinPrecisionBits is 2) — the boundary must reject it too.
    std::istringstream below_min{"grid 1\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(below_min),
                 std::runtime_error);
    std::istringstream trailing{"grid 5 junk\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(trailing),
                 std::runtime_error);
    std::istringstream not_a_number{"grid twelve\n"};
    EXPECT_THROW((void)tp::tuning::read_precision_config(not_a_number),
                 std::runtime_error);
}

TEST(ConfigIo, ValidatesAgainstSignalTable) {
    const auto app = tp::apps::make_app("jacobi");
    const auto& table = app->signal_table();

    // Every declared signal parses and validates.
    std::istringstream good{"grid 12\ncoeff 3\ngrid_in 5\ntmp 24\n"};
    const auto parsed = tp::tuning::read_precision_config(good, table);
    EXPECT_EQ(parsed.size(), 4u);
    EXPECT_EQ(parsed.at("grid_in"), 5);

    // An unknown signal is rejected loudly, not carried along.
    std::istringstream unknown{"grid 12\nnosuchsignal 7\n"};
    try {
        (void)tp::tuning::read_precision_config(unknown, table);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("nosuchsignal"), std::string::npos);
    }

    tp::tuning::PrecisionConfig stale{{"grid", 12}, {"renamed_signal", 3}};
    EXPECT_THROW(tp::tuning::validate_precision_config(stale, table),
                 std::runtime_error);
}

TEST(ConfigIo, RoundTripSurvivesCommentsAndBlankLines) {
    const auto app = tp::apps::make_app("dwt");
    const auto& table = app->signal_table();
    tp::tuning::PrecisionConfig config;
    for (const auto& spec : app->signals()) config[spec.name] = 11;
    config["acc"] = 24;

    // write -> decorate with comments/blank lines -> read+validate.
    std::stringstream ss;
    tp::tuning::write_precision_config(ss, config);
    std::string text = "# leading comment\n\n" + ss.str() + "\n  # trailing\n";
    std::istringstream is{text};
    const auto parsed = tp::tuning::read_precision_config(is, table);
    EXPECT_EQ(parsed, config);

    // A tuning result's exported config round-trips and validates too.
    auto search_app = tp::apps::make_app("dwt");
    SearchOptions options;
    options.input_sets = {0};
    options.max_passes = 1;
    const auto result = distributed_search(*search_app, options);
    std::stringstream rs;
    tp::tuning::write_precision_config(rs, result.precision_config());
    EXPECT_EQ(tp::tuning::read_precision_config(rs, table),
              result.precision_config());
}

// A saved config is a warm-start seed: the export of a tuning result
// reads back — against the app's signal table — as the exact per-signal
// bits vector, in declaration order.
TEST(ConfigIo, WarmStartSeedRoundTrip) {
    auto app = tp::apps::make_app("jacobi");
    SearchOptions options;
    options.input_sets = {0};
    options.max_passes = 1;
    const auto result = distributed_search(*app, options);

    std::stringstream ss;
    tp::tuning::write_precision_config(ss, result.precision_config());
    const std::vector<int> seed =
        tp::tuning::read_warm_start_seed(ss, app->signal_table());
    ASSERT_EQ(seed.size(), result.signals.size());
    for (std::size_t i = 0; i < seed.size(); ++i) {
        EXPECT_EQ(seed[i], result.signals[i].precision_bits)
            << result.signals[i].name;
    }
}

TEST(ConfigIo, SeedBitsRequireCompleteCoverage) {
    const auto app = tp::apps::make_app("jacobi");
    const auto& table = app->signal_table();

    // A config missing a declared signal names the gap.
    tp::tuning::PrecisionConfig partial{{"grid", 12}, {"coeff", 3}};
    try {
        (void)tp::tuning::seed_bits_from_config(partial, table);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("grid_in"), std::string::npos);
    }

    // An unknown signal is rejected by validation, same as read paths.
    tp::tuning::PrecisionConfig unknown{
        {"grid", 12}, {"coeff", 3}, {"grid_in", 5}, {"tmp", 24}, {"ghost", 7}};
    EXPECT_THROW((void)tp::tuning::seed_bits_from_config(unknown, table),
                 std::runtime_error);
}

SearchOptions fast_options(double epsilon, tp::TypeSystemKind kind) {
    SearchOptions options;
    options.epsilon = epsilon;
    options.type_system = tp::TypeSystem{kind};
    options.input_sets = {0, 1};
    options.max_passes = 2;
    return options;
}

TEST(Search, TunedConfigMeetsRequirementOnAllSets) {
    auto app = tp::apps::make_app("conv");
    const auto options = fast_options(1e-1, tp::TypeSystemKind::V2);
    const auto result = distributed_search(*app, options);
    ASSERT_EQ(result.signals.size(), app->signals().size());
    EXPECT_GT(result.program_runs, 0u);

    const auto config = result.type_config();
    for (unsigned set : options.input_sets) {
        const auto golden = app->golden(set);
        app->prepare(set);
        tp::sim::TpContext ctx{tp::sim::TpContext::Config{.trace = false}};
        const auto out = app->run(ctx, config);
        EXPECT_TRUE(tp::tuning::meets_requirement(golden, out, options.epsilon))
            << "set " << set
            << " err=" << tp::tuning::output_error(golden, out);
    }
}

TEST(Search, LooserRequirementNeverNeedsMorePrecision) {
    auto app = tp::apps::make_app("dwt");
    const auto loose =
        distributed_search(*app, fast_options(1e-1, tp::TypeSystemKind::V2));
    const auto tight =
        distributed_search(*app, fast_options(1e-3, tp::TypeSystemKind::V2));
    std::size_t loose_total = 0;
    std::size_t tight_total = 0;
    for (std::size_t i = 0; i < loose.signals.size(); ++i) {
        loose_total += static_cast<std::size_t>(loose.signals[i].precision_bits);
        tight_total += static_cast<std::size_t>(tight.signals[i].precision_bits);
    }
    EXPECT_LE(loose_total, tight_total);
}

TEST(Search, SomeSignalsShrinkAtLooseRequirement) {
    auto app = tp::apps::make_app("knn");
    const auto result =
        distributed_search(*app, fast_options(1e-1, tp::TypeSystemKind::V2));
    bool any_narrow = false;
    for (const auto& sr : result.signals) {
        any_narrow = any_narrow || sr.bound != tp::FormatKind::Binary32;
    }
    EXPECT_TRUE(any_narrow) << "KNN at 1e-1 should scale below binary32";
}

TEST(Search, BindingMatchesTypeSystemBands) {
    auto app = tp::apps::make_app("conv");
    for (const auto kind : {tp::TypeSystemKind::V1, tp::TypeSystemKind::V2}) {
        const auto result = distributed_search(*app, fast_options(1e-2, kind));
        const tp::TypeSystem ts{kind};
        for (const auto& sr : result.signals) {
            EXPECT_EQ(sr.bound, ts.format_for_precision(sr.precision_bits));
            if (kind == tp::TypeSystemKind::V1) {
                EXPECT_NE(sr.bound, tp::FormatKind::Binary16Alt);
            }
        }
    }
}

TEST(Search, TableAndHistogramAccounting) {
    auto app = tp::apps::make_app("svm");
    const auto result =
        distributed_search(*app, fast_options(1e-1, tp::TypeSystemKind::V2));
    const auto per_format = result.variables_per_format();
    int total = 0;
    for (int count : per_format) total += count;
    EXPECT_EQ(total, static_cast<int>(result.signals.size()));

    const auto histogram = result.locations_per_precision();
    std::size_t locations = 0;
    for (std::size_t bits = 1; bits <= tp::kMaxPrecisionBits; ++bits) {
        locations += histogram[bits];
    }
    std::size_t expected = 0;
    for (const auto& spec : app->signals()) expected += spec.elements;
    EXPECT_EQ(locations, expected);
}

TEST(Search, PrecisionConfigExport) {
    auto app = tp::apps::make_app("conv");
    const auto result =
        distributed_search(*app, fast_options(1e-1, tp::TypeSystemKind::V1));
    const auto config = result.precision_config();
    EXPECT_EQ(config.size(), result.signals.size());
    for (const auto& sr : result.signals) {
        EXPECT_EQ(config.at(sr.name), sr.precision_bits);
    }
}

// The determinism contract of the parallel engine (search.hpp): threads=4
// must return a TuningResult bit-identical to the serial reference path,
// program_runs included.
void expect_parallel_matches_serial(const std::string& app_name) {
    auto serial_app = tp::apps::make_app(app_name);
    auto parallel_app = tp::apps::make_app(app_name);
    SearchOptions serial_options = fast_options(1e-2, tp::TypeSystemKind::V2);
    serial_options.threads = 1;
    SearchOptions parallel_options = serial_options;
    parallel_options.threads = 4;

    const auto serial = distributed_search(*serial_app, serial_options);
    const auto parallel = distributed_search(*parallel_app, parallel_options);

    EXPECT_EQ(serial.program_runs, parallel.program_runs) << app_name;
    EXPECT_EQ(serial.epsilon, parallel.epsilon) << app_name;
    EXPECT_EQ(serial.type_system, parallel.type_system) << app_name;
    ASSERT_EQ(serial.signals.size(), parallel.signals.size()) << app_name;
    for (std::size_t i = 0; i < serial.signals.size(); ++i) {
        EXPECT_EQ(serial.signals[i].name, parallel.signals[i].name);
        EXPECT_EQ(serial.signals[i].elements, parallel.signals[i].elements);
        EXPECT_EQ(serial.signals[i].precision_bits,
                  parallel.signals[i].precision_bits)
            << app_name << " signal " << serial.signals[i].name;
        EXPECT_EQ(serial.signals[i].bound, parallel.signals[i].bound)
            << app_name << " signal " << serial.signals[i].name;
    }
    // The memberwise predicate covers any future TuningResult field.
    EXPECT_TRUE(serial == parallel) << app_name;
}

TEST(Search, ParallelMatchesSerialPca) { expect_parallel_matches_serial("pca"); }

TEST(Search, ParallelMatchesSerialDwt) { expect_parallel_matches_serial("dwt"); }

TEST(Search, DeterministicAcrossRuns) {
    auto app1 = tp::apps::make_app("dwt");
    auto app2 = tp::apps::make_app("dwt");
    const auto a =
        distributed_search(*app1, fast_options(1e-2, tp::TypeSystemKind::V2));
    const auto b =
        distributed_search(*app2, fast_options(1e-2, tp::TypeSystemKind::V2));
    ASSERT_EQ(a.signals.size(), b.signals.size());
    for (std::size_t i = 0; i < a.signals.size(); ++i) {
        EXPECT_EQ(a.signals[i].precision_bits, b.signals[i].precision_bits);
    }
}

// A malformed warm start is rejected before any trial runs: the search
// throws std::invalid_argument and the engine submits nothing.
TEST(Search, WarmStartIsValidatedAgainstTheSignalTable) {
    auto app = tp::apps::make_app("dwt");
    const std::size_t n = app->signals().size();
    auto options = fast_options(1e-2, tp::TypeSystemKind::V2);

    const auto expect_rejected = [&](tp::tuning::WarmStart bad) {
        options.warm_start = std::move(bad);
        EXPECT_THROW((void)distributed_search(*app, options),
                     std::invalid_argument);
    };

    tp::tuning::WarmStart wrong_size;
    wrong_size.seed_bits.assign(n + 1, 12);
    expect_rejected(wrong_size);

    tp::tuning::WarmStart out_of_range;
    out_of_range.seed_bits.assign(n, 12);
    out_of_range.seed_bits[0] = tp::kMaxPrecisionBits + 1;
    expect_rejected(out_of_range);

    tp::tuning::WarmStart below_min;
    below_min.seed_bits.assign(n, 12);
    below_min.seed_bits[0] = tp::kMinPrecisionBits - 1;
    expect_rejected(below_min);

    tp::tuning::WarmStart bad_bounds;
    bad_bounds.seed_bits.assign(n, 12);
    bad_bounds.lower_bounds.assign(n, 8);
    bad_bounds.upper_bounds.assign(n, 4); // lower > upper
    expect_rejected(bad_bounds);

    tp::tuning::WarmStart short_bounds;
    short_bounds.seed_bits.assign(n, 12);
    short_bounds.upper_bounds.assign(n - 1, 12); // bounds are all-or-none
    expect_rejected(short_bounds);
}

// A warm start seeded from a result at the SAME requirement can only
// remove work: per-signal bits never exceed the cold search's and
// program_runs shrinks (the clamped bisections and elided verifications
// are reported, not silently dropped).
TEST(Search, WarmStartFromOwnResultIsFrugalAndNoLessPrecise) {
    const auto options = fast_options(1e-2, tp::TypeSystemKind::V2);
    auto cold_app = tp::apps::make_app("pca");
    const auto cold = distributed_search(*cold_app, options);

    auto warm_options = options;
    warm_options.warm_start = tp::tuning::warm_start_from(cold);
    auto warm_app = tp::apps::make_app("pca");
    const auto warm = distributed_search(*warm_app, warm_options);

    EXPECT_LT(warm.program_runs, cold.program_runs);
    ASSERT_EQ(warm.signals.size(), cold.signals.size());
    for (std::size_t i = 0; i < warm.signals.size(); ++i) {
        EXPECT_LE(warm.signals[i].precision_bits,
                  cold.signals[i].precision_bits)
            << warm.signals[i].name;
    }
}

// sweep_search's chaining is exactly "seed each epsilon with
// warm_start_from of the tightest completed predecessor": the in-order
// sweep must reproduce a hand-rolled chain bit for bit, and the
// unchained sweep must reproduce independent searches.
TEST(Search, SweepSearchMatchesHandRolledWarmStartChain) {
    const std::vector<double> epsilons{1e-3, 1e-2, 1e-1};
    const auto base = fast_options(0.0, tp::TypeSystemKind::V2);

    auto sweep_app = tp::apps::make_app("dwt");
    const auto chained =
        tp::tuning::sweep_search(*sweep_app, base, epsilons, true);
    ASSERT_EQ(chained.size(), epsilons.size());

    auto manual_app = tp::apps::make_app("dwt");
    std::vector<tp::tuning::TuningResult> manual;
    for (const double epsilon : epsilons) {
        auto options = base;
        options.epsilon = epsilon;
        if (!manual.empty()) {
            options.warm_start = tp::tuning::warm_start_from(manual.back());
        }
        manual.push_back(distributed_search(*manual_app, options));
    }
    for (std::size_t e = 0; e < epsilons.size(); ++e) {
        EXPECT_TRUE(chained[e] == manual[e]) << "epsilon " << epsilons[e];
    }

    auto independent_app = tp::apps::make_app("dwt");
    const auto independent =
        tp::tuning::sweep_search(*independent_app, base, epsilons, false);
    for (std::size_t e = 0; e < epsilons.size(); ++e) {
        auto options = base;
        options.epsilon = epsilons[e];
        auto direct_app = tp::apps::make_app("dwt");
        EXPECT_TRUE(independent[e] == distributed_search(*direct_app, options))
            << "epsilon " << epsilons[e];
    }
}

} // namespace
