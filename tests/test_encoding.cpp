#include "types/encoding.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "types/format.hpp"
#include "util/random.hpp"

namespace {

using tp::decode;
using tp::encode;
using tp::FpFormat;
using tp::quantize;

TEST(Encoding, Binary32MatchesNativeFloat) {
    // For the IEEE single format, encode() must agree bit-for-bit with the
    // hardware float conversion.
    tp::util::Xoshiro256 rng{123};
    for (int i = 0; i < 200000; ++i) {
        const double v = rng.normal(0.0, 1e10);
        const auto f = static_cast<float>(v);
        const auto expected = std::bit_cast<std::uint32_t>(f);
        const auto got = static_cast<std::uint32_t>(encode(v, tp::kBinary32));
        ASSERT_EQ(got, expected) << "value " << v;
        ASSERT_EQ(quantize(v, tp::kBinary32), static_cast<double>(f));
    }
}

TEST(Encoding, Binary32SubnormalsMatchNativeFloat) {
    tp::util::Xoshiro256 rng{77};
    for (int i = 0; i < 100000; ++i) {
        // Values around the float subnormal range [~1e-45, ~1e-38].
        const double v = rng.uniform(-1.0, 1.0) * std::ldexp(1.0, -126 - (i % 30));
        const auto f = static_cast<float>(v);
        const auto expected = std::bit_cast<std::uint32_t>(f);
        const auto got = static_cast<std::uint32_t>(encode(v, tp::kBinary32));
        ASSERT_EQ(got, expected) << "value " << v;
    }
}

TEST(Encoding, ZeroKeepsSign) {
    EXPECT_EQ(encode(0.0, tp::kBinary16), 0u);
    EXPECT_EQ(encode(-0.0, tp::kBinary16), 0x8000u);
    EXPECT_EQ(decode(0x8000u, tp::kBinary16), 0.0);
    EXPECT_TRUE(std::signbit(decode(0x8000u, tp::kBinary16)));
}

TEST(Encoding, InfinityAndOverflow) {
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(encode(inf, tp::kBinary16), 0x7c00u);
    EXPECT_EQ(encode(-inf, tp::kBinary16), 0xfc00u);
    // 65504 is the largest binary16 value; anything above the rounding
    // midpoint to 65536 overflows to infinity.
    EXPECT_EQ(encode(65504.0, tp::kBinary16), 0x7bffu);
    EXPECT_EQ(encode(65520.0, tp::kBinary16), 0x7c00u); // ties to even -> inf
    EXPECT_EQ(encode(65519.9, tp::kBinary16), 0x7bffu);
    EXPECT_EQ(encode(1e30, tp::kBinary16), 0x7c00u);
    EXPECT_EQ(encode(-1e30, tp::kBinary16), 0xfc00u);
}

TEST(Encoding, NaNCanonicalization) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::uint64_t bits = encode(nan, tp::kBinary16);
    EXPECT_EQ(bits, 0x7e00u); // exponent all ones, mantissa MSB
    EXPECT_TRUE(std::isnan(decode(bits, tp::kBinary16)));
}

TEST(Encoding, KnownBinary16Patterns) {
    EXPECT_EQ(encode(1.0, tp::kBinary16), 0x3c00u);
    EXPECT_EQ(encode(-2.0, tp::kBinary16), 0xc000u);
    EXPECT_EQ(encode(0.5, tp::kBinary16), 0x3800u);
    EXPECT_EQ(encode(1.5, tp::kBinary16), 0x3e00u);
    // Smallest binary16 normal and subnormal.
    EXPECT_EQ(encode(std::ldexp(1.0, -14), tp::kBinary16), 0x0400u);
    EXPECT_EQ(encode(std::ldexp(1.0, -24), tp::kBinary16), 0x0001u);
}

TEST(Encoding, RoundToNearestEvenTies) {
    // 1 + 2^-11 is exactly between 1.0 and 1+2^-10 in binary16: ties to even.
    EXPECT_EQ(encode(1.0 + std::ldexp(1.0, -11), tp::kBinary16), 0x3c00u);
    // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even (mantissa 2).
    EXPECT_EQ(encode(1.0 + 3 * std::ldexp(1.0, -11), tp::kBinary16), 0x3c02u);
    // Slightly above the midpoint rounds up.
    EXPECT_EQ(encode(1.0 + std::ldexp(1.0, -11) + std::ldexp(1.0, -20),
                     tp::kBinary16),
              0x3c01u);
}

TEST(Encoding, SubnormalRounding) {
    const FpFormat f = tp::kBinary16;
    const double ulp = std::ldexp(1.0, -24); // binary16 subnormal step
    // Half an ulp below the smallest subnormal rounds to zero (tie to even).
    EXPECT_EQ(encode(ulp / 2, f), 0u);
    EXPECT_EQ(encode(ulp / 2 + ulp / 1024, f), 1u);
    // 1.5 ulp ties to 2 ulp (even).
    EXPECT_EQ(encode(1.5 * ulp, f), 2u);
    // 2.5 ulp ties to 2 ulp (even).
    EXPECT_EQ(encode(2.5 * ulp, f), 2u);
    // Largest subnormal + half step rounds up into the smallest normal.
    const double max_sub = std::ldexp(1023.0, -24);
    EXPECT_EQ(encode(max_sub, f), 0x03ffu);
    EXPECT_EQ(encode(max_sub + ulp / 2, f), 0x0400u);
}

TEST(Encoding, DecodeEncodeRoundTripAllBinary8Patterns) {
    // Exhaustive: all 256 binary8 patterns round-trip through double.
    for (std::uint64_t bits = 0; bits < 256; ++bits) {
        const double v = decode(bits, tp::kBinary8);
        if (std::isnan(v)) continue; // NaNs canonicalize, no exact round-trip
        EXPECT_EQ(encode(v, tp::kBinary8), bits) << "pattern " << bits;
    }
}

TEST(Encoding, DecodeEncodeRoundTripAllBinary16Patterns) {
    for (std::uint64_t bits = 0; bits < 65536; ++bits) {
        const double v = decode(bits, tp::kBinary16);
        if (std::isnan(v)) continue; // NaNs canonicalize
        EXPECT_EQ(encode(v, tp::kBinary16), bits) << "pattern " << bits;
    }
}

TEST(Encoding, QuantizeIsIdempotent) {
    tp::util::Xoshiro256 rng{9};
    const FpFormat formats[] = {tp::kBinary8, tp::kBinary16, tp::kBinary16Alt,
                                tp::kBinary32, FpFormat{6, 9}, FpFormat{3, 4}};
    for (const FpFormat f : formats) {
        for (int i = 0; i < 20000; ++i) {
            const double v = rng.normal(0.0, std::ldexp(1.0, rng.uniform_int(-30, 30)));
            const double q = quantize(v, f);
            ASSERT_EQ(quantize(q, f), q) << "format e=" << int{f.exp_bits}
                                         << " m=" << int{f.mant_bits} << " v=" << v;
        }
    }
}

TEST(Encoding, QuantizeErrorBoundedByHalfUlp) {
    tp::util::Xoshiro256 rng{31};
    const FpFormat f = tp::kBinary16Alt;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.uniform(-100.0, 100.0);
        const double q = quantize(v, f);
        // Relative error of RNE is at most 2^-(m+1) for normal values.
        if (std::fabs(v) >= tp::min_normal(f)) {
            ASSERT_LE(std::fabs(q - v),
                      std::ldexp(std::fabs(v), -(f.mant_bits + 1)) * (1 + 1e-12));
        }
    }
}

TEST(Encoding, ExtremaHelpers) {
    EXPECT_EQ(tp::max_finite(tp::kBinary16), 65504.0);
    EXPECT_EQ(tp::min_normal(tp::kBinary16), std::ldexp(1.0, -14));
    EXPECT_EQ(tp::min_subnormal(tp::kBinary16), std::ldexp(1.0, -24));
    EXPECT_EQ(tp::max_finite(tp::kBinary8), 57344.0); // 1.75 * 2^15
    // binary16alt shares binary32's dynamic range.
    EXPECT_EQ(tp::min_normal(tp::kBinary16Alt), tp::min_normal(tp::kBinary32));
}

TEST(Encoding, Representable) {
    EXPECT_TRUE(tp::representable(0.25, tp::kBinary8));
    EXPECT_TRUE(tp::representable(-1.75, tp::kBinary8));
    EXPECT_FALSE(tp::representable(0.3, tp::kBinary8));
    EXPECT_TRUE(tp::representable(65504.0, tp::kBinary16));
    EXPECT_FALSE(tp::representable(65504.0 + 16.0, tp::kBinary16));
}

} // namespace
