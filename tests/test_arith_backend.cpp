// Differential battery for the unified arithmetic-backend seam
// (flexfloat/arith_backend.hpp).
//
// The contract under test: the native fast path (hardware double / float /
// _Float16 with a conversion round-trip at the format boundary) is
// BIT-IDENTICAL to the emulated compute-in-binary64-then-sanitize path for
// every operation — including subnormal results, overflow to infinity, NaN
// canonicalization and round-to-nearest-even ties. The battery checks this
// three ways:
//
//   1. directly: detail::native_arith<T> vs arith::emulated over adversarial
//      and random operands (independent of any override knob, so the native
//      code keeps real coverage even under TP_FORCE_EMULATED=1);
//   2. through the public entry points across the full (e, m) lattice,
//      native resolution vs a forced-emulated thread scope;
//   3. against the softfloat module as an independent correctly-rounding
//      oracle for the three hardware-mappable formats.
//
// On top sit the override-knob semantics (env / thread scope / TpContext
// config / EvalEngine option) and app-level byte-identity: goldens, kernel
// outputs and full distributed_search runs on pca and fft must not change
// by a single bit when the backend is switched.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "flexfloat/arith_backend.hpp"
#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "sim/context.hpp"
#include "softfloat/softfloat.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"
#include "types/encoding.hpp"
#include "types/format.hpp"

namespace {

using tp::BackendKind;
using tp::FpFormat;
using tp::FpOp;
using tp::kBinary16;
using tp::kBinary16Alt;
using tp::kBinary32;
using tp::kBinary64;
using tp::kBinary8;

std::uint64_t bits_of(double value) noexcept {
    return std::bit_cast<std::uint64_t>(value);
}

// GCC 12 misdetects overlapping copies in std::string operator+ chains under
// -O2 (PR105651); building the name with append avoids the warning.
std::string format_name(FpFormat format) {
    std::string name = "e";
    name.append(std::to_string(format.exp_bits));
    name.append("m");
    name.append(std::to_string(format.mant_bits));
    return name;
}

/// Bitwise comparison with a failure budget, so a systematic mismatch
/// reports a handful of concrete counterexamples instead of megabytes.
class BitChecker {
public:
    void check(double actual, double expected, const std::string& what) {
        ++checks_;
        if (bits_of(actual) == bits_of(expected)) return;
        if (++mismatches_ > kReportBudget) return;
        std::ostringstream oss;
        oss << std::hexfloat << what << ": got " << actual << " (0x" << std::hex
            << bits_of(actual) << "), want " << expected << " (0x"
            << bits_of(expected) << ")";
        ADD_FAILURE() << oss.str();
    }
    void finish() const {
        EXPECT_EQ(mismatches_, 0u) << "of " << checks_ << " checks";
        EXPECT_GT(checks_, 0u);
    }

private:
    static constexpr std::size_t kReportBudget = 8;
    std::size_t checks_ = 0;
    std::size_t mismatches_ = 0;
};

/// Adversarial operands, all exactly representable in `format`: signed
/// zeros, the subnormal/normal/overflow boundaries, specials, and a few
/// quantized ordinary values.
std::vector<double> adversarial_operands(FpFormat format) {
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double sub = tp::min_subnormal(format);
    const double nrm = tp::min_normal(format);
    const double max = tp::max_finite(format);
    std::vector<double> ops{0.0,  -0.0, sub,  -sub, nrm, -nrm,
                            max,  -max, inf,  -inf, nan};
    for (const double seed : {1.0, -3.0, 1.0 / 3.0, 0.7, 1e-3}) {
        ops.push_back(tp::quantize(seed, format));
    }
    return ops;
}

/// Uniform random bit patterns of the format, decoded — covers every
/// representable value class including subnormals, infinities and NaN.
std::vector<double> random_operands(FpFormat format, std::size_t count) {
    std::mt19937_64 rng{0x9e3779b9u ^
                        (static_cast<std::uint64_t>(format.exp_bits) << 8) ^
                        format.mant_bits};
    std::vector<double> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ops.push_back(tp::decode(rng() & tp::bit_mask(format), format));
    }
    return ops;
}

constexpr FpOp kBinaryOps[] = {FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div};
constexpr FpOp kUnaryOps[] = {FpOp::Neg, FpOp::Abs, FpOp::Sqrt};

// --- classifier (satellite: FpFormat::backend()) ---------------------------

TEST(BackendClassifier, HardwareMappableFormats) {
    static_assert(kBinary64.backend() == BackendKind::kNativeF64);
    static_assert(kBinary32.backend() == BackendKind::kNativeF32);
    static_assert(kBinary8.backend() == BackendKind::kEmulated);
    static_assert(kBinary16Alt.backend() == BackendKind::kEmulated);
#if TP_NATIVE_F16
    static_assert(kBinary16.backend() == BackendKind::kNativeF16);
#else
    static_assert(kBinary16.backend() == BackendKind::kEmulated);
#endif
}

TEST(BackendClassifier, OnlyTheExactShapesAreNative) {
    int native = 0;
    for (int e = 1; e <= 11; ++e) {
        for (int m = 1; m <= 52; ++m) {
            const FpFormat format{static_cast<std::uint8_t>(e),
                                  static_cast<std::uint8_t>(m)};
            if (format.backend() != BackendKind::kEmulated) ++native;
        }
    }
    EXPECT_EQ(native, 2 + TP_NATIVE_F16);
}

TEST(BackendClassifier, Names) {
    EXPECT_EQ(tp::name_of(BackendKind::kEmulated), "emulated");
    EXPECT_EQ(tp::name_of(BackendKind::kNativeF64), "native_f64");
    EXPECT_EQ(tp::name_of(BackendKind::kNativeF32), "native_f32");
    EXPECT_EQ(tp::name_of(BackendKind::kNativeF16), "native_f16");
}

// --- override knob ---------------------------------------------------------

TEST(BackendKnob, ScopeIsThreadLocalAndRestores) {
    // The process-wide env override (TP_FORCE_EMULATED) may be active in a
    // forced-emulated CI configuration; every expectation is relative to it.
    const bool env = tp::arith::detail::g_env_force_emulated;
    EXPECT_EQ(tp::arith::force_emulated(), env);
    {
        const tp::arith::ScopedForceEmulated scope;
        EXPECT_TRUE(tp::arith::force_emulated());
        {
            // A nested scope asking for "off" cannot undo an enclosing "on".
            const tp::arith::ScopedForceEmulated inner{false};
            EXPECT_TRUE(tp::arith::force_emulated());
        }
        EXPECT_TRUE(tp::arith::force_emulated());
        // The override is per-thread: a fresh thread sees only the env.
        bool other_thread_forced = true;
        std::thread probe{[&] { other_thread_forced = tp::arith::force_emulated(); }};
        probe.join();
        EXPECT_EQ(other_thread_forced, env);
    }
    EXPECT_EQ(tp::arith::force_emulated(), env);

    tp::arith::set_force_emulated(true);
    EXPECT_TRUE(tp::arith::force_emulated());
    tp::arith::set_force_emulated(false);
    EXPECT_EQ(tp::arith::force_emulated(), env);
}

TEST(BackendKnob, ResolveHonorsOverride) {
    const bool env = tp::arith::detail::g_env_force_emulated;
    EXPECT_EQ(tp::arith::resolve(kBinary32),
              env ? BackendKind::kEmulated : BackendKind::kNativeF32);
    EXPECT_EQ(tp::arith::resolve(kBinary64),
              env ? BackendKind::kEmulated : BackendKind::kNativeF64);
    EXPECT_EQ(tp::arith::resolve(kBinary16Alt), BackendKind::kEmulated);
    const tp::arith::ScopedForceEmulated scope;
    EXPECT_EQ(tp::arith::resolve(kBinary32), BackendKind::kEmulated);
    EXPECT_EQ(tp::arith::resolve(kBinary64), BackendKind::kEmulated);
}

// --- native path vs emulated, directly -------------------------------------

// Calls detail::native_arith<T> / round_native<T> without going through
// resolve(), so the native code is exercised even when the process runs
// forced-emulated.
template <typename T>
void direct_native_battery(FpFormat format) {
    BitChecker check;
    std::vector<double> ops = adversarial_operands(format);
    const std::vector<double> extra = random_operands(format, 40);
    ops.insert(ops.end(), extra.begin(), extra.end());

    const std::string tag = format_name(format);
    for (const double a : ops) {
        for (const double b : ops) {
            for (const FpOp op : kBinaryOps) {
                check.check(tp::arith::detail::native_arith<T>(op, a, b),
                            tp::arith::emulated(op, a, b, format),
                            tag + " binary op " +
                                std::to_string(static_cast<int>(op)));
            }
        }
        for (const FpOp op : kUnaryOps) {
            check.check(tp::arith::detail::native_arith<T>(op, a, a),
                        tp::arith::emulated(op, a, a, format),
                        tag + " unary op " +
                            std::to_string(static_cast<int>(op)));
        }
        // The cast entry point takes ARBITRARY binary64 inputs, not just
        // representable ones; sweep the operand scaled off-format too.
        for (const double scale : {1.0, 1.0 + 1e-9, 1e17, 1e-17}) {
            check.check(tp::arith::detail::round_native<T>(a * scale),
                        tp::arith::emulated_cast(a * scale, format),
                        tag + " cast");
        }
    }
    check.finish();
}

TEST(BackendNativeDirect, Binary64) { direct_native_battery<double>(kBinary64); }
TEST(BackendNativeDirect, Binary32) { direct_native_battery<float>(kBinary32); }
#if TP_NATIVE_F16
TEST(BackendNativeDirect, Binary16) {
    direct_native_battery<_Float16>(kBinary16);
}
#endif

TEST(BackendNativeDirect, CastOfArbitraryDoubles) {
    BitChecker check;
    std::mt19937_64 rng{20260808};
    for (int i = 0; i < 20000; ++i) {
        const double value = std::bit_cast<double>(rng());
        check.check(tp::arith::detail::round_native<double>(value),
                    tp::arith::emulated_cast(value, kBinary64), "f64 cast");
        check.check(tp::arith::detail::round_native<float>(value),
                    tp::arith::emulated_cast(value, kBinary32), "f32 cast");
#if TP_NATIVE_F16
        check.check(tp::arith::detail::round_native<_Float16>(value),
                    tp::arith::emulated_cast(value, kBinary16), "f16 cast");
#endif
    }
    check.finish();
}

TEST(BackendNativeDirect, OverflowBoundaryCasts) {
    BitChecker check;
    // The guard constants are exactly the smallest magnitudes that round to
    // infinity under RNE; probe both sides and the tie itself.
    for (const double boundary : {0x1.ffffffp+127, 0x1.ffep+15}) {
        const FpFormat format = boundary > 1e30 ? kBinary32 : kBinary16;
        for (const double value :
             {boundary, -boundary, std::nextafter(boundary, 0.0),
              std::nextafter(boundary, 1e308), boundary * 2}) {
            check.check(tp::arith::cast(value, format),
                        tp::arith::emulated_cast(value, format),
                        format_name(format) + " boundary cast");
        }
    }
    check.finish();
}

// --- round-to-nearest-even ties, explicitly --------------------------------

TEST(BackendTies, Binary32RoundsTiesToEven) {
    const double ulp = 0x1p-23, half = 0x1p-24;
    // 1.0 has an even mantissa: the half-ulp tie stays put.
    EXPECT_EQ(tp::arith::arith(FpOp::Add, 1.0, half, kBinary32), 1.0);
    // 1.0 + ulp is odd: the tie rounds up to the even neighbour.
    EXPECT_EQ(tp::arith::arith(FpOp::Add, 1.0 + ulp, half, kBinary32),
              1.0 + 2 * ulp);
    // Overflow rounds to infinity on both paths.
    const double max = tp::max_finite(kBinary32);
    EXPECT_EQ(tp::arith::arith(FpOp::Add, max, max, kBinary32),
              std::numeric_limits<double>::infinity());
    // Subnormal arithmetic stays exact.
    const double sub = tp::min_subnormal(kBinary32);
    EXPECT_EQ(tp::arith::arith(FpOp::Add, sub, sub, kBinary32), 2 * sub);
    EXPECT_EQ(tp::arith::arith(FpOp::Mul, tp::min_normal(kBinary32),
                               tp::quantize(0.5, kBinary32), kBinary32),
              tp::min_normal(kBinary32) / 2);
}

TEST(BackendTies, Binary16RoundsTiesToEven) {
    const double ulp = 0x1p-10, half = 0x1p-11;
    EXPECT_EQ(tp::arith::arith(FpOp::Add, 1.0, half, kBinary16), 1.0);
    EXPECT_EQ(tp::arith::arith(FpOp::Add, 1.0 + ulp, half, kBinary16),
              1.0 + 2 * ulp);
    const double max = tp::max_finite(kBinary16); // 65504
    EXPECT_EQ(tp::arith::arith(FpOp::Add, max, max, kBinary16),
              std::numeric_limits<double>::infinity());
    const double sub = tp::min_subnormal(kBinary16);
    EXPECT_EQ(tp::arith::arith(FpOp::Add, sub, sub, kBinary16), 2 * sub);
}

// --- full (e, m) lattice through the public entry points --------------------

TEST(BackendLattice, PublicApiBitIdenticalUnderForcedEmulation) {
    BitChecker check;
    for (int e = 1; e <= 11; ++e) {
        for (int m = 1; m <= 52; ++m) {
            const FpFormat format{static_cast<std::uint8_t>(e),
                                  static_cast<std::uint8_t>(m)};
            std::vector<double> ops = adversarial_operands(format);
            const std::vector<double> extra = random_operands(format, 6);
            ops.insert(ops.end(), extra.begin(), extra.end());
            const std::string tag = format_name(format);

            for (const double a : ops) {
                for (const double b : ops) {
                    for (const FpOp op : kBinaryOps) {
                        const double fast = tp::arith::arith(op, a, b, format);
                        double slow;
                        {
                            const tp::arith::ScopedForceEmulated scope;
                            slow = tp::arith::arith(op, a, b, format);
                        }
                        check.check(fast, slow, tag + " binary");
                    }
                }
                for (const FpOp op : kUnaryOps) {
                    const double fast = tp::arith::arith(op, a, a, format);
                    double slow;
                    {
                        const tp::arith::ScopedForceEmulated scope;
                        slow = tp::arith::arith(op, a, a, format);
                    }
                    check.check(fast, slow, tag + " unary");
                }
            }
            // fma over a reduced triple set (the operand list cubed would
            // dominate the whole suite).
            for (std::size_t i = 0; i < 8 && i < ops.size(); ++i) {
                for (std::size_t j = 0; j < 8; ++j) {
                    for (std::size_t k = 0; k < 8; ++k) {
                        const double fast =
                            tp::arith::fma(ops[i], ops[j], ops[k], format);
                        double slow;
                        {
                            const tp::arith::ScopedForceEmulated scope;
                            slow = tp::arith::fma(ops[i], ops[j], ops[k], format);
                        }
                        check.check(fast, slow, tag + " fma");
                    }
                }
            }
        }
    }
    check.finish();
}

// --- softfloat as the independent correctly-rounding oracle -----------------

void oracle_battery(FpFormat format, std::size_t random_rounds) {
    BitChecker check;
    std::vector<double> ops = adversarial_operands(format);
    const std::vector<double> extra = random_operands(format, 12);
    ops.insert(ops.end(), extra.begin(), extra.end());
    const std::string tag = format_name(format);

    const auto check_all = [&](double a, double b, double c) {
        const std::uint64_t ab = tp::encode(a, format);
        const std::uint64_t bb = tp::encode(b, format);
        const std::uint64_t cb = tp::encode(c, format);
        const auto oracle = [&](std::uint64_t bits) {
            return tp::decode(bits, format);
        };
        // Both the resolved path and the forced-emulated one must agree
        // with the oracle; mismatch of either is a real rounding bug.
        for (const bool forced : {false, true}) {
            std::unique_ptr<tp::arith::ScopedForceEmulated> scope;
            if (forced) scope = std::make_unique<tp::arith::ScopedForceEmulated>();
            const std::string mode = forced ? tag + "/emulated" : tag + "/fast";
            check.check(tp::arith::arith(FpOp::Add, a, b, format),
                        oracle(tp::softfloat::add(ab, bb, format)), mode + " add");
            check.check(tp::arith::arith(FpOp::Sub, a, b, format),
                        oracle(tp::softfloat::sub(ab, bb, format)), mode + " sub");
            check.check(tp::arith::arith(FpOp::Mul, a, b, format),
                        oracle(tp::softfloat::mul(ab, bb, format)), mode + " mul");
            check.check(tp::arith::arith(FpOp::Div, a, b, format),
                        oracle(tp::softfloat::div(ab, bb, format)), mode + " div");
            check.check(tp::arith::arith(FpOp::Sqrt, a, a, format),
                        oracle(tp::softfloat::sqrt(ab, format)), mode + " sqrt");
            check.check(tp::arith::arith(FpOp::Neg, a, a, format),
                        oracle(tp::softfloat::neg(ab, format)), mode + " neg");
            check.check(tp::arith::arith(FpOp::Abs, a, a, format),
                        oracle(tp::softfloat::abs(ab, format)), mode + " abs");
            check.check(tp::arith::fma(a, b, c, format),
                        oracle(tp::softfloat::fma(ab, bb, cb, format)),
                        mode + " fma");
        }
    };

    for (const double a : ops) {
        for (const double b : ops) {
            check_all(a, b, b);
        }
    }
    std::mt19937_64 rng{0xf00dULL ^ format.exp_bits ^
                        (static_cast<std::uint64_t>(format.mant_bits) << 16)};
    const std::uint64_t mask = tp::bit_mask(format);
    for (std::size_t i = 0; i < random_rounds; ++i) {
        check_all(tp::decode(rng() & mask, format),
                  tp::decode(rng() & mask, format),
                  tp::decode(rng() & mask, format));
    }
    check.finish();
}

TEST(BackendOracle, Binary64) { oracle_battery(kBinary64, 1500); }
TEST(BackendOracle, Binary32) { oracle_battery(kBinary32, 1500); }
TEST(BackendOracle, Binary16) { oracle_battery(kBinary16, 1500); }

// --- the flexfloat layers route through the seam ----------------------------

template <typename Fn>
std::vector<double> with_backend(bool forced, Fn&& kernel) {
    std::unique_ptr<tp::arith::ScopedForceEmulated> scope;
    if (forced) scope = std::make_unique<tp::arith::ScopedForceEmulated>();
    return kernel();
}

TEST(BackendLayers, FlexfloatTemplateBitIdentical) {
    const auto kernel = [] {
        std::vector<double> out;
        const auto chain = [&out](auto x0, auto step) {
            auto acc = x0;
            for (int i = 1; i <= 40; ++i) {
                auto t = acc * step + x0;
                acc = t / (step + decltype(x0){i});
                acc = sqrt(abs(acc)) - fma(x0, step, acc);
                out.push_back(static_cast<double>(acc));
            }
        };
        chain(tp::binary32_t{0.7}, tp::binary32_t{1.1});
        chain(tp::binary16_t{0.7}, tp::binary16_t{1.1});
        chain(tp::flexfloat<11, 52>{0.7}, tp::flexfloat<11, 52>{1.1});
        chain(tp::flexfloat<6, 9>{0.7}, tp::flexfloat<6, 9>{1.1}); // exotic
        return out;
    };
    const std::vector<double> fast = with_backend(false, kernel);
    const std::vector<double> slow = with_backend(true, kernel);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(bits_of(fast[i]), bits_of(slow[i])) << "element " << i;
    }
}

TEST(BackendLayers, FlexFloatDynBitIdentical) {
    const auto kernel = [] {
        std::vector<double> out;
        for (const FpFormat format : {kBinary64, kBinary32, kBinary16,
                                      kBinary16Alt, FpFormat{7, 12}}) {
            tp::FlexFloatDyn acc{0.7, format};
            const tp::FlexFloatDyn step{1.1, format};
            for (int i = 1; i <= 40; ++i) {
                acc = (acc * step + acc) / step;
                acc = abs(sqrt(abs(acc)) - fma(acc, step, acc));
                out.push_back(acc.value());
            }
            out.push_back(acc.cast_to(kBinary16).value());
        }
        return out;
    };
    const std::vector<double> fast = with_backend(false, kernel);
    const std::vector<double> slow = with_backend(true, kernel);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(bits_of(fast[i]), bits_of(slow[i])) << "element " << i;
    }
}

TEST(BackendLayers, TpContextConfigKnobBitIdentical) {
    const auto kernel = [](bool force) {
        tp::sim::TpContext ctx{
            tp::sim::TpContext::Config{.trace = true, .force_emulated = force}};
        std::vector<double> out;
        for (const FpFormat format : {kBinary64, kBinary32, kBinary16,
                                      kBinary16Alt}) {
            tp::sim::TpArray data = ctx.make_array(format, 16);
            for (std::size_t i = 0; i < data.size(); ++i) {
                data.set_raw(i, 0.017 * static_cast<double>(i + 1) * (i % 2 ? -1 : 1));
            }
            tp::sim::TpValue acc = ctx.from_int(1, format);
            for (std::size_t i = 0; i < data.size(); ++i) {
                const tp::sim::TpValue x = data.load(i);
                acc = fma(x, x, acc) / (acc + x);
                acc = sqrt(abs(acc)) - x;
                data.store(i, acc);
            }
            out.push_back(acc.to_double());
            out.push_back(acc.cast_to(kBinary16).to_double());
            for (std::size_t i = 0; i < data.size(); ++i) out.push_back(data.raw(i));
        }
        return out;
    };
    const std::vector<double> fast = kernel(false);
    const std::vector<double> slow = kernel(true);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(bits_of(fast[i]), bits_of(slow[i])) << "element " << i;
    }
}

// --- app-level byte-identity (golden, outputs, full searches) ---------------

TEST(BackendApps, GoldenAndOutputsByteIdentical) {
    for (const char* name : {"pca", "fft"}) {
        const auto app = tp::apps::make_app(name);
        tp::tuning::EvalEngine fast{*app, tp::tuning::EvalEngine::Options{}};
        tp::tuning::EvalEngine slow{
            *app, tp::tuning::EvalEngine::Options{.force_emulated = true}};

        const std::vector<double>& golden_fast = fast.golden(0);
        const std::vector<double>& golden_slow = slow.golden(0);
        ASSERT_EQ(golden_fast.size(), golden_slow.size()) << name;
        for (std::size_t i = 0; i < golden_fast.size(); ++i) {
            EXPECT_EQ(bits_of(golden_fast[i]), bits_of(golden_slow[i]))
                << name << " golden element " << i;
        }

        for (const FpFormat format : {kBinary32, kBinary16}) {
            const auto config = app->uniform_config(format);
            const std::vector<double> out_fast = fast.output(0, config);
            const std::vector<double> out_slow = slow.output(0, config);
            ASSERT_EQ(out_fast.size(), out_slow.size()) << name;
            for (std::size_t i = 0; i < out_fast.size(); ++i) {
                EXPECT_EQ(bits_of(out_fast[i]), bits_of(out_slow[i]))
                    << name << "/" << format_name(format) << " element " << i;
            }
        }
    }
}

TEST(BackendApps, FullSearchByteIdenticalOnPcaAndFft) {
    for (const char* name : {"pca", "fft"}) {
        const auto app = tp::apps::make_app(name);
        const tp::tuning::SearchOptions options; // the full default search
        tp::tuning::EvalEngine fast{*app, tp::tuning::EvalEngine::Options{}};
        const tp::tuning::TuningResult native =
            tp::tuning::distributed_search(fast, options);
        tp::tuning::EvalEngine slow{
            *app, tp::tuning::EvalEngine::Options{.force_emulated = true}};
        const tp::tuning::TuningResult emulated =
            tp::tuning::distributed_search(slow, options);
        // TuningResult::operator== is the determinism contract's bit-identity
        // predicate: per-signal precisions, bindings and trial counts.
        EXPECT_TRUE(native == emulated) << name;
    }
}

} // namespace
