#include "softfloat/softfloat.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "types/encoding.hpp"
#include "types/format.hpp"
#include "util/random.hpp"

namespace {

namespace sf = tp::softfloat;
using tp::decode;
using tp::encode;
using tp::FpFormat;

// Reference implementation: operate on the decoded doubles and re-round.
// For every format in this library (m <= 24 via double is bit-exact by the
// innocuous-double-rounding theorem; products/sums of narrow formats are
// even exact in double), this gives the correctly rounded result, entirely
// independently of the integer datapath under test.
std::uint64_t oracle(char op, std::uint64_t a, std::uint64_t b, FpFormat f) {
    const double da = decode(a, f);
    const double db = decode(b, f);
    double r = 0.0;
    switch (op) {
    case '+': r = da + db; break;
    case '-': r = da - db; break;
    case '*': r = da * db; break;
    case '/': r = da / db; break;
    default: ADD_FAILURE() << "bad op"; break;
    }
    return encode(r, f);
}

std::uint64_t apply(char op, std::uint64_t a, std::uint64_t b, FpFormat f) {
    switch (op) {
    case '+': return sf::add(a, b, f);
    case '-': return sf::sub(a, b, f);
    case '*': return sf::mul(a, b, f);
    case '/': return sf::div(a, b, f);
    default: ADD_FAILURE() << "bad op"; return 0;
    }
}

/// Compares softfloat against the oracle, treating any-NaN as equivalent.
/// For formats within the innocuous-double-rounding envelope (m <= 24) the
/// oracle is correctly rounded and the match must be exact. For wider
/// formats the *oracle* can be off by one ulp (softfloat is the correctly
/// rounded one there), so a 1-ulp tolerance applies.
void expect_same(char op, std::uint64_t a, std::uint64_t b, FpFormat f) {
    const std::uint64_t got = apply(op, a, b, f);
    const std::uint64_t want = oracle(op, a, b, f);
    const bool got_nan = sf::is_nan(got, f);
    const bool want_nan = std::isnan(decode(want, f));
    if (got_nan || want_nan) {
        ASSERT_EQ(got_nan, want_nan)
            << op << " a=" << std::hex << a << " b=" << b;
        return;
    }
    if (f.exact_via_double()) {
        ASSERT_EQ(got, want) << op << " a=" << std::hex << a << " b=" << b
                             << " (e=" << std::dec << int{f.exp_bits}
                             << ",m=" << int{f.mant_bits} << ")";
        return;
    }
    // Wide format: allow the oracle's double-rounding ulp, same sign only.
    const std::uint64_t sign_bit = 1ULL << (f.exp_bits + f.mant_bits);
    ASSERT_EQ(got & sign_bit, want & sign_bit);
    const std::uint64_t mag_got = got & ~sign_bit;
    const std::uint64_t mag_want = want & ~sign_bit;
    const std::uint64_t diff =
        mag_got > mag_want ? mag_got - mag_want : mag_want - mag_got;
    ASSERT_LE(diff, 1u) << op << " a=" << std::hex << a << " b=" << b;
}

TEST(SoftFloat, ExhaustiveBinary8AddSubMul) {
    for (std::uint64_t a = 0; a < 256; ++a) {
        for (std::uint64_t b = 0; b < 256; ++b) {
            expect_same('+', a, b, tp::kBinary8);
            expect_same('-', a, b, tp::kBinary8);
            expect_same('*', a, b, tp::kBinary8);
        }
    }
}

TEST(SoftFloat, ExhaustiveBinary8Div) {
    for (std::uint64_t a = 0; a < 256; ++a) {
        for (std::uint64_t b = 0; b < 256; ++b) {
            expect_same('/', a, b, tp::kBinary8);
        }
    }
}

class SoftFloatRandomOps
    : public ::testing::TestWithParam<std::tuple<FpFormat, char>> {};

TEST_P(SoftFloatRandomOps, MatchesOracle) {
    const auto [format, op] = GetParam();
    tp::util::Xoshiro256 rng{0xF00DULL + static_cast<unsigned>(op)};
    const std::uint64_t mask = tp::bit_mask(format);
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        expect_same(op, a, b, format);
    }
}

std::string random_ops_name(
    const ::testing::TestParamInfo<std::tuple<FpFormat, char>>& info) {
    const FpFormat format = std::get<0>(info.param);
    const char op = std::get<1>(info.param);
    std::string name = "e";
    name += std::to_string(format.exp_bits);
    name += "m";
    name += std::to_string(format.mant_bits);
    switch (op) {
    case '+': name += "_add"; break;
    case '-': name += "_sub"; break;
    case '*': name += "_mul"; break;
    case '/': name += "_div"; break;
    default: name += "_unk"; break;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SoftFloatRandomOps,
    ::testing::Combine(::testing::Values(tp::kBinary8, tp::kBinary16,
                                         tp::kBinary16Alt, tp::kBinary32,
                                         FpFormat{6, 9}, FpFormat{3, 3},
                                         FpFormat{10, 40}),
                       ::testing::Values('+', '-', '*', '/')),
    random_ops_name);

TEST(SoftFloat, SqrtMatchesOracleBinary16) {
    // sqrt of a binary16 value computed in double is exact to < half ulp
    // before re-rounding, so encode(sqrt(decode)) is correctly rounded.
    for (std::uint64_t a = 0; a < 65536; ++a) {
        const double da = decode(a, tp::kBinary16);
        if (std::isnan(da)) continue;
        const std::uint64_t got = sf::sqrt(a, tp::kBinary16);
        if (da < 0.0 && da != 0.0) {
            EXPECT_TRUE(sf::is_nan(got, tp::kBinary16));
            continue;
        }
        const std::uint64_t want = encode(std::sqrt(da), tp::kBinary16);
        ASSERT_EQ(got, want) << "pattern " << std::hex << a;
    }
}

TEST(SoftFloat, SqrtRandomBinary32) {
    tp::util::Xoshiro256 rng{0x57AB1E};
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t a = rng() & tp::bit_mask(tp::kBinary32);
        const double da = decode(a, tp::kBinary32);
        if (std::isnan(da) || da < 0.0) continue;
        const std::uint64_t got = sf::sqrt(a, tp::kBinary32);
        // float sqrt is correctly rounded on IEEE hardware.
        const float ref = std::sqrt(static_cast<float>(da));
        ASSERT_EQ(decode(got, tp::kBinary32), static_cast<double>(ref));
    }
}

TEST(SoftFloat, SpecialValuesAdd) {
    const FpFormat f = tp::kBinary16;
    const std::uint64_t inf = sf::infinity(f, false);
    const std::uint64_t ninf = sf::infinity(f, true);
    const std::uint64_t nan = sf::quiet_nan(f);
    const std::uint64_t one = encode(1.0, f);
    EXPECT_EQ(sf::add(inf, one, f), inf);
    EXPECT_EQ(sf::add(ninf, one, f), ninf);
    EXPECT_TRUE(sf::is_nan(sf::add(inf, ninf, f), f));
    EXPECT_TRUE(sf::is_nan(sf::add(nan, one, f), f));
    // +0 + -0 = +0 under round-to-nearest.
    EXPECT_EQ(sf::add(encode(0.0, f), encode(-0.0, f), f), 0u);
    EXPECT_EQ(sf::add(encode(-0.0, f), encode(-0.0, f), f), encode(-0.0, f));
}

TEST(SoftFloat, SpecialValuesMulDiv) {
    const FpFormat f = tp::kBinary16;
    const std::uint64_t inf = sf::infinity(f, false);
    const std::uint64_t zero = 0;
    const std::uint64_t one = encode(1.0, f);
    EXPECT_TRUE(sf::is_nan(sf::mul(inf, zero, f), f));
    EXPECT_TRUE(sf::is_nan(sf::div(zero, zero, f), f));
    EXPECT_TRUE(sf::is_nan(sf::div(inf, inf, f), f));
    EXPECT_EQ(sf::div(one, zero, f), inf);
    EXPECT_EQ(sf::div(one, sf::neg(zero, f), f), sf::infinity(f, true));
    EXPECT_EQ(sf::div(one, inf, f), 0u);
    // Exact cancellation gives +0.
    EXPECT_EQ(sf::sub(one, one, f), 0u);
}

TEST(SoftFloat, ExactCancellationNearEqual) {
    // Catastrophic cancellation must be exact (Sterbenz): a - b with
    // a/2 <= b <= 2a is representable.
    const FpFormat f = tp::kBinary16;
    tp::util::Xoshiro256 rng{0xCACE};
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t a = rng() & 0x7fffu;
        const double da = decode(a, f);
        if (!std::isfinite(da) || da == 0.0) continue;
        const double db = decode(a + 1, f);
        if (!std::isfinite(db)) continue;
        const std::uint64_t d = sf::sub(a + 1, a, f);
        ASSERT_EQ(decode(d, f), db - da);
    }
}

TEST(SoftFloat, CastBinary16ToBinary8KeepsRange) {
    // binary8 mirrors binary16's dynamic range: casting can lose precision
    // but never saturates a finite binary16 maximum to infinity... except
    // by rounding at the very top. max binary16 = 65504 rounds to 2^16
    // which overflows binary8 (max 57344) -> inf. Check the documented
    // boundary behaviour precisely.
    EXPECT_EQ(decode(sf::cast(encode(57344.0, tp::kBinary16), tp::kBinary16,
                              tp::kBinary8),
                     tp::kBinary8),
              57344.0);
    // Values whose rounding in binary8 stays below 1.75*2^15 survive.
    EXPECT_EQ(decode(sf::cast(encode(50000.0, tp::kBinary16), tp::kBinary16,
                              tp::kBinary8),
                     tp::kBinary8),
              49152.0);
}

TEST(SoftFloat, CastMatchesQuantize) {
    tp::util::Xoshiro256 rng{0xCA57};
    const FpFormat from[] = {tp::kBinary32, tp::kBinary16, tp::kBinary16Alt};
    const FpFormat to[] = {tp::kBinary8, tp::kBinary16, tp::kBinary16Alt,
                           tp::kBinary32};
    for (const FpFormat ff : from) {
        for (const FpFormat tf : to) {
            for (int i = 0; i < 20000; ++i) {
                const std::uint64_t a = rng() & tp::bit_mask(ff);
                const double da = decode(a, ff);
                if (std::isnan(da)) continue;
                const std::uint64_t got = sf::cast(a, ff, tf);
                ASSERT_EQ(got, encode(da, tf));
            }
        }
    }
}

TEST(SoftFloat, FromIntExactSmall) {
    for (std::int64_t v = -300; v <= 300; ++v) {
        EXPECT_EQ(decode(sf::from_int(v, tp::kBinary32), tp::kBinary32),
                  static_cast<double>(v));
    }
}

TEST(SoftFloat, FromIntRounds) {
    // 2^24 + 1 is not representable in binary32.
    const std::int64_t v = (1 << 24) + 1;
    EXPECT_EQ(decode(sf::from_int(v, tp::kBinary32), tp::kBinary32),
              static_cast<double>(1 << 24));
    // Large magnitudes round like the native conversion.
    tp::util::Xoshiro256 rng{0x1217};
    for (int i = 0; i < 50000; ++i) {
        const auto x = static_cast<std::int64_t>(rng());
        EXPECT_EQ(decode(sf::from_int(x, tp::kBinary32), tp::kBinary32),
                  static_cast<double>(static_cast<float>(x)));
    }
}

TEST(SoftFloat, ToIntRoundsToNearestEven) {
    const FpFormat f = tp::kBinary32;
    EXPECT_EQ(sf::to_int(encode(2.5, f), f), 2);
    EXPECT_EQ(sf::to_int(encode(3.5, f), f), 4);
    EXPECT_EQ(sf::to_int(encode(-2.5, f), f), -2);
    EXPECT_EQ(sf::to_int(encode(0.49, f), f), 0);
    EXPECT_EQ(sf::to_int(encode(-7.0, f), f), -7);
    EXPECT_EQ(sf::to_int(sf::quiet_nan(f), f), 0);
    EXPECT_EQ(sf::to_int(sf::infinity(f, false), f),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(sf::to_int(sf::infinity(f, true), f),
              std::numeric_limits<std::int64_t>::min());
}

TEST(SoftFloat, ComparisonSemantics) {
    const FpFormat f = tp::kBinary16;
    tp::util::Xoshiro256 rng{0xC09A};
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t a = rng() & tp::bit_mask(f);
        const std::uint64_t b = rng() & tp::bit_mask(f);
        const double da = decode(a, f);
        const double db = decode(b, f);
        ASSERT_EQ(sf::eq(a, b, f), da == db);
        ASSERT_EQ(sf::lt(a, b, f), da < db);
        ASSERT_EQ(sf::le(a, b, f), da <= db);
    }
}

TEST(SoftFloat, WrapperInfixArithmetic) {
    const sf::SoftFloat a{1.5, tp::kBinary16};
    const sf::SoftFloat b{0.25, tp::kBinary16};
    EXPECT_EQ((a + b).to_double(), 1.75);
    EXPECT_EQ((a - b).to_double(), 1.25);
    EXPECT_EQ((a * b).to_double(), 0.375);
    EXPECT_EQ((a / b).to_double(), 6.0);
    EXPECT_EQ((-a).to_double(), -1.5);
    EXPECT_TRUE(b < a);
    EXPECT_TRUE(b <= a);
    EXPECT_FALSE(a == b);
    EXPECT_EQ(sf::SoftFloat::from_bits(a.bits(), tp::kBinary16).to_double(), 1.5);
}

TEST(SoftFloat, CommutativityProperty) {
    tp::util::Xoshiro256 rng{0xAB};
    const FpFormat f = tp::kBinary16Alt;
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t a = rng() & tp::bit_mask(f);
        const std::uint64_t b = rng() & tp::bit_mask(f);
        if (sf::is_nan(a, f) || sf::is_nan(b, f)) continue;
        ASSERT_EQ(sf::add(a, b, f), sf::add(b, a, f));
        ASSERT_EQ(sf::mul(a, b, f), sf::mul(b, a, f));
    }
}

TEST(SoftFloat, NegAndAbs) {
    const FpFormat f = tp::kBinary16;
    const std::uint64_t one = encode(1.0, f);
    EXPECT_EQ(sf::neg(one, f), encode(-1.0, f));
    EXPECT_EQ(sf::abs(encode(-1.0, f), f), one);
    EXPECT_EQ(sf::abs(sf::infinity(f, true), f), sf::infinity(f, false));
}

} // namespace
