#include "flexfloat/stats.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"

namespace {

using tp::FpOp;
using tp::thread_stats;

class StatsTest : public ::testing::Test {
protected:
    void SetUp() override {
        thread_stats().reset();
        thread_stats().set_enabled(true);
    }
    void TearDown() override {
        thread_stats().set_enabled(false);
        thread_stats().reset();
    }
};

TEST_F(StatsTest, CountsTemplateOps) {
    const tp::binary16_t a = 1.0;
    const tp::binary16_t b = 2.0;
    const auto c = a + b;
    const auto d = c * a;
    (void)d;
    const auto counts = thread_stats().counts_for(tp::kBinary16);
    EXPECT_EQ(counts.total(FpOp::Add), 1u);
    EXPECT_EQ(counts.total(FpOp::Mul), 1u);
    EXPECT_EQ(counts.arithmetic_total(), 2u);
}

TEST_F(StatsTest, CountsDynOpsPerFormat) {
    const tp::FlexFloatDyn a{1.0, tp::kBinary8};
    const tp::FlexFloatDyn b{2.0, tp::kBinary8};
    (void)(a + b);
    (void)(a - b);
    (void)(a * b);
    const tp::FlexFloatDyn c{1.0, tp::kBinary32};
    (void)(c + c);
    EXPECT_EQ(thread_stats().counts_for(tp::kBinary8).arithmetic_total(), 3u);
    EXPECT_EQ(thread_stats().counts_for(tp::kBinary32).arithmetic_total(), 1u);
    EXPECT_EQ(thread_stats().total_arithmetic(), 4u);
}

TEST_F(StatsTest, CountsCasts) {
    const tp::binary32_t wide = 1.5f;
    const auto narrow = tp::flexfloat_cast<5, 10>(wide);
    (void)narrow;
    const tp::FlexFloatDyn d{1.5, tp::kBinary32};
    (void)d.cast_to(tp::kBinary8);
    EXPECT_EQ(thread_stats().total_casts(), 2u);
    const auto& casts = thread_stats().casts();
    const auto it = casts.find({tp::kBinary32, tp::kBinary16});
    ASSERT_NE(it, casts.end());
    EXPECT_EQ(it->second[0], 1u);
}

TEST_F(StatsTest, VectorRegionSplitsCounts) {
    const tp::binary16_t a = 1.0;
    (void)(a + a); // scalar
    {
        const tp::VectorRegionGuard guard;
        EXPECT_TRUE(tp::in_vector_region());
        (void)(a + a); // vectorial
        (void)(a * a);
    }
    EXPECT_FALSE(tp::in_vector_region());
    const auto counts = thread_stats().counts_for(tp::kBinary16);
    EXPECT_EQ(counts.arithmetic_scalar(), 1u);
    EXPECT_EQ(counts.arithmetic_vectorial(), 2u);
}

TEST_F(StatsTest, NestedVectorRegions) {
    {
        const tp::VectorRegionGuard outer;
        {
            const tp::VectorRegionGuard inner;
            EXPECT_TRUE(tp::in_vector_region());
        }
        EXPECT_TRUE(tp::in_vector_region());
    }
    EXPECT_FALSE(tp::in_vector_region());
}

TEST_F(StatsTest, DisabledRegistryCountsNothing) {
    thread_stats().set_enabled(false);
    const tp::binary16_t a = 1.0;
    (void)(a + a);
    EXPECT_EQ(thread_stats().total_arithmetic(), 0u);
}

TEST_F(StatsTest, ResetClears) {
    const tp::binary16_t a = 1.0;
    (void)(a + a);
    thread_stats().reset();
    EXPECT_EQ(thread_stats().total_arithmetic(), 0u);
    EXPECT_TRUE(thread_stats().ops().empty());
}

TEST_F(StatsTest, ReportMentionsFormatsAndOps) {
    const tp::binary8_t a = 1.0;
    (void)(a * a);
    std::ostringstream os;
    thread_stats().print_report(os);
    const std::string report = os.str();
    EXPECT_NE(report.find("e=5, m=2"), std::string::npos);
    EXPECT_NE(report.find("mul=1"), std::string::npos);
}

TEST_F(StatsTest, DivSqrtNegAbsCmpTracked) {
    const tp::binary16_t a = 2.25;
    (void)(a / a);
    (void)sqrt(a);
    (void)(-a);
    (void)abs(a);
    (void)(a < a);
    const auto counts = thread_stats().counts_for(tp::kBinary16);
    EXPECT_EQ(counts.total(FpOp::Div), 1u);
    EXPECT_EQ(counts.total(FpOp::Sqrt), 1u);
    EXPECT_EQ(counts.total(FpOp::Neg), 1u);
    EXPECT_EQ(counts.total(FpOp::Abs), 1u);
    EXPECT_EQ(counts.total(FpOp::Cmp), 1u);
}

} // namespace
