// Ablation: how much of the Fig. 6/7 improvement comes from sub-word SIMD
// versus from narrow scalar operations alone. Runs every application with
// its tuned (10^-1, V2) formats twice — SIMD toolchain off and on — and
// compares both against the binary32 baseline.
//
// Expectation from the paper's argument: with the instruction base
// dominating per-op energy and a word-organized scratchpad, narrow scalar
// code saves little; vectorization is the lever (this is why JACOBI, which
// cannot vectorize, stays at ~97%).
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main() {
    constexpr double kEpsilon = 1e-1;
    std::cout << "=== Ablation: tuned formats with and without sub-word SIMD "
                 "(requirement 10^-1, V2) ===\n\n";
    tp::util::Table table({"app", "energy scalar-only", "energy simd",
                           "cycles scalar-only", "cycles simd",
                           "mem scalar-only", "mem simd"});
    for (const auto& name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(name);
        const auto tuning = tp::tuning::distributed_search(
            *app,
            tp::bench::bench_search_options(kEpsilon, tp::TypeSystemKind::V2));
        const auto baseline = tp::bench::simulate_baseline(*app);
        const auto scalar =
            tp::bench::simulate_app(*app, tuning.type_config(), false);
        const auto simd = tp::bench::simulate_app(*app, tuning.type_config(), true);
        const double base_e = baseline.energy.total();
        const auto base_c = static_cast<double>(baseline.cycles);
        const auto base_m = static_cast<double>(baseline.mem_accesses);
        table.add_row(
            {name, tp::util::Table::percent(scalar.energy.total() / base_e),
             tp::util::Table::percent(simd.energy.total() / base_e),
             tp::util::Table::percent(static_cast<double>(scalar.cycles) / base_c),
             tp::util::Table::percent(static_cast<double>(simd.cycles) / base_c),
             tp::util::Table::percent(static_cast<double>(scalar.mem_accesses) /
                                      base_m),
             tp::util::Table::percent(static_cast<double>(simd.mem_accesses) /
                                      base_m)});
    }
    table.print(std::cout);
    std::cout << "\nexpected: scalar-only narrow formats recover only a small "
                 "fraction of the SIMD savings\n(memory accesses do not drop "
                 "at all without packing)\n";
    return 0;
}
