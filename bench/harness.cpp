#include "harness.hpp"

namespace tp::bench {

bool identical_results(const tuning::TuningResult& a,
                       const tuning::TuningResult& b) {
    return a == b;
}

sim::RunReport simulate_app(apps::App& app, const apps::TypeConfig& config,
                            bool simd, unsigned input_set) {
    app.prepare(input_set);
    sim::TpContext ctx;
    (void)app.run(ctx, config);
    return sim::simulate(ctx.take_program(simd));
}

sim::RunReport simulate_baseline(apps::App& app, unsigned input_set) {
    return simulate_app(app, app.uniform_config(kBinary32), /*simd=*/false,
                        input_set);
}

tuning::SearchOptions bench_search_options(double epsilon, TypeSystemKind kind) {
    tuning::SearchOptions options;
    options.epsilon = epsilon;
    options.type_system = TypeSystem{kind};
    options.input_sets = {0, 1, 2};
    return options;
}

Experiment run_experiment(const std::string& app_name, double epsilon,
                          TypeSystemKind type_system, bool simd) {
    Experiment experiment;
    experiment.app = app_name;
    experiment.epsilon = epsilon;
    experiment.type_system = type_system;

    const auto app = apps::make_app(app_name);
    experiment.tuning =
        tuning::distributed_search(*app, bench_search_options(epsilon, type_system));
    experiment.baseline = simulate_baseline(*app);
    experiment.tuned = simulate_app(*app, experiment.tuning.type_config(), simd);
    return experiment;
}

} // namespace tp::bench
