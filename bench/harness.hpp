// Shared experiment harness for the table/figure benches.
//
// Every evaluation quantity in the paper is a comparison between two runs
// of the same application on the virtual platform:
//   * baseline — every variable binary32, no sub-word SIMD (the PULPino
//     RISC-V single-precision baseline);
//   * tuned — per-variable formats from DistributedSearch under a type
//     system, with the vectorizing toolchain enabled.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "tuning/search.hpp"
#include "types/type_system.hpp"

namespace tp::bench {

/// The three precision requirements of the paper's evaluation.
inline const std::vector<double> kEpsilons{1e-3, 1e-2, 1e-1};

/// Elapsed wall-clock seconds since `start`.
[[nodiscard]] inline double seconds_since(
    std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// The bit-identity predicate of the determinism contract: memberwise
/// TuningResult equality (tuning/search.hpp operator==), named for the
/// benches that gate CI on it.
[[nodiscard]] bool identical_results(const tuning::TuningResult& a,
                                     const tuning::TuningResult& b);

/// Traces one run of `app` under `config` and simulates it.
[[nodiscard]] sim::RunReport simulate_app(apps::App& app,
                                          const apps::TypeConfig& config,
                                          bool simd, unsigned input_set = 0);

/// Baseline: uniform binary32, scalar ISA.
[[nodiscard]] sim::RunReport simulate_baseline(apps::App& app,
                                               unsigned input_set = 0);

struct Experiment {
    std::string app;
    double epsilon = 0.0;
    TypeSystemKind type_system = TypeSystemKind::V2;
    tuning::TuningResult tuning;
    sim::RunReport baseline;
    sim::RunReport tuned;
};

/// Tunes `app_name` at `epsilon` under `type_system` and simulates both the
/// binary32 baseline and the tuned configuration.
[[nodiscard]] Experiment run_experiment(const std::string& app_name,
                                        double epsilon,
                                        TypeSystemKind type_system,
                                        bool simd = true);

/// Tuning options used across all benches (three input sets, V-series
/// hypothesis maps).
[[nodiscard]] tuning::SearchOptions bench_search_options(double epsilon,
                                                         TypeSystemKind kind);

} // namespace tp::bench
