// Reproduces the paper's Section V-A energy characterization: per-operation
// energy of the transprecision FPU in all modes of operation, measured on
// random operands that avoid NaN/infinity generation and operand
// cancellation (the paper's post-layout simulation conditions: "no NaN or
// infinity values were applied and operands were chosen sufficiently close
// to each other such that operand cancellation would not occur").
#include <iostream>
#include <vector>

#include "fpu/transprecision_fpu.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using tp::FlexFloatDyn;
using tp::FpOp;

/// Random operand in [1, 2): same binade, so addition never cancels and
/// never overflows, and every value is a normal number.
FlexFloatDyn operand(tp::util::Xoshiro256& rng, tp::FpFormat fmt) {
    return FlexFloatDyn{rng.uniform(1.0, 2.0), fmt};
}

double measure(FpOp op, tp::FpFormat fmt, int lanes) {
    tp::fpu::TransprecisionFpu fpu;
    tp::util::Xoshiro256 rng{0xE4E26};
    constexpr int kOps = 10000;
    for (int i = 0; i < kOps; ++i) {
        if (lanes == 1) {
            (void)fpu.execute(op, operand(rng, fmt), operand(rng, fmt));
        } else {
            std::vector<FlexFloatDyn> a;
            std::vector<FlexFloatDyn> b;
            for (int l = 0; l < lanes; ++l) {
                a.push_back(operand(rng, fmt));
                b.push_back(operand(rng, fmt));
            }
            (void)fpu.execute_simd(op, a, b);
        }
    }
    return fpu.counters().energy_pj / kOps;
}

double measure_cast(tp::FpFormat from, tp::FpFormat to) {
    tp::fpu::TransprecisionFpu fpu;
    tp::util::Xoshiro256 rng{0xCA57E};
    constexpr int kOps = 10000;
    for (int i = 0; i < kOps; ++i) {
        // Only values representable in the target's range, to avoid over-
        // and underflow, as in the paper's measurement setup.
        (void)fpu.convert(operand(rng, from), to);
    }
    return fpu.counters().energy_pj / kOps;
}

} // namespace

int main() {
    std::cout << "=== Transprecision FPU energy per operation (pJ/op, "
                 "calibrated 65nm-class model) ===\n\n";

    tp::util::Table arith({"operation", "binary8", "binary16", "binary16alt",
                           "binary32"});
    const struct {
        const char* label;
        FpOp op;
        int lanes;
    } rows[] = {
        {"add (scalar)", FpOp::Add, 1},
        {"mul (scalar)", FpOp::Mul, 1},
        {"add (simd)", FpOp::Add, 0},
        {"mul (simd)", FpOp::Mul, 0},
    };
    for (const auto& row : rows) {
        std::vector<std::string> cells{row.label};
        for (const tp::FormatKind kind : tp::kAllFormatKinds) {
            const tp::FpFormat fmt = tp::format_of(kind);
            const int lanes =
                row.lanes == 0 ? tp::fpu::TransprecisionFpu::max_lanes(fmt)
                               : row.lanes;
            if (row.lanes == 0 && lanes == 1) {
                cells.push_back("-"); // no SIMD mode for 32-bit
                continue;
            }
            const double pj = measure(row.op, fmt, lanes);
            std::string cell = tp::util::Table::num(pj, 2);
            if (row.lanes == 0) {
                cell += " (" + tp::util::Table::num(pj / lanes, 2) + "/lane)";
            }
            cells.push_back(cell);
        }
        arith.add_row(std::move(cells));
    }
    arith.print(std::cout);

    std::cout << "\nconversion energies (pJ/op):\n";
    tp::util::Table casts({"cast", "pJ"});
    const std::pair<tp::FormatKind, tp::FormatKind> pairs[] = {
        {tp::FormatKind::Binary32, tp::FormatKind::Binary16},
        {tp::FormatKind::Binary32, tp::FormatKind::Binary16Alt},
        {tp::FormatKind::Binary32, tp::FormatKind::Binary8},
        {tp::FormatKind::Binary16, tp::FormatKind::Binary8},
        {tp::FormatKind::Binary16Alt, tp::FormatKind::Binary8},
        {tp::FormatKind::Binary16, tp::FormatKind::Binary16Alt},
    };
    for (const auto& [from, to] : pairs) {
        const double pj = measure_cast(tp::format_of(from), tp::format_of(to));
        casts.add_row({std::string(tp::name_of(from)) + " -> " +
                           std::string(tp::name_of(to)),
                       tp::util::Table::num(pj, 2)});
    }
    casts.print(std::cout);

    std::cout << "\nnotes: SIMD modes amortize the instruction base over 2 "
                 "(16-bit) or 4 (binary8) lanes;\ncasts between formats with "
                 "equal exponent width (32<->16alt, 16<->8) are cheaper, as "
                 "in the paper.\n";
    return 0;
}
