// Minimal JSON emitter for machine-readable bench output.
//
// The benches append perf numbers to BENCH_*.json files so the trajectory
// (wall time, kernel-run counts, cache hit-rates) is tracked across PRs by
// tooling instead of eyeballed from stdout. Ordered fields, no external
// dependency; values are built as strings. Strings are escaped per RFC
// 8259 (quotes, backslashes, control characters), doubles are emitted at
// max_digits10 so they round-trip, and non-finite doubles become null —
// the output is always valid JSON (tests/test_bench_json.cpp).
#pragma once

#include <cmath>
#include <concepts>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tp::bench {

/// An ordered JSON object/array builder. Nested values are passed as
/// already-serialized JSON via raw()/item_raw().
class Json {
public:
    static Json object() { return Json{'{', '}'}; }
    static Json array() { return Json{'[', ']'}; }

    Json& field(std::string_view key, std::string_view value) {
        return raw(key, quote(value));
    }
    Json& field(std::string_view key, const char* value) {
        return raw(key, quote(value));
    }
    Json& field(std::string_view key, double value) {
        return raw(key, number(value));
    }
    // One template for every integer width/signedness: distinct fixed-width
    // overloads are ambiguous where size_t matches none of them exactly.
    // The non-template bool overload below wins over the template for bool.
    template <std::integral T>
    Json& field(std::string_view key, T value) {
        return raw(key, std::to_string(value));
    }
    Json& field(std::string_view key, bool value) {
        return raw(key, value ? "true" : "false");
    }
    /// Nested object/array (or any pre-serialized JSON value).
    Json& raw(std::string_view key, std::string_view json) {
        entries_.emplace_back(std::string(key), std::string(json));
        return *this;
    }
    /// Array element (objects only use field/raw).
    Json& item_raw(std::string_view json) {
        entries_.emplace_back(std::string(), std::string(json));
        return *this;
    }
    Json& item(double value) { return item_raw(number(value)); }

    [[nodiscard]] std::string str(int indent = 0) const {
        const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
        const std::string close_pad(static_cast<std::size_t>(indent), ' ');
        std::string out(1, open_);
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            out += i == 0 ? "\n" : ",\n";
            out += pad;
            if (open_ == '{') out += quote(entries_[i].first) + ": ";
            // Re-indent nested multi-line values.
            for (const char c : entries_[i].second) {
                out += c;
                if (c == '\n') out += pad;
            }
        }
        if (!entries_.empty()) out += "\n" + close_pad;
        out += close_;
        return out;
    }

private:
    Json(char open, char close) : open_(open), close_(close) {}

    static std::string quote(std::string_view s) {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                case '\r': out += "\\r"; break;
                default:
                    // RFC 8259: all other control characters must be
                    // \u-escaped; everything else passes through (the
                    // emitter writes UTF-8 bytes untouched).
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char escape[8];
                        std::snprintf(escape, sizeof escape, "\\u%04x",
                                      static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
                        out += escape;
                    } else {
                        out += c;
                    }
            }
        }
        return out + "\"";
    }

    static std::string number(double value) {
        // JSON has no Infinity/NaN literals; null is the conventional
        // stand-in a reader can detect.
        if (!std::isfinite(value)) return "null";
        std::ostringstream os;
        // max_digits10 makes every emitted double round-trip exactly.
        os.precision(std::numeric_limits<double>::max_digits10);
        os << value;
        return os.str();
    }

    char open_;
    char close_;
    std::vector<std::pair<std::string, std::string>> entries_;
};

} // namespace tp::bench
