// Reproduces Fig. 4: for each application and each precision requirement
// (10^-3, 10^-2, 10^-1), the number of memory locations (scalar variables
// or array elements) whose minimum precision is each bit count, under the
// V2 type system. The colour bands of the paper map precision columns to
// the bound type:
//   (0,3] -> binary8   (3,8] -> binary16alt   (8,11] -> binary16
//   above 11 -> binary32
//
// Paper texture to compare against: KNN and SVM concentrate at the
// binary8 columns; DWT sits in the binary16alt band at every requirement;
// CONV moves from the binary16alt band to binary8 at 10^-1; JACOBI splits
// between a low-precision group and binary32; high-precision variables
// concentrate beyond column 11, and binary16 claims mostly column 9 (the
// first precision binary16alt cannot deliver).
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main() {
    std::cout << "=== Fig. 4: memory locations per minimum precision "
                 "(type system V2) ===\n\n";
    for (const double epsilon : tp::bench::kEpsilons) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        std::vector<std::string> header{"app"};
        for (int bits = 1; bits <= 12; ++bits) header.push_back(std::to_string(bits));
        header.back() = "12+";
        tp::util::Table table(header);
        for (const auto& name : tp::apps::app_names()) {
            auto app = tp::apps::make_app(name);
            const auto result = tp::tuning::distributed_search(
                *app,
                tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2));
            const auto histogram = result.locations_per_precision();
            std::vector<std::string> row{name};
            for (int bits = 1; bits <= 11; ++bits) {
                row.push_back(std::to_string(histogram[static_cast<std::size_t>(bits)]));
            }
            std::size_t tail = 0;
            for (int bits = 12; bits <= tp::kMaxPrecisionBits; ++bits) {
                tail += histogram[static_cast<std::size_t>(bits)];
            }
            row.push_back(std::to_string(tail));
            table.add_row(std::move(row));
        }
        table.print(std::cout);
        std::cout << "bands: [1,3] binary8 | [4,8] binary16alt | [9,11] "
                     "binary16 | 12+ binary32\n\n";
    }
    return 0;
}
