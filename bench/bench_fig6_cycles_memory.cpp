// Reproduces Fig. 6: memory accesses and execution cycles of each tuned
// application, normalized to its binary32 baseline, for the three precision
// requirements. Vectorial accesses, vectorial-operation cycles and cast
// cycles are reported separately, as in the paper's stacked bars.
//
// Paper anchors: average -27% memory accesses and -12% cycles (-36%/-17%
// excluding the JACOBI and PCA outliers); SVM's accesses drop by 48%;
// JACOBI stays at ~1.0; casts can push PCA above the baseline.
#include <cmath>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main() {
    std::cout << "=== Fig. 6: memory accesses and cycles, normalized to the "
                 "binary32 baseline (type system V2) ===\n\n";

    for (const double epsilon : tp::bench::kEpsilons) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        tp::util::Table table({"app", "mem accesses", "(vector share)",
                               "cycles", "(vector ops)", "(cast cycles)"});
        double mem_product = 1.0;
        double cyc_product = 1.0;
        double mem_no_outliers = 1.0;
        double cyc_no_outliers = 1.0;
        int count = 0;
        int count_no_outliers = 0;
        for (const auto& name : tp::apps::app_names()) {
            const auto e =
                tp::bench::run_experiment(name, epsilon, tp::TypeSystemKind::V2);
            const double mem = static_cast<double>(e.tuned.mem_accesses) /
                               static_cast<double>(e.baseline.mem_accesses);
            const double cyc = static_cast<double>(e.tuned.cycles) /
                               static_cast<double>(e.baseline.cycles);
            const double vec_share =
                e.tuned.mem_accesses == 0
                    ? 0.0
                    : static_cast<double>(e.tuned.mem_accesses_vector) /
                          static_cast<double>(e.tuned.mem_accesses);
            const double cast_share =
                static_cast<double>(e.tuned.cast_cycles) /
                static_cast<double>(e.tuned.cycles);
            const double vec_ops_share =
                static_cast<double>(e.tuned.fp_simd_lane_ops) /
                static_cast<double>(e.tuned.fp_ops + e.tuned.fp_simd_lane_ops +
                                    1);
            table.add_row({name, tp::util::Table::percent(mem),
                           tp::util::Table::percent(vec_share),
                           tp::util::Table::percent(cyc),
                           tp::util::Table::percent(vec_ops_share),
                           tp::util::Table::percent(cast_share)});
            mem_product *= mem;
            cyc_product *= cyc;
            ++count;
            if (name != "jacobi" && name != "pca") {
                mem_no_outliers *= mem;
                cyc_no_outliers *= cyc;
                ++count_no_outliers;
            }
        }
        const double mem_avg = std::pow(mem_product, 1.0 / count);
        const double cyc_avg = std::pow(cyc_product, 1.0 / count);
        table.add_row({"average", tp::util::Table::percent(mem_avg), "",
                       tp::util::Table::percent(cyc_avg), "", ""});
        table.add_row(
            {"avg w/o jacobi,pca",
             tp::util::Table::percent(
                 std::pow(mem_no_outliers, 1.0 / count_no_outliers)),
             "",
             tp::util::Table::percent(
                 std::pow(cyc_no_outliers, 1.0 / count_no_outliers)),
             "", ""});
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper anchors: avg accesses -27%, avg cycles -12% "
                 "(-36%/-17% w/o outliers); SVM accesses -48%; JACOBI ~100%\n";
    return 0;
}
