// Wall-clock and cache-efficiency report for the precision-tuning engine
// (tuning/search.hpp + tuning/eval_engine.hpp).
//
// Two sections, both printed and written to BENCH_tuning.json:
//
//   * thread sweep — the PR-1 speedup check: the same PCA search at
//     several thread counts must return bit-identical TuningResults,
//     ideally faster. Expect ~2x or better at 4 threads on a 4-core
//     machine; a single-core container still verifies determinism.
//
//   * trial cache — the memoization check on PCA and DWT: how many
//     submitted trials the EvalEngine served from the (input_set, config)
//     cache instead of re-running the kernel. Three scenarios per app,
//     all serial (exact counters, stable across machines and PRs):
//     a single search on a cold engine, the identical search repeated on
//     the warm engine (every trial a hit), and — the headline
//     "eliminated_fraction" — the paper's three-epsilon sweep on a fresh
//     cold engine, where overlapping probes across requirements are hits
//     because the cache keys outputs, not pass/fail booleans.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "harness.hpp"
#include "json.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::identical_results;
using tp::bench::seconds_since;

tp::tuning::SearchOptions bench_options() {
    return tp::bench::bench_search_options(1e-2, tp::TypeSystemKind::V2);
}

/// One search on a fresh serial engine (cold cache), then the identical
/// search again on the same engine (warm cache). Returns the JSON section
/// and accumulates a pass/fail determinism flag.
std::string cache_section(const std::string& app_name, bool& all_identical) {
    const auto options = bench_options();
    auto app = tp::apps::make_app(app_name);

    tp::tuning::EvalEngine engine{
        *app, tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};

    const auto cold_start = Clock::now();
    const auto cold = tp::tuning::distributed_search(engine, options);
    const double cold_seconds = seconds_since(cold_start);
    const auto cold_stats = engine.stats();

    const auto warm_start = Clock::now();
    const auto warm = tp::tuning::distributed_search(engine, options);
    const double warm_seconds = seconds_since(warm_start);
    const auto warm_stats = engine.stats();

    // The cache must be invisible in the result: warm == cold == a run on
    // a memoization-free engine.
    tp::tuning::EvalEngine uncached{
        *app, tp::tuning::EvalEngine::Options{.threads = 1, .memoize = false}};
    const auto reference = tp::tuning::distributed_search(uncached, options);
    const bool matches = identical_results(cold, warm) && identical_results(cold, reference);
    all_identical = all_identical && matches;

    const std::size_t warm_trials = warm_stats.trials - cold_stats.trials;
    const std::size_t warm_hits = warm_stats.cache_hits - cold_stats.cache_hits;
    const double cold_rate = cold_stats.hit_rate();
    const double warm_rate =
        warm_trials == 0 ? 0.0
                         : static_cast<double>(warm_hits) /
                               static_cast<double>(warm_trials);

    std::printf("%-8s cold: %4zu trials, %4zu kernel runs, %4zu hits "
                "(%.1f%% eliminated) %.3fs\n",
                app_name.c_str(), cold_stats.trials, cold_stats.kernel_runs,
                cold_stats.cache_hits, 100.0 * cold_rate, cold_seconds);
    std::printf("%-8s warm: %4zu trials, %4zu hits (%.1f%% eliminated) %.3fs"
                "   identical: %s\n",
                app_name.c_str(), warm_trials, warm_hits, 100.0 * warm_rate,
                warm_seconds, matches ? "yes" : "NO");

    auto cold_json = tp::bench::Json::object()
                         .field("trials", cold_stats.trials)
                         .field("kernel_runs", cold_stats.kernel_runs)
                         .field("cache_hits", cold_stats.cache_hits)
                         .field("eliminated_fraction", cold_rate)
                         .field("wall_seconds", cold_seconds);
    auto warm_json = tp::bench::Json::object()
                         .field("trials", warm_trials)
                         .field("kernel_runs",
                                warm_stats.kernel_runs - cold_stats.kernel_runs)
                         .field("cache_hits", warm_hits)
                         .field("eliminated_fraction", warm_rate)
                         .field("wall_seconds", warm_seconds);
    // Aggregate over this bench's two searches: the memoization win for a
    // service that tunes the same workload repeatedly.
    const double total_rate = warm_stats.hit_rate();
    std::printf("%-8s repeat: %4zu trials, %4zu kernel runs, %4zu hits "
                "(%.1f%% eliminated over cold+warm)\n",
                app_name.c_str(), warm_stats.trials, warm_stats.kernel_runs,
                warm_stats.cache_hits, 100.0 * total_rate);
    auto total_json = tp::bench::Json::object()
                          .field("trials", warm_stats.trials)
                          .field("kernel_runs", warm_stats.kernel_runs)
                          .field("cache_hits", warm_stats.cache_hits)
                          .field("eliminated_fraction", total_rate);

    // Headline scenario: the paper's three quality requirements tuned on
    // one fresh engine — every counter below starts from a cold cache
    // (bench_eval_engine verifies this sweep's results bit-exact against
    // the memoization-free path for every registered app).
    tp::tuning::EvalEngine sweep_engine{
        *app, tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
    const auto sweep_start = Clock::now();
    for (const double epsilon : tp::bench::kEpsilons) {
        (void)tp::tuning::distributed_search(
            sweep_engine,
            tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2));
    }
    const double sweep_seconds = seconds_since(sweep_start);
    const auto sweep_stats = sweep_engine.stats();
    std::printf("%-8s sweep: %4zu trials, %4zu kernel runs, %4zu hits "
                "(%.1f%% of kernel executions eliminated, cold cache) %.3fs\n",
                app_name.c_str(), sweep_stats.trials, sweep_stats.kernel_runs,
                sweep_stats.cache_hits, 100.0 * sweep_stats.hit_rate(),
                sweep_seconds);
    auto epsilons_json = tp::bench::Json::array();
    for (const double epsilon : tp::bench::kEpsilons) {
        epsilons_json.item(epsilon);
    }
    auto sweep_json = tp::bench::Json::object()
                          .raw("epsilons", epsilons_json.str(2))
                          .field("trials", sweep_stats.trials)
                          .field("kernel_runs", sweep_stats.kernel_runs)
                          .field("cache_hits", sweep_stats.cache_hits)
                          .field("eliminated_fraction", sweep_stats.hit_rate())
                          .field("wall_seconds", sweep_seconds);

    return tp::bench::Json::object()
        .field("app", app_name)
        .field("epsilon", options.epsilon)
        .field("program_runs", cold.program_runs)
        .field("bit_identical", matches)
        .field("eliminated_fraction", sweep_stats.hit_rate())
        .raw("cold", cold_json.str(2))
        .raw("warm", warm_json.str(2))
        .raw("repeat_total", total_json.str(2))
        .raw("epsilon_sweep", sweep_json.str(2))
        .str(2);
}

} // namespace

int main() {
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("# parallel tuning engine — PCA, epsilon 1e-2, type system V2\n");
    std::printf("# hardware threads: %u\n\n", hw);
    std::printf("%-8s %-12s %-12s %-10s %s\n", "threads", "seconds", "runs",
                "speedup", "identical");

    auto options = bench_options();

    double serial_seconds = 0.0;
    tp::tuning::TuningResult serial_result;
    bool all_identical = true;

    auto sweep = tp::bench::Json::array();
    constexpr int kReps = 10; // amortizes pool startup and timer noise
    for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
        auto app = tp::apps::make_app("pca");
        options.threads = threads;
        const auto start = Clock::now();
        tp::tuning::TuningResult result;
        for (int rep = 0; rep < kReps; ++rep) {
            result = tp::tuning::distributed_search(*app, options);
        }
        const double elapsed = seconds_since(start) / kReps;

        bool matches = true;
        if (threads == 1) {
            serial_seconds = elapsed;
            serial_result = result;
        } else {
            matches = identical_results(serial_result, result);
            all_identical = all_identical && matches;
        }
        std::printf("%-8u %-12.3f %-12zu %-10.2f %s\n", threads, elapsed,
                    result.program_runs, serial_seconds / elapsed,
                    matches ? "yes" : "NO");
        sweep.item_raw(tp::bench::Json::object()
                           .field("threads", threads)
                           .field("wall_seconds", elapsed)
                           .field("program_runs", result.program_runs)
                           .field("speedup", serial_seconds / elapsed)
                           .field("bit_identical", matches)
                           .str(4));
    }

    std::printf("\n# trial-cache efficiency (serial engine, exact counters)\n");
    auto cache = tp::bench::Json::array();
    for (const char* app_name : {"pca", "dwt"}) {
        cache.item_raw(cache_section(app_name, all_identical));
    }

    const auto doc = tp::bench::Json::object()
                         .field("bench", "bench_parallel_tuning")
                         .field("hardware_threads", hw)
                         .raw("thread_sweep", sweep.str(2))
                         .raw("trial_cache", cache.str(2));
    std::ofstream out{"BENCH_tuning.json"};
    out << doc.str() << "\n";
    std::printf("\nwrote BENCH_tuning.json\n");

    if (!all_identical) {
        std::printf("\nFAIL: results diverged across threads or cache states\n");
        return 1;
    }
    std::printf("all thread counts and cache states returned bit-identical "
                "TuningResults\n");
    return 0;
}
