// Wall-clock comparison of the serial and parallel precision-tuning
// engines (tuning/search.hpp).
//
// Tuning dominates the pipeline's wall-clock cost: DistributedSearch runs
// the target program hundreds of times per application. The parallel
// engine dispatches per-signal precision probes and per-input-set
// refinement evaluations onto a thread pool; this bench times the same
// search at several thread counts and verifies the determinism contract
// (every thread count returns a bit-identical TuningResult). Expect ~2x or
// better at 4 threads on a 4-core machine for PCA; a single-core container
// still verifies determinism, it just cannot show a speedup.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "tuning/search.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool identical(const tp::tuning::TuningResult& a,
               const tp::tuning::TuningResult& b) {
    if (a.program_runs != b.program_runs) return false;
    if (a.signals.size() != b.signals.size()) return false;
    for (std::size_t i = 0; i < a.signals.size(); ++i) {
        if (a.signals[i].name != b.signals[i].name ||
            a.signals[i].precision_bits != b.signals[i].precision_bits ||
            a.signals[i].bound != b.signals[i].bound) {
            return false;
        }
    }
    return true;
}

} // namespace

int main() {
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("# parallel tuning engine — PCA, epsilon 1e-2, type system V2\n");
    std::printf("# hardware threads: %u\n\n", hw);
    std::printf("%-8s %-12s %-12s %-10s %s\n", "threads", "seconds", "runs",
                "speedup", "identical");

    tp::tuning::SearchOptions options;
    options.epsilon = 1e-2;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.input_sets = {0, 1, 2};

    double serial_seconds = 0.0;
    tp::tuning::TuningResult serial_result;
    bool all_identical = true;

    constexpr int kReps = 10; // amortizes pool startup and timer noise
    for (const unsigned threads : std::vector<unsigned>{1, 2, 4, 8}) {
        auto app = tp::apps::make_app("pca");
        options.threads = threads;
        const auto start = Clock::now();
        tp::tuning::TuningResult result;
        for (int rep = 0; rep < kReps; ++rep) {
            result = tp::tuning::distributed_search(*app, options);
        }
        const double elapsed = seconds_since(start) / kReps;

        bool matches = true;
        if (threads == 1) {
            serial_seconds = elapsed;
            serial_result = result;
        } else {
            matches = identical(serial_result, result);
            all_identical = all_identical && matches;
        }
        std::printf("%-8u %-12.3f %-12zu %-10.2f %s\n", threads, elapsed,
                    result.program_runs, serial_seconds / elapsed,
                    matches ? "yes" : "NO");
    }

    if (!all_identical) {
        std::printf("\nFAIL: parallel result diverged from the serial path\n");
        return 1;
    }
    std::printf("\nall thread counts returned bit-identical TuningResults\n");
    return 0;
}
