// Supports the paper's Section III-A performance claim: FlexFloat's
// compute-on-native-then-sanitize strategy "produces binaries that are
// fast to execute", unlike SoftFloat-style emulation which performs every
// operation in (integer) software. Both backends are bit-exact; this
// bench measures their throughput against native float on the same
// dot-product micro-kernel.
//
// Harness-based (no Google Benchmark dependency — ROADMAP open item):
// each backend's kernel is warmed up once, then re-run until a minimum
// wall time has accumulated; the per-element time is total elapsed over
// total elements. Results are printed and written to
// BENCH_flexfloat_overhead.json (CI artifact).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "harness.hpp"
#include "json.hpp"
#include "softfloat/softfloat.hpp"
#include "util/random.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kN = 1024;
/// Each kernel is timed for at least this long; long enough to swamp the
/// clock granularity, short enough that the slowest backend (softfloat,
/// ~100x native) keeps the bench under a few seconds.
constexpr double kMinSeconds = 0.05;

/// Defeats dead-code elimination of the measured loops without an
/// optimizer-visible data dependency on the timing path.
volatile double g_sink = 0.0;

std::vector<double> make_inputs(std::uint64_t seed) {
    tp::util::Xoshiro256 rng{seed};
    std::vector<double> xs(kN);
    for (double& x : xs) x = rng.uniform(0.5, 2.0);
    return xs;
}

struct Measurement {
    std::string name;
    double ns_per_element = 0.0;
    std::size_t iterations = 0;
};

/// Runs `kernel` (one pass over kN elements returning its accumulator)
/// until kMinSeconds has elapsed and reports ns per element.
template <typename Kernel>
Measurement measure(std::string name, Kernel kernel) {
    g_sink = kernel(); // warm-up: faults, caches, lazy init
    std::size_t iterations = 0;
    double elapsed = 0.0;
    const auto start = Clock::now();
    do {
        g_sink = kernel();
        ++iterations;
        elapsed = tp::bench::seconds_since(start);
    } while (elapsed < kMinSeconds);
    Measurement m;
    m.name = std::move(name);
    m.iterations = iterations;
    m.ns_per_element =
        1e9 * elapsed / (static_cast<double>(iterations) * static_cast<double>(kN));
    return m;
}

double native_float_kernel(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < kN; ++i) {
        acc += static_cast<float>(xs[i]) * static_cast<float>(ys[i]);
    }
    return static_cast<double>(acc);
}

template <int E, int M>
Measurement measure_flexfloat(const char* name, const std::vector<double>& xs,
                              const std::vector<double>& ys) {
    std::vector<tp::flexfloat<E, M>> fx(kN);
    std::vector<tp::flexfloat<E, M>> fy(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = xs[i];
        fy[i] = ys[i];
    }
    return measure(name, [&fx, &fy] {
        tp::flexfloat<E, M> acc = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
            acc += fx[i] * fy[i];
        }
        return static_cast<double>(acc);
    });
}

Measurement measure_flexfloat_dyn(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
    std::vector<tp::FlexFloatDyn> fx;
    std::vector<tp::FlexFloatDyn> fy;
    for (std::size_t i = 0; i < kN; ++i) {
        fx.emplace_back(xs[i], tp::kBinary16);
        fy.emplace_back(ys[i], tp::kBinary16);
    }
    return measure("flexfloat_dyn_binary16", [&fx, &fy] {
        tp::FlexFloatDyn acc{0.0, tp::kBinary16};
        for (std::size_t i = 0; i < kN; ++i) {
            acc += fx[i] * fy[i];
        }
        return acc.value();
    });
}

Measurement measure_softfloat(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
    const tp::FpFormat f = tp::kBinary16;
    std::vector<std::uint64_t> fx(kN);
    std::vector<std::uint64_t> fy(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = tp::encode(xs[i], f);
        fy[i] = tp::encode(ys[i], f);
    }
    return measure("softfloat_binary16", [&fx, &fy, f] {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < kN; ++i) {
            acc = tp::softfloat::add(acc, tp::softfloat::mul(fx[i], fy[i], f), f);
        }
        return tp::decode(acc, f);
    });
}

} // namespace

int main() {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);

    std::vector<Measurement> results;
    results.push_back(
        measure("native_float", [&xs, &ys] { return native_float_kernel(xs, ys); }));
    results.push_back(measure_flexfloat<8, 23>("flexfloat_binary32", xs, ys));
    results.push_back(measure_flexfloat<5, 10>("flexfloat_binary16", xs, ys));
    results.push_back(measure_flexfloat<8, 7>("flexfloat_binary16alt", xs, ys));
    results.push_back(measure_flexfloat<5, 2>("flexfloat_binary8", xs, ys));
    results.push_back(measure_flexfloat_dyn(xs, ys));
    results.push_back(measure_softfloat(xs, ys));

    const double native_ns = results.front().ns_per_element;
    std::printf("# FlexFloat emulation overhead — %zu-element dot product, "
                "min %.0f ms per backend\n\n",
                kN, 1e3 * kMinSeconds);
    std::printf("%-24s %12s %14s %12s\n", "backend", "ns/element",
                "vs native", "iterations");
    auto backends = tp::bench::Json::array();
    for (const Measurement& m : results) {
        const double slowdown = m.ns_per_element / native_ns;
        std::printf("%-24s %12.2f %13.1fx %12zu\n", m.name.c_str(),
                    m.ns_per_element, slowdown, m.iterations);
        backends.item_raw(tp::bench::Json::object()
                              .field("backend", m.name)
                              .field("ns_per_element", m.ns_per_element)
                              .field("slowdown_vs_native", slowdown)
                              .field("iterations", m.iterations)
                              .str(2));
    }

    const auto doc = tp::bench::Json::object()
                         .field("bench", "bench_flexfloat_overhead")
                         .field("elements", kN)
                         .field("min_seconds_per_backend", kMinSeconds)
                         .raw("backends", backends.str(2))
                         .str();
    std::ofstream out{"BENCH_flexfloat_overhead.json"};
    out << doc << "\n";
    std::printf("\nwrote BENCH_flexfloat_overhead.json\n");
    return 0;
}
