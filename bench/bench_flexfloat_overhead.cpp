// Supports the paper's Section III-A performance claim: FlexFloat's
// compute-on-native-then-re-round strategy "produces binaries that are
// fast to execute", unlike SoftFloat-style emulation which performs every
// operation in (integer) software. Since the arithmetic-backend seam
// (flexfloat/arith_backend.hpp) landed, hardware-mappable formats
// additionally re-round with one FPU conversion instead of the integer
// sanitize; this bench measures all three tiers — raw hardware FP, the
// FlexFloat fast path, and the forced-emulated path — plus softfloat, on
// two micro-kernels:
//
//   dot — accumulating dot product; a serial dependence through the
//         accumulator makes it LATENCY-bound, the worst case for the extra
//         convert in the fast path's add chain;
//   map — independent per-element fma-shaped update (out = x * y + x)
//         into a persistent output vector; THROUGHPUT-bound, where the
//         fast path's per-op cost shows directly.
//
// Harness-based (no Google Benchmark dependency — ROADMAP open item):
// each kernel is warmed up once, then re-run until a minimum wall time has
// accumulated; the per-element time is total elapsed over total elements.
// Results are printed and written to BENCH_flexfloat_overhead.json (CI
// artifact), including each series' resolved backend and the fast path's
// speedup over forced emulation.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "flexfloat/arith_backend.hpp"
#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "harness.hpp"
#include "json.hpp"
#include "softfloat/softfloat.hpp"
#include "util/random.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kN = 1024;
/// Each kernel is timed for at least this long; long enough to swamp the
/// clock granularity, short enough that the slowest backend (softfloat,
/// ~40x native) keeps the bench under a few seconds.
constexpr double kMinSeconds = 0.05;

/// Defeats dead-code elimination of the measured loops without an
/// optimizer-visible data dependency on the timing path.
volatile double g_sink = 0.0;

/// Tells the optimizer "memory was read here", so stores into the map
/// kernels' output vectors cannot be dropped.
inline void clobber_memory() { asm volatile("" ::: "memory"); }

std::vector<double> make_inputs(std::uint64_t seed) {
    tp::util::Xoshiro256 rng{seed};
    std::vector<double> xs(kN);
    for (double& x : xs) x = rng.uniform(0.5, 2.0);
    return xs;
}

struct Measurement {
    std::string series;  // e.g. "flexfloat_binary32"
    std::string kernel;  // "dot" | "map"
    std::string backend; // resolved: "hardware", "native_f32", "emulated", ...
    double ns_per_element = 0.0;
    double speedup_vs_emulated = 0.0; // fast path vs its forced twin; 0 = n/a
    std::size_t iterations = 0;
};

/// Runs `kernel` (one pass over kN elements returning a result double)
/// until kMinSeconds has elapsed and reports ns per element.
template <typename Kernel>
Measurement measure(std::string series, std::string kernel_name,
                    std::string backend, Kernel kernel) {
    g_sink = kernel(); // warm-up: faults, caches, lazy init
    std::size_t iterations = 0;
    double elapsed = 0.0;
    const auto start = Clock::now();
    do {
        g_sink = kernel();
        ++iterations;
        elapsed = tp::bench::seconds_since(start);
    } while (elapsed < kMinSeconds);
    Measurement m;
    m.series = std::move(series);
    m.kernel = std::move(kernel_name);
    m.backend = std::move(backend);
    m.iterations = iterations;
    m.ns_per_element =
        1e9 * elapsed / (static_cast<double>(iterations) * static_cast<double>(kN));
    return m;
}

/// Measures `kernel` on the resolved backend and again under a forced
/// emulated scope, records the speedup on the fast series, and appends
/// both measurements.
template <typename Kernel>
void measure_both_backends(std::vector<Measurement>& results,
                           const std::string& series,
                           const std::string& kernel_name, tp::FpFormat format,
                           Kernel kernel) {
    Measurement emulated;
    {
        const tp::arith::ScopedForceEmulated scope;
        emulated = measure(series + "_forced_emulated", kernel_name,
                           "emulated", kernel);
    }
    Measurement fast =
        measure(series, kernel_name,
                std::string{tp::name_of(tp::arith::resolve(format))}, kernel);
    fast.speedup_vs_emulated = emulated.ns_per_element / fast.ns_per_element;
    results.push_back(std::move(fast));
    results.push_back(std::move(emulated));
}

// --- raw hardware FP (the speed-of-light reference) -------------------------

template <typename T>
void measure_raw_native(std::vector<Measurement>& results,
                        const std::string& series,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys) {
    std::vector<T> fx(kN), fy(kN), out(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = static_cast<T>(xs[i]);
        fy[i] = static_cast<T>(ys[i]);
    }
    results.push_back(measure(series, "dot", "hardware", [&fx, &fy] {
        T acc{};
        for (std::size_t i = 0; i < kN; ++i) acc += fx[i] * fy[i];
        return static_cast<double>(acc);
    }));
    results.push_back(measure(series, "map", "hardware", [&fx, &fy, &out] {
        for (std::size_t i = 0; i < kN; ++i) out[i] = fx[i] * fy[i] + fx[i];
        clobber_memory();
        return static_cast<double>(out[kN - 1]);
    }));
}

// --- flexfloat<E, M>: fast path vs forced emulation -------------------------

template <int E, int M>
void measure_flexfloat(std::vector<Measurement>& results, const char* name,
                       const std::vector<double>& xs,
                       const std::vector<double>& ys) {
    using FF = tp::flexfloat<E, M>;
    std::vector<FF> fx(kN), fy(kN), out(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = xs[i];
        fy[i] = ys[i];
    }
    const std::string series = std::string{"flexfloat_"} + name;
    measure_both_backends(results, series, "dot", FF::format(), [&fx, &fy] {
        FF acc = 0.0;
        for (std::size_t i = 0; i < kN; ++i) acc += fx[i] * fy[i];
        return static_cast<double>(acc);
    });
    measure_both_backends(results, series, "map", FF::format(),
                          [&fx, &fy, &out] {
                              for (std::size_t i = 0; i < kN; ++i) {
                                  out[i] = fx[i] * fy[i] + fx[i];
                              }
                              clobber_memory();
                              return static_cast<double>(out[kN - 1]);
                          });
}

void measure_flexfloat_dyn(std::vector<Measurement>& results,
                           const std::vector<double>& xs,
                           const std::vector<double>& ys) {
    std::vector<tp::FlexFloatDyn> fx, fy, out;
    for (std::size_t i = 0; i < kN; ++i) {
        fx.emplace_back(xs[i], tp::kBinary16);
        fy.emplace_back(ys[i], tp::kBinary16);
        out.emplace_back(0.0, tp::kBinary16);
    }
    measure_both_backends(results, "flexfloat_dyn_binary16", "dot",
                          tp::kBinary16, [&fx, &fy] {
                              tp::FlexFloatDyn acc{0.0, tp::kBinary16};
                              for (std::size_t i = 0; i < kN; ++i) {
                                  acc += fx[i] * fy[i];
                              }
                              return acc.value();
                          });
    measure_both_backends(results, "flexfloat_dyn_binary16", "map",
                          tp::kBinary16, [&fx, &fy, &out] {
                              for (std::size_t i = 0; i < kN; ++i) {
                                  out[i] = fx[i] * fy[i] + fx[i];
                              }
                              clobber_memory();
                              return out[kN - 1].value();
                          });
}

void measure_softfloat(std::vector<Measurement>& results,
                       const std::vector<double>& xs,
                       const std::vector<double>& ys) {
    const tp::FpFormat f = tp::kBinary16;
    std::vector<std::uint64_t> fx(kN), fy(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = tp::encode(xs[i], f);
        fy[i] = tp::encode(ys[i], f);
    }
    results.push_back(measure("softfloat_binary16", "dot", "softfloat",
                              [&fx, &fy, f] {
                                  std::uint64_t acc = 0;
                                  for (std::size_t i = 0; i < kN; ++i) {
                                      acc = tp::softfloat::add(
                                          acc, tp::softfloat::mul(fx[i], fy[i], f),
                                          f);
                                  }
                                  return tp::decode(acc, f);
                              }));
}

} // namespace

int main() {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);

    std::vector<Measurement> results;
    measure_raw_native<double>(results, "native_double", xs, ys);
    measure_raw_native<float>(results, "native_float", xs, ys);
#if TP_NATIVE_F16
    measure_raw_native<_Float16>(results, "native_float16", xs, ys);
#endif
    measure_flexfloat<11, 52>(results, "binary64", xs, ys);
    measure_flexfloat<8, 23>(results, "binary32", xs, ys);
    measure_flexfloat<5, 10>(results, "binary16", xs, ys);
    measure_flexfloat<8, 7>(results, "binary16alt", xs, ys);
    measure_flexfloat<5, 2>(results, "binary8", xs, ys);
    measure_flexfloat_dyn(results, xs, ys);
    measure_softfloat(results, xs, ys);

    // The classic reference point: raw single-precision hardware, per kernel.
    const auto native_ns = [&results](const std::string& kernel) {
        for (const Measurement& m : results) {
            if (m.series == "native_float" && m.kernel == kernel) {
                return m.ns_per_element;
            }
        }
        return 0.0;
    };

    std::printf("# FlexFloat emulation overhead — %zu-element kernels, "
                "min %.0f ms per series\n",
                kN, 1e3 * kMinSeconds);
    std::printf("# dot = latency-bound accumulation, map = throughput-bound "
                "element-wise mul+add\n\n");
    std::printf("%-36s %-4s %12s %11s %11s  %s\n", "series", "krnl",
                "ns/element", "vs native", "vs emul", "backend");
    auto backends = tp::bench::Json::array();
    for (const Measurement& m : results) {
        const double slowdown = m.ns_per_element / native_ns(m.kernel);
        char speedup[32] = "-";
        if (m.speedup_vs_emulated > 0.0) {
            std::snprintf(speedup, sizeof speedup, "%.2fx",
                          m.speedup_vs_emulated);
        }
        std::printf("%-36s %-4s %12.2f %10.1fx %11s  %s\n", m.series.c_str(),
                    m.kernel.c_str(), m.ns_per_element, slowdown, speedup,
                    m.backend.c_str());
        auto entry = tp::bench::Json::object()
                         .field("series", m.series)
                         .field("kernel", m.kernel)
                         .field("resolved_backend", m.backend)
                         .field("ns_per_element", m.ns_per_element)
                         .field("slowdown_vs_native_float", slowdown)
                         .field("iterations", m.iterations);
        if (m.speedup_vs_emulated > 0.0) {
            entry.field("speedup_vs_emulated", m.speedup_vs_emulated);
        }
        backends.item_raw(entry.str(2));
    }

    const auto doc = tp::bench::Json::object()
                         .field("bench", "bench_flexfloat_overhead")
                         .field("elements", kN)
                         .field("min_seconds_per_series", kMinSeconds)
                         .field("native_f16_available", bool(TP_NATIVE_F16))
                         .raw("backends", backends.str(2))
                         .str();
    std::ofstream out{"BENCH_flexfloat_overhead.json"};
    out << doc << "\n";
    std::printf("\nwrote BENCH_flexfloat_overhead.json\n");
    return 0;
}
