// Supports the paper's Section III-A performance claim: FlexFloat's
// compute-on-native-then-sanitize strategy "produces binaries that are
// fast to execute", unlike SoftFloat-style emulation which performs every
// operation in (integer) software. Both backends are bit-exact; this
// google-benchmark binary measures their throughput against native float
// on the same dot-product micro-kernel.
#include <benchmark/benchmark.h>

#include <vector>

#include "flexfloat/flexfloat.hpp"
#include "flexfloat/flexfloat_dyn.hpp"
#include "softfloat/softfloat.hpp"
#include "util/random.hpp"

namespace {

constexpr std::size_t kN = 1024;

std::vector<double> make_inputs(std::uint64_t seed) {
    tp::util::Xoshiro256 rng{seed};
    std::vector<double> xs(kN);
    for (double& x : xs) x = rng.uniform(0.5, 2.0);
    return xs;
}

void BM_NativeFloat(benchmark::State& state) {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);
    for (auto _ : state) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < kN; ++i) {
            acc += static_cast<float>(xs[i]) * static_cast<float>(ys[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_NativeFloat);

template <int E, int M>
void BM_FlexFloat(benchmark::State& state) {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);
    std::vector<tp::flexfloat<E, M>> fx(kN);
    std::vector<tp::flexfloat<E, M>> fy(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = xs[i];
        fy[i] = ys[i];
    }
    for (auto _ : state) {
        tp::flexfloat<E, M> acc = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
            acc += fx[i] * fy[i];
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_FlexFloat<8, 23>)->Name("BM_FlexFloat_binary32");
BENCHMARK(BM_FlexFloat<5, 10>)->Name("BM_FlexFloat_binary16");
BENCHMARK(BM_FlexFloat<8, 7>)->Name("BM_FlexFloat_binary16alt");
BENCHMARK(BM_FlexFloat<5, 2>)->Name("BM_FlexFloat_binary8");

void BM_FlexFloatDyn(benchmark::State& state) {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);
    std::vector<tp::FlexFloatDyn> fx;
    std::vector<tp::FlexFloatDyn> fy;
    for (std::size_t i = 0; i < kN; ++i) {
        fx.emplace_back(xs[i], tp::kBinary16);
        fy.emplace_back(ys[i], tp::kBinary16);
    }
    for (auto _ : state) {
        tp::FlexFloatDyn acc{0.0, tp::kBinary16};
        for (std::size_t i = 0; i < kN; ++i) {
            acc += fx[i] * fy[i];
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_FlexFloatDyn)->Name("BM_FlexFloatDyn_binary16");

void BM_SoftFloatEmulation(benchmark::State& state) {
    const auto xs = make_inputs(1);
    const auto ys = make_inputs(2);
    const tp::FpFormat f = tp::kBinary16;
    std::vector<std::uint64_t> fx(kN);
    std::vector<std::uint64_t> fy(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        fx[i] = tp::encode(xs[i], f);
        fy[i] = tp::encode(ys[i], f);
    }
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < kN; ++i) {
            acc = tp::softfloat::add(acc, tp::softfloat::mul(fx[i], fy[i], f), f);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kN);
}
BENCHMARK(BM_SoftFloatEmulation)->Name("BM_SoftFloat_binary16");

} // namespace

BENCHMARK_MAIN();
