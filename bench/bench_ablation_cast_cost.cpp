// Ablation: the cost of format casts, supporting the paper's Section V-C/D
// discussion — current precision-tuning tools minimize precision bits
// without accounting for the casts they introduce, which can push cycle
// and energy counts above the baseline (PCA exceeds it by 7-8%). This
// bench simulates the tuned applications normally and with casts made
// free (zero energy, zero latency), isolating the cast overhead.
#include <iostream>

#include "harness.hpp"
#include "sim/vectorize.hpp"
#include "util/table.hpp"

int main() {
    std::cout << "=== Ablation: cast overhead in the tuned configurations "
                 "(V2) ===\n\n";
    for (const double epsilon : {1e-2, 1e-3}) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        tp::util::Table table({"app", "casts", "cast share of instrs",
                               "energy (modelled casts)", "energy (free casts)",
                               "cast energy overhead"});
        for (const auto& name : tp::apps::app_names()) {
            auto app = tp::apps::make_app(name);
            const auto tuning = tp::tuning::distributed_search(
                *app,
                tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2));
            const auto baseline = tp::bench::simulate_baseline(*app);
            const auto tuned =
                tp::bench::simulate_app(*app, tuning.type_config(), true);

            // "Free casts": zero out the conversion-unit energies. Latency
            // is already a single cycle; the energy term dominates.
            tp::fpu::EnergyModel free_casts = tp::fpu::default_energy_model();
            free_casts.cast_fp_fp = 0.0;
            free_casts.cast_fp_int = 0.0;
            app->prepare(0);
            tp::sim::TpContext ctx;
            (void)app->run(ctx, tuning.type_config());
            // Strip FP->FP cast instructions from the raw trace (emulating
            // a cast-aware tuner that avoided them), then vectorize the
            // cast-free trace — casts also impede SIMD grouping, so the
            // stripped schedule can pack more.
            auto program = ctx.take_program(false);
            tp::sim::TraceProgram stripped;
            stripped.value_count = program.value_count;
            for (const auto& instr : program.instrs) {
                if (instr.kind == tp::sim::InstrKind::FpCast &&
                    instr.op != tp::FpOp::FromInt && instr.op != tp::FpOp::ToInt) {
                    continue; // consumers treat the missing dst as ready
                }
                stripped.instrs.push_back(instr);
            }
            tp::sim::vectorize(stripped);
            const auto free_report = tp::sim::simulate(stripped, free_casts);

            const double base = baseline.energy.total();
            const double cast_share =
                tuned.issue_slots == 0
                    ? 0.0
                    : static_cast<double>(tuned.casts) /
                          static_cast<double>(tuned.issue_slots);
            table.add_row(
                {name, std::to_string(tuned.casts),
                 tp::util::Table::percent(cast_share),
                 tp::util::Table::percent(tuned.energy.total() / base),
                 tp::util::Table::percent(free_report.energy.total() / base),
                 tp::util::Table::percent((tuned.energy.total() -
                                           free_report.energy.total()) /
                                          base)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper anchor: PCA's casts exceed 10-20% of operations and "
                 "push its energy 7-8% above the baseline\n";
    return 0;
}
