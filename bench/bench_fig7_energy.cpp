// Reproduces Fig. 7: energy consumption of each tuned application,
// normalized to its binary32 baseline, split into FP operations, memory
// operations and other instructions, for the three precision requirements.
// Includes the manually vectorized PCA variant (the paper's annotations
// 1, 2, 3: 101%, 96%, 85%).
//
// Paper anchors: JACOBI ~97%; PCA 107-108% at the tighter requirements;
// average savings ~18% for the remaining applications; KNN best at -30%.
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

namespace {

double normalized_energy(const tp::sim::RunReport& tuned,
                         const tp::sim::RunReport& baseline) {
    return tuned.energy.total() / baseline.energy.total();
}

} // namespace

int main() {
    std::cout << "=== Fig. 7: energy normalized to the binary32 baseline "
                 "(type system V2) ===\n\n";

    for (const double epsilon : tp::bench::kEpsilons) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        tp::util::Table table(
            {"app", "energy", "FP ops", "memory", "other"});
        for (const auto& name : tp::apps::app_names()) {
            const auto e =
                tp::bench::run_experiment(name, epsilon, tp::TypeSystemKind::V2);
            const double base = e.baseline.energy.total();
            table.add_row({name,
                           tp::util::Table::percent(normalized_energy(e.tuned,
                                                                      e.baseline)),
                           tp::util::Table::percent(e.tuned.energy.fp_ops / base),
                           tp::util::Table::percent(e.tuned.energy.memory / base),
                           tp::util::Table::percent(e.tuned.energy.other / base)});
        }

        // The paper's PCA manual-vectorization experiment: same tuned
        // formats, but with the (centering/covariance/projection) loops
        // restructured for sub-word SIMD.
        const auto scalar_pca = tp::apps::make_app("pca");
        const auto tuning = tp::tuning::distributed_search(
            *scalar_pca,
            tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2));
        const auto baseline = tp::bench::simulate_baseline(*scalar_pca);
        const auto vec_pca = tp::apps::make_app("pca-manual-vec");
        const auto tuned_vec =
            tp::bench::simulate_app(*vec_pca, tuning.type_config(), true);
        table.add_row({"pca (manual vec)",
                       tp::util::Table::percent(
                           normalized_energy(tuned_vec, baseline)),
                       tp::util::Table::percent(tuned_vec.energy.fp_ops /
                                                baseline.energy.total()),
                       tp::util::Table::percent(tuned_vec.energy.memory /
                                                baseline.energy.total()),
                       tp::util::Table::percent(tuned_vec.energy.other /
                                                baseline.energy.total())});
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper anchors: JACOBI ~97%; PCA up to 108%; KNN ~70%; "
                 "other apps ~82% avg; manually vectorized PCA 101/96/85%\n";
    return 0;
}
