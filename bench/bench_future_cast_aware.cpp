// Implements and evaluates the paper's Section VI future-work proposal:
// cast-aware, multi-objective precision tuning. The paper observes that
// DistributedSearch minimizes only precision bits, and the casts it
// introduces push PCA 7-8% ABOVE the binary32 baseline; "further energy
// savings can be only achieved by reducing the contribution of casts with
// the support of smarter tools for precision tuning."
//
// This bench compares, per application and requirement, the platform
// energy of the plain DistributedSearch binding against the cast-aware
// refinement (greedy re-binding with the simulated energy as objective,
// quality re-verified on all input sets).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "harness.hpp"
#include "tuning/cast_aware.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    // Optional worker-thread count for the tuning engine; any value
    // produces identical tables (search.hpp's determinism contract).
    const unsigned threads = static_cast<unsigned>(
        argc > 1 ? std::clamp(std::atoi(argv[1]), 1, 64) : 1);
    std::cout << "=== Future work (paper SVI): cast-aware multi-objective "
                 "tuning ===\n";
    std::cout << "(tuning threads: " << threads << ")\n\n";
    for (const double epsilon : {1e-2, 1e-3}) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        tp::util::Table table({"app", "casts before", "casts after",
                               "energy before", "energy after", "moves"});
        for (const auto& name : tp::apps::app_names()) {
            auto app = tp::apps::make_app(name);
            tp::tuning::CastAwareOptions options;
            options.search =
                tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2);
            options.search.threads = threads;
            const auto result = tp::tuning::cast_aware_search(*app, options);
            const auto baseline = tp::bench::simulate_baseline(*app);
            const double base = baseline.energy.total();
            table.add_row({name, std::to_string(result.base_casts),
                           std::to_string(result.tuned_casts),
                           tp::util::Table::percent(result.base_energy_pj / base),
                           tp::util::Table::percent(result.tuned_energy_pj / base),
                           std::to_string(result.moves_accepted)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "expected: applications whose DistributedSearch binding "
                 "lands above (or near) the baseline\n(PCA in the paper) drop "
                 "below it once casts enter the objective; energy never "
                 "increases.\n";
    return 0;
}
