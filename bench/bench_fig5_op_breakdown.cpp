// Reproduces Fig. 5: the dynamic breakdown of FP operations executed by
// each tuned application, by format and scalar/vectorial, for the three
// precision requirements — the run-time view complementing Fig. 4's
// static view.
//
// Paper anchors: JACOBI and PCA are dominated by scalar 32-bit operations
// (JACOBI pathologically has no vectorial operations at all); SVM has the
// highest vectorizable fraction (~60%); across all applications, up to
// 90% of FP operations scale down to 8 or 16 bits.
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

namespace {

struct Share {
    double scalar = 0.0;
    double vectorial = 0.0;
};

} // namespace

int main() {
    std::cout << "=== Fig. 5: breakdown of FP operations per type, scalar "
                 "vs vectorial (type system V2) ===\n\n";
    for (const double epsilon : tp::bench::kEpsilons) {
        std::cout << "-- precision requirement " << epsilon << " --\n";
        tp::util::Table table({"app", "b8 scal", "b8 vec", "b16 scal", "b16 vec",
                               "b16alt scal", "b16alt vec", "b32 scal",
                               "sub-32-bit", "vectorial"});
        for (const auto& name : tp::apps::app_names()) {
            const auto e =
                tp::bench::run_experiment(name, epsilon, tp::TypeSystemKind::V2);
            double total = 0.0;
            std::map<tp::FormatKind, Share> shares;
            for (const auto& [fmt, activity] : e.tuned.per_format) {
                tp::FormatKind kind;
                if (!tp::kind_of(fmt, kind)) continue;
                shares[kind].scalar += static_cast<double>(activity.scalar_ops);
                shares[kind].vectorial += static_cast<double>(activity.vector_ops);
                total += static_cast<double>(activity.scalar_ops + activity.vector_ops);
            }
            auto pct = [&](double v) {
                return total == 0.0 ? std::string("0%")
                                    : tp::util::Table::percent(v / total);
            };
            const Share b8 = shares[tp::FormatKind::Binary8];
            const Share b16 = shares[tp::FormatKind::Binary16];
            const Share b16a = shares[tp::FormatKind::Binary16Alt];
            const Share b32 = shares[tp::FormatKind::Binary32];
            const double sub32 = b8.scalar + b8.vectorial + b16.scalar +
                                 b16.vectorial + b16a.scalar + b16a.vectorial;
            const double vec = b8.vectorial + b16.vectorial + b16a.vectorial;
            table.add_row({name, pct(b8.scalar), pct(b8.vectorial),
                           pct(b16.scalar), pct(b16.vectorial), pct(b16a.scalar),
                           pct(b16a.vectorial), pct(b32.scalar), pct(sub32),
                           pct(vec)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper anchors: JACOBI/PCA scalar-32-bit dominated (JACOBI "
                 "0% vectorial); SVM ~60% vectorial;\nup to 90% of FP "
                 "operations scale down to 8/16-bit formats\n";
    return 0;
}
