// Batched tuning service under an overlapping request mix
// (tuning/service.hpp).
//
// The service scenario the ROADMAP targets: bursts of (app, epsilon)
// requests against long-lived per-app EvalEngines. This bench submits one
// realistic burst — two of the paper's kernels (pca, dwt) plus the three
// follow-on workloads (fft, iir, mlp), each at the paper's three quality
// requirements plus one exact repeat per app — and measures what the
// shared caches eliminate:
//
//   * cold batch, 4 workers — the headline cross_request_hit_rate: the
//     fraction of the batch's trials served from cache, counting hits
//     ACROSS requests (single-flight makes the counters exact even with
//     concurrent workers);
//   * repeat batch on the warm service — the steady-state: 100% hits;
//   * the same batch serially and on an LRU-budgeted service — both must
//     return bit-identical results (the determinism contract over thread
//     count and eviction state), and the serial counters must equal the
//     threaded ones exactly.
//
// Results go to BENCH_service.json (CI artifact).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "json.hpp"
#include "tuning/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::seconds_since;
using tp::tuning::EvalStats;
using tp::tuning::TuningBatchResult;
using tp::tuning::TuningRequest;
using tp::tuning::TuningService;

std::vector<TuningRequest> overlapping_batch() {
    std::vector<TuningRequest> batch;
    for (const char* app : {"pca", "dwt", "fft", "iir", "mlp"}) {
        for (const double epsilon : tp::bench::kEpsilons) {
            TuningRequest request;
            request.app = app;
            request.epsilon = epsilon;
            request.input_sets = {0, 1, 2};
            request.options =
                tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2);
            batch.push_back(std::move(request));
        }
        batch.push_back(batch[batch.size() - 2]); // repeat the 1e-2 request
    }
    return batch;
}

bool identical_batches(const TuningBatchResult& a, const TuningBatchResult& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        if (!tp::bench::identical_results(a.results[i], b.results[i])) {
            return false;
        }
    }
    return true;
}

std::string stats_json(const EvalStats& stats, double wall_seconds) {
    return tp::bench::Json::object()
        .field("trials", stats.trials)
        .field("kernel_runs", stats.kernel_runs)
        .field("cache_hits", stats.cache_hits)
        .field("golden_runs", stats.golden_runs)
        .field("evictions", stats.evictions)
        .field("hit_rate", stats.hit_rate())
        .field("wall_seconds", wall_seconds)
        .str(2);
}

void print_stats(const char* label, const EvalStats& stats,
                 double wall_seconds) {
    std::printf("%-14s %5zu trials %5zu runs %5zu hits %4zu evicted "
                "(%.1f%% eliminated) %.3fs\n",
                label, stats.trials, stats.kernel_runs, stats.cache_hits,
                stats.evictions, 100.0 * stats.hit_rate(), wall_seconds);
}

} // namespace

int main() {
    const auto batch = overlapping_batch();
    std::printf("# batched tuning service — %zu overlapping requests "
                "(pca+dwt+fft+iir+mlp x epsilon 1e-3/1e-2/1e-1 + repeats)\n\n",
                batch.size());

    // Headline: cold overlapping batch on four workers.
    TuningService threaded{TuningService::Options{.threads = 4}};
    const auto cold_start = Clock::now();
    const auto cold = threaded.run(batch);
    const double cold_seconds = seconds_since(cold_start);
    print_stats("cold x4", cold.stats, cold_seconds);

    // Steady state: the same burst again on the warm service.
    const auto warm_start = Clock::now();
    const auto warm = threaded.run(batch);
    const double warm_seconds = seconds_since(warm_start);
    print_stats("warm x4", warm.stats, warm_seconds);

    // The same warm batch through the async surface at adversarial
    // priorities: run() is a thin wrapper over submit(), so the handles
    // must resolve to bit-identical, fully cached results no matter how
    // the scheduler reorders them.
    std::vector<tp::tuning::TicketHandle> handles;
    handles.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        handles.push_back(threaded.submit(tp::tuning::Request{
            .work = batch[i],
            .priority = i % 2 == 0 ? tp::tuning::Priority::kSweep
                                   : tp::tuning::Priority::kInteractive}));
    }
    bool async_identical = true;
    EvalStats async_stats;
    for (std::size_t i = 0; i < handles.size(); ++i) {
        async_identical = tp::bench::identical_results(
                              handles[i].search_result(), warm.results[i]) &&
                          async_identical;
        async_stats += handles[i].stats();
    }
    const bool async_fully_cached =
        async_stats.kernel_runs == 0 &&
        async_stats.cache_hits == async_stats.trials;
    std::printf("async x4      %5zu trials %5zu runs %5zu hits "
                "(mixed priorities, identical to warm: %s)\n",
                async_stats.trials, async_stats.kernel_runs,
                async_stats.cache_hits, async_identical ? "yes" : "NO");

    // Reference: the same batch serially — results AND counters must
    // match the threaded run exactly (single-flight).
    TuningService serial_service{TuningService::Options{.threads = 1}};
    const auto serial_start = Clock::now();
    const auto serial = serial_service.run(batch);
    const double serial_seconds = seconds_since(serial_start);
    print_stats("cold serial", serial.stats, serial_seconds);

    // Eviction stress: a budget far below the batch's footprint.
    constexpr std::size_t kTinyBudget = 16 * 1024;
    TuningService evicting{TuningService::Options{
        .threads = 4, .cache_budget_bytes = kTinyBudget}};
    const auto evicting_start = Clock::now();
    const auto evicted = evicting.run(batch);
    const double evicting_seconds = seconds_since(evicting_start);
    print_stats("cold evicting", evicted.stats, evicting_seconds);

    const bool results_identical = identical_batches(cold, serial) &&
                                   identical_batches(cold, warm) &&
                                   identical_batches(cold, evicted);
    const bool counters_exact = cold.stats == serial.stats;
    const bool warm_fully_cached =
        warm.stats.kernel_runs == 0 && warm.stats.cache_hits == warm.stats.trials;
    const bool eviction_occurred = evicted.stats.evictions > 0;

    std::printf("\nbatch identical across thread counts, warmth, eviction: %s\n"
                "threaded counters exactly equal serial: %s\n"
                "warm batch fully cached: %s\n"
                "async mixed-priority submits identical and cached: %s\n"
                "eviction stress evicted entries: %s\n",
                results_identical ? "yes" : "NO", counters_exact ? "yes" : "NO",
                warm_fully_cached ? "yes" : "NO",
                (async_identical && async_fully_cached) ? "yes" : "NO",
                eviction_occurred ? "yes" : "NO");

    const auto doc =
        tp::bench::Json::object()
            .field("bench", "bench_tuning_service")
            .field("scenario",
                   "overlapping batch: pca+dwt+fft+iir+mlp x epsilon "
                   "1e-3/1e-2/1e-1 + one repeat per app, 4 workers")
            .field("requests", batch.size())
            .field("cross_request_hit_rate", cold.stats.hit_rate())
            .field("bit_identical", results_identical)
            .field("counters_exact", counters_exact)
            .field("async_identical", async_identical)
            .field("async_fully_cached", async_fully_cached)
            .field("eviction_budget_bytes", kTinyBudget)
            .raw("cold_threads4", stats_json(cold.stats, cold_seconds))
            .raw("warm_threads4", stats_json(warm.stats, warm_seconds))
            .raw("cold_serial", stats_json(serial.stats, serial_seconds))
            .raw("cold_evicting", stats_json(evicted.stats, evicting_seconds))
            .str();
    std::ofstream out{"BENCH_service.json"};
    out << doc << "\n";
    std::printf("\nwrote BENCH_service.json\n");

    if (!results_identical || !counters_exact || !warm_fully_cached ||
        !async_identical || !async_fully_cached || !eviction_occurred) {
        std::printf("FAIL: service contract violated\n");
        return 1;
    }
    std::printf("service contract holds: bit-identical results, exact "
                "counters, %0.1f%% of cold-batch trials served from cache\n",
                100.0 * cold.stats.hit_rate());
    return 0;
}
