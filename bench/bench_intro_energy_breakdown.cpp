// Reproduces the paper's introductory measurement: on the binary32
// baseline, the share of core+memory energy spent executing FP operations
// (~30% in the paper) and moving FP operands between data memory and
// registers (~20% more), i.e. about half of the total.
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main() {
    std::cout << "=== Intro claim: energy share of FP computation on the "
                 "binary32 baseline ===\n"
              << "(paper: ~30% of core+memory energy in FP operations, ~20% in\n"
              << " moving FP operands memory<->registers; ~50% combined)\n\n";

    tp::util::Table table({"app", "FP ops", "FP operand moves", "other",
                           "FP total"});
    double sum_fp = 0.0;
    double sum_mem = 0.0;
    double sum_combined = 0.0;
    const auto& names = tp::apps::app_names();
    for (const auto& name : names) {
        const auto app = tp::apps::make_app(name);
        const auto report = tp::bench::simulate_baseline(*app);
        const double total = report.energy.total();
        const double fp = report.energy.fp_ops / total;
        const double mem = report.energy.memory / total;
        table.add_row({name, tp::util::Table::percent(fp),
                       tp::util::Table::percent(mem),
                       tp::util::Table::percent(1.0 - fp - mem),
                       tp::util::Table::percent(fp + mem)});
        sum_fp += fp;
        sum_mem += mem;
        sum_combined += fp + mem;
    }
    const auto n = static_cast<double>(names.size());
    table.add_row({"average", tp::util::Table::percent(sum_fp / n),
                   tp::util::Table::percent(sum_mem / n), "",
                   tp::util::Table::percent(sum_combined / n)});
    table.print(std::cout);
    return 0;
}
