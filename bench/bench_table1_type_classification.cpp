// Reproduces Table I: the number of program variables bound to each FP
// type after DistributedSearch at precision requirement 10^-1, for the
// two type systems V1 = {binary8, binary16, binary32} and
// V2 = V1 + {binary16alt}, summed over the six applications.
//
// Paper anchors (111 variables total):
//   V1:  binary8 10, binary16 29, binary16alt --, binary32 72
//   V2:  binary8 19, binary16 10, binary16alt 41, binary32 41
// i.e. V2's binary16alt both recruits variables that were stuck at
// binary32 under V1 (range-limited) and grows the binary8 population
// (paper: "supporting both 16-bit formats contributes in decreasing the
// number of 32-bit variables").
#include <array>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

int main() {
    constexpr double kEpsilon = 1e-1;
    std::cout << "=== Table I: variables classified by type under V1 and V2 "
                 "(requirement 10^-1) ===\n\n";

    tp::util::Table table({"type system", "binary8", "binary16", "binary16alt",
                           "binary32", "total"});
    for (const auto kind : {tp::TypeSystemKind::V1, tp::TypeSystemKind::V2}) {
        std::array<int, 4> totals{};
        for (const auto& name : tp::apps::app_names()) {
            auto app = tp::apps::make_app(name);
            const auto result = tp::tuning::distributed_search(
                *app, tp::bench::bench_search_options(kEpsilon, kind));
            const auto counts = result.variables_per_format();
            for (std::size_t i = 0; i < counts.size(); ++i) totals[i] += counts[i];
        }
        const int total = totals[0] + totals[1] + totals[2] + totals[3];
        table.add_row(
            {std::string(tp::name_of(kind)), std::to_string(totals[0]),
             std::to_string(totals[1]),
             kind == tp::TypeSystemKind::V1 ? "-" : std::to_string(totals[2]),
             std::to_string(totals[3]), std::to_string(total)});
    }
    table.print(std::cout);
    std::cout << "\npaper (111 variables): V1 = 10 / 29 / - / 72,   "
                 "V2 = 19 / 10 / 41 / 41\n"
              << "(this reproduction tunes per variable group; the paper "
                 "tunes per program variable,\n so absolute counts differ "
                 "while the V1->V2 migration pattern is the comparison "
                 "target)\n";
    return 0;
}
