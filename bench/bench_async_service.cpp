// Async tuning service under a mixed-priority overload burst
// (tuning/service.hpp).
//
// The QoS scenario the async redesign exists for: a backlog of twenty
// low-priority epsilon sweeps is queued, five high-priority interactive
// requests arrive behind it, and a few queued sweeps get cancelled. The
// scheduler pops by (priority, admission order), so the interactive
// requests must overtake the backlog — every one of them completes
// before the LAST sweep drains — while cancellation and priority change
// nothing about any result:
//
//   * QoS — p50/p95 completion latency per priority class, and the gate:
//     max(high completion) < max(low completion), at 4 workers and at 1;
//   * determinism — every TuningResult of the burst is bit-identical to
//     a direct distributed_search of the same request, and the threads=1
//     and threads=4 bursts are bit-identical to each other, with
//     cancelled requests present in both (scheduling-independence of the
//     contract in tuning/search.hpp);
//   * cancellation — the victims (queued at the lowest priority behind
//     the whole backlog) are cancelled before a worker reaches them: no
//     kernel runs for them, and their per-ticket stats stay zero.
//
// Results go to BENCH_async_service.json (CI artifact).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "harness.hpp"
#include "json.hpp"
#include "tuning/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::identical_results;
using tp::bench::seconds_since;
using tp::tuning::distributed_search;
using tp::tuning::EvalStats;
using tp::tuning::Priority;
using tp::tuning::Request;
using tp::tuning::SearchOptions;
using tp::tuning::SweepRequest;
using tp::tuning::TicketHandle;
using tp::tuning::TuningRequest;
using tp::tuning::TuningResult;
using tp::tuning::TuningService;

constexpr int kSweeps = 20;
constexpr int kHighs = 5;
constexpr int kVictims = 3;
const std::vector<double> kSweepEpsilons{1e-3, 1e-2, 1e-1};
const char* const kSweepApps[] = {"pca", "dwt", "fft", "mlp",
                                  "svm", "iir", "knn"};
// Each sweep pairs an app with an input-set combination, so all twenty
// are DISTINCT requests — the backlog is real work, not cache replays —
// while still overlapping (shared (input_set, config) trials across
// combinations keep the cross-request hit rate meaningful). The
// interactive class reuses two small apps the backlog doesn't touch:
// cold the first time, cached on repeat — the short-request profile the
// priority queue exists to protect.
const std::vector<std::vector<unsigned>> kSetVariants{{0, 1}, {0, 2}, {1, 2}};
const char* const kHighApps[] = {"jacobi", "conv", "jacobi", "conv",
                                 "jacobi"};

const char* sweep_app(int i) { return kSweepApps[i % std::size(kSweepApps)]; }
const std::vector<unsigned>& sweep_sets(int i) {
    return kSetVariants[static_cast<std::size_t>(i) / std::size(kSweepApps)];
}

SearchOptions burst_options() {
    SearchOptions options;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.max_passes = 2;
    return options;
}

Request sweep_request(int i, Priority priority) {
    SweepRequest work;
    work.app = sweep_app(i);
    work.epsilons = kSweepEpsilons;
    work.input_sets = sweep_sets(i);
    work.options = burst_options();
    return Request{.work = std::move(work), .priority = priority};
}

TuningRequest high_request(const char* app) {
    TuningRequest work;
    work.app = app;
    work.epsilon = 1e-1;
    work.input_sets = {0};
    work.options = burst_options();
    return work;
}

struct Burst {
    std::vector<std::vector<TuningResult>> sweeps; // per low request
    std::vector<TuningResult> highs;               // per high request
    std::vector<double> low_latency_s;             // completion latencies
    std::vector<double> high_latency_s;
    double last_low_s = 0.0;  // completions relative to burst start
    double last_high_s = 0.0;
    double wall_s = 0.0;
    bool qos_holds = false;      // every high done before the last low
    bool victims_cancelled = false;
    EvalStats stats; // summed per-ticket deltas (cancelled tickets: zero)
};

double latency_s(const TicketHandle& handle) {
    return std::chrono::duration<double>(handle.completed_at() -
                                         handle.submitted_at())
        .count();
}

/// Submits the whole burst, cancels the victims, waits, and collects
/// results + latency per class.
Burst run_burst(unsigned workers) {
    TuningService service{TuningService::Options{.threads = workers}};
    const auto start = Clock::now();

    std::vector<TicketHandle> lows;
    lows.reserve(kSweeps);
    for (int i = 0; i < kSweeps; ++i) {
        lows.push_back(service.submit(sweep_request(i, Priority::kSweep)));
    }
    // The cancellation victims sit at the tail of the lowest class: the
    // twenty sweeps ahead guarantee no worker reaches them before the
    // cancel below lands.
    std::vector<TicketHandle> victims;
    victims.reserve(kVictims);
    for (int i = 0; i < kVictims; ++i) {
        victims.push_back(service.submit(sweep_request(i, Priority::kSweep)));
    }
    std::vector<TicketHandle> highs;
    highs.reserve(kHighs);
    for (int i = 0; i < kHighs; ++i) {
        highs.push_back(service.submit(Request{
            .work = high_request(kHighApps[i]),
            .priority = Priority::kInteractive}));
    }
    Burst burst;
    burst.victims_cancelled = true;
    for (const TicketHandle& victim : victims) {
        burst.victims_cancelled =
            victim.cancel() && victim.stats() == EvalStats{} &&
            burst.victims_cancelled;
    }

    for (const TicketHandle& handle : highs) {
        burst.highs.push_back(handle.search_result());
        burst.high_latency_s.push_back(latency_s(handle));
        burst.last_high_s = std::max(
            burst.last_high_s,
            std::chrono::duration<double>(handle.completed_at() - start)
                .count());
        burst.stats += handle.stats();
    }
    for (const TicketHandle& handle : lows) {
        burst.sweeps.push_back(handle.sweep_results());
        burst.low_latency_s.push_back(latency_s(handle));
        burst.last_low_s = std::max(
            burst.last_low_s,
            std::chrono::duration<double>(handle.completed_at() - start)
                .count());
        burst.stats += handle.stats();
    }
    burst.wall_s = seconds_since(start);
    burst.qos_holds = burst.last_high_s < burst.last_low_s;
    return burst;
}

double percentile(std::vector<double> values, double q) {
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    return values[std::min(rank == 0 ? 0 : rank - 1, values.size() - 1)];
}

/// Direct-search reference for every request in the burst: the
/// acceptance gate of the determinism contract's scheduling axis. A
/// SweepRequest chains epsilons through warm starts by default, so its
/// reference is a private-engine sweep_search with the same chaining,
/// not three independent distributed_searches.
bool matches_direct_searches(const Burst& burst) {
    bool ok = true;
    for (int i = 0; i < kSweeps; ++i) {
        const auto instance = tp::apps::make_app(sweep_app(i));
        SearchOptions options = burst_options();
        options.input_sets = sweep_sets(i);
        const std::vector<TuningResult> reference =
            tp::tuning::sweep_search(*instance, options, kSweepEpsilons);
        ok = burst.sweeps[i].size() == reference.size() && ok;
        for (std::size_t e = 0; e < reference.size(); ++e) {
            ok = identical_results(burst.sweeps[i][e], reference[e]) && ok;
        }
    }
    for (int i = 0; i < kHighs; ++i) {
        const TuningRequest request = high_request(kHighApps[i]);
        const auto instance = tp::apps::make_app(request.app);
        SearchOptions options = request.options;
        options.epsilon = request.epsilon;
        options.input_sets = request.input_sets;
        ok = identical_results(burst.highs[i],
                               distributed_search(*instance, options)) &&
             ok;
    }
    return ok;
}

bool identical_bursts(const Burst& a, const Burst& b) {
    if (a.sweeps.size() != b.sweeps.size() || a.highs.size() != b.highs.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.sweeps.size(); ++i) {
        for (std::size_t e = 0; e < a.sweeps[i].size(); ++e) {
            if (!identical_results(a.sweeps[i][e], b.sweeps[i][e])) return false;
        }
    }
    for (std::size_t i = 0; i < a.highs.size(); ++i) {
        if (!identical_results(a.highs[i], b.highs[i])) return false;
    }
    return true;
}

std::string class_json(const std::vector<double>& latencies, double last_s) {
    return tp::bench::Json::object()
        .field("p50_latency_seconds", percentile(latencies, 0.50))
        .field("p95_latency_seconds", percentile(latencies, 0.95))
        .field("last_completion_seconds", last_s)
        .str(2);
}

void print_burst(const char* label, const Burst& burst) {
    std::printf("%-10s high p50 %.3fs p95 %.3fs (last %.3fs) | "
                "sweep p50 %.3fs p95 %.3fs (last %.3fs) | "
                "QoS %s, victims cancelled %s, %.3fs wall\n",
                label, percentile(burst.high_latency_s, 0.50),
                percentile(burst.high_latency_s, 0.95), burst.last_high_s,
                percentile(burst.low_latency_s, 0.50),
                percentile(burst.low_latency_s, 0.95), burst.last_low_s,
                burst.qos_holds ? "yes" : "NO",
                burst.victims_cancelled ? "yes" : "NO", burst.wall_s);
}

} // namespace

int main() {
    std::printf("# async tuning service — mixed-priority overload burst: "
                "%d low-priority sweeps (x%zu epsilons) + %d cancelled + "
                "%d high-priority interactive requests\n\n",
                kSweeps, kSweepEpsilons.size(), kVictims, kHighs);

    const Burst threaded = run_burst(4);
    print_burst("4 workers", threaded);
    const Burst serial = run_burst(1);
    print_burst("1 worker", serial);

    const bool qos_holds = threaded.qos_holds && serial.qos_holds;
    const bool victims_cancelled =
        threaded.victims_cancelled && serial.victims_cancelled;
    const bool thread_invariant = identical_bursts(threaded, serial);
    std::printf("\nverifying against direct searches (the slow part)...\n");
    const bool direct_identical = matches_direct_searches(threaded);

    std::printf("high-priority requests all finish before the sweep backlog "
                "drains: %s\n"
                "threads=1 and threads=4 bursts bit-identical: %s\n"
                "every result bit-identical to its direct search: %s\n",
                qos_holds ? "yes" : "NO", thread_invariant ? "yes" : "NO",
                direct_identical ? "yes" : "NO");

    const auto doc =
        tp::bench::Json::object()
            .field("bench", "bench_async_service")
            .field("scenario",
                   "20 distinct sweep requests "
                   "(pca/dwt/fft/mlp/svm/iir/knn x input-set combos, "
                   "eps 1e-3/1e-2/1e-1 each) + 3 cancelled + 5 "
                   "interactive jacobi/conv requests, priority-scheduled")
            .field("sweep_requests", static_cast<std::size_t>(kSweeps))
            .field("interactive_requests", static_cast<std::size_t>(kHighs))
            .field("cancelled_requests", static_cast<std::size_t>(kVictims))
            .field("qos_holds", qos_holds)
            .field("victims_cancelled", victims_cancelled)
            .field("bit_identical_across_thread_counts", thread_invariant)
            .field("bit_identical_to_direct_search", direct_identical)
            .raw("interactive_threads4",
                 class_json(threaded.high_latency_s, threaded.last_high_s))
            .raw("sweeps_threads4",
                 class_json(threaded.low_latency_s, threaded.last_low_s))
            .raw("interactive_threads1",
                 class_json(serial.high_latency_s, serial.last_high_s))
            .raw("sweeps_threads1",
                 class_json(serial.low_latency_s, serial.last_low_s))
            .field("trials_threads4", threaded.stats.trials)
            .field("cache_hits_threads4", threaded.stats.cache_hits)
            .field("hit_rate_threads4", threaded.stats.hit_rate())
            .field("wall_seconds_threads4", threaded.wall_s)
            .field("wall_seconds_threads1", serial.wall_s)
            .str();
    std::ofstream out{"BENCH_async_service.json"};
    out << doc << "\n";
    std::printf("\nwrote BENCH_async_service.json\n");

    if (!qos_holds || !victims_cancelled || !thread_invariant ||
        !direct_identical) {
        std::printf("FAIL: async service contract violated\n");
        return 1;
    }
    std::printf("async service contract holds: interactive p95 %.3fs vs "
                "%.3fs sweep-backlog drain at 4 workers\n",
                percentile(threaded.high_latency_s, 0.95),
                threaded.last_low_s);
    return 0;
}
