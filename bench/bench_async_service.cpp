// Async tuning service under a mixed-priority overload burst
// (tuning/service.hpp).
//
// The QoS scenario the async redesign exists for: a backlog of twenty
// low-priority epsilon sweeps is queued, five high-priority interactive
// requests arrive behind it, and a few queued sweeps get cancelled. The
// scheduler pops by (priority, admission order), so the interactive
// requests must overtake the backlog — every one of them completes
// before the LAST sweep drains — while cancellation and priority change
// nothing about any result:
//
//   * QoS — p50/p95 completion latency per priority class, and the gate:
//     max(high completion) < max(low completion), at 4 workers and at 1;
//   * determinism — every TuningResult of the burst is bit-identical to
//     a direct distributed_search of the same request, and the threads=1
//     and threads=4 bursts are bit-identical to each other, with
//     cancelled requests present in both (scheduling-independence of the
//     contract in tuning/search.hpp);
//   * cancellation — the victims (queued at the lowest priority behind
//     the whole backlog) are cancelled before a worker reaches them: no
//     kernel runs for them, and their per-ticket stats stay zero.
//
// A second, SUSTAINED scenario drives the fairness + admission-control
// machinery: an open-loop interactive arrival schedule (fixed arrival
// times derived from a calibrated interactive service time — arrivals
// keep coming whether or not earlier requests finished) that oversaturates
// the workers, with six sweep-class requests queued at t=0. The same
// schedule runs twice: FAIR (anti-starvation aging on, per-class caps,
// deadline admission) and STRICT (aging off). Gates are ordering-based so
// they hold at any machine speed: under strict priority the sweeps starve
// (not all complete before the last arrival); under aging all of them
// complete mid-storm while interactive p95 stays within a small multiple
// of the calibrated service time; over-cap submissions and hopeless
// deadlines are refused with typed rejections; every admitted request
// reaches a terminal state (zero dropped); and every completed result is
// bit-identical to its direct search.
//
// Results go to BENCH_async_service.json (CI artifact).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "json.hpp"
#include "tuning/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::identical_results;
using tp::bench::seconds_since;
using tp::tuning::distributed_search;
using tp::tuning::EvalStats;
using tp::tuning::Priority;
using tp::tuning::Request;
using tp::tuning::SearchOptions;
using tp::tuning::SweepRequest;
using tp::tuning::TicketHandle;
using tp::tuning::TuningRequest;
using tp::tuning::TuningResult;
using tp::tuning::TuningService;

constexpr int kSweeps = 20;
constexpr int kHighs = 5;
constexpr int kVictims = 3;
const std::vector<double> kSweepEpsilons{1e-3, 1e-2, 1e-1};
const char* const kSweepApps[] = {"pca", "dwt", "fft", "mlp",
                                  "svm", "iir", "knn"};
// Each sweep pairs an app with an input-set combination, so all twenty
// are DISTINCT requests — the backlog is real work, not cache replays —
// while still overlapping (shared (input_set, config) trials across
// combinations keep the cross-request hit rate meaningful). The
// interactive class reuses two small apps the backlog doesn't touch:
// cold the first time, cached on repeat — the short-request profile the
// priority queue exists to protect.
const std::vector<std::vector<unsigned>> kSetVariants{{0, 1}, {0, 2}, {1, 2}};
const char* const kHighApps[] = {"jacobi", "conv", "jacobi", "conv",
                                 "jacobi"};

const char* sweep_app(int i) { return kSweepApps[i % std::size(kSweepApps)]; }
const std::vector<unsigned>& sweep_sets(int i) {
    return kSetVariants[static_cast<std::size_t>(i) / std::size(kSweepApps)];
}

SearchOptions burst_options() {
    SearchOptions options;
    options.type_system = tp::TypeSystem{tp::TypeSystemKind::V2};
    options.max_passes = 2;
    return options;
}

Request sweep_request(int i, Priority priority) {
    SweepRequest work;
    work.app = sweep_app(i);
    work.epsilons = kSweepEpsilons;
    work.input_sets = sweep_sets(i);
    work.options = burst_options();
    return Request{.work = std::move(work), .priority = priority};
}

TuningRequest high_request(const char* app) {
    TuningRequest work;
    work.app = app;
    work.epsilon = 1e-1;
    work.input_sets = {0};
    work.options = burst_options();
    return work;
}

struct Burst {
    std::vector<std::vector<TuningResult>> sweeps; // per low request
    std::vector<TuningResult> highs;               // per high request
    std::vector<double> low_latency_s;             // completion latencies
    std::vector<double> high_latency_s;
    double last_low_s = 0.0;  // completions relative to burst start
    double last_high_s = 0.0;
    double wall_s = 0.0;
    bool qos_holds = false;      // every high done before the last low
    bool victims_cancelled = false;
    EvalStats stats; // summed per-ticket deltas (cancelled tickets: zero)
};

double latency_s(const TicketHandle& handle) {
    return std::chrono::duration<double>(handle.completed_at() -
                                         handle.submitted_at())
        .count();
}

/// Submits the whole burst, cancels the victims, waits, and collects
/// results + latency per class.
Burst run_burst(unsigned workers) {
    TuningService service{TuningService::Options{.threads = workers}};
    const auto start = Clock::now();

    std::vector<TicketHandle> lows;
    lows.reserve(kSweeps);
    for (int i = 0; i < kSweeps; ++i) {
        lows.push_back(service.submit(sweep_request(i, Priority::kSweep)));
    }
    // The cancellation victims sit at the tail of the lowest class: the
    // twenty sweeps ahead guarantee no worker reaches them before the
    // cancel below lands.
    std::vector<TicketHandle> victims;
    victims.reserve(kVictims);
    for (int i = 0; i < kVictims; ++i) {
        victims.push_back(service.submit(sweep_request(i, Priority::kSweep)));
    }
    std::vector<TicketHandle> highs;
    highs.reserve(kHighs);
    for (int i = 0; i < kHighs; ++i) {
        highs.push_back(service.submit(Request{
            .work = high_request(kHighApps[i]),
            .priority = Priority::kInteractive}));
    }
    Burst burst;
    burst.victims_cancelled = true;
    for (const TicketHandle& victim : victims) {
        burst.victims_cancelled =
            victim.cancel() && victim.stats() == EvalStats{} &&
            burst.victims_cancelled;
    }

    for (const TicketHandle& handle : highs) {
        burst.highs.push_back(handle.search_result());
        burst.high_latency_s.push_back(latency_s(handle));
        burst.last_high_s = std::max(
            burst.last_high_s,
            std::chrono::duration<double>(handle.completed_at() - start)
                .count());
        burst.stats += handle.stats();
    }
    for (const TicketHandle& handle : lows) {
        burst.sweeps.push_back(handle.sweep_results());
        burst.low_latency_s.push_back(latency_s(handle));
        burst.last_low_s = std::max(
            burst.last_low_s,
            std::chrono::duration<double>(handle.completed_at() - start)
                .count());
        burst.stats += handle.stats();
    }
    burst.wall_s = seconds_since(start);
    burst.qos_holds = burst.last_high_s < burst.last_low_s;
    return burst;
}

double percentile(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    return values[std::min(rank == 0 ? 0 : rank - 1, values.size() - 1)];
}

/// Direct-search reference for every request in the burst: the
/// acceptance gate of the determinism contract's scheduling axis. A
/// SweepRequest chains epsilons through warm starts by default, so its
/// reference is a private-engine sweep_search with the same chaining,
/// not three independent distributed_searches.
bool matches_direct_searches(const Burst& burst) {
    bool ok = true;
    for (int i = 0; i < kSweeps; ++i) {
        const auto instance = tp::apps::make_app(sweep_app(i));
        SearchOptions options = burst_options();
        options.input_sets = sweep_sets(i);
        const std::vector<TuningResult> reference =
            tp::tuning::sweep_search(*instance, options, kSweepEpsilons);
        ok = burst.sweeps[i].size() == reference.size() && ok;
        for (std::size_t e = 0; e < reference.size(); ++e) {
            ok = identical_results(burst.sweeps[i][e], reference[e]) && ok;
        }
    }
    for (int i = 0; i < kHighs; ++i) {
        const TuningRequest request = high_request(kHighApps[i]);
        const auto instance = tp::apps::make_app(request.app);
        SearchOptions options = request.options;
        options.epsilon = request.epsilon;
        options.input_sets = request.input_sets;
        ok = identical_results(burst.highs[i],
                               distributed_search(*instance, options)) &&
             ok;
    }
    return ok;
}

bool identical_bursts(const Burst& a, const Burst& b) {
    if (a.sweeps.size() != b.sweeps.size() || a.highs.size() != b.highs.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.sweeps.size(); ++i) {
        for (std::size_t e = 0; e < a.sweeps[i].size(); ++e) {
            if (!identical_results(a.sweeps[i][e], b.sweeps[i][e])) return false;
        }
    }
    for (std::size_t i = 0; i < a.highs.size(); ++i) {
        if (!identical_results(a.highs[i], b.highs[i])) return false;
    }
    return true;
}

// --- Sustained open-loop scenario -------------------------------------------

constexpr unsigned kSustainedWorkers = 2;
constexpr int kStormArrivals = 64;     // open-loop interactive arrivals
constexpr int kSweepClassCount = 6;    // sweep-class requests queued at t=0
constexpr std::size_t kClassCap = 8;   // live-queue cap per priority class
constexpr int kOverCapBurst = 16;      // instant submits to force shedding
// One past-deadline probe every 16 arrivals (at i % 16 == 12).
constexpr int kDeadlineProbes = kStormArrivals / 16;

/// The repeated interactive request of the storm. memoize is OFF in this
/// scenario, so every arrival costs one full search — a stable service
/// time, which is what makes the calibrated schedule meaningful.
TuningRequest interactive_work() { return high_request("jacobi"); }

/// Six distinct small sweep-class requests (none equal to the interactive
/// request, so the backlog is its own work).
TuningRequest sweep_class_work(int i) {
    static const char* const apps[] = {"conv", "jacobi", "conv",
                                       "jacobi", "conv", "jacobi"};
    static const double eps[] = {1e-1, 5e-2, 5e-2, 3e-2, 3e-2, 7e-2};
    TuningRequest work;
    work.app = apps[i];
    work.epsilon = eps[i];
    work.input_sets = {0};
    work.options = burst_options();
    return work;
}

TuningResult direct_of(const TuningRequest& request) {
    const auto instance = tp::apps::make_app(request.app);
    SearchOptions options = request.options;
    options.epsilon = request.epsilon;
    options.input_sets = request.input_sets;
    return distributed_search(*instance, options);
}

/// Unloaded mean service time of the interactive request, first sample
/// (engine setup: golden outputs, clone pool) dropped. Every schedule
/// parameter below scales off this, so the scenario self-adjusts to the
/// machine (and to sanitizer slowdowns).
double calibrate_interactive_seconds() {
    TuningService service{
        TuningService::Options{.threads = 1, .memoize = false}};
    constexpr int kSamples = 4;
    double total = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const TicketHandle handle = service.submit(Request{
            .work = interactive_work(), .priority = Priority::kInteractive});
        (void)handle.search_result();
        if (i > 0) total += latency_s(handle);
    }
    return std::max(total / (kSamples - 1), 0.5e-3);
}

struct SustainedRun {
    std::vector<double> interactive_latency_s;
    std::vector<double> sweep_latency_s;
    int sweeps_completed_during_storm = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    bool all_admitted_completed = false; // zero dropped-but-admitted
    bool bit_identical = false;          // vs direct-search references
    double wall_s = 0.0;
};

/// One pass over the fixed arrival schedule. `fair` toggles the aging
/// quantum; everything else (caps, deadline admission, the schedule
/// itself) is identical between the two runs.
SustainedRun run_sustained(bool fair, double service_s,
                           const TuningResult& interactive_ref,
                           const std::vector<TuningResult>& sweep_refs) {
    const auto span = [](double seconds) {
        return std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(seconds));
    };
    // Aging rank math: kSweep (0) reaches kInteractive (2) after two
    // quanta = 4 service times, well inside the ~25-service-time storm
    // even when engine contention inflates the real per-request cost;
    // arrivals every 0.4 service times oversaturate the two workers from
    // the interactive stream alone (demand 2.5 workers), so under strict
    // priority the promoted pops never happen.
    TuningService service{TuningService::Options{
        .threads = kSustainedWorkers,
        .memoize = false,
        .max_queued_per_class = kClassCap,
        .aging_quantum = fair ? span(2.0 * service_s) : Clock::duration{},
        .deadline_admission = true}};

    SustainedRun run;
    const auto start = Clock::now();
    std::vector<TicketHandle> sweeps;
    sweeps.reserve(kSweepClassCount);
    for (int i = 0; i < kSweepClassCount; ++i) {
        sweeps.push_back(service.submit(Request{
            .work = sweep_class_work(i), .priority = Priority::kSweep}));
    }

    const auto submit_interactive = [&service](std::vector<TicketHandle>& to) {
        try {
            to.push_back(service.submit(Request{
                .work = interactive_work(),
                .priority = Priority::kInteractive}));
        } catch (const tp::tuning::RequestRejected&) {
            // Load shedding IS the mechanism under test — the typed
            // rejections are counted via admission_stats() below.
        }
    };

    // The storm: a FIXED schedule, not a burst and not closed-loop —
    // arrival i happens at start + (i+1) * period no matter how far
    // behind the service is. Three probes carry an already-expired
    // deadline: deadline admission must refuse each, deterministically.
    std::vector<TicketHandle> interactives;
    interactives.reserve(kStormArrivals + kOverCapBurst);
    const Clock::duration period = span(0.4 * service_s);
    Clock::time_point last_arrival = start;
    for (int i = 0; i < kStormArrivals; ++i) {
        std::this_thread::sleep_until(start + (i + 1) * period);
        if (i % 16 == 12) { // i = 12, 28, 44: kDeadlineProbes of them
            try {
                (void)service.submit(Request{
                    .work = interactive_work(),
                    .priority = Priority::kInteractive,
                    .deadline = Clock::now() - std::chrono::milliseconds(1)});
            } catch (const tp::tuning::RequestRejected&) {
            }
        }
        submit_interactive(interactives);
        last_arrival = Clock::now();
    }
    // Deterministic over-cap tail: back-to-back submissions outrun the
    // workers, so the interactive class cap must shed some of these even
    // if the open-loop storm itself never filled the queue.
    for (int i = 0; i < kOverCapBurst; ++i) {
        submit_interactive(interactives);
    }

    // Drain: every admitted request must reach a terminal state — the
    // drain guarantee under test ("zero dropped-but-admitted").
    for (const TicketHandle& handle : sweeps) handle.wait();
    for (const TicketHandle& handle : interactives) handle.wait();
    run.wall_s = seconds_since(start);

    run.all_admitted_completed = true;
    run.bit_identical = true;
    for (int i = 0; i < kSweepClassCount; ++i) {
        const TicketHandle& handle = sweeps[static_cast<std::size_t>(i)];
        if (handle.status() != tp::tuning::RequestStatus::kDone) {
            run.all_admitted_completed = false;
            continue;
        }
        run.sweep_latency_s.push_back(latency_s(handle));
        if (handle.completed_at() < last_arrival) {
            ++run.sweeps_completed_during_storm;
        }
        run.bit_identical =
            identical_results(handle.search_result(),
                              sweep_refs[static_cast<std::size_t>(i)]) &&
            run.bit_identical;
    }
    for (const TicketHandle& handle : interactives) {
        if (handle.status() != tp::tuning::RequestStatus::kDone) {
            run.all_admitted_completed = false;
            continue;
        }
        run.interactive_latency_s.push_back(latency_s(handle));
        run.bit_identical =
            identical_results(handle.search_result(), interactive_ref) &&
            run.bit_identical;
    }

    const tp::tuning::AdmissionStats admission = service.admission_stats();
    run.admitted = admission.admitted;
    run.rejected_queue_full = admission.rejected_queue_full;
    run.rejected_deadline = admission.rejected_deadline;
    run.all_admitted_completed =
        run.all_admitted_completed &&
        admission.admitted == sweeps.size() + interactives.size();
    return run;
}

std::string sustained_run_json(const SustainedRun& run) {
    return tp::bench::Json::object()
        .field("interactive_p50_seconds",
               percentile(run.interactive_latency_s, 0.50))
        .field("interactive_p95_seconds",
               percentile(run.interactive_latency_s, 0.95))
        .field("sweep_class_p50_seconds", percentile(run.sweep_latency_s, 0.50))
        .field("sweep_class_p95_seconds", percentile(run.sweep_latency_s, 0.95))
        .field("sweeps_completed_during_storm",
               static_cast<std::size_t>(run.sweeps_completed_during_storm))
        .field("admitted", static_cast<std::size_t>(run.admitted))
        .field("rejected_queue_full",
               static_cast<std::size_t>(run.rejected_queue_full))
        .field("rejected_deadline",
               static_cast<std::size_t>(run.rejected_deadline))
        .field("all_admitted_completed", run.all_admitted_completed)
        .field("bit_identical_to_direct_search", run.bit_identical)
        .field("wall_seconds", run.wall_s)
        .str(2);
}

void print_sustained(const char* label, const SustainedRun& run) {
    std::printf("%-10s interactive p50 %.3fs p95 %.3fs | sweep-class p50 "
                "%.3fs p95 %.3fs | %d/%d sweeps done mid-storm | admitted "
                "%llu, shed %llu, deadline-refused %llu | drained %s, "
                "identical %s, %.3fs wall\n",
                label, percentile(run.interactive_latency_s, 0.50),
                percentile(run.interactive_latency_s, 0.95),
                percentile(run.sweep_latency_s, 0.50),
                percentile(run.sweep_latency_s, 0.95),
                run.sweeps_completed_during_storm, kSweepClassCount,
                static_cast<unsigned long long>(run.admitted),
                static_cast<unsigned long long>(run.rejected_queue_full),
                static_cast<unsigned long long>(run.rejected_deadline),
                run.all_admitted_completed ? "yes" : "NO",
                run.bit_identical ? "yes" : "NO", run.wall_s);
}

std::string class_json(const std::vector<double>& latencies, double last_s) {
    return tp::bench::Json::object()
        .field("p50_latency_seconds", percentile(latencies, 0.50))
        .field("p95_latency_seconds", percentile(latencies, 0.95))
        .field("last_completion_seconds", last_s)
        .str(2);
}

void print_burst(const char* label, const Burst& burst) {
    std::printf("%-10s high p50 %.3fs p95 %.3fs (last %.3fs) | "
                "sweep p50 %.3fs p95 %.3fs (last %.3fs) | "
                "QoS %s, victims cancelled %s, %.3fs wall\n",
                label, percentile(burst.high_latency_s, 0.50),
                percentile(burst.high_latency_s, 0.95), burst.last_high_s,
                percentile(burst.low_latency_s, 0.50),
                percentile(burst.low_latency_s, 0.95), burst.last_low_s,
                burst.qos_holds ? "yes" : "NO",
                burst.victims_cancelled ? "yes" : "NO", burst.wall_s);
}

} // namespace

int main() {
    std::printf("# async tuning service — mixed-priority overload burst: "
                "%d low-priority sweeps (x%zu epsilons) + %d cancelled + "
                "%d high-priority interactive requests\n\n",
                kSweeps, kSweepEpsilons.size(), kVictims, kHighs);

    const Burst threaded = run_burst(4);
    print_burst("4 workers", threaded);
    const Burst serial = run_burst(1);
    print_burst("1 worker", serial);

    const bool qos_holds = threaded.qos_holds && serial.qos_holds;
    const bool victims_cancelled =
        threaded.victims_cancelled && serial.victims_cancelled;
    const bool thread_invariant = identical_bursts(threaded, serial);
    std::printf("\nverifying against direct searches (the slow part)...\n");
    const bool direct_identical = matches_direct_searches(threaded);

    std::printf("high-priority requests all finish before the sweep backlog "
                "drains: %s\n"
                "threads=1 and threads=4 bursts bit-identical: %s\n"
                "every result bit-identical to its direct search: %s\n",
                qos_holds ? "yes" : "NO", thread_invariant ? "yes" : "NO",
                direct_identical ? "yes" : "NO");

    // --- sustained open-loop overload: fair (aging) vs strict ---------------
    const double service_s = calibrate_interactive_seconds();
    std::printf("\n# sustained open-loop overload: %d interactive arrivals "
                "every %.1fms (calibrated service %.1fms) + %d deadline "
                "probes + %d over-cap submits vs %d sweep-class requests, "
                "%u workers, class cap %zu\n\n",
                kStormArrivals, 0.4 * service_s * 1e3, service_s * 1e3,
                kDeadlineProbes, kOverCapBurst, kSweepClassCount,
                kSustainedWorkers, kClassCap);
    const TuningResult interactive_ref = direct_of(interactive_work());
    std::vector<TuningResult> sweep_refs;
    sweep_refs.reserve(kSweepClassCount);
    for (int i = 0; i < kSweepClassCount; ++i) {
        sweep_refs.push_back(direct_of(sweep_class_work(i)));
    }
    const SustainedRun fair =
        run_sustained(true, service_s, interactive_ref, sweep_refs);
    print_sustained("fair", fair);
    const SustainedRun strict =
        run_sustained(false, service_s, interactive_ref, sweep_refs);
    print_sustained("strict", strict);

    // Ordering-based gates — robust to machine speed and sanitizer
    // slowdowns because the whole schedule scales with the calibrated
    // service time.
    const bool fair_no_starvation =
        fair.sweeps_completed_during_storm == kSweepClassCount;
    const bool strict_starves =
        strict.sweeps_completed_during_storm < kSweepClassCount;
    const bool sweep_p95_bounded =
        percentile(fair.sweep_latency_s, 0.95) <
        percentile(strict.sweep_latency_s, 0.95);
    // The fairness tax: strict priority is the interactive-optimal
    // schedule, so "interactive p95 holds" means aging costs at most a
    // factor of two over it (observed ~1.1-1.2x; the class cap, shared by
    // both runs, is what keeps either bounded at all).
    const bool interactive_p95_holds =
        percentile(fair.interactive_latency_s, 0.95) <=
        2.0 * percentile(strict.interactive_latency_s, 0.95);
    const bool shedding_typed =
        fair.rejected_queue_full >= 1 && strict.rejected_queue_full >= 1 &&
        fair.rejected_deadline == kDeadlineProbes &&
        strict.rejected_deadline == kDeadlineProbes;
    const bool zero_dropped =
        fair.all_admitted_completed && strict.all_admitted_completed;
    const bool sustained_identical = fair.bit_identical && strict.bit_identical;

    std::printf(
        "\naging completes every sweep mid-storm: %s (strict starves: %s)\n"
        "fair sweep p95 below strict's: %s\n"
        "interactive p95 within 2x strict priority's under aging: %s\n"
        "over-cap and hopeless-deadline submissions shed typed: %s\n"
        "every admitted request drained (zero dropped): %s\n"
        "every completed sustained result bit-identical to direct: %s\n",
        fair_no_starvation ? "yes" : "NO", strict_starves ? "yes" : "NO",
        sweep_p95_bounded ? "yes" : "NO", interactive_p95_holds ? "yes" : "NO",
        shedding_typed ? "yes" : "NO", zero_dropped ? "yes" : "NO",
        sustained_identical ? "yes" : "NO");

    const auto doc =
        tp::bench::Json::object()
            .field("bench", "bench_async_service")
            .field("scenario",
                   "20 distinct sweep requests "
                   "(pca/dwt/fft/mlp/svm/iir/knn x input-set combos, "
                   "eps 1e-3/1e-2/1e-1 each) + 3 cancelled + 5 "
                   "interactive jacobi/conv requests, priority-scheduled")
            .field("sweep_requests", static_cast<std::size_t>(kSweeps))
            .field("interactive_requests", static_cast<std::size_t>(kHighs))
            .field("cancelled_requests", static_cast<std::size_t>(kVictims))
            .field("qos_holds", qos_holds)
            .field("victims_cancelled", victims_cancelled)
            .field("bit_identical_across_thread_counts", thread_invariant)
            .field("bit_identical_to_direct_search", direct_identical)
            .raw("interactive_threads4",
                 class_json(threaded.high_latency_s, threaded.last_high_s))
            .raw("sweeps_threads4",
                 class_json(threaded.low_latency_s, threaded.last_low_s))
            .raw("interactive_threads1",
                 class_json(serial.high_latency_s, serial.last_high_s))
            .raw("sweeps_threads1",
                 class_json(serial.low_latency_s, serial.last_low_s))
            .field("trials_threads4", threaded.stats.trials)
            .field("cache_hits_threads4", threaded.stats.cache_hits)
            .field("hit_rate_threads4", threaded.stats.hit_rate())
            .field("wall_seconds_threads4", threaded.wall_s)
            .field("wall_seconds_threads1", serial.wall_s)
            .raw("sustained",
                 tp::bench::Json::object()
                     .field("scenario",
                            "open-loop interactive storm (fixed arrival "
                            "schedule, oversaturated workers) vs queued "
                            "sweep-class requests; fair = aging + caps + "
                            "deadline admission, strict = aging off")
                     .field("workers",
                            static_cast<std::size_t>(kSustainedWorkers))
                     .field("arrivals",
                            static_cast<std::size_t>(kStormArrivals))
                     .field("sweep_class_requests",
                            static_cast<std::size_t>(kSweepClassCount))
                     .field("per_class_cap", kClassCap)
                     .field("deadline_probes",
                            static_cast<std::size_t>(kDeadlineProbes))
                     .field("calibrated_service_seconds", service_s)
                     .field("arrival_period_seconds", 0.4 * service_s)
                     .field("aging_quantum_seconds", 2.0 * service_s)
                     .raw("fair", sustained_run_json(fair))
                     .raw("strict", sustained_run_json(strict))
                     .field("fair_no_starvation", fair_no_starvation)
                     .field("strict_starves", strict_starves)
                     .field("sweep_p95_bounded", sweep_p95_bounded)
                     .field("interactive_p95_holds", interactive_p95_holds)
                     .field("shedding_typed", shedding_typed)
                     .field("zero_dropped", zero_dropped)
                     .field("bit_identical_to_direct_search",
                            sustained_identical)
                     .str(2))
            .str();
    std::ofstream out{"BENCH_async_service.json"};
    out << doc << "\n";
    std::printf("\nwrote BENCH_async_service.json\n");

    if (!qos_holds || !victims_cancelled || !thread_invariant ||
        !direct_identical) {
        std::printf("FAIL: async service contract violated\n");
        return 1;
    }
    if (!fair_no_starvation || !strict_starves || !sweep_p95_bounded ||
        !interactive_p95_holds || !shedding_typed || !zero_dropped ||
        !sustained_identical) {
        std::printf("FAIL: sustained-overload fairness/admission contract "
                    "violated\n");
        return 1;
    }
    std::printf("async service contract holds: interactive p95 %.3fs vs "
                "%.3fs sweep-backlog drain at 4 workers; sustained fair "
                "sweep p95 %.3fs vs strict %.3fs\n",
                percentile(threaded.high_latency_s, 0.95),
                threaded.last_low_s, percentile(fair.sweep_latency_s, 0.95),
                percentile(strict.sweep_latency_s, 0.95));
    return 0;
}
