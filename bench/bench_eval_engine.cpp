// EvalEngine memoization under a realistic tuning session
// (tuning/eval_engine.hpp).
//
// The paper's evaluation tunes every application at three quality
// requirements (epsilon 1e-3 / 1e-2 / 1e-1). The engine's trial cache is
// epsilon-independent by construction — it memoizes program OUTPUTS keyed
// by (input_set, config), and the requirement is applied to the cached
// output — so an epsilon sweep over one app on a shared engine reuses
// every overlapping probe. This bench runs that sweep over every
// registered workload (the paper's six kernels plus fft / iir / mlp),
// per app twice:
//
//   * shared engine, memoization on  — counts kernel runs vs cache hits;
//   * fresh engine, memoization off  — the pre-cache reference: same
//     results (verified bit-exact), every trial a kernel execution.
//
// Results (per-app counters, aggregate elimination, wall times) go to
// BENCH_eval_engine.json; BENCH_tuning.json (bench_parallel_tuning) holds
// the headline pca/dwt numbers tracked across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "harness.hpp"
#include "json.hpp"
#include "tuning/cast_aware.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::identical_results;
using tp::bench::seconds_since;

tp::tuning::SearchOptions options_for(double epsilon) {
    return tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2);
}

/// One full (uncached) epsilon sweep on a fresh engine with the arithmetic
/// backend pinned via Options::force_emulated. Returns the wall time and
/// fills `results` with the three per-epsilon tuning results.
double timed_sweep(tp::apps::App& app, bool force_emulated,
                   std::vector<tp::tuning::TuningResult>& results) {
    tp::tuning::EvalEngine engine{
        app, tp::tuning::EvalEngine::Options{.threads = 1,
                                             .memoize = false,
                                             .force_emulated = force_emulated}};
    results.clear();
    const auto start = Clock::now();
    for (const double epsilon : tp::bench::kEpsilons) {
        results.push_back(
            tp::tuning::distributed_search(engine, options_for(epsilon)));
    }
    return seconds_since(start);
}

/// Repeated uncached trials at a uniform binary32 config — the scenario
/// where every routed op maps onto the native fast path. Search sweeps
/// dilute the backend effect (most V2 candidates are binary8/16/16alt,
/// emulated on every backend); this isolates the hardware-mappable case
/// end-to-end through the engine.
double timed_uniform_trials(tp::apps::App& app, bool force_emulated, int trials,
                            std::vector<double>& last_output) {
    tp::tuning::EvalEngine engine{
        app, tp::tuning::EvalEngine::Options{.threads = 1,
                                             .memoize = false,
                                             .force_emulated = force_emulated}};
    const auto config = app.uniform_config(tp::kBinary32);
    const auto start = Clock::now();
    for (int i = 0; i < trials; ++i) {
        last_output = engine.output(static_cast<unsigned>(i % 3), config);
    }
    return seconds_since(start);
}

} // namespace

int main() {
    std::printf("# EvalEngine memoization — epsilon sweep (1e-3, 1e-2, 1e-1), "
                "V2, serial engine\n\n");
    std::printf("%-8s %-8s %-8s %-8s %-12s %-10s %-10s %s\n", "app", "trials",
                "runs", "hits", "eliminated", "cached_s", "uncached_s",
                "identical");

    bool all_identical = true;
    auto apps_json = tp::bench::Json::array();

    for (const std::string& app_name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(app_name);

        tp::tuning::EvalEngine cached{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        tp::tuning::EvalEngine uncached{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = false}};

        bool matches = true;
        auto sweep_json = tp::bench::Json::array();

        const auto cached_start = Clock::now();
        std::vector<tp::tuning::TuningResult> cached_results;
        for (const double epsilon : tp::bench::kEpsilons) {
            cached_results.push_back(
                tp::tuning::distributed_search(cached, options_for(epsilon)));
        }
        const double cached_seconds = seconds_since(cached_start);

        const auto uncached_start = Clock::now();
        for (std::size_t e = 0; e < tp::bench::kEpsilons.size(); ++e) {
            const auto reference = tp::tuning::distributed_search(
                uncached, options_for(tp::bench::kEpsilons[e]));
            const bool step_matches = identical_results(cached_results[e], reference);
            matches = matches && step_matches;
            sweep_json.item_raw(
                tp::bench::Json::object()
                    .field("epsilon", tp::bench::kEpsilons[e])
                    .field("program_runs", reference.program_runs)
                    .field("bit_identical", step_matches)
                    .str(4));
        }
        const double uncached_seconds = seconds_since(uncached_start);

        const auto stats = cached.stats();
        all_identical = all_identical && matches;
        std::printf("%-8s %-8zu %-8zu %-8zu %-12.1f %-10.3f %-10.3f %s\n",
                    app_name.c_str(), stats.trials, stats.kernel_runs, stats.cache_hits,
                    100.0 * stats.hit_rate(), cached_seconds, uncached_seconds,
                    matches ? "yes" : "NO");

        apps_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("trials", stats.trials)
                .field("kernel_runs", stats.kernel_runs)
                .field("cache_hits", stats.cache_hits)
                .field("eliminated_fraction", stats.hit_rate())
                .field("golden_runs", stats.golden_runs)
                .field("cached_wall_seconds", cached_seconds)
                .field("uncached_wall_seconds", uncached_seconds)
                .field("bit_identical", matches)
                .raw("per_epsilon", sweep_json.str(4))
                .str(2));
    }

    // --- Cross-epsilon warm-starting -------------------------------------
    // The algorithmic cut memoization cannot reach: sweep_search chains the
    // three epsilons (tight to loose), seeding each search from the
    // previous result and clamping probe ranges by monotonicity, so trials
    // are never SUBMITTED rather than merely served from cache. Both sides
    // run on a fresh shared memoized engine so the wall-time comparison is
    // engine-for-engine fair; the headline acceptance gates (>= 25% fewer
    // trials on >= 7 of 9 apps, every warm result meeting its epsilon at
    // per-signal precision <= the independent search's) fail the bench.
    std::printf("\n# warm-started sweep vs independent searches "
                "(sweep_search, shared memoized engine)\n\n");
    std::printf("%-8s %-9s %-9s %-7s %-9s %-9s %-8s %-7s %s\n", "app",
                "ind_tr", "warm_tr", "cut%", "ind_runs", "warm_runs",
                "skipped", "<=ind", "meets");

    int apps_with_headline_cut = 0;
    bool all_meet_epsilon = true;
    bool all_le_independent = true;
    auto warm_json = tp::bench::Json::array();
    for (const std::string& app_name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(app_name);
        const auto base = options_for(tp::bench::kEpsilons.front());

        tp::tuning::EvalEngine independent_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto independent_start = Clock::now();
        const auto independent =
            tp::tuning::sweep_search(independent_engine, base,
                                     tp::bench::kEpsilons,
                                     /*warm_start_chain=*/false);
        const double independent_seconds = seconds_since(independent_start);
        const auto independent_stats = independent_engine.stats();

        tp::tuning::EvalEngine warm_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto warm_start = Clock::now();
        const auto warm =
            tp::tuning::sweep_search(warm_engine, base, tp::bench::kEpsilons,
                                     /*warm_start_chain=*/true);
        const double warm_seconds = seconds_since(warm_start);
        const auto warm_stats = warm_engine.stats();

        std::size_t independent_trials = 0;
        std::size_t warm_trials = 0;
        for (std::size_t e = 0; e < tp::bench::kEpsilons.size(); ++e) {
            independent_trials += independent[e].program_runs;
            warm_trials += warm[e].program_runs;
        }

        // Gate trials run AFTER the stats snapshots so they do not pollute
        // the recorded series. meets() re-checks end-to-end under the
        // bound formats — the binding the program would actually ship.
        bool meets = true;
        bool le_independent = true;
        for (std::size_t e = 0; e < tp::bench::kEpsilons.size(); ++e) {
            for (const unsigned set : base.input_sets) {
                meets = meets && warm_engine.meets(set, warm[e].type_config(),
                                                   tp::bench::kEpsilons[e]);
            }
            for (std::size_t i = 0; i < warm[e].signals.size(); ++i) {
                le_independent =
                    le_independent && warm[e].signals[i].precision_bits <=
                                          independent[e].signals[i].precision_bits;
            }
        }
        all_meet_epsilon = all_meet_epsilon && meets;
        all_le_independent = all_le_independent && le_independent;

        const double cut =
            independent_trials > 0
                ? 1.0 - static_cast<double>(warm_trials) /
                            static_cast<double>(independent_trials)
                : 0.0;
        if (cut >= 0.25) ++apps_with_headline_cut;

        std::printf("%-8s %-9zu %-9zu %-7.1f %-9zu %-9zu %-8zu %-7s %s\n",
                    app_name.c_str(), independent_trials, warm_trials,
                    100.0 * cut, independent_stats.kernel_runs,
                    warm_stats.kernel_runs,
                    warm_stats.trials_skipped_by_bounds,
                    le_independent ? "yes" : "NO", meets ? "yes" : "NO");

        warm_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("independent_trials", independent_trials)
                .field("warm_trials", warm_trials)
                .field("trials_cut_fraction", cut)
                .field("independent_kernel_runs", independent_stats.kernel_runs)
                .field("warm_kernel_runs", warm_stats.kernel_runs)
                .field("trials_skipped_by_bounds",
                       warm_stats.trials_skipped_by_bounds)
                .field("independent_wall_seconds", independent_seconds)
                .field("warm_wall_seconds", warm_seconds)
                .field("meets_epsilon", meets)
                .field("precision_le_independent", le_independent)
                .str(2));
    }
    const bool headline_cut = apps_with_headline_cut >= 7;
    std::printf("\n%d/9 apps cut trials by >= 25%%\n", apps_with_headline_cut);

    // --- Static precision-dataflow bounds --------------------------------
    // The cut available BEFORE any trial history exists: a cold,
    // never-tuned app, one epsilon, and SearchOptions::static_bounds
    // resolving analysis::derive_warm_start from shadow reference
    // executions alone (analysis/derive_bounds.hpp). The soundness
    // contract makes the bounded search's signals bit-identical to the
    // cold search's — checked per app — while probe bisections clamp
    // against the derived lower bounds and book their savings in
    // EvalStats::trials_skipped_by_bounds. Gates: identical signals on
    // 9/9 apps, skipped trials > 0 on >= 7 of 9.
    std::printf("\n# static bounds — cold single-epsilon search, "
                "derive_warm_start vs unassisted (epsilon %g)\n\n",
                tp::bench::kEpsilons.front());
    std::printf("%-8s %-9s %-9s %-9s %-9s %-8s %s\n", "app", "cold_tr",
                "stat_tr", "cold_rn", "stat_rn", "skipped", "identical");

    int apps_with_skips = 0;
    bool all_static_identical = true;
    auto static_json = tp::bench::Json::array();
    for (const std::string& app_name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(app_name);
        const auto base = options_for(tp::bench::kEpsilons.front());

        tp::tuning::EvalEngine cold_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto cold_start = Clock::now();
        const auto cold = tp::tuning::distributed_search(cold_engine, base);
        const double cold_seconds = seconds_since(cold_start);
        const auto cold_stats = cold_engine.stats();

        auto bounded_options = base;
        bounded_options.static_bounds = true;
        tp::tuning::EvalEngine bounded_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto bounded_start = Clock::now();
        const auto bounded =
            tp::tuning::distributed_search(bounded_engine, bounded_options);
        const double bounded_seconds = seconds_since(bounded_start);
        const auto bounded_stats = bounded_engine.stats();

        // program_runs legitimately shrinks; the tuned signals must not.
        bool same_signals = cold.signals.size() == bounded.signals.size();
        for (std::size_t i = 0; same_signals && i < cold.signals.size(); ++i) {
            same_signals = cold.signals[i].name == bounded.signals[i].name &&
                           cold.signals[i].precision_bits ==
                               bounded.signals[i].precision_bits &&
                           cold.signals[i].bound == bounded.signals[i].bound;
        }
        all_static_identical = all_static_identical && same_signals;
        if (bounded_stats.trials_skipped_by_bounds > 0) ++apps_with_skips;

        std::printf("%-8s %-9zu %-9zu %-9zu %-9zu %-8zu %s\n",
                    app_name.c_str(), cold_stats.trials, bounded_stats.trials,
                    cold.program_runs, bounded.program_runs,
                    bounded_stats.trials_skipped_by_bounds,
                    same_signals ? "yes" : "NO");

        static_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("cold_trials", cold_stats.trials)
                .field("static_trials", bounded_stats.trials)
                .field("cold_program_runs", cold.program_runs)
                .field("static_program_runs", bounded.program_runs)
                .field("trials_skipped_by_bounds",
                       bounded_stats.trials_skipped_by_bounds)
                .field("cold_wall_seconds", cold_seconds)
                .field("static_wall_seconds", bounded_seconds)
                .field("identical_signals", same_signals)
                .str(2));
    }
    const bool static_skips_gate = apps_with_skips >= 7;
    std::printf("\n%d/9 apps skipped trials via static bounds\n",
                apps_with_skips);

    // --- Cast-aware delta costing ----------------------------------------
    // The region-impact cut (analysis/region_impact.hpp +
    // EvalEngine::report_delta): the cast-aware phase's candidate probes
    // splice every cost region the static analysis proves untouched by
    // the probed signal instead of re-accounting it. Both sides run the
    // same two-phase search on fresh memoized engines; the delta-cost
    // soundness contract makes the CastAwareResults bit-identical —
    // checked per app — while the recost/skip split records the removed
    // work. Gates: identical results on 9/9 apps, region re-costs drop
    // (regions_skipped_by_impact > 0) on >= 7 of 9 — an app whose whole
    // trace is one unbroken vector window soundly degenerates to full
    // recosting.
    std::printf("\n# cast-aware delta costing — full recost vs "
                "report_delta (epsilon %g)\n\n",
                tp::bench::kEpsilons[1]);
    std::printf("%-8s %-10s %-10s %-9s %-9s %-9s %s\n", "app", "full_rc",
                "delta_rc", "skipped", "full_s", "delta_s", "identical");

    int apps_with_region_skips = 0;
    bool all_delta_identical = true;
    auto delta_json = tp::bench::Json::array();
    for (const std::string& app_name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(app_name);
        tp::tuning::CastAwareOptions ca;
        ca.search = options_for(tp::bench::kEpsilons[1]);
        ca.search.input_sets = {0, 1};
        ca.search.max_passes = 2;
        ca.max_rounds = 2;

        auto full_options = ca;
        full_options.delta_cost = false;
        tp::tuning::EvalEngine full_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto full_start = Clock::now();
        const auto full = tp::tuning::cast_aware_search(full_engine, full_options);
        const double full_seconds = seconds_since(full_start);

        tp::tuning::EvalEngine delta_engine{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        const auto delta_start = Clock::now();
        const auto delta = tp::tuning::cast_aware_search(delta_engine, ca);
        const double delta_seconds = seconds_since(delta_start);

        const bool matches = identical_results(full.base, delta.base) &&
                             full.config == delta.config &&
                             full.base_energy_pj == delta.base_energy_pj &&
                             full.tuned_energy_pj == delta.tuned_energy_pj &&
                             full.base_casts == delta.base_casts &&
                             full.tuned_casts == delta.tuned_casts &&
                             full.moves_accepted == delta.moves_accepted;
        all_delta_identical = all_delta_identical && matches;
        if (delta.eval_stats.regions_skipped_by_impact > 0) {
            ++apps_with_region_skips;
        }

        std::printf("%-8s %-10zu %-10zu %-9zu %-9.3f %-9.3f %s\n",
                    app_name.c_str(), full.eval_stats.regions_recosted,
                    delta.eval_stats.regions_recosted,
                    delta.eval_stats.regions_skipped_by_impact, full_seconds,
                    delta_seconds, matches ? "yes" : "NO");

        delta_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("full_regions_recosted", full.eval_stats.regions_recosted)
                .field("delta_regions_recosted",
                       delta.eval_stats.regions_recosted)
                .field("regions_skipped_by_impact",
                       delta.eval_stats.regions_skipped_by_impact)
                .field("full_wall_seconds", full_seconds)
                .field("delta_wall_seconds", delta_seconds)
                .field("bit_identical", matches)
                .str(2));
    }
    const bool delta_skips_gate = apps_with_region_skips >= 7;
    std::printf("\n%d/9 apps skipped region re-costs via impact analysis\n",
                apps_with_region_skips);

    // --- Arithmetic-backend A/B ------------------------------------------
    // Same uncached sweep with the backend pinned per engine through
    // Options::force_emulated: native fast path vs forced emulation,
    // interleaved in one process so machine drift hits both sides equally
    // (best-of-N per side). The searches must return byte-identical
    // results — the backend contract — which is re-checked here end-to-end.
    std::printf("\n# backend A/B — uncached sweep, native fast path vs "
                "Options::force_emulated\n\n");
    std::printf("%-8s %-10s %-12s %-9s %-10s %-12s %-9s %s\n", "app",
                "search_n", "search_e", "speedup", "b32_n", "b32_e", "speedup",
                "identical");

    constexpr int kBackendReps = 3;
    auto backend_json = tp::bench::Json::array();
    for (const std::string& app_name : {std::string{"jacobi"},
                                        std::string{"svm"},
                                        std::string{"conv"}}) {
        auto app = tp::apps::make_app(app_name);
        std::vector<tp::tuning::TuningResult> native_results;
        std::vector<tp::tuning::TuningResult> emulated_results;
        double native_best = 0.0;
        double emulated_best = 0.0;
        bool matches = true;
        for (int rep = 0; rep < kBackendReps; ++rep) {
            const double native_s = timed_sweep(*app, false, native_results);
            const double emulated_s = timed_sweep(*app, true, emulated_results);
            native_best = rep == 0 ? native_s : std::min(native_best, native_s);
            emulated_best =
                rep == 0 ? emulated_s : std::min(emulated_best, emulated_s);
            for (std::size_t e = 0; e < native_results.size(); ++e) {
                matches = matches && identical_results(native_results[e],
                                                       emulated_results[e]);
            }
        }
        // Uniform-binary32 trials: the all-native-format case.
        constexpr int kUniformTrials = 100;
        std::vector<double> native_output;
        std::vector<double> emulated_output;
        double trials_native_best = 0.0;
        double trials_emulated_best = 0.0;
        for (int rep = 0; rep < kBackendReps; ++rep) {
            const double native_s =
                timed_uniform_trials(*app, false, kUniformTrials, native_output);
            const double emulated_s =
                timed_uniform_trials(*app, true, kUniformTrials, emulated_output);
            trials_native_best =
                rep == 0 ? native_s : std::min(trials_native_best, native_s);
            trials_emulated_best =
                rep == 0 ? emulated_s : std::min(trials_emulated_best, emulated_s);
            matches = matches && native_output == emulated_output;
        }

        const double speedup = native_best > 0.0 ? emulated_best / native_best : 0.0;
        const double trials_speedup = trials_native_best > 0.0
                                          ? trials_emulated_best / trials_native_best
                                          : 0.0;
        all_identical = all_identical && matches;
        std::printf("%-8s %-10.3f %-12.3f %-9.2f %-10.3f %-12.3f %-9.2f %s\n",
                    app_name.c_str(), native_best, emulated_best, speedup,
                    trials_native_best, trials_emulated_best, trials_speedup,
                    matches ? "yes" : "NO");
        backend_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("search_native_wall_seconds", native_best)
                .field("search_forced_emulated_wall_seconds", emulated_best)
                .field("search_speedup_native_vs_emulated", speedup)
                .field("uniform_b32_native_wall_seconds", trials_native_best)
                .field("uniform_b32_forced_emulated_wall_seconds", trials_emulated_best)
                .field("uniform_b32_speedup_native_vs_emulated", trials_speedup)
                .field("bit_identical", matches)
                .str(2));
    }

    const auto doc = tp::bench::Json::object()
                         .field("bench", "bench_eval_engine")
                         .field("scenario", "epsilon sweep 1e-3/1e-2/1e-1 on a shared engine")
                         .raw("apps", apps_json.str(2))
                         .field("apps_with_cut_ge_25pct", apps_with_headline_cut)
                         .raw("sweep_warm_start", warm_json.str(2))
                         .field("apps_with_static_skips", apps_with_skips)
                         .raw("static_bounds", static_json.str(2))
                         .field("apps_with_region_skips", apps_with_region_skips)
                         .raw("cast_aware_delta", delta_json.str(2))
                         .raw("backend_ab", backend_json.str(2));
    std::ofstream out{"BENCH_eval_engine.json"};
    out << doc.str() << "\n";
    std::printf("\nwrote BENCH_eval_engine.json\n");

    if (!all_identical) {
        std::printf("FAIL: cached results diverged from the uncached path\n");
        return 1;
    }
    if (!all_meet_epsilon) {
        std::printf("FAIL: a warm-started result missed its epsilon\n");
        return 1;
    }
    if (!all_le_independent) {
        std::printf("FAIL: a warm-started result exceeded the independent "
                    "search's precision\n");
        return 1;
    }
    if (!headline_cut) {
        std::printf("FAIL: warm-started sweep cut trials by >= 25%% on only "
                    "%d/9 apps (need 7)\n", apps_with_headline_cut);
        return 1;
    }
    if (!all_static_identical) {
        std::printf("FAIL: a static-bounds search changed the tuned signals\n");
        return 1;
    }
    if (!static_skips_gate) {
        std::printf("FAIL: static bounds skipped trials on only %d/9 apps "
                    "(need 7)\n", apps_with_skips);
        return 1;
    }
    if (!all_delta_identical) {
        std::printf("FAIL: a delta-costed cast-aware search diverged from the "
                    "full-recost path\n");
        return 1;
    }
    if (!delta_skips_gate) {
        std::printf("FAIL: delta costing skipped region re-costs on only "
                    "%d/9 apps (need 7)\n", apps_with_region_skips);
        return 1;
    }
    std::printf("cached and uncached searches returned bit-identical results\n");
    return 0;
}
