// EvalEngine memoization under a realistic tuning session
// (tuning/eval_engine.hpp).
//
// The paper's evaluation tunes every application at three quality
// requirements (epsilon 1e-3 / 1e-2 / 1e-1). The engine's trial cache is
// epsilon-independent by construction — it memoizes program OUTPUTS keyed
// by (input_set, config), and the requirement is applied to the cached
// output — so an epsilon sweep over one app on a shared engine reuses
// every overlapping probe. This bench runs that sweep over every
// registered workload (the paper's six kernels plus fft / iir / mlp),
// per app twice:
//
//   * shared engine, memoization on  — counts kernel runs vs cache hits;
//   * fresh engine, memoization off  — the pre-cache reference: same
//     results (verified bit-exact), every trial a kernel execution.
//
// Results (per-app counters, aggregate elimination, wall times) go to
// BENCH_eval_engine.json; BENCH_tuning.json (bench_parallel_tuning) holds
// the headline pca/dwt numbers tracked across PRs.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "harness.hpp"
#include "json.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using tp::bench::identical_results;
using tp::bench::seconds_since;

tp::tuning::SearchOptions options_for(double epsilon) {
    return tp::bench::bench_search_options(epsilon, tp::TypeSystemKind::V2);
}

} // namespace

int main() {
    std::printf("# EvalEngine memoization — epsilon sweep (1e-3, 1e-2, 1e-1), "
                "V2, serial engine\n\n");
    std::printf("%-8s %-8s %-8s %-8s %-12s %-10s %-10s %s\n", "app", "trials",
                "runs", "hits", "eliminated", "cached_s", "uncached_s",
                "identical");

    bool all_identical = true;
    auto apps_json = tp::bench::Json::array();

    for (const std::string& app_name : tp::apps::app_names()) {
        auto app = tp::apps::make_app(app_name);

        tp::tuning::EvalEngine cached{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = true}};
        tp::tuning::EvalEngine uncached{
            *app,
            tp::tuning::EvalEngine::Options{.threads = 1, .memoize = false}};

        bool matches = true;
        auto sweep_json = tp::bench::Json::array();

        const auto cached_start = Clock::now();
        std::vector<tp::tuning::TuningResult> cached_results;
        for (const double epsilon : tp::bench::kEpsilons) {
            cached_results.push_back(
                tp::tuning::distributed_search(cached, options_for(epsilon)));
        }
        const double cached_seconds = seconds_since(cached_start);

        const auto uncached_start = Clock::now();
        for (std::size_t e = 0; e < tp::bench::kEpsilons.size(); ++e) {
            const auto reference = tp::tuning::distributed_search(
                uncached, options_for(tp::bench::kEpsilons[e]));
            const bool step_matches = identical_results(cached_results[e], reference);
            matches = matches && step_matches;
            sweep_json.item_raw(
                tp::bench::Json::object()
                    .field("epsilon", tp::bench::kEpsilons[e])
                    .field("program_runs", reference.program_runs)
                    .field("bit_identical", step_matches)
                    .str(4));
        }
        const double uncached_seconds = seconds_since(uncached_start);

        const auto stats = cached.stats();
        all_identical = all_identical && matches;
        std::printf("%-8s %-8zu %-8zu %-8zu %-12.1f %-10.3f %-10.3f %s\n",
                    app_name.c_str(), stats.trials, stats.kernel_runs, stats.cache_hits,
                    100.0 * stats.hit_rate(), cached_seconds, uncached_seconds,
                    matches ? "yes" : "NO");

        apps_json.item_raw(
            tp::bench::Json::object()
                .field("app", app_name)
                .field("trials", stats.trials)
                .field("kernel_runs", stats.kernel_runs)
                .field("cache_hits", stats.cache_hits)
                .field("eliminated_fraction", stats.hit_rate())
                .field("golden_runs", stats.golden_runs)
                .field("cached_wall_seconds", cached_seconds)
                .field("uncached_wall_seconds", uncached_seconds)
                .field("bit_identical", matches)
                .raw("per_epsilon", sweep_json.str(4))
                .str(2));
    }

    const auto doc = tp::bench::Json::object()
                         .field("bench", "bench_eval_engine")
                         .field("scenario", "epsilon sweep 1e-3/1e-2/1e-1 on a shared engine")
                         .raw("apps", apps_json.str(2));
    std::ofstream out{"BENCH_eval_engine.json"};
    out << doc.str() << "\n";
    std::printf("\nwrote BENCH_eval_engine.json\n");

    if (!all_identical) {
        std::printf("FAIL: cached results diverged from the uncached path\n");
        return 1;
    }
    std::printf("cached and uncached searches returned bit-identical results\n");
    return 0;
}
