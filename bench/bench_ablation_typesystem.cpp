// Ablation: the paper's Section III-A argument that *both* 16-bit formats
// are needed. Tunes every application under three type systems — V1
// (binary16 as the only 16-bit type), V2 (both), and a synthetic
// binary16alt-only system — and reports the resulting type populations and
// tuned energy.
//
// Expectation: binary16alt alone loses the 9..11-precision-bit variables
// (they need binary16's mantissa); binary16 alone loses wide-dynamic-range
// variables (they need binary16alt's exponent); V2 minimizes the binary32
// population — the paper reports ~50% more variables scaled below 32 bits
// when binary16alt is added.
#include <cmath>
#include <iostream>

#include "harness.hpp"
#include "util/table.hpp"

namespace {

struct Scenario {
    std::string label;
    tp::TypeSystemKind base;
    bool forbid_binary16; // re-bind binary16 variables to binary32
};

} // namespace

int main() {
    constexpr double kEpsilon = 1e-1;
    std::cout << "=== Ablation: type-system membership (requirement 10^-1) "
                 "===\n\n";
    const Scenario scenarios[] = {
        {"V1 (b16 only)", tp::TypeSystemKind::V1, false},
        {"V2 (both 16-bit)", tp::TypeSystemKind::V2, false},
        {"b16alt only", tp::TypeSystemKind::V2, true},
    };
    tp::util::Table table({"type system", "binary8", "binary16", "binary16alt",
                           "binary32", "sub-32-bit vars", "energy vs baseline"});
    for (const Scenario& scenario : scenarios) {
        std::array<int, 4> totals{};
        double energy_ratio_product = 1.0;
        int apps = 0;
        for (const auto& name : tp::apps::app_names()) {
            auto app = tp::apps::make_app(name);
            auto result = tp::tuning::distributed_search(
                *app, tp::bench::bench_search_options(kEpsilon, scenario.base));
            if (scenario.forbid_binary16) {
                // Variables bound to binary16 demanded more precision than
                // binary16alt offers; without binary16 they fall back to
                // binary32.
                for (auto& sr : result.signals) {
                    if (sr.bound == tp::FormatKind::Binary16) {
                        sr.bound = tp::FormatKind::Binary32;
                    }
                }
            }
            const auto counts = result.variables_per_format();
            for (std::size_t i = 0; i < counts.size(); ++i) totals[i] += counts[i];

            const auto baseline = tp::bench::simulate_baseline(*app);
            const auto tuned =
                tp::bench::simulate_app(*app, result.type_config(), true);
            energy_ratio_product *= tuned.energy.total() / baseline.energy.total();
            ++apps;
        }
        const int sub32 = totals[0] + totals[1] + totals[2];
        table.add_row({scenario.label, std::to_string(totals[0]),
                       std::to_string(totals[1]), std::to_string(totals[2]),
                       std::to_string(totals[3]), std::to_string(sub32),
                       tp::util::Table::percent(
                           std::pow(energy_ratio_product, 1.0 / apps))});
    }
    table.print(std::cout);
    std::cout << "\nexpected: V2 maximizes sub-32-bit variables (paper: up to "
                 "+50% vs a single 16-bit format)\n";
    return 0;
}
