// Region-impact analysis — the static side of the cast-aware delta-cost
// path (closing ROADMAP's "Smarter search" item).
//
// A cast-aware probe changes ONE signal's format; the cost terms of the
// platform simulation (sim/platform.hpp) can only move where that
// signal's binding is visible to the accounting: the instructions whose
// format, width, cast endpoints, or SIMD grouping the signal determines.
// This pass reads a TAGGED capture (signal_flow.hpp: every format in the
// trace is a unique per-signal tag, control flow is the binary64 golden
// reference) and computes, per SignalId, a sound over-approximation of
// the cost regions (sim::cost_regions) a format change can reach:
//
//   * exact attribution — each cost-carrying instruction charges the
//     signals its tags name (FpArith: the producing signal; FpCast: both
//     endpoint signals, which also govern cast elision; Load/Store: the
//     stream's signal, which is how a format follows a memory round-trip
//     into every region that loads the stream back);
//   * vector-window smearing — under a real binding the vectorizer
//     (sim/vectorize.cpp) drifts bucketed instructions forward and fuses
//     lanes, coupling the cost PLACEMENT of everything between two
//     format-independent flush barriers. Any window containing a
//     potentially bucketable instruction therefore smears every touching
//     signal over all regions the window spans. Cast instructions never
//     end a window: a cast elides when its endpoints agree, so its
//     barrier is not format-independent;
//   * an always-impacted set — regions holding cost-carrying
//     instructions whose tags name no signal are charged to every probe.
//
// Soundness contract (mirroring derive_bounds.hpp): over-approximation
// is allowed, omission is not — GIVEN THE SAME BRANCH SKELETON, a region
// outside impact[s] has a bit-identical RegionCost under any two bindings
// differing only in signal s. The skeleton premise is checked dynamically
// by the consumer (eval_engine.cpp gates on branch counts and verifies
// every spliced region by its cost signature), so an analysis
// over-approximation can only cost speed, never bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace tp::analysis {

/// One static cast site observed in a tagged capture, folded over its
/// dynamic executions: the producing (source-format) and consuming
/// (target-format) signals. Int<->FP conversions are excluded — they are
/// structural, not format-boundary, casts. kUnknownSignal endpoints mark
/// casts whose tags resolved to no signal.
struct CastSite {
    std::int32_t src_signal = -1;
    std::int32_t dst_signal = -1;
    std::size_t first_instr = 0; // first occurrence in the capture
    std::size_t occurrences = 0; // dynamic executions of the site
};

/// The per-signal region-impact sets of one (app, input set) capture.
/// Default-constructed (region_count == 0) means "no usable analysis" —
/// consumers fall back to full re-costing.
struct RegionImpactMap {
    std::size_t signal_count = 0;
    /// Branch count of the capture — the delta path's correspondence
    /// gate: region indices transfer to another trace of the same app and
    /// input set only when its branch count (and so its region partition)
    /// matches.
    std::uint64_t branch_count = 0;
    std::size_t region_count = 0;
    /// impact[signal][region] != 0: changing `signal`'s binding may
    /// change `region`'s RegionCost.
    std::vector<std::vector<char>> impact;
    /// Regions charged to every probe (unattributable cost instructions).
    std::vector<char> always_impacted;
    /// Format-boundary cast sites (drives the dead-cast lint).
    std::vector<CastSite> cast_sites;

    /// Whether `region` may change when any signal in `changed` does.
    [[nodiscard]] bool region_impacted(
        std::size_t region, const std::vector<std::int32_t>& changed) const;
};

/// Builds the impact map from a tagged capture
/// (analysis::capture_trace().program — scalar, tag formats). The region
/// partition is sim::cost_regions() of that capture; window smearing
/// makes the sets valid for the vectorized replays of real bindings too.
[[nodiscard]] RegionImpactMap build_region_impact(
    const sim::TraceProgram& program, std::size_t signal_count);

/// The cast-site pass alone (the dead-cast lint's input): every
/// format-boundary FpCast in the capture, folded per (src, dst) signal
/// pair in first-occurrence order.
[[nodiscard]] std::vector<CastSite> collect_cast_sites(
    const sim::TraceProgram& program, std::size_t signal_count);

} // namespace tp::analysis
