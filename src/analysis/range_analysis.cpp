#include "analysis/range_analysis.hpp"

#include <algorithm>
#include <cmath>

namespace tp::analysis {

namespace {

int exponent_floor(double max_abs) noexcept {
    for (int e = 1; e <= 11; ++e) {
        const int bias = (1 << (e - 1)) - 1;
        if (max_abs < std::ldexp(1.0, bias + 1)) return e;
    }
    return 11;
}

} // namespace

std::vector<StaticRange> static_signal_ranges(const ErrorModel& model,
                                              const SignalFlowGraph& flow,
                                              std::span<const double> u_per_signal,
                                              double inflation) {
    const std::size_t S = model.signal_count;
    std::vector<double> max_drift(S, 0.0);
    for (std::size_t id = 0; id < model.value_count; ++id) {
        const std::int32_t sig = flow.value_signal[id];
        if (sig < 0) continue;
        const std::span<const double> row =
            model.abs_row(static_cast<std::int32_t>(id));
        double drift = 0.0;
        for (std::size_t s = 0; s < S && s < u_per_signal.size(); ++s) {
            drift += row[s] * u_per_signal[s];
        }
        max_drift[static_cast<std::size_t>(sig)] =
            std::max(max_drift[static_cast<std::size_t>(sig)], drift);
    }

    std::vector<StaticRange> ranges(S);
    for (std::size_t s = 0; s < S; ++s) {
        const SignalObservation& obs = model.observed[s];
        StaticRange& range = ranges[s];
        if (obs.count == 0) continue;
        const double pad = inflation * max_drift[s];
        range.lo = obs.min_value - pad;
        range.hi = obs.max_value + pad;
        range.max_abs = std::max(std::fabs(range.lo), std::fabs(range.hi));
        range.exp_floor_bits = exponent_floor(range.max_abs);
        range.populated = true;
    }
    return ranges;
}

std::vector<StaticRange> static_signal_ranges_at_uniform(
    const ErrorModel& model, const SignalFlowGraph& flow, int precision_bits,
    double inflation) {
    const std::vector<double> u(model.signal_count,
                                std::ldexp(1.0, -precision_bits));
    return static_signal_ranges(model, flow, u, inflation);
}

} // namespace tp::analysis
