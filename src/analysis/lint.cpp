#include "analysis/lint.hpp"

#include <array>
#include <map>
#include <sstream>
#include <utility>

namespace tp::analysis {

std::string_view name_of(LintKind kind) noexcept {
    switch (kind) {
    case LintKind::RedundantCast: return "redundant-cast";
    case LintKind::DoubleRounding: return "double-rounding";
    case LintKind::InfeasibleAccumulation: return "infeasible-accumulation";
    case LintKind::SubnormalRange: return "subnormal-range";
    case LintKind::DeadCast: return "dead-cast";
    }
    return "unknown";
}

std::string format_name(FpFormat fmt) {
    std::ostringstream os;
    os << 'e' << static_cast<int>(fmt.exp_bits) << 'm'
       << static_cast<int>(fmt.mant_bits);
    FormatKind kind{};
    if (kind_of(fmt, kind)) os << " (" << name_of(kind) << ')';
    else if (fmt == kBinary64) os << " (binary64)";
    return std::move(os).str();
}

std::size_t LintReport::count(LintKind kind) const noexcept {
    std::size_t n = 0;
    for (const LintDiagnostic& d : diagnostics) {
        if (d.kind == kind) ++n;
    }
    return n;
}

std::string LintReport::to_string() const {
    std::ostringstream os;
    for (const LintDiagnostic& d : diagnostics) {
        os << name_of(d.kind) << ": " << d.message << '\n';
    }
    return std::move(os).str();
}

namespace {

/// Whether rounding A -> I -> F can differ from rounding A -> F directly.
/// Safe ("innocuous") double rounding requires prec(I) >= 2 * prec(F) + 2;
/// the hazard needs the intermediate to actually round (narrower than the
/// source) and the final step to round again.
bool double_rounds(FpFormat a, FpFormat i, FpFormat f) noexcept {
    return i.precision() < a.precision() && f.precision() < i.precision() &&
           i.precision() < 2 * f.precision() + 2;
}

bool is_value_cast(const sim::Instr& instr) noexcept {
    return instr.kind == sim::InstrKind::FpCast && instr.op != FpOp::FromInt &&
           instr.op != FpOp::ToInt && instr.has_cast_target();
}

} // namespace

LintReport lint_trace(const sim::TraceProgram& program) {
    LintReport report;
    // One diagnostic per distinct format pattern, with an occurrence count
    // — the same cast site re-executes every loop iteration.
    struct Folded {
        std::size_t diagnostic = 0;
        std::size_t occurrences = 0;
    };
    std::map<std::array<FpFormat, 3>, Folded> folded;
    const auto fold = [&](LintKind kind, std::int64_t index,
                          std::array<FpFormat, 3> key, std::string message) {
        auto [it, inserted] = folded.try_emplace(key);
        if (inserted) {
            it->second.diagnostic = report.diagnostics.size();
            report.diagnostics.push_back(
                LintDiagnostic{kind, index, -1, std::move(message)});
        }
        ++it->second.occurrences;
    };

    // Target format of each cast-produced value id, for chain detection.
    std::map<std::int32_t, std::pair<FpFormat, FpFormat>> cast_of;

    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        const sim::Instr& instr = program.instrs[i];
        if (!is_value_cast(instr)) continue;
        const std::int64_t index = static_cast<std::int64_t>(i);
        if (instr.fmt == instr.fmt2) {
            fold(LintKind::RedundantCast, index,
                 {instr.fmt, instr.fmt2, kNoFormat},
                 "cast converts " + format_name(instr.fmt) +
                     " to itself — drop it");
        }
        const auto prev = cast_of.find(instr.src1);
        if (prev != cast_of.end()) {
            const FpFormat a = prev->second.first;
            const FpFormat i_fmt = prev->second.second;
            const FpFormat f = instr.fmt2;
            if (double_rounds(a, i_fmt, f)) {
                fold(LintKind::DoubleRounding, index, {a, i_fmt, f},
                     "cast chain " + format_name(a) + " -> " +
                         format_name(i_fmt) + " -> " + format_name(f) +
                         " double-rounds (intermediate precision " +
                         std::to_string(i_fmt.precision()) + " < 2*" +
                         std::to_string(f.precision()) +
                         "+2); cast directly from the wide value");
            }
        }
        if (instr.dst >= 0) cast_of[instr.dst] = {instr.fmt, instr.fmt2};
    }

    for (const auto& [key, entry] : folded) {
        if (entry.occurrences > 1) {
            report.diagnostics[entry.diagnostic].message +=
                " [" + std::to_string(entry.occurrences) + " occurrences]";
        }
    }
    return report;
}

} // namespace tp::analysis
