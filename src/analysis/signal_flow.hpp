// Signal-flow construction — pass 1 of the static precision-dataflow
// analysis (src/analysis/).
//
// The tuner controls formats per SIGNAL (a program variable group,
// apps/signal_table.hpp), but the trace layer records dataflow per VALUE.
// This pass closes the gap without touching any kernel: the app is run
// once per input set in the tracing context's binary64 shadow mode
// (sim/context.hpp) under a TAGGING config that assigns every signal a
// unique format. Values are computed in plain binary64 — so control flow
// follows the golden reference execution exactly — while the recorded
// formats become pure dataflow tags: the format of a value identifies the
// signal whose binding produced it. Folding the tagged SSA trace over its
// ids yields the signal-level dependency DAG the later passes (range /
// error propagation, lint) operate on.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app.hpp"
#include "sim/trace.hpp"

namespace tp::analysis {

/// value_signal entry for ids whose creation format is no signal's tag
/// (never produced by tagging_config captures; seen when aligning foreign
/// traces).
inline constexpr std::int32_t kUnknownSignal = -1;

/// The tagging config of a shadow capture: signal `s` is bound to the
/// near-binary64 format {11, 52 - s}. Unique per signal (the inverse is
/// signal_of_tag), and wide enough that app-level input staging —
/// kernels may quantize() inputs to a config format before set_raw —
/// perturbs the shadow values only at the ~2^-45 level. Throws
/// std::invalid_argument beyond 51 signals (the mantissa field bottoms
/// out).
[[nodiscard]] apps::TypeConfig tagging_config(std::size_t signal_count);

/// Inverse of tagging_config: the signal a tag format denotes, or
/// kUnknownSignal for formats outside the tag family.
[[nodiscard]] std::int32_t signal_of_tag(FpFormat fmt,
                                         std::size_t signal_count) noexcept;

/// Distinct-format probe config for enclosure checks: signal `s` gets
/// {8, 23 - s}. Like the tagging config every format is unique, so the
/// kernels emit casts at exactly the same sites and the instruction
/// stream aligns positionally with a shadow capture's (align_value_signals
/// — a UNIFORM config elides every cast and can never align); unlike it
/// the formats are real, so a record run under it observes genuinely
/// rounded dynamic ranges. Throws std::invalid_argument beyond 22 signals.
[[nodiscard]] apps::TypeConfig staircase_config(std::size_t signal_count);

/// One shadow reference execution: the recorded program (values + output
/// taps filled) and the run's output — equal to the app's golden output
/// up to the input-staging perturbation above.
struct CapturedTrace {
    sim::TraceProgram program;
    std::vector<double> output;
    unsigned input_set = 0;
    std::size_t signal_count = 0;
};

/// prepare(input_set) + one shadow run under the tagging config.
[[nodiscard]] CapturedTrace capture_trace(apps::App& app, unsigned input_set);

/// The signal-level dependency DAG folded out of a tagged capture.
struct SignalFlowGraph {
    std::size_t signal_count = 0;
    /// Producing signal per value id (dense, = tag of the creation format).
    std::vector<std::int32_t> value_signal;
    /// depends_on[consumer][producer]: some instruction producing into
    /// `consumer` reads a value of `producer`.
    std::vector<std::vector<char>> depends_on;
    /// FpArith instructions producing into each signal.
    std::vector<std::size_t> ops_in_signal;
    /// Longest same-signal Add/Sub/Fma chain observed per signal
    /// (accumulations; memory round-trips extend a chain via the stream's
    /// longest stored chain).
    std::vector<int> max_accumulation_chain;
};

[[nodiscard]] SignalFlowGraph build_signal_flow(const sim::TraceProgram& program,
                                                std::size_t signal_count);

/// Transfers the capture's per-value signal map onto `observed` — a
/// record_values run of the SAME app and input set under an arbitrary
/// (real) config, whose formats cannot identify signals. Value ids are
/// assigned in creation order, so when the two instruction streams agree
/// structurally (length, kinds, ops, value ids) the map carries over
/// id-for-id. Returns empty when control flow diverged from the shadow
/// reference (rounded compares took a different branch).
[[nodiscard]] std::vector<std::int32_t> align_value_signals(
    const sim::TraceProgram& observed, const SignalFlowGraph& flow,
    const sim::TraceProgram& reference);

/// Per-stream producing signal, read off a tagged capture's Load/Store
/// element formats: entry per stream id, kUnknownSignal where the stream
/// never moved tagged data. make_array order is unconditional in the
/// kernels, so stream ids — and this map — transfer to any other run of
/// the same app and input set, even when value-level alignment fails
/// (rounded compares flipping a data-dependent branch).
[[nodiscard]] std::vector<std::int32_t> stream_signals(
    const sim::TraceProgram& reference, std::size_t signal_count);

} // namespace tp::analysis
