#include "analysis/signal_flow.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace tp::analysis {

apps::TypeConfig tagging_config(std::size_t signal_count) {
    if (signal_count > 51) {
        throw std::invalid_argument(
            "tagging_config: more than 51 signals cannot be tagged (the "
            "mantissa field of the {11, 52-s} tag family bottoms out)");
    }
    apps::TypeConfig config{signal_count};
    for (std::size_t s = 0; s < signal_count; ++s) {
        config.set(static_cast<apps::SignalId>(s),
                   FpFormat{11, static_cast<std::uint8_t>(52 - s)});
    }
    return config;
}

std::int32_t signal_of_tag(FpFormat fmt, std::size_t signal_count) noexcept {
    if (fmt.exp_bits != 11 || fmt.mant_bits > 52) return kUnknownSignal;
    const std::int32_t s = 52 - static_cast<std::int32_t>(fmt.mant_bits);
    return static_cast<std::size_t>(s) < signal_count ? s : kUnknownSignal;
}

apps::TypeConfig staircase_config(std::size_t signal_count) {
    if (signal_count > 22) {
        throw std::invalid_argument(
            "staircase_config: more than 22 signals cannot stay pairwise "
            "distinct (the mantissa field of the {8, 23-s} family bottoms "
            "out)");
    }
    apps::TypeConfig config{signal_count};
    for (std::size_t s = 0; s < signal_count; ++s) {
        config.set(static_cast<apps::SignalId>(s),
                   FpFormat{8, static_cast<std::uint8_t>(23 - s)});
    }
    return config;
}

CapturedTrace capture_trace(apps::App& app, unsigned input_set) {
    app.prepare(input_set);
    sim::TpContext ctx{sim::TpContext::Config{.trace = true,
                                              .force_emulated = false,
                                              .record_values = true,
                                              .binary64_shadow = true}};
    CapturedTrace capture;
    capture.input_set = input_set;
    capture.signal_count = app.signal_table().size();
    capture.output = app.run(ctx, tagging_config(capture.signal_count));
    capture.program = ctx.take_program(false);
    return capture;
}

SignalFlowGraph build_signal_flow(const sim::TraceProgram& program,
                                  std::size_t signal_count) {
    SignalFlowGraph flow;
    flow.signal_count = signal_count;
    flow.value_signal.assign(program.value_count, kUnknownSignal);
    for (std::size_t id = 0; id < program.values.size(); ++id) {
        flow.value_signal[id] = signal_of_tag(program.values[id].fmt, signal_count);
    }
    flow.depends_on.assign(signal_count, std::vector<char>(signal_count, 0));
    flow.ops_in_signal.assign(signal_count, 0);
    flow.max_accumulation_chain.assign(signal_count, 0);

    // Accumulation-chain depth per value id: how many same-signal Add/Sub/Fma
    // roundings stack between a leaf and this value. Loads continue the
    // longest chain ever stored into their stream (a memory round-trip does
    // not reset error growth).
    std::vector<int> chain(program.value_count, 0);
    std::unordered_map<std::uint32_t, int> stream_chain;

    const auto signal_of = [&](std::int32_t id) -> std::int32_t {
        return id >= 0 && static_cast<std::size_t>(id) < flow.value_signal.size()
                   ? flow.value_signal[id]
                   : kUnknownSignal;
    };
    const auto note_edge = [&](std::int32_t consumer, std::int32_t src) {
        const std::int32_t producer = signal_of(src);
        if (consumer >= 0 && producer >= 0) {
            flow.depends_on[static_cast<std::size_t>(consumer)]
                           [static_cast<std::size_t>(producer)] = 1;
        }
    };
    const auto chain_of = [&](std::int32_t id) {
        return id >= 0 ? chain[static_cast<std::size_t>(id)] : 0;
    };

    for (const sim::Instr& instr : program.instrs) {
        const std::int32_t dst_signal = signal_of(instr.dst);
        switch (instr.kind) {
        case sim::InstrKind::FpArith: {
            note_edge(dst_signal, instr.src1);
            note_edge(dst_signal, instr.src2);
            note_edge(dst_signal, instr.src3);
            if (instr.dst < 0) break; // compares produce no value
            if (dst_signal >= 0) {
                ++flow.ops_in_signal[static_cast<std::size_t>(dst_signal)];
            }
            const bool accumulating = instr.op == FpOp::Add ||
                                      instr.op == FpOp::Sub ||
                                      instr.op == FpOp::Fma;
            int depth = std::max(std::max(chain_of(instr.src1), chain_of(instr.src2)),
                                 chain_of(instr.src3));
            if (accumulating) {
                depth += 1;
                if (dst_signal >= 0) {
                    auto& best = flow.max_accumulation_chain[static_cast<std::size_t>(dst_signal)];
                    best = std::max(best, depth);
                }
            }
            chain[static_cast<std::size_t>(instr.dst)] = depth;
            break;
        }
        case sim::InstrKind::FpCast:
            note_edge(dst_signal, instr.src1);
            if (instr.dst >= 0) {
                chain[static_cast<std::size_t>(instr.dst)] = chain_of(instr.src1);
            }
            break;
        case sim::InstrKind::Load:
            if (instr.dst >= 0) {
                const auto it = stream_chain.find(instr.stream);
                chain[static_cast<std::size_t>(instr.dst)] =
                    it != stream_chain.end() ? it->second : 0;
            }
            break;
        case sim::InstrKind::Store: {
            const std::int32_t src_signal = signal_of(instr.src1);
            // The array's element format is itself a signal binding: a store
            // into a differently-tagged stream is a dependency edge too.
            const std::int32_t stream_signal =
                signal_of_tag(instr.fmt, signal_count);
            if (stream_signal >= 0 && src_signal >= 0) {
                flow.depends_on[static_cast<std::size_t>(stream_signal)]
                               [static_cast<std::size_t>(src_signal)] = 1;
            }
            auto& best = stream_chain[instr.stream];
            best = std::max(best, chain_of(instr.src1));
            break;
        }
        default:
            break;
        }
    }
    return flow;
}

std::vector<std::int32_t> align_value_signals(const sim::TraceProgram& observed,
                                              const SignalFlowGraph& flow,
                                              const sim::TraceProgram& reference) {
    if (observed.instrs.size() != reference.instrs.size() ||
        observed.value_count != reference.value_count) {
        return {};
    }
    for (std::size_t i = 0; i < observed.instrs.size(); ++i) {
        const sim::Instr& a = observed.instrs[i];
        const sim::Instr& b = reference.instrs[i];
        if (a.kind != b.kind || a.op != b.op || a.dst != b.dst ||
            a.src1 != b.src1 || a.src2 != b.src2 || a.src3 != b.src3 ||
            a.stream != b.stream) {
            return {};
        }
    }
    return flow.value_signal;
}

std::vector<std::int32_t> stream_signals(const sim::TraceProgram& reference,
                                         std::size_t signal_count) {
    std::uint32_t max_stream = 0;
    for (const sim::Instr& instr : reference.instrs) {
        if (instr.kind == sim::InstrKind::Load ||
            instr.kind == sim::InstrKind::Store) {
            max_stream = std::max(max_stream, instr.stream + 1);
        }
    }
    std::vector<std::int32_t> map(max_stream, kUnknownSignal);
    for (const sim::Instr& instr : reference.instrs) {
        if (instr.kind != sim::InstrKind::Load &&
            instr.kind != sim::InstrKind::Store) {
            continue;
        }
        const std::int32_t sig = signal_of_tag(instr.fmt, signal_count);
        if (sig >= 0) map[instr.stream] = sig;
    }
    return map;
}

} // namespace tp::analysis
