#include "analysis/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "types/encoding.hpp"

namespace tp::analysis {

namespace {

/// Per-stream error state for memory round-trips: the elementwise maximum
/// (abs) and running mean (var) of the coefficient rows ever stored into
/// the stream. Loads do not record the element index, so the state is a
/// stream-wide summary: max is sound for the worst-case rows; the mean is
/// the right summary for variance rows, whose tapped sums concentrate at
/// the average element.
struct StreamState {
    std::vector<double> abs_max;
    std::vector<double> var_sum;
    std::size_t stores = 0;
};

/// A weight with a singularity (division by zero, sqrt at zero) degrades
/// to 0 — underestimating error keeps the derived bounds on the sound
/// side; such operands do not occur in golden-clean executions anyway.
double finite_or_zero(double w) noexcept { return std::isfinite(w) ? w : 0.0; }

} // namespace

ErrorModel build_error_model(const sim::TraceProgram& program,
                             const SignalFlowGraph& flow) {
    ErrorModel model;
    const std::size_t S = flow.signal_count;
    const std::size_t V = program.value_count;
    model.signal_count = S;
    model.value_count = V;
    model.abs_coeff.assign(V * S, 0.0);
    model.var_coeff.assign(V * S, 0.0);
    model.values.assign(V, 0.0);
    model.observed.assign(S, SignalObservation{});

    for (std::size_t id = 0; id < program.values.size() && id < V; ++id) {
        const double v = program.values[id].value;
        model.values[id] = v;
        const std::int32_t sig = flow.value_signal[id];
        if (sig < 0 || !std::isfinite(v)) continue;
        SignalObservation& obs = model.observed[static_cast<std::size_t>(sig)];
        if (obs.count == 0) {
            obs.min_value = obs.max_value = v;
        } else {
            obs.min_value = std::min(obs.min_value, v);
            obs.max_value = std::max(obs.max_value, v);
        }
        obs.max_abs = std::max(obs.max_abs, std::fabs(v));
        if (v != 0.0) {
            obs.min_abs_nonzero = obs.min_abs_nonzero == 0.0
                                      ? std::fabs(v)
                                      : std::min(obs.min_abs_nonzero, std::fabs(v));
        }
        ++obs.count;
    }

    double* const abs = model.abs_coeff.data();
    double* const var = model.var_coeff.data();
    const auto abs_row = [&](std::int32_t id) { return abs + static_cast<std::size_t>(id) * S; };
    const auto var_row = [&](std::int32_t id) { return var + static_cast<std::size_t>(id) * S; };

    // delta_r = w * delta_src, accumulated into the dst rows.
    const auto accumulate = [&](std::int32_t dst, std::int32_t src, double w) {
        if (src < 0 || w == 0.0) return;
        w = finite_or_zero(w);
        const double aw = std::fabs(w);
        const double vw = w * w;
        double* da = abs_row(dst);
        double* dv = var_row(dst);
        const double* sa = abs_row(src);
        const double* sv = var_row(src);
        for (std::size_t s = 0; s < S; ++s) {
            da[s] += aw * sa[s];
            dv[s] += vw * sv[s];
        }
    };
    // One rounding of result magnitude `r` into signal `sig`: worst case
    // |r| * u_sig, variance r^2 u_sig^2 / 3 (uniform in +-|r| u_sig).
    const auto add_rounding = [&](std::int32_t dst, std::int32_t sig, double r) {
        if (sig < 0 || !std::isfinite(r) || r == 0.0) return;
        abs_row(dst)[static_cast<std::size_t>(sig)] += std::fabs(r);
        var_row(dst)[static_cast<std::size_t>(sig)] += r * r / 3.0;
    };
    const auto value_of = [&](std::int32_t id) {
        return id >= 0 ? model.values[static_cast<std::size_t>(id)] : 0.0;
    };

    // Leaves: ids no instruction defines are register constants. A real run
    // rounds the constant into its signal's format once — unless the value
    // is exact already at the precision floor (0, +-1, powers of two, ...),
    // in which case it is exact at every tuning format that can range it.
    std::vector<char> defined(V, 0);
    for (const sim::Instr& instr : program.instrs) {
        if (instr.dst >= 0) defined[static_cast<std::size_t>(instr.dst)] = 1;
    }
    for (std::size_t id = 0; id < V; ++id) {
        if (defined[id]) continue;
        const std::int32_t sig = flow.value_signal[id];
        const double v = model.values[id];
        if (v == quantize(v, FpFormat{11, 1})) continue;
        add_rounding(static_cast<std::int32_t>(id), sig, v);
    }

    std::unordered_map<std::uint32_t, StreamState> streams;

    for (const sim::Instr& instr : program.instrs) {
        const std::int32_t dst = instr.dst;
        switch (instr.kind) {
        case sim::InstrKind::FpArith: {
            if (dst < 0) break; // compares carry no error forward
            const std::int32_t sig = flow.value_signal[static_cast<std::size_t>(dst)];
            const double a = value_of(instr.src1);
            const double b = value_of(instr.src2);
            const double r = value_of(dst);
            switch (instr.op) {
            case FpOp::Add:
            case FpOp::Sub:
                accumulate(dst, instr.src1, 1.0);
                accumulate(dst, instr.src2, instr.op == FpOp::Add ? 1.0 : -1.0);
                add_rounding(dst, sig, r);
                break;
            case FpOp::Mul:
                accumulate(dst, instr.src1, b);
                accumulate(dst, instr.src2, a);
                add_rounding(dst, sig, r);
                break;
            case FpOp::Div:
                accumulate(dst, instr.src1, b != 0.0 ? 1.0 / b : 0.0);
                accumulate(dst, instr.src2, b != 0.0 ? -r / b : 0.0);
                add_rounding(dst, sig, r);
                break;
            case FpOp::Sqrt:
                accumulate(dst, instr.src1, a > 0.0 ? 0.5 / std::sqrt(a) : 0.0);
                add_rounding(dst, sig, r);
                break;
            case FpOp::Fma:
                accumulate(dst, instr.src1, b);
                accumulate(dst, instr.src2, a);
                accumulate(dst, instr.src3, 1.0);
                add_rounding(dst, sig, r); // fused: a single rounding
                break;
            case FpOp::Neg:
            case FpOp::Abs:
                accumulate(dst, instr.src1, instr.op == FpOp::Neg ? -1.0 : 1.0);
                break; // sign ops are exact in any format
            default:
                break;
            }
            break;
        }
        case sim::InstrKind::FpCast: {
            if (dst < 0) break;
            const std::int32_t sig = flow.value_signal[static_cast<std::size_t>(dst)];
            accumulate(dst, instr.src1, 1.0); // FromInt has no FP source
            add_rounding(dst, sig, value_of(dst));
            break;
        }
        case sim::InstrKind::Load: {
            if (dst < 0) break;
            const std::int32_t sig = flow.value_signal[static_cast<std::size_t>(dst)];
            const auto it = streams.find(instr.stream);
            if (it != streams.end() && it->second.stores > 0) {
                const StreamState& st = it->second;
                double* da = abs_row(dst);
                double* dv = var_row(dst);
                const double inv = 1.0 / static_cast<double>(st.stores);
                for (std::size_t s = 0; s < S; ++s) {
                    da[s] += st.abs_max[s];
                    dv[s] += st.var_sum[s] * inv;
                }
            }
            // Storage quantization of the element format (exact for values
            // that were store()d — their last rounding is already in the
            // row — so this term mildly overestimates on written streams;
            // it is the real input-quantization term for set_raw inputs).
            add_rounding(dst, sig, value_of(dst));
            break;
        }
        case sim::InstrKind::Store: {
            if (instr.src1 < 0) break;
            StreamState& st = streams[instr.stream];
            if (st.abs_max.empty()) {
                st.abs_max.assign(S, 0.0);
                st.var_sum.assign(S, 0.0);
            }
            const double* sa = abs_row(instr.src1);
            const double* sv = var_row(instr.src1);
            for (std::size_t s = 0; s < S; ++s) {
                st.abs_max[s] = std::max(st.abs_max[s], sa[s]);
                st.var_sum[s] += sv[s];
            }
            ++st.stores;
            break;
        }
        default:
            break;
        }
    }
    return model;
}

} // namespace tp::analysis
