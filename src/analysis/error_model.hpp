// First-order rounding-error propagation over a shadow capture — the core
// of pass 2 of the static precision-dataflow analysis.
//
// Every value id of the captured binary64 reference execution gets two
// coefficient rows, one entry per signal s:
//
//   abs_coeff[id][s] — worst-case first-order sensitivity: |value(id) -
//     value'(id)| <= sum_s abs_coeff[id][s] * u_s when every rounding into
//     signal s perturbs relatively by at most u_s = 2^-precision(s).
//   var_coeff[id][s] — the same propagation with variances: each rounding
//     into s is modelled as an independent zero-mean perturbation uniform
//     in [-r*u_s, +r*u_s] (variance r^2 u_s^2 / 3 at result magnitude r),
//     and coefficients add in quadrature through the linearized dataflow.
//
// The variance rows are what the bound derivation (derive_bounds.cpp)
// inverts: the tuner's quality metric is a relative RMS, and the RMS of
// many independent roundings concentrates at the quadrature sum, not the
// worst case — the abs rows serve the (deliberately inflated) static range
// enclosures of range_analysis.cpp instead.
//
// Propagation is linear in the trace: one pass, O(signal_count) per
// instruction, using the recorded binary64 values as the linearization
// point. Memory round-trips keep per-stream running state (elementwise max
// for abs, running mean for var) so array-resident error re-enters through
// loads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/signal_flow.hpp"
#include "sim/trace.hpp"

namespace tp::analysis {

/// Concrete per-signal value statistics of the shadow reference execution
/// (the dynamic ranges the exponent-width floors come from).
struct SignalObservation {
    double min_value = 0.0;
    double max_value = 0.0;
    double max_abs = 0.0;
    double min_abs_nonzero = 0.0; // 0 when the signal only held zeros
    std::size_t count = 0;
};

class ErrorModel {
public:
    std::size_t signal_count = 0;
    std::size_t value_count = 0;
    /// Flat [value_count x signal_count] coefficient matrices (see header
    /// comment); rows of non-FP ids stay zero.
    std::vector<double> abs_coeff;
    std::vector<double> var_coeff;
    /// The recorded binary64 value per id (copied out of the capture so
    /// range analysis needs no second look at the program).
    std::vector<double> values;
    std::vector<SignalObservation> observed;

    [[nodiscard]] std::span<const double> abs_row(std::int32_t id) const noexcept {
        return {abs_coeff.data() + static_cast<std::size_t>(id) * signal_count,
                signal_count};
    }
    [[nodiscard]] std::span<const double> var_row(std::int32_t id) const noexcept {
        return {var_coeff.data() + static_cast<std::size_t>(id) * signal_count,
                signal_count};
    }
};

/// One propagation pass over the capture. `program` must carry value
/// records (record_values capture); `flow` must be built from it.
[[nodiscard]] ErrorModel build_error_model(const sim::TraceProgram& program,
                                           const SignalFlowGraph& flow);

} // namespace tp::analysis
