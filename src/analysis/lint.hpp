// Precision lint — pass 3 of the static precision-dataflow analysis.
//
// Instruction-level checks (lint_trace) inspect the concrete formats of any
// recorded trace: casts that convert a value to the format it already has,
// and cast chains that double-round — a wide value squeezed through an
// intermediate format narrow enough that the two roundings can differ from
// the single direct rounding (the innocuous-double-rounding criterion,
// prec_mid >= 2 * prec_final + 2, violated).
//
// Signal-level checks ride on the full analysis (derive_bounds.cpp feeds
// them): accumulation chains whose error growth makes the requested
// epsilon statically infeasible at the precision floor, signals whose
// entire dynamic range sits below the normal range of the narrow-exponent
// formats (they would be forced subnormal or flushed), and structural
// double-rounding hazards between signal bindings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace tp::analysis {

enum class LintKind : std::uint8_t {
    /// FpCast whose source and target formats are identical.
    RedundantCast,
    /// Cast-of-cast through an intermediate format that double-rounds.
    DoubleRounding,
    /// Accumulation chain that cannot meet epsilon at kMinPrecisionBits.
    InfeasibleAccumulation,
    /// Signal whose whole value range is subnormal in narrow-exponent
    /// formats.
    SubnormalRange,
    /// Cast site whose source and destination signals are forced to the
    /// same member format by the derived bounds — the cast elides under
    /// every reachable binding and the code can drop it outright.
    DeadCast,
};

[[nodiscard]] std::string_view name_of(LintKind kind) noexcept;

struct LintDiagnostic {
    LintKind kind = LintKind::RedundantCast;
    /// Index into TraceProgram::instrs for instruction-level diagnostics,
    /// -1 for signal-level ones.
    std::int64_t instr_index = -1;
    /// Offending signal for signal-level diagnostics, -1 otherwise.
    std::int32_t signal = -1;
    std::string message;
};

struct LintReport {
    std::vector<LintDiagnostic> diagnostics;

    [[nodiscard]] std::size_t count(LintKind kind) const noexcept;
    [[nodiscard]] bool empty() const noexcept { return diagnostics.empty(); }
    /// One line per diagnostic, "kind: message" — demo / log friendly.
    [[nodiscard]] std::string to_string() const;
};

/// Instruction-level lint over a recorded trace's concrete formats.
/// Duplicate findings (the same cast site re-executed each loop iteration)
/// are folded into one diagnostic with an occurrence count.
[[nodiscard]] LintReport lint_trace(const sim::TraceProgram& program);

/// "e<exp>m<mant>" with the paper's name appended when the format is one
/// of the named four (diagnostic texts).
[[nodiscard]] std::string format_name(FpFormat fmt);

} // namespace tp::analysis
