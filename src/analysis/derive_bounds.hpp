// Entry points of the static precision-dataflow analysis: sound per-signal
// precision bounds derived before any tuning trial runs.
//
// For each requested input set the analysis captures one binary64 shadow
// reference execution (signal_flow.hpp), propagates first-order rounding
// error through it (error_model.hpp), and inverts the model at the output
// taps for the requested epsilon. Each signal's per-set bound combines
//
//   * a RIGOROUS representability floor — output elements stored in the
//     signal's arrays can never be closer to the golden values than the
//     trial format's nearest representable, whatever every other signal
//     does — with
//   * a CALIBRATED model bound — the precision where the propagated
//     variance estimate alone exceeds the quality budget. The raw
//     first-order estimate can over-shoot by orders of magnitude on
//     feedback recursions (an IIR state loop compounds partials
//     multiplicatively over the whole sample stream), so before use it is
//     pinned to reality: one rounded probe execution per input set (the
//     staircase config) measures the model's over-prediction factor at a
//     real operating point, every coefficient is deflated by that factor,
//     and DeriveOptions::margin_bits absorbs the residual non-linearity.
//     Deflation only ever loosens the bound.
//
// The final lower bound is the MINIMUM over input sets. That direction is
// what keeps the bound invisible to the search result: the greedy phase
// probes each input set separately, so a bound must stay at or below
// EVERY set's per-signal minimum for the clamped bisections to land on
// exactly the precisions the unbounded search finds. The soundness
// contract is therefore: loose is allowed, excluding the true minimum is
// not — derive_warm_start prunes trials (EvalStats::
// trials_skipped_by_bounds), it never changes tuned signals.
#pragma once

#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/range_analysis.hpp"
#include "analysis/signal_flow.hpp"
#include "apps/app.hpp"
#include "tuning/search.hpp"
#include "types/type_system.hpp"

namespace tp::analysis {

struct DeriveOptions {
    /// Input sets to capture; the bound is the minimum over them. Use the
    /// sets the search will run on (SearchOptions::input_sets).
    std::vector<unsigned> input_sets{0, 1, 2};
    /// Type system whose trial formats the representability floors are
    /// computed against; match the search's.
    TypeSystem type_system{TypeSystemKind::V2};
    /// Bits subtracted from the model bound (never from the rigorous
    /// floor) to absorb the first-order propagation's estimation error.
    int margin_bits = 2;
    /// Range-enclosure inflation (see static_signal_ranges).
    double range_inflation = 4.0;
};

/// The analysis verdict for one signal.
struct SignalBound {
    std::string name;
    /// Sound lower bound on the tuned precision (kMin..kMax): what
    /// derive_warm_start hands the search.
    int lower_bits = kMinPrecisionBits;
    /// The rigorous representability component alone.
    int representability_floor = kMinPrecisionBits;
    /// The margin-deflated model component alone.
    int model_bits = kMinPrecisionBits;
    /// Propagated relative error coefficient (worst set): estimated
    /// rel-RMS at precision p is error_coefficient * 2^-p.
    double error_coefficient = 0.0;
    /// Narrowest exponent width representing the signal's static range.
    int exp_floor_bits = 1;
};

struct AppAnalysis {
    std::string app;
    double epsilon = 0.0;
    std::vector<SignalBound> signals; // SignalId order
    /// Signal DAG of the first captured input set.
    SignalFlowGraph flow;
    /// Static range enclosures, hulled over the captured input sets.
    std::vector<StaticRange> ranges;
    /// Instruction-level + signal-level diagnostics.
    LintReport lint;

    /// Human-readable table (one line per signal) plus the lint report.
    [[nodiscard]] std::string to_string() const;
};

/// The full three-pass analysis. Costs |input_sets| shadow executions
/// plus |input_sets| rounded calibration probes and no tuning trials;
/// `app`'s prepared workload is clobbered.
[[nodiscard]] AppAnalysis analyze(apps::App& app, double epsilon,
                                  const DeriveOptions& options = {});

/// The analysis folded into a search warm start: neutral seeds (the
/// search's usual kMaxPrecisionBits start), the derived lower bounds, no
/// upper bounds. Plug into SearchOptions::warm_start — or let
/// SearchOptions::static_bounds do it — to prune probe bisections on a
/// cold, never-tuned app.
[[nodiscard]] tuning::WarmStart derive_warm_start(
    apps::App& app, double epsilon, const std::vector<unsigned>& input_sets,
    TypeSystem type_system = TypeSystem{TypeSystemKind::V2});

} // namespace tp::analysis
