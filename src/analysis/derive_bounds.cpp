#include "analysis/derive_bounds.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <span>
#include <sstream>
#include <utility>

#include "analysis/error_model.hpp"
#include "analysis/region_impact.hpp"
#include "sim/context.hpp"
#include "tuning/quality.hpp"
#include "types/encoding.hpp"

namespace tp::analysis {

namespace {

double l2_norm(const std::vector<double>& xs) noexcept {
    double sum = 0.0;
    for (const double x : xs) sum += x * x;
    return std::sqrt(sum);
}

/// Distance from `g` to its nearest representable in `fmt` — the floor on
/// any run's deviation at an output element stored in `fmt`, whatever
/// formats every other signal carries.
double representability_distance(double g, FpFormat fmt) noexcept {
    const double q = quantize(g, fmt);
    if (std::isfinite(q)) return std::fabs(q - g);
    return std::max(0.0, std::fabs(g) - max_finite(fmt));
}

int clamp_bits(int p) noexcept {
    return std::clamp(p, kMinPrecisionBits, kMaxPrecisionBits);
}

void merge_observation(SignalObservation& into, const SignalObservation& from) {
    if (from.count == 0) return;
    if (into.count == 0) {
        into = from;
        return;
    }
    into.min_value = std::min(into.min_value, from.min_value);
    into.max_value = std::max(into.max_value, from.max_value);
    into.max_abs = std::max(into.max_abs, from.max_abs);
    if (from.min_abs_nonzero != 0.0) {
        into.min_abs_nonzero = into.min_abs_nonzero == 0.0
                                   ? from.min_abs_nonzero
                                   : std::min(into.min_abs_nonzero,
                                              from.min_abs_nonzero);
    }
    into.count += from.count;
}

void merge_range(StaticRange& into, const StaticRange& from) {
    if (!from.populated) return;
    if (!into.populated) {
        into = from;
        return;
    }
    into.lo = std::min(into.lo, from.lo);
    into.hi = std::max(into.hi, from.hi);
    into.max_abs = std::max(into.max_abs, from.max_abs);
    into.exp_floor_bits = std::max(into.exp_floor_bits, from.exp_floor_bits);
}

} // namespace

std::string AppAnalysis::to_string() const {
    std::ostringstream os;
    os << app << " @ epsilon " << epsilon << ": sound per-signal bounds\n";
    for (const SignalBound& sb : signals) {
        os << "  " << sb.name << ": >= " << sb.lower_bits << " bits (floor "
           << sb.representability_floor << ", model " << sb.model_bits
           << ", coeff " << sb.error_coefficient << ", exp >= "
           << sb.exp_floor_bits << ")\n";
    }
    if (!lint.empty()) os << lint.to_string();
    return std::move(os).str();
}

AppAnalysis analyze(apps::App& app, double epsilon,
                    const DeriveOptions& options) {
    const std::size_t S = app.signal_table().size();
    AppAnalysis result;
    result.app = std::string(app.name());
    result.epsilon = epsilon;
    result.signals.assign(S, SignalBound{});
    result.ranges.assign(S, StaticRange{});
    for (std::size_t s = 0; s < S; ++s) {
        result.signals[s].name =
            app.signal_table().name(static_cast<apps::SignalId>(s));
    }

    const double quality_budget = std::sqrt(epsilon);
    constexpr int kUnset = kMaxPrecisionBits + 1;
    std::vector<int> best_bound(S, kUnset);
    std::vector<int> best_floor(S, kUnset);
    std::vector<int> best_model(S, kUnset);
    std::vector<double> worst_coeff(S, 0.0);
    std::vector<SignalObservation> merged_obs(S);
    std::set<std::array<std::int32_t, 3>> cast_chains;
    std::vector<CastSite> cast_sites;
    bool first = true;

    for (const unsigned set : options.input_sets) {
        const CapturedTrace capture = capture_trace(app, set);
        const SignalFlowGraph flow = build_signal_flow(capture.program, S);
        const ErrorModel model = build_error_model(capture.program, flow);
        const std::vector<double> golden = app.golden(set);
        const double den = l2_norm(golden);

        for (std::size_t s = 0; s < S; ++s) {
            merge_observation(merged_obs[s], model.observed[s]);
        }
        {
            std::vector<StaticRange> ranges = static_signal_ranges_at_uniform(
                model, flow, kMaxPrecisionBits, options.range_inflation);
            for (std::size_t s = 0; s < S; ++s) {
                merge_range(result.ranges[s], ranges[s]);
            }
        }

        // Map each tap to its golden output element. Every raw() read lands
        // in the program output in call order (all kernels build their
        // output exclusively from raw() reads, possibly interleaved with
        // untapped register readouts), so a forward scan over the shadow
        // output — which the taps match bit-for-bit, being the very values
        // read — recovers each tap's output index.
        std::vector<std::vector<double>> tapped_golden(S);
        std::vector<double> var_total(S, 0.0);
        std::size_t k = 0;
        for (const sim::OutputTap& tap : capture.program.output_taps) {
            double g = tap.value;
            while (k < capture.output.size() && capture.output[k] != tap.value) {
                ++k;
            }
            if (k < capture.output.size() && k < golden.size()) {
                g = golden[k];
                ++k;
            }
            const std::int32_t sig = signal_of_tag(tap.fmt, S);
            if (sig >= 0) {
                tapped_golden[static_cast<std::size_t>(sig)].push_back(g);
            }
            if (tap.value_id >= 0) {
                const std::span<const double> row = model.var_row(tap.value_id);
                for (std::size_t s = 0; s < S; ++s) var_total[s] += row[s];
            } else if (sig >= 0) {
                // set_raw-only element: its only error is the storage
                // quantization in the array's own signal format.
                var_total[static_cast<std::size_t>(sig)] +=
                    tap.value * tap.value / 3.0;
            }
        }

        // Calibrate the variance model against one real rounded execution.
        // First-order propagation over-shoots grossly through feedback
        // recursions (IIR state loops compound partials over the whole
        // sample stream, inflating coefficients by orders of magnitude no
        // fixed margin can absorb). The staircase probe measures the
        // model's prediction at a real operating point; dividing every
        // coefficient by the over-prediction factor pins the model to
        // observed behaviour. Deflation never raises a bound, so the
        // min-over-sets identity contract is untouched. When the probe is
        // unavailable (> 22 signals) or shows no error at all while the
        // model predicts some, the heuristic half is dropped entirely and
        // the rigorous floor stands alone.
        double deflate = 1.0;
        bool drop_model = false;
        if (S <= 22 && den > 0.0) {
            const apps::TypeConfig probe = staircase_config(S);
            app.prepare(set);
            sim::TpContext probe_ctx{sim::TpContext::Config{.trace = false}};
            const std::vector<double> probe_out = app.run(probe_ctx, probe);
            double pred2 = 0.0;
            for (std::size_t s = 0; s < S; ++s) {
                const double u = std::ldexp(
                    1.0,
                    -(static_cast<int>(
                          probe[static_cast<apps::SignalId>(s)].mant_bits) +
                      1));
                pred2 += var_total[s] * u * u;
            }
            const double predicted = std::sqrt(pred2) / den;
            const double actual = tuning::output_error(golden, probe_out);
            if (!std::isfinite(actual) || actual <= 0.0) {
                drop_model = predicted > 0.0;
            } else if (predicted > actual) {
                deflate = predicted / actual;
            }
        } else {
            drop_model = true;
        }

        for (std::size_t s = 0; s < S; ++s) {
            int floor_p = kMinPrecisionBits;
            if (den > 0.0 && !tapped_golden[s].empty()) {
                int p = kMinPrecisionBits;
                for (; p < kMaxPrecisionBits; ++p) {
                    const FpFormat fmt = options.type_system.trial_format(p);
                    double err2 = 0.0;
                    for (const double g : tapped_golden[s]) {
                        const double d = representability_distance(g, fmt);
                        err2 += d * d;
                    }
                    if (std::sqrt(err2) <= quality_budget * den) break;
                }
                floor_p = p; // 2..23 proven infeasible when p == kMax
            }

            const double coeff =
                den > 0.0 && !drop_model
                    ? std::sqrt(var_total[s]) / den / deflate
                    : 0.0;
            int model_p = kMinPrecisionBits;
            if (coeff > 0.0 && quality_budget > 0.0) {
                model_p = clamp_bits(
                    static_cast<int>(
                        std::ceil(std::log2(coeff / quality_budget))) -
                    options.margin_bits);
            }
            best_floor[s] = std::min(best_floor[s], floor_p);
            best_model[s] = std::min(best_model[s], model_p);
            best_bound[s] =
                std::min(best_bound[s], std::max(floor_p, model_p));
            worst_coeff[s] = std::max(worst_coeff[s], coeff);
        }

        if (first) {
            result.flow = flow;
            result.lint = lint_trace(capture.program);
            cast_sites = collect_cast_sites(capture.program, S);
            // Signal-level cast chains for the structural double-rounding
            // hazard: value crosses three signals through back-to-back
            // casts.
            std::vector<std::pair<std::int32_t, std::int32_t>> cast_sigs(
                capture.program.value_count, {-1, -1});
            for (const sim::Instr& instr : capture.program.instrs) {
                if (instr.kind != sim::InstrKind::FpCast ||
                    instr.op == FpOp::FromInt || instr.op == FpOp::ToInt ||
                    instr.dst < 0) {
                    continue;
                }
                const std::int32_t sa = signal_of_tag(instr.fmt, S);
                const std::int32_t si = signal_of_tag(instr.fmt2, S);
                if (instr.src1 >= 0) {
                    const auto [pa, pi] =
                        cast_sigs[static_cast<std::size_t>(instr.src1)];
                    if (pa >= 0 && pi >= 0 && si >= 0 && pa != pi &&
                        pi != si) {
                        cast_chains.insert({pa, pi, si});
                    }
                }
                cast_sigs[static_cast<std::size_t>(instr.dst)] = {sa, si};
            }
            first = false;
        }
    }

    for (std::size_t s = 0; s < S; ++s) {
        SignalBound& sb = result.signals[s];
        sb.lower_bits = best_bound[s] == kUnset ? kMinPrecisionBits
                                                : clamp_bits(best_bound[s]);
        sb.representability_floor =
            best_floor[s] == kUnset ? kMinPrecisionBits : best_floor[s];
        sb.model_bits =
            best_model[s] == kUnset ? kMinPrecisionBits : best_model[s];
        sb.error_coefficient = worst_coeff[s];
        sb.exp_floor_bits =
            result.ranges[s].populated ? result.ranges[s].exp_floor_bits : 1;
    }

    const auto& table = app.signal_table();

    // Dead-cast check, driven by the cast-site pass (region_impact.hpp):
    // a cast whose source and destination signals are each forced to one
    // and the same member format by the derived bounds elides under every
    // reachable binding — the simulator never materializes it, so the
    // source program can drop the conversion outright. "Reachable" is the
    // sound over-approximation {members with precision >= lower_bits and
    // exponent width >= exp_floor_bits}; a bound relaxation can only grow
    // the set, so the diagnostic never outlives the bounds it came from.
    constexpr std::array<FormatKind, 4> kMembers{
        FormatKind::Binary8, FormatKind::Binary16, FormatKind::Binary16Alt,
        FormatKind::Binary32};
    const auto reachable_members = [&](std::int32_t sig) {
        std::vector<FormatKind> members;
        const SignalBound& sb = result.signals[static_cast<std::size_t>(sig)];
        for (const FormatKind kind : kMembers) {
            if (!options.type_system.contains(kind)) continue;
            const FpFormat fmt = format_of(kind);
            if (fmt.precision() >= sb.lower_bits &&
                static_cast<int>(fmt.exp_bits) >= sb.exp_floor_bits) {
                members.push_back(kind);
            }
        }
        return members;
    };
    for (const CastSite& site : cast_sites) {
        if (site.src_signal < 0 || site.dst_signal < 0 ||
            site.src_signal == site.dst_signal ||
            static_cast<std::size_t>(site.src_signal) >= S ||
            static_cast<std::size_t>(site.dst_signal) >= S) {
            continue;
        }
        const std::vector<FormatKind> src = reachable_members(site.src_signal);
        const std::vector<FormatKind> dst = reachable_members(site.dst_signal);
        if (src.size() != 1 || dst.size() != 1 || src[0] != dst[0]) continue;
        LintDiagnostic d;
        d.kind = LintKind::DeadCast;
        d.instr_index = static_cast<std::int64_t>(site.first_instr);
        d.signal = site.dst_signal;
        std::ostringstream msg;
        msg << "cast "
            << table.name(static_cast<apps::SignalId>(site.src_signal))
            << " -> "
            << table.name(static_cast<apps::SignalId>(site.dst_signal))
            << " is dead: the derived bounds force both signals to "
            << format_name(format_of(src[0]))
            << ", so the cast elides under every reachable binding — drop it";
        if (site.occurrences > 1) {
            msg << " [" << site.occurrences << " occurrences]";
        }
        d.message = std::move(msg).str();
        result.lint.diagnostics.push_back(std::move(d));
    }

    for (const auto& [sa, si, sf] : cast_chains) {
        LintDiagnostic d;
        d.kind = LintKind::DoubleRounding;
        d.signal = si;
        d.message = "values cast " + table.name(static_cast<apps::SignalId>(sa)) +
                    " -> " + table.name(static_cast<apps::SignalId>(si)) +
                    " -> " + table.name(static_cast<apps::SignalId>(sf)) +
                    ": double-rounds whenever " +
                    table.name(static_cast<apps::SignalId>(si)) +
                    " is tuned below 2*precision(" +
                    table.name(static_cast<apps::SignalId>(sf)) +
                    ")+2; consider casting directly";
        result.lint.diagnostics.push_back(std::move(d));
    }
    for (std::size_t s = 0; s < S; ++s) {
        const SignalBound& sb = result.signals[s];
        if (sb.lower_bits > kMinPrecisionBits &&
            result.flow.max_accumulation_chain[s] > 1) {
            LintDiagnostic d;
            d.kind = LintKind::InfeasibleAccumulation;
            d.signal = static_cast<std::int32_t>(s);
            d.message =
                sb.name + " cannot meet epsilon at the precision floor (" +
                std::to_string(kMinPrecisionBits) + " bits): bound " +
                std::to_string(sb.lower_bits) + " bits, accumulation chain of " +
                std::to_string(result.flow.max_accumulation_chain[s]) +
                " roundings over " +
                std::to_string(result.flow.ops_in_signal[s]) + " ops";
            result.lint.diagnostics.push_back(std::move(d));
        }
        const SignalObservation& obs = merged_obs[s];
        // Min normal of the e=5 family (binary8/binary16): 2^(1-15).
        if (obs.count > 0 && obs.max_abs > 0.0 &&
            obs.max_abs < std::ldexp(1.0, -14)) {
            LintDiagnostic d;
            d.kind = LintKind::SubnormalRange;
            d.signal = static_cast<std::int32_t>(s);
            std::ostringstream msg;
            msg << sb.name << ": all " << obs.count
                << " observed values sit below the e=5 normal range (max |v| = "
                << obs.max_abs
                << "); binary8/binary16 would denormalize or flush the whole "
                   "signal — prefer e=8 formats";
            d.message = std::move(msg).str();
            result.lint.diagnostics.push_back(std::move(d));
        }
    }
    return result;
}

tuning::WarmStart derive_warm_start(apps::App& app, double epsilon,
                                    const std::vector<unsigned>& input_sets,
                                    TypeSystem type_system) {
    DeriveOptions options;
    options.input_sets = input_sets;
    options.type_system = type_system;
    const AppAnalysis analysis = analyze(app, epsilon, options);
    tuning::WarmStart warm;
    warm.seed_bits.assign(analysis.signals.size(), kMaxPrecisionBits);
    warm.lower_bounds.reserve(analysis.signals.size());
    for (const SignalBound& sb : analysis.signals) {
        warm.lower_bounds.push_back(sb.lower_bits);
    }
    return warm;
}

} // namespace tp::analysis
