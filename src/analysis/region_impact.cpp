#include "analysis/region_impact.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "analysis/signal_flow.hpp"
#include "sim/platform.hpp"

namespace tp::analysis {
namespace {

/// Does the platform accounting charge anything format-dependent for this
/// instruction? IntAlu/Branch costs are constants — a format change can
/// move them only by changing control flow, which the consumer's branch
/// skeleton gate handles.
bool cost_carrying(sim::InstrKind kind) noexcept {
    switch (kind) {
    case sim::InstrKind::FpArith:
    case sim::InstrKind::FpCast:
    case sim::InstrKind::Load:
    case sim::InstrKind::Store: return true;
    case sim::InstrKind::IntAlu:
    case sim::InstrKind::Branch: return false;
    }
    return false;
}

/// A format-independent vectorizer flush: a non-vectorizable FP/memory
/// instruction commits every open bucket (vectorize.cpp flush_all) under
/// EVERY binding. Non-vectorizable casts are deliberately excluded — a
/// cast elides when its endpoint formats agree, so its flush exists only
/// under some bindings and cannot delimit a window.
bool window_barrier(const sim::Instr& instr) noexcept {
    if (instr.vectorizable) return false;
    switch (instr.kind) {
    case sim::InstrKind::FpArith:
    case sim::InstrKind::Load:
    case sim::InstrKind::Store: return true;
    default: return false;
    }
}

/// Could this instruction enter a SIMD bucket under SOME binding? The
/// capture's tag formats are never themselves groupable (lanes == 1), so
/// the test is structural: the vectorizer buckets Add/Sub/Mul arithmetic
/// and sub-word memory accesses, and any binding narrow enough makes a
/// vectorizable instance of those eligible.
bool potentially_bucketable(const sim::Instr& instr) noexcept {
    if (!instr.vectorizable) return false;
    switch (instr.kind) {
    case sim::InstrKind::FpArith:
        return instr.op == FpOp::Add || instr.op == FpOp::Sub ||
               instr.op == FpOp::Mul;
    case sim::InstrKind::Load:
    case sim::InstrKind::Store: return true;
    default: return false;
    }
}

bool format_boundary_cast(const sim::Instr& instr) noexcept {
    return instr.kind == sim::InstrKind::FpCast &&
           instr.op != FpOp::FromInt && instr.op != FpOp::ToInt;
}

/// The signals whose bindings determine this instruction's cost-relevant
/// fields, read off its tag formats (at most two).
void touching_signals(const sim::Instr& instr, std::size_t signal_count,
                      std::int32_t (&out)[2], int& count) {
    count = 0;
    switch (instr.kind) {
    case sim::InstrKind::IntAlu:
    case sim::InstrKind::Branch: return;
    case sim::InstrKind::FpArith:
    case sim::InstrKind::Load:
    case sim::InstrKind::Store:
        out[count++] = signal_of_tag(instr.fmt, signal_count);
        return;
    case sim::InstrKind::FpCast: {
        const std::int32_t src = signal_of_tag(instr.fmt, signal_count);
        const std::int32_t dst = signal_of_tag(instr.fmt2, signal_count);
        out[count++] = src;
        if (dst != src) out[count++] = dst;
        return;
    }
    }
}

} // namespace

bool RegionImpactMap::region_impacted(
    std::size_t region, const std::vector<std::int32_t>& changed) const {
    assert(region < region_count);
    if (always_impacted[region] != 0) return true;
    for (const std::int32_t signal : changed) {
        if (signal < 0 || static_cast<std::size_t>(signal) >= impact.size()) {
            return true; // out-of-map probe: conservative
        }
        if (impact[static_cast<std::size_t>(signal)][region] != 0) return true;
    }
    return false;
}

std::vector<CastSite> collect_cast_sites(const sim::TraceProgram& program,
                                         std::size_t signal_count) {
    std::map<std::pair<std::int32_t, std::int32_t>, CastSite> sites;
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        const sim::Instr& instr = program.instrs[i];
        if (!format_boundary_cast(instr)) continue;
        const std::int32_t src = signal_of_tag(instr.fmt, signal_count);
        const std::int32_t dst = signal_of_tag(instr.fmt2, signal_count);
        const auto [it, inserted] =
            sites.try_emplace({src, dst}, CastSite{src, dst, i, 0});
        ++it->second.occurrences;
    }
    std::vector<CastSite> result;
    result.reserve(sites.size());
    for (const auto& [key, site] : sites) result.push_back(site);
    std::sort(result.begin(), result.end(),
              [](const CastSite& a, const CastSite& b) {
                  return a.first_instr < b.first_instr;
              });
    return result;
}

RegionImpactMap build_region_impact(const sim::TraceProgram& program,
                                    std::size_t signal_count) {
    RegionImpactMap map;
    map.signal_count = signal_count;
    map.cast_sites = collect_cast_sites(program, signal_count);

    const std::vector<sim::CostRegion> regions = sim::cost_regions(program);
    map.region_count = regions.size();
    for (const sim::Instr& instr : program.instrs) {
        map.branch_count += instr.kind == sim::InstrKind::Branch ? 1 : 0;
    }
    map.impact.assign(signal_count,
                      std::vector<char>(map.region_count, 0));
    map.always_impacted.assign(map.region_count, 0);

    const auto mark = [&map](std::int32_t signal, std::size_t first_region,
                             std::size_t last_region) {
        for (std::size_t r = first_region; r <= last_region; ++r) {
            if (signal == kUnknownSignal ||
                static_cast<std::size_t>(signal) >= map.signal_count) {
                map.always_impacted[r] = 1;
            } else {
                map.impact[static_cast<std::size_t>(signal)][r] = 1;
            }
        }
    };

    // One pass, tracking the current region and the open vector window.
    // A window accumulates the signals touching it; when it closes (at a
    // format-independent barrier or the trace end) and it contained a
    // potentially bucketable instruction, every accumulated signal is
    // smeared over the window's whole region span — the vectorizer may
    // relocate bucketed cost anywhere up to the closing barrier, and the
    // grouping itself couples every format in the window.
    std::size_t region = 0;
    std::size_t window_first_region = 0;
    bool window_open = false;
    bool window_bucketable = false;
    std::vector<std::int32_t> window_signals; // deduplicated via in_window
    std::vector<char> in_window(signal_count, 0);
    bool window_unknown = false;

    const auto close_window = [&](std::size_t last_region) {
        if (window_open && window_bucketable) {
            for (const std::int32_t signal : window_signals) {
                mark(signal, window_first_region, last_region);
            }
            if (window_unknown) {
                mark(kUnknownSignal, window_first_region, last_region);
            }
        }
        for (const std::int32_t signal : window_signals) {
            in_window[static_cast<std::size_t>(signal)] = 0;
        }
        window_open = false;
        window_bucketable = false;
        window_signals.clear();
        window_unknown = false;
    };

    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        while (i >= regions[region].end) ++region;
        const sim::Instr& instr = program.instrs[i];

        std::int32_t touched[2];
        int touched_count = 0;
        if (cost_carrying(instr.kind)) {
            // Exact attribution: the instruction's own cost lives in this
            // region under every binding that keeps the branch skeleton
            // (window smearing below covers relocation).
            touching_signals(instr, signal_count, touched, touched_count);
            if (touched_count == 0) {
                mark(kUnknownSignal, region, region);
            }
            for (int t = 0; t < touched_count; ++t) {
                mark(touched[t], region, region);
            }
        }

        if (window_barrier(instr)) {
            // The barrier itself cannot drift; it closes the window that
            // precedes it and does not join any window.
            close_window(region);
            continue;
        }

        if (!window_open) {
            window_open = true;
            window_first_region = region;
        }
        window_bucketable = window_bucketable || potentially_bucketable(instr);
        for (int t = 0; t < touched_count; ++t) {
            if (touched[t] == kUnknownSignal ||
                static_cast<std::size_t>(touched[t]) >= signal_count) {
                window_unknown = true;
            } else if (in_window[static_cast<std::size_t>(touched[t])] == 0) {
                in_window[static_cast<std::size_t>(touched[t])] = 1;
                window_signals.push_back(touched[t]);
            }
        }
    }
    // Trailing window: the vectorizer's final flush lands leftovers at
    // the end of the trace, inside the last instruction's region (which
    // `region` still indexes after the loop).
    close_window(region);
    return map;
}

} // namespace tp::analysis
