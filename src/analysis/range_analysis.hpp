// Forward interval analysis over a shadow capture — the range half of
// pass 2.
//
// The captured binary64 execution gives each signal its exact reference
// value range; the error model bounds how far any tuned-format execution
// can drift from that reference to first order. Widening the observed
// per-signal hull by the worst-case drift (times a safety inflation — the
// propagation is first-order, not exact) yields a static enclosure of the
// values the signal can take under ANY format assignment at least as
// precise as `u_per_signal`, and from the enclosure an exponent-width
// floor: the narrowest exponent field that can represent the signal's
// dynamic range without overflow.
#pragma once

#include <span>
#include <vector>

#include "analysis/error_model.hpp"

namespace tp::analysis {

struct StaticRange {
    double lo = 0.0;
    double hi = 0.0;
    double max_abs = 0.0;
    /// Narrowest exponent width (1..11) whose normal range holds max_abs;
    /// 11 when even binary64's range is exceeded (never for golden-clean
    /// captures).
    int exp_floor_bits = 1;
    /// False for signals that recorded no values (dead signals).
    bool populated = false;
};

/// The enclosure per signal: observed hull +- inflation * worst-case
/// first-order drift, drift evaluated at per-signal rounding steps
/// `u_per_signal` (u_s = 2^-precision_s). `inflation` >= 1 absorbs the
/// linearization error.
[[nodiscard]] std::vector<StaticRange> static_signal_ranges(
    const ErrorModel& model, const SignalFlowGraph& flow,
    std::span<const double> u_per_signal, double inflation = 2.0);

/// Convenience: a uniform rounding step u = 2^-precision_bits everywhere.
[[nodiscard]] std::vector<StaticRange> static_signal_ranges_at_uniform(
    const ErrorModel& model, const SignalFlowGraph& flow, int precision_bits,
    double inflation = 2.0);

} // namespace tp::analysis
