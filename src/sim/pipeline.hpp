// In-order single-issue pipeline model with a register scoreboard.
//
// Models the PULPino/RI5CY-class core the paper measures on:
//   * one instruction issues per cycle;
//   * FP operations have the latencies of the transprecision FPU
//     (2 cycles pipelined for 32/16-bit, 1 cycle for binary8 and casts;
//     iterative div/sqrt block the unit);
//   * a consumer stalls until its producer's result is ready — this is
//     where the paper's observation lives that binary16/32 latency cycles
//     may or may not be hidden depending on how well the compiler can
//     schedule independent work between producer and consumer;
//   * loads hit a single-cycle scratchpad (TCDM), taken branches pay one
//     bubble;
//   * a SIMD group retires its lanes in a single issue slot.
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace tp::sim {

struct CoreParams; // sim/platform.hpp

struct PipelineResult {
    std::uint64_t cycles = 0;       // total execution cycles
    std::uint64_t stall_cycles = 0; // cycles lost to dependency/structural stalls
    std::uint64_t issue_slots = 0;  // instructions actually issued (groups = 1)
};

/// Replays the (possibly vectorized) program and returns cycle counts.
/// Each memory access (scalar or packed group) additionally occupies
/// `addr_ops_per_access` integer issue slots for address generation.
[[nodiscard]] PipelineResult run_pipeline(const TraceProgram& program,
                                          int addr_ops_per_access = 2);

} // namespace tp::sim
