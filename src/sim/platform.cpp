#include "sim/platform.hpp"

#include <ostream>

#include "fpu/latency_model.hpp"
#include "sim/pipeline.hpp"

namespace tp::sim {

RunReport simulate(const TraceProgram& program, const fpu::EnergyModel& model,
                   const CoreParams& core) {
    RunReport report;

    const PipelineResult timing =
        run_pipeline(program, core.addr_ops_per_access);
    report.cycles = timing.cycles;
    report.stall_cycles = timing.stall_cycles;
    report.issue_slots = timing.issue_slots;

    const auto addr_ops = static_cast<std::uint64_t>(core.addr_ops_per_access);
    const double addr_energy = core.addr_ops_per_access * model.int_op;

    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        const Instr& instr = program.instrs[i];

        if (instr.simd_group != 0) {
            const SimdGroup& group = program.groups[instr.simd_group - 1];
            if (group.last_index != i) continue; // account once per group
            switch (group.kind) {
            case InstrKind::FpArith: {
                ++report.fp_simd_instrs;
                report.fp_simd_lane_ops += static_cast<std::uint64_t>(group.lanes);
                auto& activity = report.per_format[group.fmt];
                activity.vector_ops += static_cast<std::uint64_t>(group.lanes);
                ++activity.vector_instrs;
                report.energy.fp_ops +=
                    model.fp_op_simd(group.op, group.fmt, group.lanes) +
                    model.idle_slice *
                        fpu::EnergyModel::idle_slices(group.fmt, group.lanes) +
                    model.fpu_reg_move;
                break;
            }
            case InstrKind::Load:
            case InstrKind::Store: {
                ++report.mem_accesses;
                ++report.mem_accesses_vector;
                report.mem_bytes += static_cast<std::uint64_t>(group.bytes);
                report.energy.memory += model.mem_access(group.bytes);
                report.addr_int_ops += addr_ops;
                report.energy.other += addr_energy;
                break;
            }
            default: break;
            }
            continue;
        }

        switch (instr.kind) {
        case InstrKind::IntAlu:
            ++report.int_ops;
            report.energy.other += model.int_op;
            break;
        case InstrKind::Branch:
            ++report.branches;
            report.energy.other += model.branch_op;
            break;
        case InstrKind::Load:
        case InstrKind::Store:
            ++report.mem_accesses;
            report.mem_bytes += instr.bytes;
            report.energy.memory += model.mem_access(instr.bytes);
            report.addr_int_ops += addr_ops;
            report.energy.other += addr_energy;
            break;
        case InstrKind::FpArith: {
            ++report.fp_ops;
            auto& activity = report.per_format[instr.fmt];
            ++activity.scalar_ops;
            report.energy.fp_ops +=
                model.fp_op(instr.op, instr.fmt) +
                model.idle_slice * fpu::EnergyModel::idle_slices(instr.fmt, 1) +
                model.fpu_reg_move;
            break;
        }
        case InstrKind::FpCast:
            ++report.casts;
            report.cast_cycles +=
                static_cast<std::uint64_t>(fpu::cast_latency_cycles());
            report.energy.fp_ops += model.cast(instr.fmt, instr.fmt2);
            break;
        }
    }

    report.energy.other += model.stall_cycle * static_cast<double>(report.stall_cycles);
    return report;
}

void RunReport::print(std::ostream& os) const {
    os << "cycles=" << cycles << " (stalls=" << stall_cycles << ")"
       << " mem_accesses=" << mem_accesses << " (vector=" << mem_accesses_vector
       << ")"
       << " fp_scalar=" << fp_ops << " fp_simd_instrs=" << fp_simd_instrs
       << " casts=" << casts << " int=" << int_ops << " branches=" << branches
       << "\nenergy[pJ]: fp=" << energy.fp_ops << " mem=" << energy.memory
       << " other=" << energy.other << " total=" << energy.total() << '\n';
}

} // namespace tp::sim
