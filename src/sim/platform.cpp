#include "sim/platform.hpp"

#include <cassert>
#include <ostream>

#include "fpu/latency_model.hpp"
#include "sim/pipeline.hpp"

namespace tp::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Accounting-role tags mixed into a region signature so member/last/
/// scalar sequences cannot alias each other.
enum : std::uint64_t {
    kSigGroupMember = 1, // SIMD group member, not the issuing slot
    kSigGroupLast = 2,   // the group's issuing slot
    kSigScalar = 3,
};

class SignatureHash {
public:
    void mix(std::uint64_t v) noexcept {
        hash_ = (hash_ ^ v) * kFnvPrime;
    }
    void mix_format(FpFormat fmt) noexcept {
        mix(fmt.exp_bits);
        mix(fmt.mant_bits);
    }
    [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

private:
    std::uint64_t hash_ = kFnvOffset;
};

/// One pass over a region: counters + energy into `cost` (when non-null)
/// and the cost-relevant sequence into `sig`. The signature covers every
/// input the accounting reads — instruction kind/op/formats/bytes and, at
/// a group's issuing slot, the group's kind/op/format/lanes/bytes — and
/// nothing position- or value-id-dependent, so traces that differ only in
/// absolute indices or SSA numbering still match.
void walk_region(const TraceProgram& program, const CostRegion& region,
                 const fpu::EnergyModel& model, const CoreParams& core,
                 RegionCost* cost, SignatureHash& sig) {
    const auto addr_ops = static_cast<std::uint64_t>(core.addr_ops_per_access);
    const double addr_energy = core.addr_ops_per_access * model.int_op;

    for (std::size_t i = region.begin; i < region.end; ++i) {
        const Instr& instr = program.instrs[i];

        if (instr.simd_group != 0) {
            const SimdGroup& group = program.groups[instr.simd_group - 1];
            if (group.last_index != i) {
                sig.mix(kSigGroupMember);
                continue; // account once per group
            }
            // Members are adjacent and end at the issuing slot, so the
            // whole group lies inside this region (groups contain no
            // branches, and regions break only after branches).
            assert(i + 1 >= static_cast<std::size_t>(group.lanes) &&
                   i + 1 - static_cast<std::size_t>(group.lanes) >=
                       region.begin &&
                   "SIMD groups never straddle a cost region");
            sig.mix(kSigGroupLast);
            sig.mix(static_cast<std::uint64_t>(group.kind));
            sig.mix(static_cast<std::uint64_t>(group.op));
            sig.mix_format(group.fmt);
            sig.mix(static_cast<std::uint64_t>(group.lanes));
            sig.mix(static_cast<std::uint64_t>(group.bytes));
            if (cost == nullptr) continue;
            switch (group.kind) {
            case InstrKind::FpArith: {
                ++cost->fp_simd_instrs;
                cost->fp_simd_lane_ops += static_cast<std::uint64_t>(group.lanes);
                auto& activity = cost->per_format[group.fmt];
                activity.vector_ops += static_cast<std::uint64_t>(group.lanes);
                ++activity.vector_instrs;
                cost->energy.fp_ops +=
                    model.fp_op_simd(group.op, group.fmt, group.lanes) +
                    model.idle_slice *
                        fpu::EnergyModel::idle_slices(group.fmt, group.lanes) +
                    model.fpu_reg_move;
                break;
            }
            case InstrKind::Load:
            case InstrKind::Store: {
                ++cost->mem_accesses;
                ++cost->mem_accesses_vector;
                cost->mem_bytes += static_cast<std::uint64_t>(group.bytes);
                cost->energy.memory += model.mem_access(group.bytes);
                cost->addr_int_ops += addr_ops;
                cost->energy.other += addr_energy;
                break;
            }
            default: break;
            }
            continue;
        }

        sig.mix(kSigScalar);
        sig.mix(static_cast<std::uint64_t>(instr.kind));
        sig.mix(static_cast<std::uint64_t>(instr.op));
        sig.mix_format(instr.fmt);
        sig.mix_format(instr.fmt2);
        sig.mix(instr.bytes);
        if (cost == nullptr) continue;

        switch (instr.kind) {
        case InstrKind::IntAlu:
            ++cost->int_ops;
            cost->energy.other += model.int_op;
            break;
        case InstrKind::Branch:
            ++cost->branches;
            cost->energy.other += model.branch_op;
            break;
        case InstrKind::Load:
        case InstrKind::Store:
            ++cost->mem_accesses;
            cost->mem_bytes += instr.bytes;
            cost->energy.memory += model.mem_access(instr.bytes);
            cost->addr_int_ops += addr_ops;
            cost->energy.other += addr_energy;
            break;
        case InstrKind::FpArith: {
            ++cost->fp_ops;
            auto& activity = cost->per_format[instr.fmt];
            ++activity.scalar_ops;
            cost->energy.fp_ops +=
                model.fp_op(instr.op, instr.fmt) +
                model.idle_slice * fpu::EnergyModel::idle_slices(instr.fmt, 1) +
                model.fpu_reg_move;
            break;
        }
        case InstrKind::FpCast:
            ++cost->casts;
            cost->cast_cycles +=
                static_cast<std::uint64_t>(fpu::cast_latency_cycles());
            cost->energy.fp_ops += model.cast(instr.fmt, instr.fmt2);
            break;
        }
    }
}

} // namespace

std::size_t segments_per_cost_region(std::uint64_t branch_count) noexcept {
    const std::uint64_t segments = branch_count + 1;
    return static_cast<std::size_t>((segments + kMaxCostRegions - 1) /
                                    kMaxCostRegions);
}

std::vector<CostRegion> cost_regions(const TraceProgram& program) {
    std::uint64_t branch_count = 0;
    for (const Instr& instr : program.instrs) {
        branch_count += instr.kind == InstrKind::Branch ? 1 : 0;
    }
    const std::size_t per_region = segments_per_cost_region(branch_count);

    std::vector<CostRegion> regions;
    regions.reserve(
        static_cast<std::size_t>(branch_count / per_region) + 1);
    std::size_t begin = 0;
    std::uint64_t branches_seen = 0;
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        if (program.instrs[i].kind != InstrKind::Branch) continue;
        if (++branches_seen % per_region == 0) {
            regions.push_back(CostRegion{begin, i + 1});
            begin = i + 1;
        }
    }
    // The trailing region is emitted even when empty: the region COUNT
    // must be a pure function of the branch count, so traces with equal
    // branch skeletons partition identically (the delta path's
    // correspondence gate).
    regions.push_back(CostRegion{begin, program.instrs.size()});
    return regions;
}

RegionCost cost_region(const TraceProgram& program, const CostRegion& region,
                       const fpu::EnergyModel& model, const CoreParams& core) {
    RegionCost cost;
    cost.begin = region.begin;
    cost.end = region.end;
    SignatureHash sig;
    walk_region(program, region, model, core, &cost, sig);
    cost.signature = sig.value();
    return cost;
}

std::uint64_t region_signature(const TraceProgram& program,
                               const CostRegion& region) {
    SignatureHash sig;
    walk_region(program, region, fpu::default_energy_model(), CoreParams{},
                nullptr, sig);
    return sig.value();
}

RunReport assemble_regions(const TraceProgram& program,
                           const std::vector<RegionCost>& regions,
                           const fpu::EnergyModel& model,
                           const CoreParams& core) {
    RunReport report;

    const PipelineResult timing =
        run_pipeline(program, core.addr_ops_per_access);
    report.cycles = timing.cycles;
    report.stall_cycles = timing.stall_cycles;
    report.issue_slots = timing.issue_slots;

    for (const RegionCost& cost : regions) {
        report.mem_accesses += cost.mem_accesses;
        report.mem_accesses_vector += cost.mem_accesses_vector;
        report.mem_bytes += cost.mem_bytes;
        report.fp_ops += cost.fp_ops;
        report.fp_simd_instrs += cost.fp_simd_instrs;
        report.fp_simd_lane_ops += cost.fp_simd_lane_ops;
        report.casts += cost.casts;
        report.cast_cycles += cost.cast_cycles;
        report.int_ops += cost.int_ops;
        report.addr_int_ops += cost.addr_int_ops;
        report.branches += cost.branches;
        for (const auto& [fmt, activity] : cost.per_format) {
            auto& total = report.per_format[fmt];
            total.scalar_ops += activity.scalar_ops;
            total.vector_ops += activity.vector_ops;
            total.vector_instrs += activity.vector_instrs;
        }
        report.energy.fp_ops += cost.energy.fp_ops;
        report.energy.memory += cost.energy.memory;
        report.energy.other += cost.energy.other;
    }

    report.energy.other +=
        model.stall_cycle * static_cast<double>(report.stall_cycles);
    return report;
}

RegionReport simulate_regions(const TraceProgram& program,
                              const fpu::EnergyModel& model,
                              const CoreParams& core) {
    RegionReport result;
    const std::vector<CostRegion> partition = cost_regions(program);
    result.regions.reserve(partition.size());
    for (const CostRegion& region : partition) {
        result.regions.push_back(cost_region(program, region, model, core));
    }
    result.report = assemble_regions(program, result.regions, model, core);
    return result;
}

RunReport simulate(const TraceProgram& program, const fpu::EnergyModel& model,
                   const CoreParams& core) {
    return simulate_regions(program, model, core).report;
}

void RunReport::print(std::ostream& os) const {
    os << "cycles=" << cycles << " (stalls=" << stall_cycles << ")"
       << " mem_accesses=" << mem_accesses << " (vector=" << mem_accesses_vector
       << ")"
       << " fp_scalar=" << fp_ops << " fp_simd_instrs=" << fp_simd_instrs
       << " casts=" << casts << " int=" << int_ops << " branches=" << branches
       << "\nenergy[pJ]: fp=" << energy.fp_ops << " mem=" << energy.memory
       << " other=" << energy.other << " total=" << energy.total() << '\n';
}

} // namespace tp::sim
