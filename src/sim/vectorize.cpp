#include "sim/vectorize.hpp"

#include <cassert>
#include <map>
#include <tuple>
#include <unordered_map>

namespace tp::sim {
namespace {

/// Key identifying operations that may share a SIMD group.
struct GroupKey {
    InstrKind kind = InstrKind::FpArith;
    FpOp op = FpOp::Add;
    FpFormat fmt{8, 23};
    std::uint32_t stream = 0;

    [[nodiscard]] auto tie() const noexcept {
        return std::make_tuple(static_cast<int>(kind), static_cast<int>(op),
                               fmt.exp_bits, fmt.mant_bits, stream);
    }
    friend bool operator<(const GroupKey& a, const GroupKey& b) noexcept {
        return a.tie() < b.tie();
    }
};

/// Rewrites a trace so that groupable element operations inside tagged
/// vector regions become adjacent SIMD groups, preserving dependency order.
/// This mirrors what a sub-word vectorizing compiler does with an unrolled
/// loop body: packs independent lanes, keeps serial chains scalar.
class Vectorizer {
public:
    explicit Vectorizer(TraceProgram& program) : program_(program) {}

    void run() {
        Trace input = std::move(program_.instrs);
        program_.instrs = Trace{};
        program_.instrs.reserve(input.size());
        program_.groups.clear();

        for (const Instr& instr : input) {
            process(instr);
        }
        flush_all();
        program_.instrs.shrink_to_fit();
    }

private:
    struct Bucket {
        std::vector<Instr> members;
    };

    void process(const Instr& instr) {
        if (!instr.vectorizable) {
            // Loop plumbing (int/branch) passes through without disturbing
            // open groups; any other scalar instruction may consume pending
            // results, so its producers must be flushed first.
            if (instr.kind == InstrKind::IntAlu || instr.kind == InstrKind::Branch) {
                emit_scalar(instr);
                return;
            }
            flush_producers_of(instr);
            // A scalar FP instruction outside the region ends the region's
            // schedule for safety: flush everything.
            flush_all();
            emit_scalar(instr);
            return;
        }

        const int lanes = lanes_for(instr);
        if (lanes <= 1 || !groupable(instr)) {
            flush_producers_of(instr);
            emit_scalar(instr);
            return;
        }

        const GroupKey key = key_of(instr);
        // A member must not consume a value pending in its own bucket —
        // that would fuse a serial chain into one SIMD slot. Commit the
        // open bucket and start a fresh one with this instruction.
        if (consumes_from(instr, key)) {
            commit(key);
        }
        Bucket& fresh = buckets_[key]; // commit() may have erased it
        fresh.members.push_back(instr);
        if (instr.dst >= 0) pending_dst_[instr.dst] = key;
        if (static_cast<int>(fresh.members.size()) == lanes) {
            commit(key);
        }
    }

    [[nodiscard]] static bool groupable(const Instr& instr) noexcept {
        switch (instr.kind) {
        case InstrKind::FpArith:
            // Only add/sub/mul exist as SIMD datapaths (paper, Fig. 3).
            return instr.op == FpOp::Add || instr.op == FpOp::Sub ||
                   instr.op == FpOp::Mul;
        case InstrKind::Load:
        case InstrKind::Store:
            return instr.bytes > 0 && instr.bytes < 4;
        default:
            return false;
        }
    }

    [[nodiscard]] static int lanes_for(const Instr& instr) noexcept {
        if (instr.kind == InstrKind::Load || instr.kind == InstrKind::Store) {
            return instr.bytes > 0 ? 4 / instr.bytes : 1;
        }
        return simd_lanes_for(instr.fmt);
    }

    [[nodiscard]] static GroupKey key_of(const Instr& instr) noexcept {
        GroupKey key;
        key.kind = instr.kind;
        key.fmt = instr.fmt;
        if (instr.kind == InstrKind::FpArith) {
            key.op = instr.op;
        } else {
            key.stream = instr.stream;
        }
        return key;
    }

    [[nodiscard]] bool consumes_from(const Instr& instr, const GroupKey& key) const {
        for (std::int32_t src : {instr.src1, instr.src2, instr.src3}) {
            if (src < 0) continue;
            const auto it = pending_dst_.find(src);
            if (it != pending_dst_.end() && !(it->second < key) && !(key < it->second)) {
                return true;
            }
        }
        return false;
    }

    void flush_producers_of(const Instr& instr) {
        for (std::int32_t src : {instr.src1, instr.src2, instr.src3}) {
            if (src < 0) continue;
            const auto it = pending_dst_.find(src);
            if (it != pending_dst_.end()) commit(it->second);
        }
    }

    /// Emits the bucket's members: a single member stays scalar; several
    /// members become one SIMD group (partially filled groups are legal —
    /// the unit simply silences the unused lanes). Producers pending in
    /// other buckets are committed first so the output trace stays in
    /// dependency order.
    void commit(GroupKey key) {
        const auto bucket_it = buckets_.find(key);
        if (bucket_it == buckets_.end()) return;
        Bucket bucket = std::move(bucket_it->second);
        buckets_.erase(bucket_it);
        for (const Instr& m : bucket.members) {
            if (m.dst >= 0) pending_dst_.erase(m.dst);
        }
        for (const Instr& m : bucket.members) {
            flush_producers_of(m);
        }
        if (bucket.members.size() == 1) {
            Instr scalar = bucket.members.front();
            scalar.simd_group = 0;
            program_.instrs.push_back(scalar);
            return;
        }

        SimdGroup group;
        group.lanes = static_cast<int>(bucket.members.size());
        group.kind = key.kind;
        group.op = key.op;
        group.fmt = key.fmt;
        const auto group_id = static_cast<std::uint32_t>(program_.groups.size() + 1);
        for (Instr m : bucket.members) {
            m.simd_group = group_id;
            if (m.dst >= 0) group.dsts.push_back(m.dst);
            if (m.src1 >= 0) group.srcs.push_back(m.src1);
            if (m.src2 >= 0) group.srcs.push_back(m.src2);
            if (m.src3 >= 0) group.srcs.push_back(m.src3);
            group.bytes += m.bytes;
            program_.instrs.push_back(m);
        }
        group.last_index = program_.instrs.size() - 1;
        program_.groups.push_back(std::move(group));
    }

    void flush_all() {
        while (!buckets_.empty()) {
            commit(buckets_.begin()->first);
        }
    }

    void emit_scalar(const Instr& instr) {
        program_.instrs.push_back(instr);
        assert(instr.simd_group == 0);
    }

    TraceProgram& program_;
    std::map<GroupKey, Bucket> buckets_;
    std::unordered_map<std::int32_t, GroupKey> pending_dst_;
};

} // namespace

int simd_lanes_for(FpFormat format) noexcept {
    const int width = format.width_bits();
    if (width <= 8) return 4;
    if (width <= 16) return 2;
    return 1;
}

void vectorize(TraceProgram& program) {
    Vectorizer{program}.run();
}

} // namespace tp::sim
