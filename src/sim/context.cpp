#include "sim/context.hpp"

#include "sim/vectorize.hpp"

namespace tp::sim {

// --- TpValue ---------------------------------------------------------------

TpValue TpValue::binary(FpOp op, const TpValue& a, const TpValue& b,
                        FlexFloatDyn result) {
    TpContext* ctx = a.ctx_ != nullptr ? a.ctx_ : b.ctx_;
    assert(ctx != nullptr && "TpValue arithmetic requires a live context");
    assert((a.ctx_ == nullptr || b.ctx_ == nullptr || a.ctx_ == b.ctx_) &&
           "operands belong to different contexts");
    const std::int32_t id = ctx->emit_fp(op, result.format(), a.id_, b.id_);
    return TpValue{ctx, result, id};
}

TpValue TpValue::unary(FpOp op, const TpValue& a, FlexFloatDyn result) {
    assert(a.ctx_ != nullptr);
    const std::int32_t id = a.ctx_->emit_fp(op, result.format(), a.id_, -1);
    return TpValue{a.ctx_, result, id};
}

bool TpValue::compare(const TpValue& a, const TpValue& b, bool result) {
    TpContext* ctx = a.ctx_ != nullptr ? a.ctx_ : b.ctx_;
    assert(ctx != nullptr);
    ctx->emit_cmp(a.format(), a.id_, b.id_);
    return result;
}

TpValue operator+(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Add, a, b, a.value_ + b.value_);
}
TpValue operator-(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Sub, a, b, a.value_ - b.value_);
}
TpValue operator*(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Mul, a, b, a.value_ * b.value_);
}
TpValue operator/(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Div, a, b, a.value_ / b.value_);
}
TpValue operator-(const TpValue& a) {
    return TpValue::unary(FpOp::Neg, a, -a.value_);
}
TpValue sqrt(const TpValue& a) {
    return TpValue::unary(FpOp::Sqrt, a, sqrt(a.value_));
}
TpValue abs(const TpValue& a) {
    return TpValue::unary(FpOp::Abs, a, abs(a.value_));
}
TpValue TpValue::ternary(FpOp op, const TpValue& a, const TpValue& b,
                         const TpValue& c, FlexFloatDyn result) {
    TpContext* ctx =
        a.ctx_ != nullptr ? a.ctx_ : (b.ctx_ != nullptr ? b.ctx_ : c.ctx_);
    assert(ctx != nullptr && "TpValue fma requires a live context");
    const std::int32_t id =
        ctx->emit_fp(op, result.format(), a.id_, b.id_, c.id_);
    return TpValue{ctx, result, id};
}

TpValue fma(const TpValue& a, const TpValue& b, const TpValue& c) {
    return TpValue::ternary(FpOp::Fma, a, b, c, fma(a.value_, b.value_, c.value_));
}

bool operator<(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ < b.value_);
}
bool operator<=(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ <= b.value_);
}
bool operator>(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ > b.value_);
}
bool operator>=(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ >= b.value_);
}

TpValue TpValue::cast_to(FpFormat target) const {
    assert(ctx_ != nullptr);
    const std::int32_t id = ctx_->emit_cast(format(), target, id_);
    return TpValue{ctx_, value_.cast_to(target), id};
}

// --- TpArray ---------------------------------------------------------------

TpValue TpArray::load(std::size_t i) {
    assert(i < data_.size());
    const std::int32_t id = ctx_->emit_load(stream_, format_);
    return TpValue{ctx_, FlexFloatDyn{data_[i], format_}, id};
}

void TpArray::store(std::size_t i, const TpValue& value) {
    assert(i < data_.size());
    assert(value.format() == format_ &&
           "store requires the array's element format; cast explicitly");
    ctx_->emit_store(stream_, format_, value.id_);
    data_[i] = value.to_double(); // already sanitized to this format
}

// --- TpContext -------------------------------------------------------------

TpValue TpContext::from_int(std::int64_t value, FpFormat format) {
    std::int32_t id = -1;
    if (config_.trace) {
        Instr instr;
        instr.kind = InstrKind::FpCast;
        instr.op = FpOp::FromInt;
        instr.fmt = format;
        instr.fmt2 = format;
        instr.vectorizable = in_vector_region();
        instr.dst = id = next_id();
        trace_.push_back(instr);
    }
    if (thread_stats().enabled()) thread_stats().record_op(format, FpOp::FromInt);
    return TpValue{this, FlexFloatDyn{static_cast<double>(value), format}, id};
}

void TpContext::int_ops(int n) {
    if (!config_.trace) return;
    for (int i = 0; i < n; ++i) {
        Instr instr;
        instr.kind = InstrKind::IntAlu;
        trace_.push_back(instr);
    }
}

void TpContext::branch(int n) {
    if (!config_.trace) return;
    for (int i = 0; i < n; ++i) {
        Instr instr;
        instr.kind = InstrKind::Branch;
        trace_.push_back(instr);
    }
}

std::int32_t TpContext::emit_fp(FpOp op, FpFormat fmt, std::int32_t src1,
                                std::int32_t src2, std::int32_t src3) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::FpArith;
    instr.op = op;
    instr.fmt = fmt;
    instr.vectorizable = in_vector_region();
    instr.src1 = src1;
    instr.src2 = src2;
    instr.src3 = src3;
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

void TpContext::emit_cmp(FpFormat fmt, std::int32_t src1, std::int32_t src2) {
    if (!config_.trace) return;
    Instr instr;
    instr.kind = InstrKind::FpArith;
    instr.op = FpOp::Cmp;
    instr.fmt = fmt;
    instr.vectorizable = false; // compares feed control flow, never SIMD
    instr.src1 = src1;
    instr.src2 = src2;
    trace_.push_back(instr);
}

std::int32_t TpContext::emit_cast(FpFormat from, FpFormat to, std::int32_t src) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::FpCast;
    instr.fmt = from;
    instr.fmt2 = to;
    instr.vectorizable = in_vector_region();
    instr.src1 = src;
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

std::int32_t TpContext::emit_load(std::uint32_t stream, FpFormat fmt) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::Load;
    instr.fmt = fmt;
    instr.bytes = static_cast<std::uint8_t>(fmt.storage_bytes());
    instr.stream = stream;
    instr.vectorizable = in_vector_region();
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

void TpContext::emit_store(std::uint32_t stream, FpFormat fmt, std::int32_t src) {
    if (!config_.trace) return;
    Instr instr;
    instr.kind = InstrKind::Store;
    instr.fmt = fmt;
    instr.bytes = static_cast<std::uint8_t>(fmt.storage_bytes());
    instr.stream = stream;
    instr.vectorizable = in_vector_region();
    instr.src1 = src;
    trace_.push_back(instr);
}

TraceProgram TpContext::take_program(bool apply_simd) {
    TraceProgram program;
    program.instrs = std::move(trace_);
    program.value_count = value_count_;
    trace_ = Trace{};
    value_count_ = 0;
    if (apply_simd) vectorize(program);
    return program;
}

} // namespace tp::sim
