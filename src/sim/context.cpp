#include "sim/context.hpp"

#include <cmath>

#include "flexfloat/arith_backend.hpp"
#include "sim/vectorize.hpp"

namespace tp::sim {

namespace {

/// Plain binary64 evaluation for shadow captures: the op's exact IEEE
/// double result, no re-rounding to the (tag) format.
double shadow_eval(FpOp op, double a, double b) noexcept {
    switch (op) {
    case FpOp::Add: return a + b;
    case FpOp::Sub: return a - b;
    case FpOp::Mul: return a * b;
    case FpOp::Div: return a / b;
    case FpOp::Sqrt: return std::sqrt(a);
    case FpOp::Neg: return -a;
    case FpOp::Abs: return std::fabs(a);
    default: return a;
    }
}

/// One rounded op through the backend seam, honoring the owning context's
/// force_emulated policy (the arith entry points already honor the
/// process/thread knobs) — or the unrounded binary64 result in shadow mode.
double routed(const TpContext* ctx, FpOp op, double a, double b,
              FpFormat format) noexcept {
    if (ctx->shadow()) return shadow_eval(op, a, b);
    return ctx->force_emulated() ? arith::emulated(op, a, b, format)
                                 : arith::arith(op, a, b, format);
}


void record_op(FpFormat format, FpOp op) noexcept {
    if (stats_enabled()) thread_stats().record_op(format, op);
}

} // namespace

// --- TpValue ---------------------------------------------------------------

TpValue TpValue::binary(FpOp op, const TpValue& a, const TpValue& b) {
    TpContext* ctx = a.ctx_ != nullptr ? a.ctx_ : b.ctx_;
    assert(ctx != nullptr && "TpValue arithmetic requires a live context");
    assert((a.ctx_ == nullptr || b.ctx_ == nullptr || a.ctx_ == b.ctx_) &&
           "operands belong to different contexts");
    assert(a.format() == b.format() &&
           "mixed-format arithmetic requires an explicit cast");
    const FpFormat fmt = a.format();
    record_op(fmt, op);
    const double r = routed(ctx, op, a.to_double(), b.to_double(), fmt);
    const std::int32_t id = ctx->emit_fp(op, fmt, a.id_, b.id_);
    ctx->record_value(id, r, fmt);
    return TpValue{ctx, TpContext::adopt(ctx, r, fmt), id};
}

TpValue TpValue::unary(FpOp op, const TpValue& a) {
    assert(a.ctx_ != nullptr);
    const FpFormat fmt = a.format();
    record_op(fmt, op);
    const double r = routed(a.ctx_, op, a.to_double(), a.to_double(), fmt);
    const std::int32_t id = a.ctx_->emit_fp(op, fmt, a.id_, -1);
    a.ctx_->record_value(id, r, fmt);
    return TpValue{a.ctx_, TpContext::adopt(a.ctx_, r, fmt), id};
}

bool TpValue::compare(const TpValue& a, const TpValue& b, bool result) {
    TpContext* ctx = a.ctx_ != nullptr ? a.ctx_ : b.ctx_;
    assert(ctx != nullptr);
    ctx->emit_cmp(a.format(), a.id_, b.id_);
    return result;
}

TpValue operator+(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Add, a, b);
}
TpValue operator-(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Sub, a, b);
}
TpValue operator*(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Mul, a, b);
}
TpValue operator/(const TpValue& a, const TpValue& b) {
    return TpValue::binary(FpOp::Div, a, b);
}
TpValue operator-(const TpValue& a) {
    return TpValue::unary(FpOp::Neg, a);
}
TpValue sqrt(const TpValue& a) {
    return TpValue::unary(FpOp::Sqrt, a);
}
TpValue abs(const TpValue& a) {
    return TpValue::unary(FpOp::Abs, a);
}
TpValue TpValue::ternary(FpOp op, const TpValue& a, const TpValue& b,
                         const TpValue& c) {
    TpContext* ctx =
        a.ctx_ != nullptr ? a.ctx_ : (b.ctx_ != nullptr ? b.ctx_ : c.ctx_);
    assert(ctx != nullptr && "TpValue fma requires a live context");
    assert(a.format() == b.format() && b.format() == c.format() &&
           "mixed-format fma requires explicit casts");
    const FpFormat fmt = a.format();
    record_op(fmt, op);
    const double r =
        ctx->shadow()
            ? std::fma(a.to_double(), b.to_double(), c.to_double())
            : (ctx->force_emulated()
                   ? arith::emulated_fma(a.to_double(), b.to_double(),
                                         c.to_double(), fmt)
                   : arith::fma(a.to_double(), b.to_double(), c.to_double(),
                                fmt));
    const std::int32_t id = ctx->emit_fp(op, fmt, a.id_, b.id_, c.id_);
    ctx->record_value(id, r, fmt);
    return TpValue{ctx, TpContext::adopt(ctx, r, fmt), id};
}

TpValue fma(const TpValue& a, const TpValue& b, const TpValue& c) {
    return TpValue::ternary(FpOp::Fma, a, b, c);
}

bool operator<(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ < b.value_);
}
bool operator<=(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ <= b.value_);
}
bool operator>(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ > b.value_);
}
bool operator>=(const TpValue& a, const TpValue& b) {
    return TpValue::compare(a, b, a.value_ >= b.value_);
}

TpValue TpValue::cast_to(FpFormat target) const {
    assert(ctx_ != nullptr);
    if (stats_enabled()) thread_stats().record_cast(format(), target);
    const double r = ctx_->shadow()
                         ? to_double() // tags change, the value never rounds
                         : (ctx_->force_emulated()
                                ? arith::emulated_cast(to_double(), target)
                                : arith::cast(to_double(), target));
    const std::int32_t id = ctx_->emit_cast(format(), target, id_);
    ctx_->record_value(id, r, target);
    return TpValue{ctx_, TpContext::adopt(ctx_, r, target), id};
}

// --- TpArray ---------------------------------------------------------------

TpValue TpArray::load(std::size_t i) {
    assert(i < data_.size());
    const std::int32_t id = ctx_->emit_load(stream_, format_);
    ctx_->record_value(id, data_[i], format_);
    // Backing-store values are already quantized to the element format
    // (set_raw / store), so the load skips the construction-time re-round.
    return TpValue{ctx_, TpContext::adopt(ctx_, data_[i], format_), id};
}

void TpArray::store(std::size_t i, const TpValue& value) {
    assert(i < data_.size());
    assert(value.format() == format_ &&
           "store requires the array's element format; cast explicitly");
    ctx_->emit_store(stream_, format_, value.id_);
    if (!writers_.empty()) writers_[i] = value.id_;
    data_[i] = value.to_double(); // already sanitized to this format
}

// --- TpContext -------------------------------------------------------------

TpValue TpContext::from_int(std::int64_t value, FpFormat format) {
    std::int32_t id = -1;
    if (config_.trace) {
        Instr instr;
        instr.kind = InstrKind::FpCast;
        instr.op = FpOp::FromInt;
        instr.fmt = format;
        instr.fmt2 = format;
        instr.vectorizable = in_vector_region();
        instr.dst = id = next_id();
        trace_.push_back(instr);
    }
    if (stats_enabled()) thread_stats().record_op(format, FpOp::FromInt);
    const double raw = static_cast<double>(value);
    const double r = config_.binary64_shadow
                         ? raw
                         : (config_.force_emulated
                                ? arith::emulated_cast(raw, format)
                                : arith::cast(raw, format));
    record_value(id, r, format);
    return TpValue{this, TpContext::adopt(this, r, format), id};
}

void TpContext::int_ops(int n) {
    if (!config_.trace) return;
    for (int i = 0; i < n; ++i) {
        Instr instr;
        instr.kind = InstrKind::IntAlu;
        trace_.push_back(instr);
    }
}

void TpContext::branch(int n) {
    if (!config_.trace) return;
    for (int i = 0; i < n; ++i) {
        Instr instr;
        instr.kind = InstrKind::Branch;
        trace_.push_back(instr);
    }
}

std::int32_t TpContext::emit_fp(FpOp op, FpFormat fmt, std::int32_t src1,
                                std::int32_t src2, std::int32_t src3) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::FpArith;
    instr.op = op;
    instr.fmt = fmt;
    instr.vectorizable = in_vector_region();
    instr.src1 = src1;
    instr.src2 = src2;
    instr.src3 = src3;
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

void TpContext::emit_cmp(FpFormat fmt, std::int32_t src1, std::int32_t src2) {
    if (!config_.trace) return;
    Instr instr;
    instr.kind = InstrKind::FpArith;
    instr.op = FpOp::Cmp;
    instr.fmt = fmt;
    instr.vectorizable = false; // compares feed control flow, never SIMD
    instr.src1 = src1;
    instr.src2 = src2;
    trace_.push_back(instr);
}

std::int32_t TpContext::emit_cast(FpFormat from, FpFormat to, std::int32_t src) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::FpCast;
    instr.fmt = from;
    instr.fmt2 = to;
    instr.vectorizable = in_vector_region();
    instr.src1 = src;
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

std::int32_t TpContext::emit_load(std::uint32_t stream, FpFormat fmt) {
    if (!config_.trace) return -1;
    Instr instr;
    instr.kind = InstrKind::Load;
    instr.fmt = fmt;
    instr.bytes = static_cast<std::uint8_t>(fmt.storage_bytes());
    instr.stream = stream;
    instr.vectorizable = in_vector_region();
    instr.dst = next_id();
    trace_.push_back(instr);
    return instr.dst;
}

void TpContext::emit_store(std::uint32_t stream, FpFormat fmt, std::int32_t src) {
    if (!config_.trace) return;
    Instr instr;
    instr.kind = InstrKind::Store;
    instr.fmt = fmt;
    instr.bytes = static_cast<std::uint8_t>(fmt.storage_bytes());
    instr.stream = stream;
    instr.vectorizable = in_vector_region();
    instr.src1 = src;
    trace_.push_back(instr);
}

TraceProgram TpContext::take_program(bool apply_simd) {
    TraceProgram program;
    program.instrs = std::move(trace_);
    program.value_count = value_count_;
    program.values = std::move(values_);
    program.output_taps = std::move(taps_);
    trace_ = Trace{};
    values_.clear();
    taps_.clear();
    value_count_ = 0;
    if (apply_simd) vectorize(program);
    return program;
}

} // namespace tp::sim
