// Sub-word SIMD packing pass.
//
// FlexFloat itself does not vectorize (paper, Section V-A): vectorizable
// program sections are tagged manually in the source, and the toolchain is
// assumed to emit SIMD instructions for them. This pass models that step:
// within tagged regions it groups element operations of the same kind and
// format into SIMD groups of 32/width lanes (two 16-bit or four 8-bit
// lanes), and groups narrow memory accesses to the same array into packed
// 32-bit accesses. 32-bit operations are never grouped — the unit has a
// single 32-bit slice.
#pragma once

#include "sim/trace.hpp"

namespace tp::sim {

/// Annotates `program` in place with SIMD groups. Instructions that join a
/// group get a non-zero simd_group id; the group issues at the trace index
/// of its last member. Groups never span a vector-region boundary (the
/// builder flushes keys when the region closes, yielding partially filled
/// groups only as scalars).
void vectorize(TraceProgram& program);

/// Lanes a format's width allows in a 32-bit datapath (1, 2 or 4).
[[nodiscard]] int simd_lanes_for(FpFormat format) noexcept;

} // namespace tp::sim
