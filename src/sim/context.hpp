// Transprecision execution context: the programming interface the
// benchmark applications are written against.
//
// A kernel computes on TpValue handles (dynamic-format FlexFloat values)
// and TpArray storage. Every arithmetic operation, cast, load and store is
// executed with bit-exact FlexFloat semantics *and*, when tracing is
// enabled, recorded into the instruction trace the virtual platform
// replays. With tracing disabled the same kernel doubles as the fast
// re-runnable binary the precision-tuning loop needs.
//
// Formats are per-value (per variable group in the applications), so one
// kernel source serves the binary32 baseline, every tuning trial, and the
// final mixed-format configuration — exactly the property FlexFloat's
// template class gives the paper's programs, transplanted to runtime
// formats.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "flexfloat/flexfloat_dyn.hpp"
#include "flexfloat/stats.hpp"
#include "sim/trace.hpp"
#include "types/encoding.hpp"
#include "types/format.hpp"

namespace tp::sim {

class TpContext;

/// A traced FP value: FlexFloat semantics plus an SSA id for the pipeline
/// model's dependency tracking. Arithmetic requires matching formats
/// (asserted by FlexFloatDyn); casts are explicit via cast_to().
class TpValue {
public:
    TpValue() noexcept = default;

    [[nodiscard]] double to_double() const noexcept { return value_.value(); }
    [[nodiscard]] FpFormat format() const noexcept { return value_.format(); }
    [[nodiscard]] const FlexFloatDyn& flex() const noexcept { return value_; }

    /// Explicit format conversion; emits a cast instruction.
    [[nodiscard]] TpValue cast_to(FpFormat target) const;

    friend TpValue operator+(const TpValue& a, const TpValue& b);
    friend TpValue operator-(const TpValue& a, const TpValue& b);
    friend TpValue operator*(const TpValue& a, const TpValue& b);
    friend TpValue operator/(const TpValue& a, const TpValue& b);
    friend TpValue operator-(const TpValue& a);
    friend TpValue sqrt(const TpValue& a);
    friend TpValue abs(const TpValue& a);
    /// Fused multiply-add instruction: a * b + c, single rounding.
    friend TpValue fma(const TpValue& a, const TpValue& b, const TpValue& c);

    // Comparisons execute a single-cycle FP compare on the unit.
    friend bool operator<(const TpValue& a, const TpValue& b);
    friend bool operator<=(const TpValue& a, const TpValue& b);
    friend bool operator>(const TpValue& a, const TpValue& b);
    friend bool operator>=(const TpValue& a, const TpValue& b);

private:
    friend class TpContext;
    friend class TpArray;
    TpValue(TpContext* ctx, FlexFloatDyn value, std::int32_t id) noexcept
        : value_(value), id_(id), ctx_(ctx) {}

    // The ops compute their own result through the arithmetic backend
    // (flexfloat/arith_backend.hpp), honoring the owning context's
    // force_emulated policy; results adopt the already-rounded value.
    static TpValue binary(FpOp op, const TpValue& a, const TpValue& b);
    static TpValue ternary(FpOp op, const TpValue& a, const TpValue& b,
                           const TpValue& c);
    static TpValue unary(FpOp op, const TpValue& a);
    static bool compare(const TpValue& a, const TpValue& b, bool result);

    FlexFloatDyn value_{};
    std::int32_t id_ = -1;
    TpContext* ctx_ = nullptr;
};

/// Array storage in a fixed element format. Raw accessors touch the backing
/// store without emitting instructions (workload setup / result readout);
/// load()/store() model real data-memory traffic of element width.
class TpArray {
public:
    [[nodiscard]] FpFormat format() const noexcept { return format_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    /// Setup-time write: quantized to the element format (kept exact in
    /// binary64 shadow mode), no instruction. Defined after TpContext.
    void set_raw(std::size_t i, double value) noexcept;
    /// Readout without instruction emission. Under a record_values capture
    /// each read is additionally recorded as an output tap (the element's
    /// last-stored value id, format and value) — the anchor points the
    /// static analysis inverts its error model at. Defined after TpContext.
    [[nodiscard]] double raw(std::size_t i) const;

    /// Simulated load: one data memory access of storage_bytes() width.
    [[nodiscard]] TpValue load(std::size_t i);
    /// Simulated store; the value's format must equal the element format
    /// (cast explicitly first, as the type system demands).
    void store(std::size_t i, const TpValue& value);

private:
    friend class TpContext;
    TpArray(TpContext* ctx, std::uint32_t stream, FpFormat format, std::size_t n);

    TpContext* ctx_;
    std::uint32_t stream_;
    FpFormat format_;
    std::vector<double> data_;
    /// Last value id stored per element (-1 for set_raw-only elements);
    /// allocated only under record_values captures, else empty.
    std::vector<std::int32_t> writers_;
};

class TpContext {
public:
    struct Config {
        bool trace = true; // false: compute only (fast tuning runs)
        /// Pin every instruction this context executes to the emulated
        /// arithmetic backend (differential testing; results are
        /// bit-identical to the native fast path by contract). The
        /// process/thread knobs in flexfloat/arith_backend.hpp force the
        /// emulated path independently of this flag.
        bool force_emulated = false;
        /// Record the concrete value (and creation format) of every SSA id
        /// into TraceProgram::values, and every TpArray::raw() readout into
        /// TraceProgram::output_taps. Requires trace — the records are
        /// keyed by the ids the trace assigns. Static-analysis captures
        /// (src/analysis/) are the only intended user.
        bool record_values = false;
        /// Compute every operation in plain binary64, ignoring the formats
        /// (which stay recorded in the trace): casts and loads pass values
        /// through, set_raw skips quantization, arithmetic never rounds.
        /// Control flow then follows the binary64 golden execution exactly,
        /// turning the per-value formats into pure dataflow tags — the
        /// shadow reference run the static analysis captures once per
        /// input set (with a per-signal tagging config, the format of a
        /// value identifies the signal that produced it).
        bool binary64_shadow = false;
    };

    TpContext() : TpContext(Config{}) {}
    explicit TpContext(Config config) : config_(config) {
        assert((!config_.record_values || config_.trace) &&
               "record_values keys value records by trace-assigned ids");
    }
    TpContext(const TpContext&) = delete;
    TpContext& operator=(const TpContext&) = delete;

    /// A register-resident constant: no instruction is emitted (the value
    /// is materialized once outside the measured kernel, like FP literals
    /// kept in registers by the compiler), but the id IS recorded under
    /// record_values — constants are the leaves of the dataflow graph.
    [[nodiscard]] TpValue constant(double value, FpFormat format) {
        const FlexFloatDyn ff = config_.binary64_shadow
                                    ? FlexFloatDyn::from_raw(value, format)
                                    : FlexFloatDyn{value, format};
        const std::int32_t id = next_id();
        record_value(id, ff.value(), format);
        return TpValue{this, ff, id};
    }

    /// Integer -> FP conversion instruction (e.g. loop index entering the
    /// FP dataflow).
    [[nodiscard]] TpValue from_int(std::int64_t value, FpFormat format);

    /// Array backed by the simulated data memory.
    [[nodiscard]] TpArray make_array(FpFormat format, std::size_t n) {
        return TpArray{this, next_stream_++, format, n};
    }

    /// Integer ALU work (index arithmetic, address generation, selects).
    void int_ops(int n = 1);
    /// Control transfer; pays a pipeline bubble when simulated.
    void branch(int n = 1);
    /// Canonical per-iteration loop overhead: induction update + branch.
    void loop_iteration() {
        int_ops(1);
        branch(1);
    }

    /// Tags a vectorizable section (RAII); grouping into SIMD instructions
    /// happens in sim::vectorize(). The same guard feeds the FlexFloat
    /// statistics registry's scalar/vectorial split.
    [[nodiscard]] VectorRegionGuard vector_region() { return VectorRegionGuard{}; }

    [[nodiscard]] bool tracing() const noexcept { return config_.trace; }
    [[nodiscard]] bool recording() const noexcept {
        return config_.record_values;
    }
    [[nodiscard]] bool shadow() const noexcept {
        return config_.binary64_shadow;
    }

    /// Backend override for this context's instructions (see Config).
    [[nodiscard]] bool force_emulated() const noexcept {
        return config_.force_emulated;
    }
    void set_force_emulated(bool on) noexcept { config_.force_emulated = on; }

    /// Hands the recorded trace out (and resets the context's trace state).
    /// `apply_simd` runs the vectorization pass, modelling the SIMD-enabled
    /// toolchain; pass false for the scalar baseline.
    [[nodiscard]] TraceProgram take_program(bool apply_simd);

private:
    friend class TpValue;
    friend class TpArray;

    std::int32_t next_id() noexcept {
        return static_cast<std::int32_t>(value_count_++);
    }

    std::int32_t emit_fp(FpOp op, FpFormat fmt, std::int32_t src1,
                         std::int32_t src2, std::int32_t src3 = -1);
    void emit_cmp(FpFormat fmt, std::int32_t src1, std::int32_t src2);
    std::int32_t emit_cast(FpFormat from, FpFormat to, std::int32_t src);
    std::int32_t emit_load(std::uint32_t stream, FpFormat fmt);
    void emit_store(std::uint32_t stream, FpFormat fmt, std::int32_t src);

    /// Wraps a backend result in a FlexFloatDyn: adopted as-rounded
    /// normally, adopted raw (possibly unrepresentable in `format`) in
    /// shadow mode. Static so TpValue/TpArray (friends) reach FlexFloatDyn's
    /// private adopters through one seam.
    static FlexFloatDyn adopt(const TpContext* ctx, double value,
                              FpFormat format) noexcept {
        return ctx->shadow() ? FlexFloatDyn::from_raw(value, format)
                             : FlexFloatDyn::from_rounded(value, format);
    }

    /// Books the concrete value an id took (record_values captures only).
    /// Ids are dense and assigned in creation order, so the records vector
    /// stays aligned with them by construction.
    void record_value(std::int32_t id, double value, FpFormat fmt) {
        if (!config_.record_values || id < 0) return;
        assert(static_cast<std::size_t>(id) == values_.size() &&
               "value records must track id assignment 1:1");
        values_.push_back(ValueRecord{value, fmt});
    }

    void note_output_tap(FpFormat fmt, std::int32_t value_id, double value) {
        taps_.push_back(OutputTap{value, fmt, value_id});
    }

    Config config_;
    Trace trace_;
    std::size_t value_count_ = 0;
    std::uint32_t next_stream_ = 1;
    std::vector<ValueRecord> values_;
    std::vector<OutputTap> taps_;
};

inline TpArray::TpArray(TpContext* ctx, std::uint32_t stream, FpFormat format,
                        std::size_t n)
    : ctx_(ctx), stream_(stream), format_(format), data_(n, 0.0) {
    if (ctx_->recording()) writers_.assign(n, -1);
}

inline void TpArray::set_raw(std::size_t i, double value) noexcept {
    assert(i < data_.size());
    data_[i] = ctx_->shadow() ? value : quantize(value, format_);
}

inline double TpArray::raw(std::size_t i) const {
    assert(i < data_.size());
    if (ctx_->recording()) {
        ctx_->note_output_tap(format_, writers_.empty() ? -1 : writers_[i],
                              data_[i]);
    }
    return data_[i];
}

} // namespace tp::sim
