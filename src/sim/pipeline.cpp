#include "sim/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "fpu/latency_model.hpp"

namespace tp::sim {
namespace {

/// Result latency of a scalar instruction.
int latency_of(const Instr& instr) noexcept {
    switch (instr.kind) {
    case InstrKind::IntAlu: return 1;
    case InstrKind::Branch: return 1;
    case InstrKind::Load: return 1; // single-cycle TCDM
    case InstrKind::Store: return 1;
    case InstrKind::FpArith: return fpu::latency_cycles(instr.op, instr.fmt);
    case InstrKind::FpCast: return fpu::cast_latency_cycles();
    }
    return 1;
}

} // namespace

PipelineResult run_pipeline(const TraceProgram& program, int addr_ops_per_access) {
    PipelineResult result;
    std::vector<std::int64_t> ready(program.value_count, 0);
    std::int64_t next_free_slot = 0; // first cycle the issue stage is free
    std::int64_t fpu_busy_until = 0; // structural hazard for iterative ops

    auto ready_of = [&](std::int32_t id) -> std::int64_t {
        if (id < 0) return 0;
        assert(static_cast<std::size_t>(id) < ready.size());
        return ready[static_cast<std::size_t>(id)];
    };

    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        const Instr& instr = program.instrs[i];

        if (instr.simd_group != 0) {
            const SimdGroup& group = program.groups[instr.simd_group - 1];
            if (group.last_index != i) continue; // issues with its last member
            if (group.kind == InstrKind::Load || group.kind == InstrKind::Store) {
                // Address generation for the single packed access.
                next_free_slot += addr_ops_per_access;
                result.issue_slots += static_cast<std::uint64_t>(addr_ops_per_access);
            }
            std::int64_t issue = next_free_slot;
            for (std::int32_t src : group.srcs) {
                issue = std::max(issue, ready_of(src));
            }
            result.stall_cycles +=
                static_cast<std::uint64_t>(issue - next_free_slot);
            int lat = 1;
            if (group.kind == InstrKind::FpArith) {
                lat = fpu::latency_cycles(group.op, group.fmt);
            }
            for (std::int32_t dst : group.dsts) {
                ready[static_cast<std::size_t>(dst)] = issue + lat;
            }
            next_free_slot = issue + 1;
            ++result.issue_slots;
            continue;
        }

        if (instr.kind == InstrKind::Load || instr.kind == InstrKind::Store) {
            // Address generation precedes the access itself; these integer
            // slots also help hide FP latencies of earlier instructions.
            next_free_slot += addr_ops_per_access;
            result.issue_slots += static_cast<std::uint64_t>(addr_ops_per_access);
        }
        std::int64_t issue = next_free_slot;
        issue = std::max(issue, ready_of(instr.src1));
        issue = std::max(issue, ready_of(instr.src2));
        issue = std::max(issue, ready_of(instr.src3));
        if (instr.kind == InstrKind::FpArith &&
            !fpu::is_pipelined(instr.op, instr.fmt)) {
            issue = std::max(issue, fpu_busy_until);
        }
        result.stall_cycles += static_cast<std::uint64_t>(issue - next_free_slot);

        const int lat = latency_of(instr);
        if (instr.dst >= 0) {
            ready[static_cast<std::size_t>(instr.dst)] = issue + lat;
        }
        if (instr.kind == InstrKind::FpArith &&
            !fpu::is_pipelined(instr.op, instr.fmt)) {
            fpu_busy_until = issue + fpu::initiation_interval(instr.op, instr.fmt);
        }

        next_free_slot = issue + 1;
        if (instr.kind == InstrKind::Branch) {
            // Taken-branch bubble: the fetch stage loses one slot.
            ++next_free_slot;
            ++result.stall_cycles;
        }
        ++result.issue_slots;
    }

    // Drain: the last write-back defines total cycles.
    std::int64_t end = next_free_slot;
    for (std::int64_t r : ready) end = std::max(end, r);
    result.cycles = static_cast<std::uint64_t>(end);
    return result;
}

} // namespace tp::sim
