// Dynamic instruction trace of a transprecision program.
//
// The PULPino virtual platform the paper uses is cycle accurate and reports
// per-instruction cycle counts. This reproduction gets the same quantities
// by executing the real kernels (with real FlexFloat arithmetic) while
// recording a typed instruction trace, then replaying the trace through an
// in-order pipeline model with true data dependencies (sim/pipeline.hpp)
// and integrating energy over it (sim/platform.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp::sim {

enum class InstrKind : std::uint8_t {
    IntAlu,  // integer ALU / address generation
    Branch,  // control flow (one delay slot modelled as a stall)
    Load,    // data memory read
    Store,   // data memory write
    FpArith, // FP operation executed on the transprecision FPU
    FpCast,  // FP<->FP or FP<->int conversion (single cycle)
};

/// One dynamic instruction. `dst`/`src1`/`src2` are SSA-style value ids
/// assigned by the tracing context (-1 when absent); the pipeline model
/// uses them to reproduce data-dependency stalls.
struct Instr {
    InstrKind kind = InstrKind::IntAlu;
    FpOp op = FpOp::Add;     // valid for FpArith
    FpFormat fmt{8, 23};     // operand format (FpArith/FpCast/Load/Store)
    /// Cast target format — meaningful for FpCast only, where the tracing
    /// context always fills it; everywhere else it stays kNoFormat, so a
    /// consumer that forgets to check kind (or has_cast_target()) reads an
    /// invalid format instead of silently misreading an arithmetic
    /// instruction as a binary32 cast.
    FpFormat fmt2 = kNoFormat;
    std::uint8_t bytes = 0;  // access width for Load/Store
    bool vectorizable = false; // emitted inside a tagged vector region
    std::uint32_t simd_group = 0; // 0 = scalar, else 1-based group id
    std::uint32_t stream = 0;     // array id, for grouping memory accesses
    std::int32_t dst = -1;
    std::int32_t src1 = -1;
    std::int32_t src2 = -1;
    std::int32_t src3 = -1; // third operand (fused multiply-add)

    [[nodiscard]] constexpr bool has_cast_target() const noexcept {
        return fmt2.valid();
    }
};

using Trace = std::vector<Instr>;

/// A SIMD group created by the vectorization pass: `lanes` element
/// operations retired by a single instruction slot. Member instructions are
/// adjacent in the rewritten trace; the group issues at `last_index`.
struct SimdGroup {
    std::vector<std::int32_t> dsts;
    std::vector<std::int32_t> srcs;
    std::size_t last_index = 0; // trace index at which the group issues
    int lanes = 0;
    int bytes = 0; // total access width for packed Load/Store groups
    InstrKind kind = InstrKind::FpArith;
    FpOp op = FpOp::Add;
    FpFormat fmt{8, 23};
};

/// The concrete value an SSA id took in a recorded execution, plus the
/// format it was created in. Filled only under
/// TpContext::Config::record_values (static-analysis captures); ids are
/// dense, so records are indexed directly by value id.
struct ValueRecord {
    double value = 0.0;
    FpFormat fmt = kNoFormat;
};

/// One program-output element observed through TpArray::raw() in a
/// recorded execution: the producing value id (-1 when the element was
/// written by set_raw only and never stored), the element format of the
/// array it was read from, and the value itself. The static analysis
/// inverts its per-value error model at exactly these taps.
struct OutputTap {
    double value = 0.0;
    FpFormat fmt = kNoFormat;
    std::int32_t value_id = -1;
};

/// A complete traced execution: the instruction stream, the SIMD groups
/// annotated by vectorize(), and the number of value ids in use. `values`
/// and `output_taps` are populated only by record_values captures
/// (sim/context.hpp) — empty for ordinary traces.
struct TraceProgram {
    Trace instrs;
    std::vector<SimdGroup> groups;
    std::size_t value_count = 0;
    std::vector<ValueRecord> values;
    std::vector<OutputTap> output_taps;
};

} // namespace tp::sim
