// Dynamic instruction trace of a transprecision program.
//
// The PULPino virtual platform the paper uses is cycle accurate and reports
// per-instruction cycle counts. This reproduction gets the same quantities
// by executing the real kernels (with real FlexFloat arithmetic) while
// recording a typed instruction trace, then replaying the trace through an
// in-order pipeline model with true data dependencies (sim/pipeline.hpp)
// and integrating energy over it (sim/platform.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp::sim {

enum class InstrKind : std::uint8_t {
    IntAlu,  // integer ALU / address generation
    Branch,  // control flow (one delay slot modelled as a stall)
    Load,    // data memory read
    Store,   // data memory write
    FpArith, // FP operation executed on the transprecision FPU
    FpCast,  // FP<->FP or FP<->int conversion (single cycle)
};

/// One dynamic instruction. `dst`/`src1`/`src2` are SSA-style value ids
/// assigned by the tracing context (-1 when absent); the pipeline model
/// uses them to reproduce data-dependency stalls.
struct Instr {
    InstrKind kind = InstrKind::IntAlu;
    FpOp op = FpOp::Add;     // valid for FpArith
    FpFormat fmt{8, 23};     // operand format (FpArith/FpCast/Load/Store)
    FpFormat fmt2{8, 23};    // cast target format (FpCast)
    std::uint8_t bytes = 0;  // access width for Load/Store
    bool vectorizable = false; // emitted inside a tagged vector region
    std::uint32_t simd_group = 0; // 0 = scalar, else 1-based group id
    std::uint32_t stream = 0;     // array id, for grouping memory accesses
    std::int32_t dst = -1;
    std::int32_t src1 = -1;
    std::int32_t src2 = -1;
    std::int32_t src3 = -1; // third operand (fused multiply-add)
};

using Trace = std::vector<Instr>;

/// A SIMD group created by the vectorization pass: `lanes` element
/// operations retired by a single instruction slot. Member instructions are
/// adjacent in the rewritten trace; the group issues at `last_index`.
struct SimdGroup {
    std::vector<std::int32_t> dsts;
    std::vector<std::int32_t> srcs;
    std::size_t last_index = 0; // trace index at which the group issues
    int lanes = 0;
    int bytes = 0; // total access width for packed Load/Store groups
    InstrKind kind = InstrKind::FpArith;
    FpOp op = FpOp::Add;
    FpFormat fmt{8, 23};
};

/// A complete traced execution: the instruction stream, the SIMD groups
/// annotated by vectorize(), and the number of value ids in use.
struct TraceProgram {
    Trace instrs;
    std::vector<SimdGroup> groups;
    std::size_t value_count = 0;
};

} // namespace tp::sim
