// The virtual platform: replays a traced execution through the pipeline
// model and integrates the energy model over it, producing the quantities
// the paper's evaluation reports (cycles, memory accesses, energy split
// into FP operations / memory operations / other instructions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "fpu/energy_model.hpp"
#include "sim/trace.hpp"

namespace tp::sim {

/// Core-side modelling parameters.
struct CoreParams {
    /// Integer instructions spent computing the effective address of each
    /// data memory access (index scaling + base add on an RV32IMC-class
    /// core without post-increment addressing). A packed SIMD access pays
    /// this once, which is part of why vectorization shortens execution.
    int addr_ops_per_access = 2;
};

/// Energy split used throughout the paper's Fig. 7.
struct EnergyBreakdown {
    double fp_ops = 0.0;   // FPU arithmetic + conversions + operand moves
    double memory = 0.0;   // data memory accesses
    double other = 0.0;    // integer/branch instructions and stall cycles

    [[nodiscard]] double total() const noexcept { return fp_ops + memory + other; }

    /// Exact (bit-level) equality — the delta-cost contract is bit
    /// identity, so no tolerance belongs here.
    friend bool operator==(const EnergyBreakdown&, const EnergyBreakdown&) = default;
};

/// Per-format dynamic operation counts (Fig. 5's bars).
struct FormatActivity {
    std::uint64_t scalar_ops = 0;     // scalar FP arithmetic operations
    std::uint64_t vector_ops = 0;     // element ops retired in SIMD groups
    std::uint64_t vector_instrs = 0;  // SIMD instructions issued

    friend bool operator==(const FormatActivity&, const FormatActivity&) = default;
};

struct RunReport {
    std::uint64_t cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t issue_slots = 0;

    std::uint64_t mem_accesses = 0;        // total accesses issued on the bus
    std::uint64_t mem_accesses_vector = 0; // of which packed/SIMD accesses
    std::uint64_t mem_bytes = 0;

    std::uint64_t fp_ops = 0;          // scalar FP arithmetic instructions
    std::uint64_t fp_simd_instrs = 0;  // SIMD FP instructions
    std::uint64_t fp_simd_lane_ops = 0;// element ops inside SIMD instructions
    std::uint64_t casts = 0;
    std::uint64_t cast_cycles = 0;
    std::uint64_t int_ops = 0;
    std::uint64_t addr_int_ops = 0; // implicit address-generation work
    std::uint64_t branches = 0;

    std::map<FpFormat, FormatActivity> per_format;

    EnergyBreakdown energy;

    void print(std::ostream& os) const;

    friend bool operator==(const RunReport&, const RunReport&) = default;
};

// --- Region-addressable cost accounting -------------------------------------
//
// The energy/counter integration over a trace is a sum of per-instruction
// terms, so it can be folded per REGION — a run of branch-delimited
// segments — and reassembled. That is what the cast-aware delta-cost path
// (tuning/eval_engine.hpp report_delta + analysis/region_impact.hpp)
// rides on: regions whose instruction sequence provably did not change
// between two bindings splice their memoized RegionCost into the new
// report instead of re-running the accounting. The pipeline model is NOT
// regionized — it is a global in-order scoreboard over value ids — and is
// recomputed in full by every assembly.
//
// Bit-identity contract: simulate() itself is the region fold
// (simulate_regions().report), so a report assembled from any mix of
// freshly costed and spliced regions — in region order — is bit-identical
// to a full simulation, including the floating-point accumulation order
// of the energy terms.

/// Upper bound on cost regions per trace: segments are grouped so the
/// per-report region vector stays small (a branch-heavy trace like
/// jacobi's has tens of thousands of segments).
inline constexpr std::size_t kMaxCostRegions = 128;

/// Half-open instruction range [begin, end) of one cost region.
struct CostRegion {
    std::size_t begin = 0;
    std::size_t end = 0;

    friend bool operator==(const CostRegion&, const CostRegion&) = default;
};

/// The additive slice of a RunReport contributed by one region: every
/// per-instruction-accumulated counter and energy term (the stall-energy
/// term and the pipeline quantities are global and live only in the
/// assembled report). `signature` hashes the region's cost-relevant
/// instruction sequence — equal signatures imply bit-equal cost fields,
/// because every field is a deterministic fold over exactly the hashed
/// inputs (under one energy model; splicing across models is meaningless).
struct RegionCost {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t signature = 0;

    std::uint64_t mem_accesses = 0;
    std::uint64_t mem_accesses_vector = 0;
    std::uint64_t mem_bytes = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t fp_simd_instrs = 0;
    std::uint64_t fp_simd_lane_ops = 0;
    std::uint64_t casts = 0;
    std::uint64_t cast_cycles = 0;
    std::uint64_t int_ops = 0;
    std::uint64_t addr_int_ops = 0;
    std::uint64_t branches = 0;
    std::map<FpFormat, FormatActivity> per_format;
    EnergyBreakdown energy; // without the stall-cycle term

    friend bool operator==(const RegionCost&, const RegionCost&) = default;
};

/// A full simulation plus its per-region cost decomposition; folding
/// `regions` in order reproduces `report` exactly.
struct RegionReport {
    RunReport report;
    std::vector<RegionCost> regions;
};

/// Segments grouped into each cost region for a trace with `branch_count`
/// branches: ceil((branch_count + 1) / kMaxCostRegions). A pure function
/// of the branch count, so two traces with the same branch skeleton
/// partition into the same number of regions at the same segment
/// boundaries.
[[nodiscard]] std::size_t segments_per_cost_region(
    std::uint64_t branch_count) noexcept;

/// Partitions `program` into cost regions: consecutive branch-delimited
/// segments, segments_per_cost_region() of them per region (the last
/// region takes the remainder). SIMD groups never straddle a region —
/// members are adjacent and groups contain no branches.
[[nodiscard]] std::vector<CostRegion> cost_regions(const TraceProgram& program);

/// Accounts the instructions of one region (counters, per-format
/// activity, energy terms, signature). SIMD groups are charged once, at
/// their last member, which lies inside the region.
[[nodiscard]] RegionCost cost_region(const TraceProgram& program,
                                     const CostRegion& region,
                                     const fpu::EnergyModel& model,
                                     const CoreParams& core);

/// Signature-only walk of a region: the hash cost_region() would produce,
/// without any counter or energy work — the cheap validity check the
/// delta path runs before splicing a memoized RegionCost.
[[nodiscard]] std::uint64_t region_signature(const TraceProgram& program,
                                             const CostRegion& region);

/// Folds per-region costs (in region order), runs the pipeline model, and
/// adds the global stall-energy term — the single assembly path shared by
/// full and delta-cost simulation, so both produce identical bits.
[[nodiscard]] RunReport assemble_regions(const TraceProgram& program,
                                         const std::vector<RegionCost>& regions,
                                         const fpu::EnergyModel& model,
                                         const CoreParams& core);

/// Full simulation with the per-region decomposition kept.
[[nodiscard]] RegionReport simulate_regions(const TraceProgram& program,
                                            const fpu::EnergyModel& model =
                                                fpu::default_energy_model(),
                                            const CoreParams& core = CoreParams{});

/// Runs the pipeline and energy models over `program`.
/// The program must already be vectorized (or deliberately not, for a
/// scalar baseline).
[[nodiscard]] RunReport simulate(const TraceProgram& program,
                                 const fpu::EnergyModel& model =
                                     fpu::default_energy_model(),
                                 const CoreParams& core = CoreParams{});

} // namespace tp::sim
