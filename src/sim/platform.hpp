// The virtual platform: replays a traced execution through the pipeline
// model and integrates the energy model over it, producing the quantities
// the paper's evaluation reports (cycles, memory accesses, energy split
// into FP operations / memory operations / other instructions).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>

#include "fpu/energy_model.hpp"
#include "sim/trace.hpp"

namespace tp::sim {

/// Core-side modelling parameters.
struct CoreParams {
    /// Integer instructions spent computing the effective address of each
    /// data memory access (index scaling + base add on an RV32IMC-class
    /// core without post-increment addressing). A packed SIMD access pays
    /// this once, which is part of why vectorization shortens execution.
    int addr_ops_per_access = 2;
};

/// Energy split used throughout the paper's Fig. 7.
struct EnergyBreakdown {
    double fp_ops = 0.0;   // FPU arithmetic + conversions + operand moves
    double memory = 0.0;   // data memory accesses
    double other = 0.0;    // integer/branch instructions and stall cycles

    [[nodiscard]] double total() const noexcept { return fp_ops + memory + other; }
};

/// Per-format dynamic operation counts (Fig. 5's bars).
struct FormatActivity {
    std::uint64_t scalar_ops = 0;     // scalar FP arithmetic operations
    std::uint64_t vector_ops = 0;     // element ops retired in SIMD groups
    std::uint64_t vector_instrs = 0;  // SIMD instructions issued
};

struct RunReport {
    std::uint64_t cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t issue_slots = 0;

    std::uint64_t mem_accesses = 0;        // total accesses issued on the bus
    std::uint64_t mem_accesses_vector = 0; // of which packed/SIMD accesses
    std::uint64_t mem_bytes = 0;

    std::uint64_t fp_ops = 0;          // scalar FP arithmetic instructions
    std::uint64_t fp_simd_instrs = 0;  // SIMD FP instructions
    std::uint64_t fp_simd_lane_ops = 0;// element ops inside SIMD instructions
    std::uint64_t casts = 0;
    std::uint64_t cast_cycles = 0;
    std::uint64_t int_ops = 0;
    std::uint64_t addr_int_ops = 0; // implicit address-generation work
    std::uint64_t branches = 0;

    std::map<FpFormat, FormatActivity> per_format;

    EnergyBreakdown energy;

    void print(std::ostream& os) const;
};

/// Runs the pipeline and energy models over `program`.
/// The program must already be vectorized (or deliberately not, for a
/// scalar baseline).
[[nodiscard]] RunReport simulate(const TraceProgram& program,
                                 const fpu::EnergyModel& model =
                                     fpu::default_energy_model(),
                                 const CoreParams& core = CoreParams{});

} // namespace tp::sim
