// TuningService — batched precision tuning on long-lived EvalEngines.
//
// The paper's flow tunes one application for one quality requirement at a
// time. A tuning service sees a different workload: bursts of requests,
// many of them for the same application at overlapping requirements —
// and the engine's memoization makes the overlap mostly free (the
// measured epsilon sweeps eliminate 44-58% of kernel executions on a
// shared engine, 100% for exact repeats). The service exploits that:
//
//   * one long-lived EvalEngine per application — every request for an
//     app shares its golden outputs, clone pool, and memoized trial
//     cache, across batches, for the service's lifetime;
//   * a shared thread pool of batch workers — independent searches run
//     concurrently, one request per task. Each search runs its own
//     trials inline (the engines are pool-less), so cross-request
//     parallelism replaces intra-search parallelism and nothing ever
//     blocks on a queued task (no pool-in-pool deadlock);
//   * single-flight trial execution (tuning/eval_engine.hpp) — two
//     concurrent searches probing the same (input_set, config) run the
//     kernel once; the second waits and counts as a cache hit;
//   * an LRU memory budget per engine — long-lived caches stop fitting
//     in memory eventually; eviction only costs re-runs.
//
// Determinism: each request's TuningResult depends only on its own
// (app, epsilon, input_sets, options) — by the engine's cache-coherent
// contract it is bit-identical for any service thread count and any
// cache/eviction state, and results are returned in request order.
// EvalStats counters are exact at any thread count (single-flight).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tuning/cast_aware.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace tp::tuning {

/// One tuning request: minimize per-signal precision of `app` subject to
/// the quality requirement `epsilon` over `input_sets`.
struct TuningRequest {
    std::string app;                     // apps::make_app name
    double epsilon = 1e-1;               // output-quality requirement
    std::vector<unsigned> input_sets{0, 1, 2};
    /// Remaining search knobs (type system, pass/round budgets). The
    /// epsilon, input_sets, and threads fields of `options` are
    /// overridden by the request fields / the service's scheduling.
    SearchOptions options{};
};

/// A batch's outcome: per-request results in request order, plus the
/// counter delta the batch produced across all engines it touched.
struct TuningBatchResult {
    std::vector<TuningResult> results;
    EvalStats stats;

    /// Fraction of the batch's trials served from engine caches —
    /// includes hits *across* requests, the quantity a batched service
    /// exists to maximize.
    [[nodiscard]] double hit_rate() const noexcept { return stats.hit_rate(); }
};

class TuningService {
public:
    struct Options {
        /// Concurrent searches (batch workers); <= 1 runs batches
        /// serially in request order on the calling thread.
        unsigned threads = 1;
        /// Trial memoization for every engine the service creates.
        bool memoize = true;
        /// Per-app engine cache budget in bytes; 0 = unbounded. See
        /// EvalEngine::Options::cache_budget_bytes.
        std::size_t cache_budget_bytes = 0;
    };

    TuningService(); // default Options
    explicit TuningService(const Options& options);
    TuningService(const TuningService&) = delete;
    TuningService& operator=(const TuningService&) = delete;
    ~TuningService();

    /// Runs every request of `batch` and returns results in request
    /// order. Unknown app names throw std::out_of_range before any
    /// search is scheduled. Safe to call from multiple threads; note
    /// that concurrent batches share engines, so TuningBatchResult::stats
    /// then includes the interleaved work of both.
    TuningBatchResult run(const std::vector<TuningRequest>& batch);

    /// Cast-aware search (tuning/cast_aware.hpp) through `app_name`'s
    /// long-lived service engine: the base search reuses configs earlier
    /// batches probed, and subsequent batched requests for the app reuse
    /// the probes this pass ran — the caches are shared both ways.
    /// `options.search.threads` is ignored (the engine is pool-less; the
    /// pass runs inline on the calling thread). The returned eval_stats is
    /// the engine's counter delta over the call. Safe to call concurrently
    /// with run(); as with run()'s batch stats, concurrent work on the
    /// same app's engine then interleaves into that delta.
    CastAwareResult cast_aware(std::string_view app_name,
                               const CastAwareOptions& options);

    /// The long-lived engine serving `app_name`, created on first use
    /// (throws std::out_of_range for unknown names). Exposed for
    /// observability — cache_bytes(), stats() — and for callers that mix
    /// batched and direct searches on the same cache.
    EvalEngine& engine(std::string_view app_name);

    /// Engines created so far (one per distinct app requested).
    [[nodiscard]] std::size_t engine_count() const;

    /// Lifetime aggregate of every engine's counters.
    [[nodiscard]] EvalStats stats() const;

private:
    Options options_;
    std::unique_ptr<util::ThreadPool> pool_; // null when threads <= 1

    mutable std::mutex engines_mutex_;
    // Node-stable: engine() hands out references that live as long as
    // the service. Heterogeneous lookup spares a string copy per request.
    std::map<std::string, std::unique_ptr<EvalEngine>, std::less<>> engines_;
};

} // namespace tp::tuning
