// TuningService — asynchronous precision-tuning service on long-lived
// per-app EvalEngines.
//
// The paper's flow tunes one application for one quality requirement at
// a time; the service scenario is sustained traffic: bursts of requests,
// many for the same app at overlapping requirements, a few of them
// interactive and latency-sensitive, most of them long epsilon sweeps.
// The PR-3 surface was synchronous-batch-only — a caller with one small
// request was blocked behind whole batches. The public API is now
// asynchronous submission with admission control:
//
//   * submit(Request) -> TicketHandle — a unified Request carries one of
//     three work variants (plain search, cast-aware pass, epsilon sweep),
//     a Priority, and an optional deadline. submit() validates the app
//     name (std::out_of_range before anything is admitted), resolves the
//     app's long-lived engine, and enqueues; the handle exposes
//     wait()/get(), status(), cancel(), the per-request EvalStats delta,
//     and admission/completion timestamps;
//   * scheduling is a priority queue over a persistent worker pool
//     (util/priority_scheduler.hpp): workers pop by (priority, admission
//     order), so a high-priority interactive request submitted behind
//     twenty queued sweeps runs next, not last. Requests whose deadline
//     has passed while queued complete exceptionally with DeadlineExpired
//     — eagerly, at the next queue-lock acquisition (their captured work
//     payload is released on the spot), or at pop time as the backstop —
//     instead of consuming a worker; cancel() takes effect on queued
//     requests (running requests finish) and removes the queue entry
//     immediately, so cancelled work never counts toward queue depths or
//     admission caps;
//   * fairness under sustained overload: with Options::aging_quantum set,
//     a queued request's effective priority escalates with queue time
//     (base + queue_time / quantum), so an unbroken kInteractive stream
//     cannot starve kSweep forever — a sweep's wait is bounded by the
//     class gap times the quantum plus the backlog at that rank. Zero
//     (the default) keeps strict priority;
//   * admission control: Options::max_queued_per_class caps the LIVE
//     queued requests per priority class — submit() past the cap throws
//     RequestRejected (kQueueFull) instead of letting latency grow
//     without bound — and with Options::deadline_admission, a request
//     whose deadline is already past or earlier than the backlog estimate
//     (mean completed-run time x queued-ahead / workers) is refused at
//     submit() with RequestRejected (kDeadlineUnmeetable) rather than
//     admitted to expire. Rejected requests are never admitted: no
//     ticket, no queue entry, no engine work;
//   * one long-lived EvalEngine per app — every request for an app
//     shares its golden outputs, clone pool, and memoized trial cache
//     (single-flight, LRU-budgeted), across requests and batches, for
//     the service's lifetime. Engines are pool-less: each request runs
//     its trials inline on its scheduler worker, so cross-request
//     parallelism replaces intra-search parallelism and nothing ever
//     blocks on a queued task (no pool-in-pool deadlock);
//   * run(batch) and cast_aware(app, options) survive as thin
//     submit-all-then-wait wrappers with byte-identical results and
//     exact aggregate stats — every pre-async caller keeps working.
//
// Determinism (scheduling-independent): a request's result depends only
// on its own work payload — never on priority, deadline, admission
// order, cancellation of OTHER requests, worker count, cache state (the
// engine's cache-coherent contract, tuning/search.hpp), the aging
// quantum, queue caps, or rejections around it. QoS and admission knobs
// reorder or refuse work; they cannot change the bits of any completed
// result. Per-request EvalStats deltas
// are exact at any concurrency: each request runs inline on one worker
// inside an EvalStatsScope (tuning/eval_engine.hpp), so concurrent
// requests on a shared engine attribute every counter bump to exactly
// one ticket.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "tuning/cast_aware.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace tp::util {
class PriorityScheduler;
}

namespace tp::tuning {

/// One plain tuning request: minimize per-signal precision of `app`
/// subject to the quality requirement `epsilon` over `input_sets`.
struct TuningRequest {
    std::string app;                     // apps::make_app name
    double epsilon = 1e-1;               // output-quality requirement
    std::vector<unsigned> input_sets{0, 1, 2};
    /// Remaining search knobs (type system, pass/round budgets). The
    /// epsilon, input_sets, and threads fields of `options` are
    /// overridden by the request fields / the service's scheduling.
    SearchOptions options{};
};

/// An epsilon sweep: one search per requirement, in order, on the app's
/// shared engine — the overlap between the sweep's own searches is served
/// from cache. Resolves to one TuningResult per epsilon. With
/// `warm_start` (the default) the searches are chained by sweep_search
/// (tuning/search.hpp): each is seeded from the tightest completed
/// epsilon's result, cutting the trials submitted while every result
/// still meets its epsilon with per-signal precision at or below the
/// independent search's; the results are bit-identical to a standalone
/// sweep_search call — still a pure function of the request, independent
/// of scheduling — but NOT to standalone per-epsilon TuningRequests.
/// With `warm_start` false every search runs cold and each result IS
/// bit-identical to a standalone TuningRequest at that epsilon.
struct SweepRequest {
    std::string app;
    std::vector<double> epsilons{1e-3, 1e-2, 1e-1};
    std::vector<unsigned> input_sets{0, 1, 2};
    SearchOptions options{};
    bool warm_start = true;
};

/// Scheduling class of a request. Higher runs first; within a class,
/// admission order (FIFO). Purely a QoS knob: results are independent of
/// the priority a request ran at.
enum class Priority : int {
    kSweep = 0,       // bulk work: epsilon sweeps, batch backfill
    kNormal = 1,      // default
    kInteractive = 2, // small latency-sensitive requests
};

/// The unified submission payload: what to run (one of the three work
/// variants), how urgently, and optionally by when it must have STARTED.
/// A request still queued when `deadline` passes is rejected with
/// DeadlineExpired — eagerly when any thread next touches the queue (its
/// captured payload is released then, not held until pop), at pop time as
/// the backstop — and never consumes a worker; a request that starts
/// before the deadline runs to completion. With
/// Options::deadline_admission, a deadline that provably cannot be met
/// is refused at submit() instead (RequestRejected).
struct Request {
    using Work = std::variant<TuningRequest, CastAwareRequest, SweepRequest>;
    Work work;
    Priority priority = Priority::kNormal;
    std::optional<std::chrono::steady_clock::time_point> deadline{};
};

/// What a completed request resolves to, matching Request::Work
/// position-for-position: TuningResult for a plain search, CastAwareResult
/// for a cast-aware pass, one TuningResult per epsilon for a sweep.
using RequestResult =
    std::variant<TuningResult, CastAwareResult, std::vector<TuningResult>>;

/// Ticket lifecycle. Queued -> Running -> Done | Failed on the normal
/// path; Queued -> Cancelled via cancel(); Queued -> Expired when the
/// deadline passes before a worker picks the request up. Terminal states
/// (Done, Failed, Cancelled, Expired) are final.
enum class RequestStatus {
    kQueued,
    kRunning,
    kDone,
    kCancelled, // typed rejection: TicketHandle::get() throws RequestCancelled
    kExpired,   // typed rejection: TicketHandle::get() throws DeadlineExpired
    kFailed,    // the search threw; get() rethrows the original exception
};

/// Thrown by TicketHandle::get() for a request cancelled while queued.
class RequestCancelled final : public std::runtime_error {
public:
    explicit RequestCancelled(std::uint64_t id)
        : std::runtime_error("tuning request #" + std::to_string(id) +
                             " was cancelled while queued") {}
};

/// Thrown by TicketHandle::get() for a request still queued past its
/// deadline.
class DeadlineExpired final : public std::runtime_error {
public:
    explicit DeadlineExpired(std::uint64_t id)
        : std::runtime_error("tuning request #" + std::to_string(id) +
                             " missed its deadline while queued") {}
};

/// Thrown by TuningService::submit() when admission control refuses a
/// request (load shedding). Unlike the rejections above, the request was
/// NEVER admitted: no ticket exists, nothing is queued, no engine work
/// will run for it — the caller sheds the load or retries later.
class RequestRejected final : public std::runtime_error {
public:
    enum class Reason {
        /// The live queue for the request's priority class is at
        /// Options::max_queued_per_class (cancelled/expired entries
        /// don't count — the cap bounds real work).
        kQueueFull,
        /// Options::deadline_admission is on and the request's deadline
        /// is already past, or earlier than the current backlog estimate
        /// allows (see submit()).
        kDeadlineUnmeetable,
    };

    RequestRejected(Reason reason, const std::string& what)
        : std::runtime_error(what), reason_(reason) {}
    [[nodiscard]] Reason reason() const noexcept { return reason_; }

private:
    Reason reason_;
};

/// Lifetime admission counters: every submit() outcome is exactly one of
/// these. admitted covers requests that got a ticket (whatever their
/// eventual fate); the rejected_* counters are typed load-shedding.
struct AdmissionStats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;

    [[nodiscard]] std::uint64_t submitted() const noexcept {
        return admitted + rejected_queue_full + rejected_deadline;
    }
    friend bool operator==(const AdmissionStats&,
                           const AdmissionStats&) = default;
};

namespace detail {
struct ServiceTicket;
struct RunTimeEstimator;
}

/// Shared handle to one submitted request. Cheap to copy; every copy
/// observes the same ticket. Outlives the service safely: a handle held
/// across service destruction still resolves (the destructor cancels
/// queued work and drains running work before returning).
class TicketHandle {
public:
    TicketHandle() = default; // empty; valid() is false

    [[nodiscard]] bool valid() const noexcept { return ticket_ != nullptr; }

    /// Monotone submission id, quoted by the typed rejection exceptions.
    /// Requests submitted from one thread carry increasing ids in their
    /// admission order.
    [[nodiscard]] std::uint64_t id() const;

    [[nodiscard]] RequestStatus status() const;

    /// Blocks until the ticket is terminal.
    void wait() const;

    /// wait(), then: the result for kDone; throws RequestCancelled /
    /// DeadlineExpired for the typed rejections; rethrows the search's
    /// exception for kFailed. The reference stays valid while any handle
    /// to the ticket lives.
    const RequestResult& get() const;

    /// Variant accessors over get() — throw std::bad_variant_access when
    /// the request was not of the matching kind.
    [[nodiscard]] const TuningResult& search_result() const;
    [[nodiscard]] const CastAwareResult& cast_aware_result() const;
    [[nodiscard]] const std::vector<TuningResult>& sweep_results() const;

    /// Cancels the request if it is still queued: the ticket becomes
    /// kCancelled, no kernel ever runs for it, and waiters wake. Returns
    /// true exactly then. A running request finishes (returns false); on
    /// an already-terminal ticket this is a no-op (returns false).
    bool cancel() const;

    /// The exact engine-counter delta this request produced (zeros until
    /// the ticket is terminal, and for cancelled/expired tickets, which
    /// run nothing; a kFailed ticket reports the work it did before
    /// throwing). Exact even when concurrent requests share the engine —
    /// see EvalStatsScope.
    [[nodiscard]] EvalStats stats() const;

    /// Admission / terminal-transition timestamps; completion latency is
    /// completed_at() - submitted_at(). completed_at() is meaningful only
    /// once terminal.
    [[nodiscard]] std::chrono::steady_clock::time_point submitted_at() const;
    [[nodiscard]] std::chrono::steady_clock::time_point completed_at() const;

private:
    friend class TuningService;
    explicit TicketHandle(std::shared_ptr<detail::ServiceTicket> ticket)
        : ticket_(std::move(ticket)) {}

    std::shared_ptr<detail::ServiceTicket> ticket_;
};

/// A batch's outcome: per-request results in request order, plus the
/// exact counter delta the batch produced (the sum of its requests'
/// per-ticket deltas — concurrent foreign traffic on the same engines is
/// NOT included).
struct TuningBatchResult {
    std::vector<TuningResult> results;
    EvalStats stats;

    /// Fraction of the batch's trials served from engine caches —
    /// includes hits *across* requests, the quantity a batched service
    /// exists to maximize.
    [[nodiscard]] double hit_rate() const noexcept { return stats.hit_rate(); }
};

class TuningService {
public:
    struct Options {
        /// Scheduler workers — concurrent requests in flight. At least
        /// one worker always exists (submission is asynchronous even at
        /// threads = 1; a single worker executes strictly in (priority,
        /// admission) order).
        unsigned threads = 1;
        /// Trial memoization for every engine the service creates.
        bool memoize = true;
        /// Per-app engine cache budget in bytes; 0 = unbounded. See
        /// EvalEngine::Options::cache_budget_bytes.
        std::size_t cache_budget_bytes = 0;
        /// Live queued requests allowed per priority class; 0 (default)
        /// = unbounded. Past the cap, submit() throws RequestRejected
        /// (kQueueFull). Running requests and cancelled/expired entries
        /// never count.
        std::size_t max_queued_per_class = 0;
        /// Anti-starvation aging quantum: a queued request's effective
        /// priority is its class + queue_time / quantum, so sustained
        /// high-priority traffic cannot starve lower classes forever.
        /// Zero (default) keeps strict priority. Purely a QoS knob —
        /// results never depend on it (determinism contract).
        std::chrono::steady_clock::duration aging_quantum{};
        /// Reject-at-submit for hopeless deadlines: a request carrying a
        /// deadline that is already past, or closer than the backlog
        /// estimate (mean completed-run seconds x live requests queued at
        /// >= its priority / workers), throws RequestRejected
        /// (kDeadlineUnmeetable) instead of queueing only to expire. The
        /// estimate ignores aged-up lower classes, so it under-estimates
        /// at worst — an admitted-but-doomed request still expires on the
        /// lazy path. Off by default: deadlines then keep the purely lazy
        /// expire-while-queued semantics.
        bool deadline_admission = false;
    };

    TuningService(); // default Options
    explicit TuningService(const Options& options);
    TuningService(const TuningService&) = delete;
    TuningService& operator=(const TuningService&) = delete;

    /// Cancels everything still queued (their waiters observe kCancelled),
    /// lets running requests finish, then joins the workers. Never
    /// deadlocks on queued work; results already computed stay
    /// retrievable through surviving handles.
    ~TuningService();

    /// Admits one request. Admission control runs BEFORE anything is
    /// enqueued: an unknown app name throws std::out_of_range, a full
    /// priority class (Options::max_queued_per_class) throws
    /// RequestRejected{kQueueFull}, and with Options::deadline_admission
    /// a hopeless deadline throws RequestRejected{kDeadlineUnmeetable} —
    /// in every rejecting case the service queue is untouched and no
    /// ticket exists. Otherwise returns immediately with the ticket.
    /// Thread-safe; requests submitted from one thread are admitted in
    /// program order. Must not be called from inside a request running on
    /// this service (a saturated scheduler would deadlock on the
    /// dependency).
    TicketHandle submit(Request request);

    /// Synchronous wrapper: submits every request of `batch` at
    /// Priority::kNormal and waits for all of them. Results in request
    /// order; stats is the exact sum of the per-request deltas. Unknown
    /// app names throw std::out_of_range before any request is admitted.
    /// If a search fails, every request of the batch is still awaited
    /// before the first error is rethrown. Safe to call from multiple
    /// threads; concurrent submitters simply share the queue.
    TuningBatchResult run(const std::vector<TuningRequest>& batch);

    /// Synchronous wrapper: submits the cast-aware variant at
    /// Priority::kNormal and waits. The pass runs on `app_name`'s
    /// long-lived engine, so it shares the service caches with plain
    /// requests, both ways. The returned eval_stats is the pass's own
    /// counter delta (exact; see EvalStatsScope).
    CastAwareResult cast_aware(std::string_view app_name,
                               const CastAwareOptions& options);

    /// The long-lived engine serving `app_name`, created on first use
    /// (throws std::out_of_range for unknown names). Exposed for
    /// observability — cache_bytes(), stats() — and for callers that mix
    /// submitted and direct searches on the same cache.
    EvalEngine& engine(std::string_view app_name);

    /// Engines created so far (one per distinct app requested).
    [[nodiscard]] std::size_t engine_count() const;

    /// Lifetime aggregate of every engine's counters.
    [[nodiscard]] EvalStats stats() const;

    /// LIVE queued requests right now — cancelled and expired entries are
    /// removed from the queue the moment they go terminal, so this is the
    /// real backlog, the number admission decisions are built on (the old
    /// scheduler counted tombstones here).
    [[nodiscard]] std::size_t queued() const;

    /// Lifetime admission outcomes (admitted / typed rejections).
    [[nodiscard]] AdmissionStats admission_stats() const;

private:
    Options options_;

    mutable std::mutex engines_mutex_;
    // Node-stable: engine() hands out references that live as long as
    // the service. Heterogeneous lookup spares a string copy per request.
    std::map<std::string, std::unique_ptr<EvalEngine>, std::less<>> engines_;

    mutable std::mutex tickets_mutex_;
    std::uint64_t next_ticket_id_ = 0;
    AdmissionStats admission_stats_;
    // Every outstanding ticket, for destructor-time cancellation. Weak:
    // the queue's closures own the tickets; expired entries are pruned on
    // submit.
    std::vector<std::weak_ptr<detail::ServiceTicket>> tickets_;

    // Mean run time of completed requests, feeding the deadline-admission
    // backlog estimate. Shared with the worker closures so recording
    // outlives any individual submit.
    std::shared_ptr<detail::RunTimeEstimator> estimator_;

    // Declared last: destruction drains the workers while the engines and
    // ticket registry above are still alive. Shared so tickets can hold a
    // weak reference for cancel-time queue-entry discarding without tying
    // their lifetime to the service's.
    std::shared_ptr<util::PriorityScheduler> scheduler_;
};

} // namespace tp::tuning
