// Precision-configuration files, in the contract the paper describes for
// DistributedSearch: "the configuration file should include a list of
// numbers, which correspond to the precision bits used for program
// variables", and the target program "is able to read the configuration
// file to tune the precision of its variables accordingly".
//
// Format: one `<signal-name> <precision-bits>` pair per line; '#' starts a
// comment. Signal order is not significant.
//
// This is the one boundary where signals are named: everywhere else they
// are dense SignalIds (apps/signal_table.hpp). The table-aware overloads
// translate and validate — a config naming a signal the app does not
// declare is rejected loudly instead of being carried along silently.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "apps/signal_table.hpp"

namespace tp::tuning {

using PrecisionConfig = std::map<std::string, int>;

/// Parses a configuration stream; throws std::runtime_error on malformed
/// lines or out-of-range precisions.
[[nodiscard]] PrecisionConfig read_precision_config(std::istream& is);

/// Parses and validates against `table`: every named signal must exist.
/// Throws std::runtime_error naming the offending signal otherwise.
[[nodiscard]] PrecisionConfig read_precision_config(
    std::istream& is, const apps::SignalTable& table);

/// Checks an already-parsed config against an app's signal table; throws
/// std::runtime_error listing the first unknown signal.
void validate_precision_config(const PrecisionConfig& config,
                               const apps::SignalTable& table);

/// Writes a configuration in the same format.
void write_precision_config(std::ostream& os, const PrecisionConfig& config);

/// Translates a parsed config into warm-start seed bits (WarmStart::
/// seed_bits, tuning/search.hpp) in SignalId (declaration) order. Stricter
/// than validate_precision_config: a seed must also COVER the table —
/// every declared signal needs a starting precision, so a missing entry
/// throws std::runtime_error naming it. (TuningResult::precision_config of
/// a previous run covers by construction; a hand-written file may not.)
[[nodiscard]] std::vector<int> seed_bits_from_config(
    const PrecisionConfig& config, const apps::SignalTable& table);

/// Reads a config stream and converts it to seed bits in one step — the
/// "seed a search from a previous run's saved file" path. Equivalent to
/// read_precision_config(is, table) + seed_bits_from_config.
[[nodiscard]] std::vector<int> read_warm_start_seed(
    std::istream& is, const apps::SignalTable& table);

} // namespace tp::tuning
