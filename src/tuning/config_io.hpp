// Precision-configuration files, in the contract the paper describes for
// DistributedSearch: "the configuration file should include a list of
// numbers, which correspond to the precision bits used for program
// variables", and the target program "is able to read the configuration
// file to tune the precision of its variables accordingly".
//
// Format: one `<signal-name> <precision-bits>` pair per line; '#' starts a
// comment. Signal order is not significant.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace tp::tuning {

using PrecisionConfig = std::map<std::string, int>;

/// Parses a configuration stream; throws std::runtime_error on malformed
/// lines or out-of-range precisions.
[[nodiscard]] PrecisionConfig read_precision_config(std::istream& is);

/// Writes a configuration in the same format.
void write_precision_config(std::ostream& os, const PrecisionConfig& config);

} // namespace tp::tuning
