#include "tuning/config_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "types/type_system.hpp"

namespace tp::tuning {

PrecisionConfig read_precision_config(std::istream& is) {
    PrecisionConfig config;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream fields{line};
        std::string name;
        if (!(fields >> name)) continue; // blank/comment line
        int bits = 0;
        if (!(fields >> bits)) {
            throw std::runtime_error("precision config line " +
                                     std::to_string(line_no) +
                                     ": missing precision bits");
        }
        if (bits < kMinPrecisionBits || bits > kMaxPrecisionBits) {
            throw std::runtime_error(
                "precision config line " + std::to_string(line_no) +
                ": precision out of range [" +
                std::to_string(kMinPrecisionBits) + ", " +
                std::to_string(kMaxPrecisionBits) + "]");
        }
        std::string extra;
        if (fields >> extra) {
            throw std::runtime_error("precision config line " +
                                     std::to_string(line_no) +
                                     ": trailing tokens");
        }
        config[name] = bits;
    }
    return config;
}

PrecisionConfig read_precision_config(std::istream& is,
                                      const apps::SignalTable& table) {
    PrecisionConfig config = read_precision_config(is);
    validate_precision_config(config, table);
    return config;
}

void validate_precision_config(const PrecisionConfig& config,
                               const apps::SignalTable& table) {
    for (const auto& [name, bits] : config) {
        (void)bits;
        if (!table.contains(name)) {
            throw std::runtime_error(
                "precision config: unknown signal '" + name +
                "' (the application declares no such variable)");
        }
    }
}

void write_precision_config(std::ostream& os, const PrecisionConfig& config) {
    os << "# <signal> <precision-bits>\n";
    for (const auto& [name, bits] : config) {
        os << name << ' ' << bits << '\n';
    }
}

std::vector<int> seed_bits_from_config(const PrecisionConfig& config,
                                       const apps::SignalTable& table) {
    validate_precision_config(config, table);
    std::vector<int> seed;
    seed.reserve(table.size());
    for (const apps::SignalSpec& spec : table.specs()) {
        const auto it = config.find(spec.name);
        if (it == config.end()) {
            throw std::runtime_error(
                "warm-start seed: no precision for signal '" + spec.name +
                "' (a seed must cover every declared variable)");
        }
        seed.push_back(it->second);
    }
    return seed;
}

std::vector<int> read_warm_start_seed(std::istream& is,
                                      const apps::SignalTable& table) {
    return seed_bits_from_config(read_precision_config(is, table), table);
}

} // namespace tp::tuning
