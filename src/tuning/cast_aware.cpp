#include "tuning/cast_aware.hpp"

#include <array>
#include <memory>
#include <vector>

#include "tuning/quality.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {
namespace {

struct Cost {
    double energy_pj = 0.0;
    std::uint64_t casts = 0;
};

/// Simulated platform cost of one binding. Pure in `app` — the caller hands
/// each concurrent evaluation its own clone.
Cost platform_cost(apps::App& app, const apps::TypeConfig& config,
                   const CastAwareOptions& options) {
    app.prepare(options.cost_input_set);
    sim::TpContext ctx;
    (void)app.run(ctx, config);
    const sim::RunReport report = sim::simulate(ctx.take_program(options.simd));
    return Cost{report.energy.total(), report.casts};
}

/// Quality check on every input set. Per-set evaluations are independent
/// and run on the pool when one is available; the serial path keeps the
/// first-failure short-circuit. The conjunction over sets is
/// order-independent and feeds no run counter, so both paths return the
/// same boolean.
bool meets_everywhere(util::ThreadPool* pool, const apps::App& prototype,
                      const apps::TypeConfig& config,
                      const CastAwareOptions& options) {
    const auto check_set = [&prototype, &config, &options](std::size_t s) -> char {
        const unsigned set = options.search.input_sets[s];
        const std::unique_ptr<apps::App> app = prototype.clone();
        const auto golden = app->golden(set);
        app->prepare(set);
        sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
        const auto out = app->run(ctx, config);
        return meets_requirement(golden, out, options.search.epsilon) ? 1 : 0;
    };
    if (pool == nullptr) {
        for (std::size_t s = 0; s < options.search.input_sets.size(); ++s) {
            if (check_set(s) == 0) return false;
        }
        return true;
    }
    const std::vector<char> passed =
        util::indexed_map(pool, options.search.input_sets.size(), check_set);
    for (const char ok : passed) {
        if (ok == 0) return false;
    }
    return true;
}

} // namespace

CastAwareResult cast_aware_search(apps::App& app, const CastAwareOptions& options) {
    CastAwareResult result;
    result.base = distributed_search(app, options.search);
    result.config = result.base.type_config();

    std::unique_ptr<util::ThreadPool> owned_pool;
    if (options.search.threads > 1) {
        owned_pool = std::make_unique<util::ThreadPool>(options.search.threads);
    }
    util::ThreadPool* pool = owned_pool.get();

    const Cost base_cost = platform_cost(app, result.config, options);
    result.base_energy_pj = base_cost.energy_pj;
    result.base_casts = base_cost.casts;

    // Candidate formats: the members of the type system in use.
    std::array<FormatKind, 4> members{FormatKind::Binary8, FormatKind::Binary16,
                                      FormatKind::Binary16Alt,
                                      FormatKind::Binary32};

    apps::TypeConfig current = result.config;
    Cost current_cost = base_cost;
    for (int round = 0; round < options.max_rounds; ++round) {
        bool improved = false;
        for (const SignalResult& sr : result.base.signals) {
            const FpFormat original = current.at(sr.name);

            // Re-binding candidates for this signal, in fixed member order.
            std::vector<FpFormat> candidates;
            for (const FormatKind kind : members) {
                if (!options.search.type_system.contains(kind)) continue;
                const FpFormat candidate = format_of(kind);
                if (candidate == original) continue;
                candidates.push_back(candidate);
            }

            // Cost probes are independent given `current`: fan them out,
            // each on a private app clone.
            const std::vector<Cost> costs = util::indexed_map(
                pool, candidates.size(),
                [&app, &current, &options, &candidates,
                 &sr](std::size_t k) -> Cost {
                    apps::TypeConfig config = current;
                    config.set(sr.name, candidates[k]);
                    const std::unique_ptr<apps::App> clone = app.clone();
                    return platform_cost(*clone, config, options);
                });

            // Deterministic acceptance: scan candidates in member order;
            // energy must strictly improve, and quality is re-verified on
            // every input set before accepting (the expensive check runs
            // only on otherwise-improving moves).
            FpFormat best = original;
            Cost best_cost = current_cost;
            for (std::size_t k = 0; k < candidates.size(); ++k) {
                if (costs[k].energy_pj >= best_cost.energy_pj) continue;
                apps::TypeConfig config = current;
                config.set(sr.name, candidates[k]);
                if (meets_everywhere(pool, app, config, options)) {
                    best = candidates[k];
                    best_cost = costs[k];
                }
            }
            current.set(sr.name, best);
            if (!(best == original)) {
                current_cost = best_cost;
                ++result.moves_accepted;
                improved = true;
            }
        }
        if (!improved) break;
    }

    result.config = current;
    result.tuned_energy_pj = current_cost.energy_pj;
    result.tuned_casts = platform_cost(app, current, options).casts;
    return result;
}

} // namespace tp::tuning
