#include "tuning/cast_aware.hpp"

#include <array>
#include <vector>

#include "tuning/eval_engine.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {
namespace {

struct Cost {
    double energy_pj = 0.0;
    std::uint64_t casts = 0;
};

/// Simulated platform cost of one binding, via the engine's memoized
/// report cache. Safe from pool workers. A non-null `base` (the binding
/// `config` was derived from — here always the round's current binding)
/// routes through the delta-cost path when the options ask for it:
/// bit-identical report, fewer re-costed regions.
Cost platform_cost(EvalEngine& engine, const apps::TypeConfig& config,
                   const CastAwareOptions& options,
                   const apps::TypeConfig* base = nullptr) {
    const sim::RunReport report =
        options.delta_cost && base != nullptr
            ? engine.report_delta(options.cost_input_set, *base, config,
                                  options.simd)
            : engine.report(options.cost_input_set, config, options.simd);
    return Cost{report.energy.total(), report.casts};
}

/// Quality check on every input set. Per-set evaluations are independent
/// and run on the engine's pool when it has one; the serial path keeps the
/// first-failure short-circuit. The conjunction over sets is
/// order-independent, so both paths return the same boolean — the trial
/// counts differ, which is why TuningResult::program_runs never feeds from
/// this pass.
bool meets_everywhere(EvalEngine& engine, const apps::TypeConfig& config,
                      const CastAwareOptions& options) {
    const auto check_set = [&engine, &config, &options](std::size_t s) -> char {
        const unsigned set = options.search.input_sets[s];
        return engine.meets(set, config, options.search.epsilon) ? 1 : 0;
    };
    if (engine.pool() == nullptr) {
        for (std::size_t s = 0; s < options.search.input_sets.size(); ++s) {
            if (check_set(s) == 0) return false;
        }
        return true;
    }
    const std::vector<char> passed = util::indexed_map(
        engine.pool(), options.search.input_sets.size(), check_set);
    for (const char ok : passed) {
        if (ok == 0) return false;
    }
    return true;
}

} // namespace

CastAwareResult cast_aware_search(apps::App& app, const CastAwareOptions& options) {
    // One engine serves the base DistributedSearch and the cast-aware
    // refinement: the pool is spun up once, and the refinement's quality
    // probes hit the trial cache the base search populated.
    EvalEngine engine{app, EvalEngine::Options{.threads = options.search.threads,
                                               .memoize = true}};
    return cast_aware_search(engine, options);
}

CastAwareResult cast_aware_search(EvalEngine& engine,
                                  const CastAwareOptions& options) {
    // On a shared long-lived engine (tuning/service.hpp) the counters
    // include other requests' work; report only this call's delta.
    const EvalStats stats_before = engine.stats();

    CastAwareResult result;
    result.base = distributed_search(engine, options.search);
    result.config = result.base.type_config();

    const Cost base_cost = platform_cost(engine, result.config, options);
    result.base_energy_pj = base_cost.energy_pj;
    result.base_casts = base_cost.casts;

    // Candidate formats: the members of the type system in use.
    std::array<FormatKind, 4> members{FormatKind::Binary8, FormatKind::Binary16,
                                      FormatKind::Binary16Alt,
                                      FormatKind::Binary32};

    apps::TypeConfig current = result.config;
    Cost current_cost = base_cost;
    for (int round = 0; round < options.max_rounds; ++round) {
        bool improved = false;
        for (apps::SignalId id = 0; id < result.base.signals.size(); ++id) {
            const FpFormat original = current.at(id);

            // Re-binding candidates for this signal, in fixed member order.
            std::vector<FpFormat> candidates;
            for (const FormatKind kind : members) {
                if (!options.search.type_system.contains(kind)) continue;
                const FpFormat candidate = format_of(kind);
                if (candidate == original) continue;
                candidates.push_back(candidate);
            }

            // Cost probes are independent given `current`: fan them out
            // on the engine's pool (each an engine-cached traced run).
            // Every probe differs from `current` in exactly this signal,
            // so `current` (whose report the round already memoized) is
            // the delta base for all of them — which also keeps the
            // region counters deterministic at any thread count: the
            // concurrent probes agree on the base.
            const std::vector<Cost> costs = util::indexed_map(
                engine.pool(), candidates.size(),
                [&engine, &current, &options, &candidates,
                 id](std::size_t k) -> Cost {
                    apps::TypeConfig config = current;
                    config.set(id, candidates[k]);
                    return platform_cost(engine, config, options, &current);
                });

            // Deterministic acceptance: scan candidates in member order;
            // energy must strictly improve, and quality is re-verified on
            // every input set before accepting (the expensive check runs
            // only on otherwise-improving moves).
            FpFormat best = original;
            Cost best_cost = current_cost;
            for (std::size_t k = 0; k < candidates.size(); ++k) {
                if (costs[k].energy_pj >= best_cost.energy_pj) continue;
                apps::TypeConfig config = current;
                config.set(id, candidates[k]);
                if (meets_everywhere(engine, config, options)) {
                    best = candidates[k];
                    best_cost = costs[k];
                }
            }
            current.set(id, best);
            if (!(best == original)) {
                current_cost = best_cost;
                ++result.moves_accepted;
                improved = true;
            }
        }
        if (!improved) break;
    }

    result.config = current;
    result.tuned_energy_pj = current_cost.energy_pj;
    result.tuned_casts = platform_cost(engine, current, options).casts;
    result.eval_stats = engine.stats() - stats_before;
    return result;
}

} // namespace tp::tuning
