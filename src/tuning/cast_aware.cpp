#include "tuning/cast_aware.hpp"

#include <array>

#include "tuning/quality.hpp"

namespace tp::tuning {
namespace {

struct Cost {
    double energy_pj = 0.0;
    std::uint64_t casts = 0;
};

Cost platform_cost(apps::App& app, const apps::TypeConfig& config,
                   const CastAwareOptions& options) {
    app.prepare(options.cost_input_set);
    sim::TpContext ctx;
    (void)app.run(ctx, config);
    const sim::RunReport report = sim::simulate(ctx.take_program(options.simd));
    return Cost{report.energy.total(), report.casts};
}

bool meets_everywhere(apps::App& app, const apps::TypeConfig& config,
                      const CastAwareOptions& options) {
    for (unsigned set : options.search.input_sets) {
        const auto golden = app.golden(set);
        app.prepare(set);
        sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
        const auto out = app.run(ctx, config);
        if (!meets_requirement(golden, out, options.search.epsilon)) return false;
    }
    return true;
}

} // namespace

CastAwareResult cast_aware_search(apps::App& app, const CastAwareOptions& options) {
    CastAwareResult result;
    result.base = distributed_search(app, options.search);
    result.config = result.base.type_config();

    const Cost base_cost = platform_cost(app, result.config, options);
    result.base_energy_pj = base_cost.energy_pj;
    result.base_casts = base_cost.casts;

    // Candidate formats: the members of the type system in use.
    std::array<FormatKind, 4> members{FormatKind::Binary8, FormatKind::Binary16,
                                      FormatKind::Binary16Alt,
                                      FormatKind::Binary32};

    apps::TypeConfig current = result.config;
    Cost current_cost = base_cost;
    for (int round = 0; round < options.max_rounds; ++round) {
        bool improved = false;
        for (const SignalResult& sr : result.base.signals) {
            const FpFormat original = current.at(sr.name);
            FpFormat best = original;
            Cost best_cost = current_cost;
            for (const FormatKind kind : members) {
                if (!options.search.type_system.contains(kind)) continue;
                const FpFormat candidate = format_of(kind);
                if (candidate == original) continue;
                current.set(sr.name, candidate);
                const Cost cost = platform_cost(app, current, options);
                // Energy must strictly improve; quality is re-verified on
                // every input set before accepting (the expensive check
                // runs only on otherwise-improving moves).
                if (cost.energy_pj < best_cost.energy_pj &&
                    meets_everywhere(app, current, options)) {
                    best = candidate;
                    best_cost = cost;
                }
            }
            current.set(sr.name, best);
            if (!(best == original)) {
                current_cost = best_cost;
                ++result.moves_accepted;
                improved = true;
            }
        }
        if (!improved) break;
    }

    result.config = current;
    result.tuned_energy_pj = current_cost.energy_pj;
    result.tuned_casts = platform_cost(app, current, options).casts;
    return result;
}

} // namespace tp::tuning
