#include "tuning/eval_engine.hpp"

#include <cassert>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/region_impact.hpp"
#include "analysis/signal_flow.hpp"
#include "flexfloat/arith_backend.hpp"
#include "tuning/quality.hpp"

namespace tp::tuning {
namespace {

/// Approximate heap cost of one cache entry beyond its payload: the map
/// node, the LRU node (which carries a key copy), and the shared_ptr
/// control block. Precision is not the point — the budget only needs to
/// track real usage closely enough that "bounded" means bounded.
constexpr std::size_t kEntryOverheadBytes = 160;

std::size_t key_bytes(std::size_t config_signals) {
    return config_signals * sizeof(tp::FpFormat);
}

std::size_t output_bytes(const std::vector<double>& output,
                         std::size_t config_signals) {
    return output.size() * sizeof(double) + 2 * key_bytes(config_signals) +
           kEntryOverheadBytes;
}

std::size_t per_format_bytes(const std::map<tp::FpFormat, sim::FormatActivity>&
                                 per_format) {
    // A map node is roughly the pair plus pointers.
    return per_format.size() *
           (sizeof(tp::FpFormat) + sizeof(sim::FormatActivity) + 48);
}

std::size_t report_bytes(const sim::RegionReport& report,
                         std::size_t config_signals) {
    std::size_t bytes = sizeof(sim::RegionReport) +
                        per_format_bytes(report.report.per_format) +
                        2 * key_bytes(config_signals) + kEntryOverheadBytes;
    for (const sim::RegionCost& region : report.regions) {
        bytes += sizeof(sim::RegionCost) + per_format_bytes(region.per_format);
    }
    return bytes;
}

/// The delta-cost simulation: re-costs the regions the impact map reaches
/// from the changed signals, splices (signature-verified) memoized costs
/// for the rest, and assembles through the same fold as a full
/// simulation. Every gate failure — diverged branch skeleton, partition
/// mismatch, signature mismatch — degrades to the full path, so the
/// result is bit-identical to simulate_regions() regardless of the
/// analysis's quality. `recosted`/`skipped` always sum to the region
/// count.
sim::RegionReport delta_simulate(const sim::TraceProgram& program,
                                 const sim::RegionReport& base,
                                 const analysis::RegionImpactMap& impact,
                                 const apps::TypeConfig& base_config,
                                 const apps::TypeConfig& config,
                                 std::size_t& recosted, std::size_t& skipped) {
    const fpu::EnergyModel model = fpu::default_energy_model();
    const sim::CoreParams core{};
    const auto full = [&] {
        sim::RegionReport report = sim::simulate_regions(program, model, core);
        recosted = report.regions.size();
        skipped = 0;
        return report;
    };

    std::uint64_t branch_count = 0;
    for (const sim::Instr& instr : program.instrs) {
        branch_count += instr.kind == sim::InstrKind::Branch ? 1 : 0;
    }
    // Correspondence gate: region indices transfer only when capture,
    // base, and candidate share one branch skeleton (and so one
    // partition).
    if (branch_count != impact.branch_count ||
        base.report.branches != impact.branch_count) {
        return full();
    }
    const std::vector<sim::CostRegion> partition = sim::cost_regions(program);
    if (partition.size() != impact.region_count ||
        partition.size() != base.regions.size()) {
        return full();
    }

    std::vector<std::int32_t> changed;
    for (std::size_t id = 0; id < config.size(); ++id) {
        if (config.at(id) != base_config.at(id)) {
            changed.push_back(static_cast<std::int32_t>(id));
        }
    }

    sim::RegionReport result;
    result.regions.reserve(partition.size());
    recosted = 0;
    skipped = 0;
    for (std::size_t r = 0; r < partition.size(); ++r) {
        if (impact.region_impacted(r, changed)) {
            result.regions.push_back(
                sim::cost_region(program, partition[r], model, core));
            ++recosted;
            continue;
        }
        // Unimpacted by the analysis — still verified: equal signatures
        // imply bit-equal cost fields (sim/platform.hpp), so the splice
        // is exact; any mismatch means the premise broke and the whole
        // report is re-costed.
        if (sim::region_signature(program, partition[r]) !=
            base.regions[r].signature) {
            return full();
        }
        sim::RegionCost spliced = base.regions[r];
        spliced.begin = partition[r].begin;
        spliced.end = partition[r].end;
        result.regions.push_back(std::move(spliced));
        ++skipped;
    }
    result.report = assemble_regions(program, result.regions, model, core);
    return result;
}

/// The stack of EvalStatsScopes alive on this thread. Thread-local, so
/// scope bookkeeping needs no synchronization and each counter bump lands
/// in exactly one thread's scopes.
std::vector<EvalStats*>& active_scopes() {
    thread_local std::vector<EvalStats*> scopes;
    return scopes;
}

/// Applies one counter bump to the engine's stats (under its lock) and to
/// every scope alive on the current thread (lock-free — thread-local).
template <typename Apply>
void bump(std::mutex& stats_mutex, EvalStats& stats, Apply apply) {
    {
        const std::lock_guard<std::mutex> lock{stats_mutex};
        apply(stats);
    }
    for (EvalStats* scope : active_scopes()) apply(*scope);
}

} // namespace

EvalStatsScope::EvalStatsScope() { active_scopes().push_back(&stats_); }

EvalStatsScope::~EvalStatsScope() {
    assert(!active_scopes().empty() && active_scopes().back() == &stats_);
    active_scopes().pop_back();
}

/// A single-flight rendezvous: the first requester of a missing key owns
/// the Flight and executes; concurrent requesters wait on `result`.
/// Waiters read the value from the future, never from the cache, so an
/// eviction between publication and wake-up cannot strand them.
struct EvalEngine::Flight {
    std::promise<CacheValue> promise;
    std::shared_future<CacheValue> result = promise.get_future().share();
};

EvalEngine::EvalEngine(const apps::App& prototype, const Options& options)
    : master_(prototype.clone()),
      memoize_(options.memoize),
      cache_budget_bytes_(options.cache_budget_bytes),
      force_emulated_(options.force_emulated) {
    if (options.threads > 1) {
        pool_ = std::make_unique<util::ThreadPool>(options.threads);
    }
}

// The pool must drain before the clone free-list and caches are destroyed:
// queued tasks reference them. pool_ is declared BEFORE the caches, so
// default member destruction would tear the caches down first while
// workers may still be draining — the explicit reset is load-bearing.
EvalEngine::~EvalEngine() { pool_.reset(); }

// Catches a wrong-sized binding (default-constructed, or built for
// another app) before it reaches a kernel. A config built for a DIFFERENT
// app with the SAME signal count cannot be detected here — configs are
// plain values with no provenance; the name->id boundary (config_io
// validated against a SignalTable) is where cross-app mixups originate
// and are rejected.
void EvalEngine::check_config(const apps::TypeConfig& config) const {
    if (config.size() != master_->signal_table().size()) {
        throw std::invalid_argument(
            "EvalEngine: config has " + std::to_string(config.size()) +
            " signals but app '" + std::string(master_->name()) +
            "' declares " + std::to_string(master_->signal_table().size()));
    }
}

std::unique_ptr<apps::App> EvalEngine::acquire_clone() {
    {
        const std::lock_guard<std::mutex> lock{clones_mutex_};
        if (!clones_.empty()) {
            std::unique_ptr<apps::App> clone = std::move(clones_.back());
            clones_.pop_back();
            return clone;
        }
    }
    // master_ is immutable after construction, so concurrent clones are
    // safe: App's copy constructor only reads it.
    return master_->clone();
}

void EvalEngine::release_clone(std::unique_ptr<apps::App> clone) {
    const std::lock_guard<std::mutex> lock{clones_mutex_};
    clones_.push_back(std::move(clone));
}

// NOTE: this is the same single-flight rendezvous as obtain(), specialized
// for the pinned golden map (waiters resolve to a stable reference into
// goldens_, and nothing counts as a trial). A protocol change there —
// flight-erase ordering, failure accounting — almost certainly applies
// here too.
const std::vector<double>& EvalEngine::golden(unsigned input_set) {
    std::shared_ptr<Flight> flight;
    bool runner = false;
    {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        const auto it = goldens_.find(input_set);
        if (it != goldens_.end()) return it->second;
        const auto in_flight = golden_flights_.find(input_set);
        if (in_flight != golden_flights_.end()) {
            flight = in_flight->second;
        } else {
            golden_flights_.emplace(input_set,
                                    flight = std::make_shared<Flight>());
            runner = true;
        }
    }
    if (!runner) {
        // Wait for the concurrent computation (and rethrow its failure,
        // if any); the value itself lives pinned in goldens_.
        (void)flight->result.get();
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        return goldens_.at(input_set);
    }
    try {
        std::unique_ptr<apps::App> app = acquire_clone();
        std::vector<double> reference;
        {
            // Thread-scoped, so it covers this run wherever it executes
            // (caller thread or pool worker — golden() runs on the
            // requesting thread).
            const arith::ScopedForceEmulated backend{force_emulated_};
            reference = app->golden(input_set);
        }
        release_clone(std::move(app));
        bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.golden_runs; });
        const std::vector<double>* stored = nullptr;
        {
            const std::lock_guard<std::mutex> lock{cache_mutex_};
            stored = &goldens_.try_emplace(input_set, std::move(reference))
                          .first->second;
            golden_flights_.erase(input_set);
        }
        flight->promise.set_value(CacheValue{});
        return *stored;
    } catch (...) {
        {
            const std::lock_guard<std::mutex> lock{cache_mutex_};
            golden_flights_.erase(input_set);
        }
        flight->promise.set_exception(std::current_exception());
        throw;
    }
}

std::vector<double> EvalEngine::output(unsigned input_set,
                                       const apps::TypeConfig& config) {
    // Validate before any counter moves or kernel runs: a rejected config
    // must leave the engine (and the trials == hits + runs invariant)
    // untouched.
    check_config(config);
    bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.trials; });
    return *obtain(CacheKey{CacheKey::Kind::Output, input_set, /*simd=*/false,
                            config},
                   nullptr)
                .output;
}

bool EvalEngine::meets(unsigned input_set, const apps::TypeConfig& config,
                       double epsilon) {
    check_config(config); // before the golden run and the trial counter
    bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.trials; });
    // Golden first: the reference stays valid (pinned) while the trial
    // cache mutates, and the hit path reduces the shared cached output in
    // place — no copy.
    const std::vector<double>& reference = golden(input_set);
    const CacheValue value = obtain(
        CacheKey{CacheKey::Kind::Output, input_set, /*simd=*/false, config},
        nullptr);
    return meets_requirement(reference, *value.output, epsilon);
}

sim::RunReport EvalEngine::report(unsigned input_set,
                                  const apps::TypeConfig& config, bool simd) {
    check_config(config);
    bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.trials; });
    return obtain(CacheKey{CacheKey::Kind::Report, input_set, simd, config},
                  nullptr)
        .report->report;
}

sim::RunReport EvalEngine::report_delta(unsigned input_set,
                                        const apps::TypeConfig& base_config,
                                        const apps::TypeConfig& config,
                                        bool simd) {
    check_config(base_config);
    // An unchanged binding is the memoized base itself — one ordinary
    // (cache-hitting) trial, no delta machinery.
    if (base_config == config) return report(input_set, config, simd);
    check_config(config);
    bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.trials; });

    // Opportunistic basis: peek (don't wait) for the memoized base
    // decomposition. Missing — cold cache, evicted, memoization off —
    // just means a full simulation; results are identical either way.
    DeltaBasis basis;
    basis.base_config = base_config;
    if (memoize_) {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        const auto it = cache_.find(
            CacheKey{CacheKey::Kind::Report, input_set, simd, base_config});
        if (it != cache_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lru);
            basis.base = it->second.value.report;
        }
    }
    if (basis.base != nullptr) basis.impact = impact_for(input_set);

    const CacheKey key{CacheKey::Kind::Report, input_set, simd, config};
    const bool usable = basis.base != nullptr && basis.impact != nullptr &&
                        basis.impact->region_count > 0;
    return obtain(key, usable ? &basis : nullptr).report->report;
}

std::shared_ptr<const analysis::RegionImpactMap> EvalEngine::impact_for(
    unsigned input_set) {
    std::promise<std::shared_ptr<const analysis::RegionImpactMap>> promise;
    std::shared_future<std::shared_ptr<const analysis::RegionImpactMap>> future;
    bool runner = false;
    {
        const std::lock_guard<std::mutex> lock{impact_mutex_};
        const auto it = impact_futures_.find(input_set);
        if (it != impact_futures_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            impact_futures_.emplace(input_set, future);
            runner = true;
        }
    }
    if (!runner) return future.get();

    // One tagged shadow capture per (engine, input set) — an analysis
    // run, not a trial: no counters move. Failures (e.g. more signals
    // than tag formats) resolve to an empty, never-usable map rather
    // than poisoning delta requests with exceptions.
    auto map = std::make_shared<analysis::RegionImpactMap>();
    try {
        std::unique_ptr<apps::App> app = acquire_clone();
        const analysis::CapturedTrace capture =
            analysis::capture_trace(*app, input_set);
        release_clone(std::move(app));
        *map = analysis::build_region_impact(capture.program,
                                             capture.signal_count);
    } catch (...) {
        *map = analysis::RegionImpactMap{};
    }
    promise.set_value(map);
    return map;
}

EvalEngine::CacheValue EvalEngine::execute(const CacheKey& key,
                                           const DeltaBasis* basis) {
    // Thread-scoped backend override: execute() always runs the kernel on
    // the calling thread (pool tasks call it from the worker), so the
    // scope pins exactly this run — and nothing else — to the emulated
    // backend when the engine option asks for it.
    const arith::ScopedForceEmulated backend{force_emulated_};
    std::unique_ptr<apps::App> app = acquire_clone();
    app->prepare(key.input_set);
    CacheValue value;
    if (key.kind == CacheKey::Kind::Output) {
        sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
        value.output = std::make_shared<const std::vector<double>>(
            app->run(ctx, key.config));
    } else {
        sim::TpContext ctx; // traced: the platform model needs the program
        value.output = std::make_shared<const std::vector<double>>(
            app->run(ctx, key.config));
        const sim::TraceProgram program = ctx.take_program(key.simd);
        std::size_t recosted = 0;
        std::size_t skipped = 0;
        sim::RegionReport report =
            basis != nullptr
                ? delta_simulate(program, *basis->base, *basis->impact,
                                 basis->base_config, key.config, recosted,
                                 skipped)
                : sim::simulate_regions(program);
        if (basis == nullptr) recosted = report.regions.size();
#ifndef NDEBUG
        if (basis != nullptr) {
            // The always-on debug cross-check of the delta-cost soundness
            // contract: a spliced report must be bit-identical to a full
            // simulation (exercised by the Debug sanitizer/tsan CI jobs).
            const sim::RegionReport full = sim::simulate_regions(program);
            assert(full.report == report.report &&
                   full.regions == report.regions &&
                   "report_delta: spliced report diverged from full "
                   "simulation");
        }
#endif
        value.report =
            std::make_shared<const sim::RegionReport>(std::move(report));
        bump(stats_mutex_, stats_, [recosted, skipped](EvalStats& s) {
            s.regions_recosted += recosted;
            s.regions_skipped_by_impact += skipped;
        });
    }
    release_clone(std::move(app));
    bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.kernel_runs; });
    return value;
}

EvalEngine::CacheValue EvalEngine::obtain(const CacheKey& key,
                                          const DeltaBasis* basis) {
    if (!memoize_) return execute(key, basis);

    std::shared_ptr<Flight> flight;
    bool runner = false;
    CacheValue ready;
    {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            // Touch: move to the LRU front. Shared ownership keeps the
            // value alive for this caller even if it is evicted before
            // the caller finishes with it.
            lru_.splice(lru_.begin(), lru_, it->second.lru);
            ready = it->second.value;
        } else {
            const auto in_flight = flights_.find(key);
            if (in_flight != flights_.end()) {
                flight = in_flight->second;
            } else {
                flights_.emplace(key, flight = std::make_shared<Flight>());
                runner = true;
            }
        }
    }
    // Locks are taken sequentially, never nested — the engine has no lock
    // ordering to get wrong.
    if (ready.output != nullptr || ready.report != nullptr) {
        bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.cache_hits; });
        return ready;
    }

    if (!runner) {
        // Another thread is executing this exact trial right now; its
        // result is this request's result — a cache hit that happens to
        // arrive before publication. Count the hit only once the flight
        // resolves: if the runner failed, get() rethrows and this trial
        // produced neither a hit nor a run.
        CacheValue value = flight->result.get();
        bump(stats_mutex_, stats_, [](EvalStats& s) { ++s.cache_hits; });
        return value;
    }

    try {
        const CacheValue value = execute(key, basis);
        std::size_t evicted = 0;
        {
            const std::lock_guard<std::mutex> lock{cache_mutex_};
            flights_.erase(key);
            if (key.kind == CacheKey::Kind::Output) {
                evicted += publish(key, value);
            } else {
                // The report entry must not retain the output: the two are
                // budgeted (and evicted) independently, so a pinned extra
                // reference would keep evicted output bytes alive.
                evicted += publish(key, CacheValue{nullptr, value.report});
                // Tracing does not change the arithmetic, so the output
                // this run produced also serves future quality trials of
                // the same binding (e.g. cast-aware cost probe -> quality
                // check on the same set).
                evicted += publish(CacheKey{CacheKey::Kind::Output,
                                            key.input_set, /*simd=*/false,
                                            key.config},
                                   CacheValue{value.output, nullptr});
            }
        }
        if (evicted > 0) {
            bump(stats_mutex_, stats_,
                 [evicted](EvalStats& s) { s.evictions += evicted; });
        }
        flight->promise.set_value(value);
        return value;
    } catch (...) {
        {
            const std::lock_guard<std::mutex> lock{cache_mutex_};
            flights_.erase(key);
        }
        flight->promise.set_exception(std::current_exception());
        throw;
    }
}

// Requires cache_mutex_ held.
std::size_t EvalEngine::publish(const CacheKey& key, const CacheValue& value) {
    const auto [it, inserted] = cache_.try_emplace(key);
    if (!inserted) return 0; // e.g. a traced run racing a plain output run
    it->second.value = value;
    it->second.bytes =
        key.kind == CacheKey::Kind::Output
            ? output_bytes(*value.output, key.config.size())
            : report_bytes(*value.report, key.config.size());
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    cache_bytes_ += it->second.bytes;

    std::size_t evicted = 0;
    while (cache_budget_bytes_ != 0 && cache_bytes_ > cache_budget_bytes_ &&
           !lru_.empty()) {
        const auto victim = cache_.find(lru_.back());
        assert(victim != cache_.end());
        cache_bytes_ -= victim->second.bytes;
        cache_.erase(victim);
        lru_.pop_back();
        ++evicted;
    }
    return evicted;
}

void EvalEngine::note_trials_skipped(std::size_t n) {
    if (n == 0) return;
    bump(stats_mutex_, stats_,
         [n](EvalStats& s) { s.trials_skipped_by_bounds += n; });
}

EvalStats EvalEngine::stats() const {
    const std::lock_guard<std::mutex> lock{stats_mutex_};
    return stats_;
}

std::size_t EvalEngine::cache_bytes() const {
    const std::lock_guard<std::mutex> lock{cache_mutex_};
    return cache_bytes_;
}

void EvalEngine::clear_cache() {
    const std::lock_guard<std::mutex> lock{cache_mutex_};
    // Goldens survive: golden() hands out references promised to live as
    // long as the engine. In-flight executions are untouched — they will
    // publish into the now-empty cache when they finish.
    cache_.clear();
    lru_.clear();
    cache_bytes_ = 0;
}

} // namespace tp::tuning
