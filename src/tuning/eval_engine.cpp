#include "tuning/eval_engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "tuning/quality.hpp"

namespace tp::tuning {

EvalEngine::EvalEngine(const apps::App& prototype, const Options& options)
    : master_(prototype.clone()), memoize_(options.memoize) {
    if (options.threads > 1) {
        pool_ = std::make_unique<util::ThreadPool>(options.threads);
    }
}

// The pool must drain before the clone free-list and caches are destroyed:
// queued tasks reference them. pool_ is declared BEFORE the caches, so
// default member destruction would tear the caches down first while
// workers may still be draining — the explicit reset is load-bearing.
EvalEngine::~EvalEngine() { pool_.reset(); }

// Catches a wrong-sized binding (default-constructed, or built for
// another app) before it reaches a kernel. A config built for a DIFFERENT
// app with the SAME signal count cannot be detected here — configs are
// plain values with no provenance; the name->id boundary (config_io
// validated against a SignalTable) is where cross-app mixups originate
// and are rejected.
void EvalEngine::check_config(const apps::TypeConfig& config) const {
    if (config.size() != master_->signal_table().size()) {
        throw std::invalid_argument(
            "EvalEngine: config has " + std::to_string(config.size()) +
            " signals but app '" + std::string(master_->name()) +
            "' declares " + std::to_string(master_->signal_table().size()));
    }
}

std::unique_ptr<apps::App> EvalEngine::acquire_clone() {
    {
        const std::lock_guard<std::mutex> lock{clones_mutex_};
        if (!clones_.empty()) {
            std::unique_ptr<apps::App> clone = std::move(clones_.back());
            clones_.pop_back();
            return clone;
        }
    }
    // master_ is immutable after construction, so concurrent clones are
    // safe: App's copy constructor only reads it.
    return master_->clone();
}

void EvalEngine::release_clone(std::unique_ptr<apps::App> clone) {
    const std::lock_guard<std::mutex> lock{clones_mutex_};
    clones_.push_back(std::move(clone));
}

const std::vector<double>& EvalEngine::golden(unsigned input_set) {
    {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        const auto it = goldens_.find(input_set);
        if (it != goldens_.end()) return it->second;
    }
    std::unique_ptr<apps::App> app = acquire_clone();
    std::vector<double> golden = app->golden(input_set);
    release_clone(std::move(app));
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.golden_runs;
    }
    const std::lock_guard<std::mutex> lock{cache_mutex_};
    // Concurrent first requests may both compute; values are identical by
    // the determinism contract and try_emplace keeps exactly one.
    return goldens_.try_emplace(input_set, std::move(golden)).first->second;
}

const std::vector<double>* EvalEngine::find_output(const TrialKey& key) {
    if (!memoize_) return nullptr;
    const std::vector<double>* found = nullptr;
    {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        const auto it = outputs_.find(key);
        if (it != outputs_.end()) found = &it->second;
    }
    if (found != nullptr) {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.cache_hits;
    }
    return found;
}

std::vector<double> EvalEngine::run_output(const TrialKey& key) {
    std::unique_ptr<apps::App> app = acquire_clone();
    app->prepare(key.input_set);
    sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
    std::vector<double> out = app->run(ctx, key.config);
    release_clone(std::move(app));
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.kernel_runs;
    }
    if (memoize_) {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        outputs_.try_emplace(key, out);
    }
    return out;
}

std::vector<double> EvalEngine::output(unsigned input_set,
                                       const apps::TypeConfig& config) {
    // Validate before any counter moves or kernel runs: a rejected config
    // must leave the engine (and the trials == hits + runs invariant)
    // untouched.
    check_config(config);
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.trials;
    }
    const TrialKey key{input_set, /*simd=*/false, config};
    if (const std::vector<double>* cached = find_output(key)) return *cached;
    return run_output(key);
}

bool EvalEngine::meets(unsigned input_set, const apps::TypeConfig& config,
                       double epsilon) {
    check_config(config); // before the golden run and the trial counter
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.trials;
    }
    // Golden first: both locks are taken and released in sequence, and the
    // golden reference stays valid while the trial cache mutates (map
    // nodes are stable).
    const std::vector<double>& reference = golden(input_set);
    const TrialKey key{input_set, /*simd=*/false, config};
    // The hit path reduces the cached output in place — no copy.
    if (const std::vector<double>* cached = find_output(key)) {
        return meets_requirement(reference, *cached, epsilon);
    }
    return meets_requirement(reference, run_output(key), epsilon);
}

sim::RunReport EvalEngine::report(unsigned input_set,
                                  const apps::TypeConfig& config, bool simd) {
    check_config(config);
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.trials;
    }
    TrialKey key{input_set, simd, config};
    if (memoize_) {
        // Locks are taken sequentially, never nested — the engine has no
        // lock ordering to get wrong (see find_output for the same shape).
        const sim::RunReport* found = nullptr;
        {
            const std::lock_guard<std::mutex> lock{cache_mutex_};
            const auto it = reports_.find(key);
            if (it != reports_.end()) found = &it->second;
        }
        if (found != nullptr) {
            {
                const std::lock_guard<std::mutex> lock{stats_mutex_};
                ++stats_.cache_hits;
            }
            return *found;
        }
    }
    std::unique_ptr<apps::App> app = acquire_clone();
    app->prepare(input_set);
    sim::TpContext ctx; // traced run: the platform model needs the program
    std::vector<double> out = app->run(ctx, config);
    release_clone(std::move(app));
    sim::RunReport run_report = sim::simulate(ctx.take_program(simd));
    {
        const std::lock_guard<std::mutex> lock{stats_mutex_};
        ++stats_.kernel_runs;
    }
    if (memoize_) {
        const std::lock_guard<std::mutex> lock{cache_mutex_};
        // Tracing does not change the arithmetic, so the output this run
        // produced also serves future quality trials of the same binding
        // (e.g. cast-aware cost probe -> quality check on the same set).
        outputs_.try_emplace(TrialKey{input_set, /*simd=*/false, config},
                             std::move(out));
        reports_.try_emplace(std::move(key), run_report);
    }
    return run_report;
}

EvalStats EvalEngine::stats() const {
    const std::lock_guard<std::mutex> lock{stats_mutex_};
    return stats_;
}

void EvalEngine::clear_cache() {
    const std::lock_guard<std::mutex> lock{cache_mutex_};
    // Goldens survive: golden() hands out references promised to live as
    // long as the engine.
    outputs_.clear();
    reports_.clear();
}

} // namespace tp::tuning
