// Output-quality metrics for precision tuning.
//
// The paper's tuner (fpPrecisionTuning / DistributedSearch) takes "the
// precision of the result, expressed as a value of signal-to-quantization-
// noise ratio (SQNR) that program outputs must satisfy" and evaluates
// requirements written as 10^-3, 10^-2, 10^-1. SQNR is a *power* ratio, so
// we read such a value epsilon as the admissible noise-to-signal power
// ratio:
//
//     passes(epsilon)  <=>  SQNR >= 1 / epsilon
//                      <=>  rms(out - golden) / rms(golden) <= sqrt(epsilon)
//
// i.e. 10^-3 admits ~3.2% output amplitude error and 10^-1 admits ~32%.
// This reading reproduces the paper's tuning outcomes (KNN all-binary8 at
// 10^-1, substantial 16-bit use even at 10^-3).
#pragma once

#include <span>

namespace tp::tuning {

/// Relative RMS error of `out` against `golden` (see util::relative_rms_error).
[[nodiscard]] double output_error(std::span<const double> golden,
                                  std::span<const double> out);

/// SQNR as a power ratio; +inf for an exact match.
[[nodiscard]] double output_sqnr(std::span<const double> golden,
                                 std::span<const double> out);

/// The pass/fail predicate the search uses.
[[nodiscard]] bool meets_requirement(std::span<const double> golden,
                                     std::span<const double> out,
                                     double epsilon);

} // namespace tp::tuning
