#include "tuning/search.hpp"

#include <algorithm>
#include <cassert>

#include "tuning/quality.hpp"

namespace tp::tuning {
namespace {

/// One prepared input set: the workload index and its exact output.
struct InputSet {
    unsigned index = 0;
    std::vector<double> golden;
};

class Searcher {
public:
    Searcher(apps::App& app, const SearchOptions& options)
        : app_(app), options_(options) {
        for (const apps::SignalSpec& spec : app.signals()) {
            names_.push_back(spec.name);
            elements_.push_back(spec.elements);
        }
        for (unsigned set : options.input_sets) {
            sets_.push_back(InputSet{set, app_.golden(set)});
        }
    }

    TuningResult run() {
        const std::size_t n = names_.size();
        std::vector<int> joined(n, 1);

        // Phase 1: independent search per input set; Phase 2 joins by
        // taking the per-variable maximum (the "statistical refinement").
        for (const InputSet& set : sets_) {
            std::vector<int> bits = search_one_set(set);
            for (std::size_t i = 0; i < n; ++i) {
                joined[i] = std::max(joined[i], bits[i]);
            }
        }

        // The joined binding can still fail on some set (precision demands
        // interact); repair by widening the narrowest signals first.
        for (int round = 0; round < options_.max_refinement_rounds; ++round) {
            const InputSet* failing = first_failing_set(joined, /*bound=*/false);
            if (failing == nullptr) break;
            widen_for_set(*failing, joined, /*bound=*/false);
        }

        // Final check under the *bound* formats: binding substitutes the
        // band's concrete type for the trial format, which carries more
        // mantissa bits — usually at least as accurate, but rounding is not
        // monotone in precision, so the requirement is re-verified with the
        // formats the program will actually ship with.
        for (int round = 0; round < options_.max_refinement_rounds; ++round) {
            const InputSet* failing = first_failing_set(joined, /*bound=*/true);
            if (failing == nullptr) break;
            widen_for_set(*failing, joined, /*bound=*/true);
        }

        TuningResult result;
        result.type_system = options_.type_system.kind();
        result.epsilon = options_.epsilon;
        result.program_runs = runs_;
        for (std::size_t i = 0; i < n; ++i) {
            SignalResult sr;
            sr.name = names_[i];
            sr.elements = elements_[i];
            sr.precision_bits = joined[i];
            sr.bound = options_.type_system.format_for_precision(joined[i]);
            result.signals.push_back(std::move(sr));
        }
        return result;
    }

private:
    /// Executes the program with the given per-signal precision bits and
    /// checks the quality requirement on one input set. With `bound` the
    /// evaluation uses the concrete type each precision binds to instead
    /// of the trial format.
    bool trial(const InputSet& set, const std::vector<int>& bits,
               bool bound = false) {
        apps::TypeConfig config;
        for (std::size_t i = 0; i < names_.size(); ++i) {
            const FpFormat format =
                bound ? format_of(options_.type_system.format_for_precision(bits[i]))
                      : options_.type_system.trial_format(bits[i]);
            config.set(names_[i], format);
        }
        app_.prepare(set.index);
        sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
        const std::vector<double> out = app_.run(ctx, config);
        ++runs_;
        return meets_requirement(set.golden, out, options_.epsilon);
    }

    /// Greedy sweeps with per-variable binary search, one input set.
    std::vector<int> search_one_set(const InputSet& set) {
        const std::size_t n = names_.size();
        std::vector<int> bits(n, kMaxPrecisionBits);
        for (int pass = 0; pass < options_.max_passes; ++pass) {
            bool changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                const int before = bits[i];
                bits[i] = minimize_one(set, bits, i);
                changed = changed || bits[i] != before;
            }
            if (!changed) break;
        }
        return bits;
    }

    /// Lowest precision of variable `i` that passes, holding the others
    /// fixed. Quality is monotone in precision to a good approximation;
    /// a final verification guards against the rare non-monotone case.
    int minimize_one(const InputSet& set, std::vector<int>& bits, std::size_t i) {
        const int original = bits[i];
        int lo = 1;
        int hi = original;
        while (lo < hi) {
            const int mid = lo + (hi - lo) / 2;
            bits[i] = mid;
            if (trial(set, bits)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bits[i] = lo;
        if (lo == original || trial(set, bits)) return lo;
        bits[i] = original; // non-monotone corner: keep the known-good value
        return original;
    }

    const InputSet* first_failing_set(const std::vector<int>& bits, bool bound) {
        for (const InputSet& set : sets_) {
            if (!trial(set, bits, bound)) return &set;
        }
        return nullptr;
    }

    /// Widens precisions until `set` passes, preferring the narrowest
    /// variables (those most likely responsible for the quality loss).
    void widen_for_set(const InputSet& set, std::vector<int>& bits, bool bound) {
        while (!trial(set, bits, bound)) {
            std::size_t narrowest = names_.size();
            for (std::size_t i = 0; i < bits.size(); ++i) {
                if (bits[i] >= kMaxPrecisionBits) continue;
                if (narrowest == names_.size() || bits[i] < bits[narrowest]) {
                    narrowest = i;
                }
            }
            if (narrowest == names_.size()) return; // everything maxed out
            ++bits[narrowest];
        }
    }

    apps::App& app_;
    SearchOptions options_;
    std::vector<std::string> names_;
    std::vector<std::size_t> elements_;
    std::vector<InputSet> sets_;
    std::size_t runs_ = 0;
};

} // namespace

apps::TypeConfig TuningResult::type_config() const {
    apps::TypeConfig config;
    for (const SignalResult& sr : signals) {
        config.set(sr.name, format_of(sr.bound));
    }
    return config;
}

PrecisionConfig TuningResult::precision_config() const {
    PrecisionConfig config;
    for (const SignalResult& sr : signals) {
        config[sr.name] = sr.precision_bits;
    }
    return config;
}

std::array<int, 4> TuningResult::variables_per_format() const {
    std::array<int, 4> counts{};
    for (const SignalResult& sr : signals) {
        ++counts[static_cast<std::size_t>(sr.bound)];
    }
    return counts;
}

std::array<std::size_t, kMaxPrecisionBits + 1>
TuningResult::locations_per_precision() const {
    std::array<std::size_t, kMaxPrecisionBits + 1> histogram{};
    for (const SignalResult& sr : signals) {
        assert(sr.precision_bits >= 1 && sr.precision_bits <= kMaxPrecisionBits);
        histogram[static_cast<std::size_t>(sr.precision_bits)] += sr.elements;
    }
    return histogram;
}

TuningResult distributed_search(apps::App& app, const SearchOptions& options) {
    Searcher searcher{app, options};
    return searcher.run();
}

} // namespace tp::tuning
