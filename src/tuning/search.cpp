#include "tuning/search.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "tuning/eval_engine.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {
namespace {

/// Outcome of one per-signal precision probe (a binary search run as a
/// single pool task).
struct ProbeResult {
    int precision_bits = kMaxPrecisionBits;
    std::size_t runs = 0;
};

class Searcher {
public:
    Searcher(EvalEngine& engine, const SearchOptions& options)
        : engine_(engine), options_(options) {
        for (const apps::SignalSpec& spec : engine.prototype().signals()) {
            names_.push_back(spec.name);
            elements_.push_back(spec.elements);
        }
        // Pre-warm the goldens serially so pool workers only ever read them.
        for (unsigned set : options.input_sets) (void)engine_.golden(set);
    }

    TuningResult run() {
        const std::size_t n = names_.size();
        std::vector<int> joined(n, kMinPrecisionBits);

        // Phase 1: independent search per input set; Phase 2 joins by
        // taking the per-variable maximum (the "statistical refinement").
        for (const unsigned set : options_.input_sets) {
            std::vector<int> bits = search_one_set(set);
            for (std::size_t i = 0; i < n; ++i) {
                joined[i] = std::max(joined[i], bits[i]);
            }
        }

        // The joined binding can still fail on some set (precision demands
        // interact); repair by widening the narrowest signals first.
        repair(joined, /*bound=*/false);

        // Final check under the *bound* formats: binding substitutes the
        // band's concrete type for the trial format, which carries more
        // mantissa bits — usually at least as accurate, but rounding is not
        // monotone in precision, so the requirement is re-verified with the
        // formats the program will actually ship with.
        repair(joined, /*bound=*/true);

        TuningResult result;
        result.type_system = options_.type_system.kind();
        result.epsilon = options_.epsilon;
        result.program_runs = runs_;
        for (std::size_t i = 0; i < n; ++i) {
            SignalResult sr;
            sr.name = names_[i];
            sr.elements = elements_[i];
            sr.precision_bits = joined[i];
            sr.bound = options_.type_system.format_for_precision(joined[i]);
            result.signals.push_back(std::move(sr));
        }
        return result;
    }

private:
    /// The interned per-signal binding a precision vector denotes. With
    /// `bound` the config carries the concrete type each precision binds
    /// to instead of the trial format.
    apps::TypeConfig config_for(const std::vector<int>& bits, bool bound) const {
        apps::TypeConfig config(bits.size());
        for (apps::SignalId i = 0; i < bits.size(); ++i) {
            config.set(i, bound ? format_of(options_.type_system
                                                .format_for_precision(bits[i]))
                                : options_.type_system.trial_format(bits[i]));
        }
        return config;
    }

    /// Submits one quality trial to the engine: executes (or recalls) the
    /// program under the given per-signal precision bits and checks the
    /// requirement on one input set. Safe from pool workers.
    bool trial(unsigned set, const std::vector<int>& bits, bool bound) const {
        return engine_.meets(set, config_for(bits, bound), options_.epsilon);
    }

    /// trial() plus the submitted-trials counter — serial sections only.
    bool trial_counted(unsigned set, const std::vector<int>& bits, bool bound) {
        ++runs_;
        return trial(set, bits, bound);
    }

    /// Greedy passes over all signals, one input set. Within a pass every
    /// signal is probed against the *pass-start* binding, which makes the
    /// probes independent of one another — the parallel axis — at the cost
    /// of a repair step when the combined proposals overshoot.
    std::vector<int> search_one_set(unsigned set) {
        const std::size_t n = names_.size();
        std::vector<int> bits(n, kMaxPrecisionBits);
        for (int pass = 0; pass < options_.max_passes; ++pass) {
            const std::vector<ProbeResult> probes = util::indexed_map(
                engine_.pool(), n, [this, set, &bits](std::size_t i) {
                    return probe(set, bits, i);
                });
            bool changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                runs_ += probes[i].runs;
                changed = changed || probes[i].precision_bits != bits[i];
            }
            if (!changed) break;
            const std::vector<int> before = bits;
            for (std::size_t i = 0; i < n; ++i) {
                bits[i] = probes[i].precision_bits;
            }
            // Each probe assumed the others kept their pass-start precision;
            // the combined proposals can miss the requirement. Re-establish
            // a passing binding before the next pass sharpens it.
            widen_for_set(set, bits, /*bound=*/false);
            // If the repair reverted every proposal, the next pass would
            // deterministically repeat the identical probes — fixpoint (and,
            // with the engine cache, every one of them would be a hit).
            if (bits == before) break;
        }
        return bits;
    }

    /// Lowest precision of signal `i` that passes on `set`, holding every
    /// other signal at its value in `frozen`. Quality is monotone in
    /// precision to a good approximation; a final verification guards
    /// against the rare non-monotone case (a cache hit whenever the binary
    /// search already confirmed that precision). Runs as one pool task.
    ProbeResult probe(unsigned set, const std::vector<int>& frozen,
                      std::size_t i) const {
        std::vector<int> bits = frozen;
        ProbeResult result;
        const int original = bits[i];
        int lo = kMinPrecisionBits;
        int hi = original;
        while (lo < hi) {
            const int mid = lo + (hi - lo) / 2;
            bits[i] = mid;
            ++result.runs;
            if (trial(set, bits, /*bound=*/false)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bits[i] = lo;
        result.precision_bits = lo;
        if (lo != original) {
            ++result.runs;
            if (!trial(set, bits, /*bound=*/false)) {
                // Non-monotone corner: keep the known-good value.
                result.precision_bits = original;
            }
        }
        return result;
    }

    /// Widens `bits` until every input set passes, or the round budget is
    /// spent. Each round evaluates all sets (concurrently when the engine
    /// has a pool) and repairs the lowest-indexed failing one.
    void repair(std::vector<int>& bits, bool bound) {
        for (int round = 0; round < options_.max_refinement_rounds; ++round) {
            const std::vector<char> passed = util::indexed_map(
                engine_.pool(), options_.input_sets.size(),
                [this, &bits, bound](std::size_t s) -> char {
                    return trial(options_.input_sets[s], bits, bound) ? 1 : 0;
                });
            runs_ += options_.input_sets.size();
            const auto failing = std::find(passed.begin(), passed.end(), 0);
            if (failing == passed.end()) break;
            const std::size_t s =
                static_cast<std::size_t>(failing - passed.begin());
            widen_for_set(options_.input_sets[s], bits, bound);
        }
    }

    /// Widens precisions until `set` passes, preferring the narrowest
    /// variables (those most likely responsible for the quality loss).
    /// Inherently sequential: every step depends on the previous trial.
    void widen_for_set(unsigned set, std::vector<int>& bits, bool bound) {
        while (!trial_counted(set, bits, bound)) {
            std::size_t narrowest = names_.size();
            for (std::size_t i = 0; i < bits.size(); ++i) {
                if (bits[i] >= kMaxPrecisionBits) continue;
                if (narrowest == names_.size() || bits[i] < bits[narrowest]) {
                    narrowest = i;
                }
            }
            if (narrowest == names_.size()) return; // everything maxed out
            ++bits[narrowest];
        }
    }

    EvalEngine& engine_;
    SearchOptions options_;
    std::vector<std::string> names_;
    std::vector<std::size_t> elements_;
    std::size_t runs_ = 0;
};

} // namespace

apps::TypeConfig TuningResult::type_config() const {
    apps::TypeConfig config(signals.size());
    for (apps::SignalId i = 0; i < signals.size(); ++i) {
        config.set(i, format_of(signals[i].bound));
    }
    return config;
}

PrecisionConfig TuningResult::precision_config() const {
    PrecisionConfig config;
    for (const SignalResult& sr : signals) {
        config[sr.name] = sr.precision_bits;
    }
    return config;
}

std::array<int, 4> TuningResult::variables_per_format() const {
    std::array<int, 4> counts{};
    for (const SignalResult& sr : signals) {
        ++counts[static_cast<std::size_t>(sr.bound)];
    }
    return counts;
}

std::array<std::size_t, kMaxPrecisionBits + 1>
TuningResult::locations_per_precision() const {
    std::array<std::size_t, kMaxPrecisionBits + 1> histogram{};
    for (const SignalResult& sr : signals) {
        assert(sr.precision_bits >= 1 && sr.precision_bits <= kMaxPrecisionBits);
        histogram[static_cast<std::size_t>(sr.precision_bits)] += sr.elements;
    }
    return histogram;
}

TuningResult distributed_search(apps::App& app, const SearchOptions& options) {
    EvalEngine engine{app, EvalEngine::Options{.threads = options.threads,
                                               .memoize = true}};
    return distributed_search(engine, options);
}

TuningResult distributed_search(EvalEngine& engine, const SearchOptions& options) {
    Searcher searcher{engine, options};
    return searcher.run();
}

} // namespace tp::tuning
