#include "tuning/search.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "analysis/derive_bounds.hpp"
#include "tuning/eval_engine.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {
namespace {

/// Outcome of one per-signal precision probe (a binary search run as a
/// single pool task).
struct ProbeResult {
    int precision_bits = kMaxPrecisionBits;
    std::size_t runs = 0;
    std::size_t skipped = 0; // trials a warm start / clamp made unnecessary
};

/// Worst-case bisection iterations over the integer range [lo, hi]:
/// ceil(log2(hi - lo + 1)) = bit_width(hi - lo); 0 for a single-point or
/// empty range. A deterministic function of the range, which is what
/// makes trials_skipped_by_bounds deterministic too.
std::size_t bisect_depth(int lo, int hi) {
    if (hi <= lo) return 0;
    return std::bit_width(static_cast<unsigned>(hi - lo));
}

class Searcher {
public:
    Searcher(EvalEngine& engine, const SearchOptions& options)
        : engine_(engine), options_(options) {
        for (const apps::SignalSpec& spec : engine.prototype().signals()) {
            names_.push_back(spec.name);
            elements_.push_back(spec.elements);
        }
        validate_warm_start();
        // Pre-warm the goldens serially so pool workers only ever read them.
        for (unsigned set : options.input_sets) (void)engine_.golden(set);
    }

    TuningResult run() {
        const std::size_t n = names_.size();
        std::vector<int> joined(n, kMinPrecisionBits);

        // Phase 1: independent search per input set; Phase 2 joins by
        // taking the per-variable maximum (the "statistical refinement").
        for (const unsigned set : options_.input_sets) {
            std::vector<int> bits = search_one_set(set);
            for (std::size_t i = 0; i < n; ++i) {
                joined[i] = std::max(joined[i], bits[i]);
            }
        }

        // The joined binding can still fail on some set (precision demands
        // interact); repair by widening the narrowest signals first.
        repair(joined, /*bound=*/false);

        // Final check under the *bound* formats: binding substitutes the
        // band's concrete type for the trial format, which carries more
        // mantissa bits — usually at least as accurate, but rounding is not
        // monotone in precision, so the requirement is re-verified with the
        // formats the program will actually ship with.
        repair(joined, /*bound=*/true);

        monotone_join(joined);

        if (skipped_ > 0) engine_.note_trials_skipped(skipped_);

        TuningResult result;
        result.type_system = options_.type_system.kind();
        result.epsilon = options_.epsilon;
        result.program_runs = runs_;
        for (std::size_t i = 0; i < n; ++i) {
            SignalResult sr;
            sr.name = names_[i];
            sr.elements = elements_[i];
            sr.precision_bits = joined[i];
            sr.bound = options_.type_system.format_for_precision(joined[i]);
            result.signals.push_back(std::move(sr));
        }
        return result;
    }

private:
    /// Rejects a warm start that does not match the app's SignalTable or
    /// steps outside the precision lattice, before any trial runs.
    void validate_warm_start() const {
        if (!options_.warm_start) return;
        const WarmStart& warm = *options_.warm_start;
        const std::size_t n = names_.size();
        auto in_lattice = [](int bits) {
            return bits >= kMinPrecisionBits && bits <= kMaxPrecisionBits;
        };
        if (warm.seed_bits.size() != n) {
            throw std::invalid_argument(
                "WarmStart::seed_bits: expected one entry per signal (" +
                std::to_string(n) + "), got " +
                std::to_string(warm.seed_bits.size()));
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_lattice(warm.seed_bits[i])) {
                throw std::invalid_argument(
                    "WarmStart::seed_bits[" + names_[i] + "] = " +
                    std::to_string(warm.seed_bits[i]) +
                    " outside [" + std::to_string(kMinPrecisionBits) + ", " +
                    std::to_string(kMaxPrecisionBits) + "]");
            }
        }
        for (const auto* bounds : {&warm.lower_bounds, &warm.upper_bounds}) {
            if (!bounds->empty() && bounds->size() != n) {
                throw std::invalid_argument(
                    "WarmStart bounds: expected empty or one entry per "
                    "signal (" + std::to_string(n) + "), got " +
                    std::to_string(bounds->size()));
            }
            for (const int bits : *bounds) {
                if (!in_lattice(bits)) {
                    throw std::invalid_argument(
                        "WarmStart bound " + std::to_string(bits) +
                        " outside [" + std::to_string(kMinPrecisionBits) +
                        ", " + std::to_string(kMaxPrecisionBits) + "]");
                }
            }
        }
        if (!warm.lower_bounds.empty() && !warm.upper_bounds.empty()) {
            for (std::size_t i = 0; i < n; ++i) {
                if (warm.lower_bounds[i] > warm.upper_bounds[i]) {
                    throw std::invalid_argument(
                        "WarmStart bounds for " + names_[i] + " are empty: [" +
                        std::to_string(warm.lower_bounds[i]) + ", " +
                        std::to_string(warm.upper_bounds[i]) + "]");
                }
            }
        }
    }

    bool warm() const { return options_.warm_start.has_value(); }

    /// Seed precision of signal `i` — the bisection ceiling its first
    /// probe starts from; the lattice top for a cold search.
    int seed_of(std::size_t i) const {
        return warm() ? options_.warm_start->seed_bits[i] : kMaxPrecisionBits;
    }

    int lower_bound_of(std::size_t i) const {
        return warm() && !options_.warm_start->lower_bounds.empty()
                   ? options_.warm_start->lower_bounds[i]
                   : kMinPrecisionBits;
    }

    int upper_bound_of(std::size_t i) const {
        return warm() && !options_.warm_start->upper_bounds.empty()
                   ? options_.warm_start->upper_bounds[i]
                   : kMaxPrecisionBits;
    }

    /// The interned per-signal binding a precision vector denotes. With
    /// `bound` the config carries the concrete type each precision binds
    /// to instead of the trial format.
    apps::TypeConfig config_for(const std::vector<int>& bits, bool bound) const {
        apps::TypeConfig config(bits.size());
        for (apps::SignalId i = 0; i < bits.size(); ++i) {
            config.set(i, bound ? format_of(options_.type_system
                                                .format_for_precision(bits[i]))
                                : options_.type_system.trial_format(bits[i]));
        }
        return config;
    }

    /// Submits one quality trial to the engine: executes (or recalls) the
    /// program under the given per-signal precision bits and checks the
    /// requirement on one input set. Safe from pool workers.
    bool trial(unsigned set, const std::vector<int>& bits, bool bound) const {
        return engine_.meets(set, config_for(bits, bound), options_.epsilon);
    }

    /// trial() plus the submitted-trials counter — serial sections only.
    bool trial_counted(unsigned set, const std::vector<int>& bits, bool bound) {
        ++runs_;
        return trial(set, bits, bound);
    }

    /// Greedy passes over all signals, one input set. Within a pass every
    /// signal is probed against the *pass-start* binding, which makes the
    /// probes independent of one another — the parallel axis — at the cost
    /// of a repair step when the combined proposals overshoot.
    std::vector<int> search_one_set(unsigned set) {
        const std::size_t n = names_.size();
        std::vector<int> bits(n, kMaxPrecisionBits);
        for (int pass = 0; pass < options_.max_passes; ++pass) {
            const std::vector<ProbeResult> probes = util::indexed_map(
                engine_.pool(), n, [this, set, &bits](std::size_t i) {
                    return probe(set, bits, i);
                });
            bool changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                runs_ += probes[i].runs;
                skipped_ += probes[i].skipped;
                changed = changed || probes[i].precision_bits != bits[i];
            }
            if (!changed) break;
            const std::vector<int> before = bits;
            for (std::size_t i = 0; i < n; ++i) {
                bits[i] = probes[i].precision_bits;
            }
            // Each probe assumed the others kept their pass-start precision;
            // the combined proposals can miss the requirement. Re-establish
            // a passing binding before the next pass sharpens it.
            widen_for_set(set, bits, /*bound=*/false);
            // If the repair reverted every proposal, the next pass would
            // deterministically repeat the identical probes — fixpoint (and,
            // with the engine cache, every one of them would be a hit).
            if (bits == before) break;
        }
        return bits;
    }

    /// Lowest precision of signal `i` that passes on `set`, holding every
    /// other signal at its value in `frozen`. Quality is monotone in
    /// precision to a good approximation; a final verification guards
    /// against the rare non-monotone case (a cache hit whenever the binary
    /// search already confirmed that precision). Runs as one pool task.
    ProbeResult probe(unsigned set, const std::vector<int>& frozen,
                      std::size_t i) const {
        std::vector<int> bits = frozen;
        ProbeResult result;
        const int original = bits[i];
        // Warm start: the seed caps where the bisection starts (a search
        // at a looser requirement than the seed's provenance never needs
        // more precision than the seed, by quality monotonicity in
        // epsilon), and the explicit feasibility bounds clamp the range
        // further. The cold probe would bisect [kMinPrecisionBits,
        // original]; every step the clamps remove is booked as skipped.
        const int lo_clamped = std::max(kMinPrecisionBits, lower_bound_of(i));
        const int hi_clamped =
            std::min({original, upper_bound_of(i), seed_of(i)});
        if (lo_clamped > hi_clamped || lo_clamped >= original) {
            // The bounds pin the signal at its current value: no trial to
            // submit, the whole cold range is skipped.
            result.precision_bits = original;
            result.skipped = bisect_depth(kMinPrecisionBits, original);
            return result;
        }
        result.skipped = bisect_depth(kMinPrecisionBits, original) -
                         bisect_depth(lo_clamped, hi_clamped);
        int lo = lo_clamped;
        int hi = hi_clamped;
        // `hi` only ever takes values a trial just PASSED at: when the
        // loop exits with lo == hi < hi_clamped, the config at lo already
        // passed under this exact frozen context.
        bool hi_passed = false;
        while (lo < hi) {
            const int mid = lo + (hi - lo) / 2;
            bits[i] = mid;
            ++result.runs;
            if (trial(set, bits, /*bound=*/false)) {
                hi = mid;
                hi_passed = true;
            } else {
                lo = mid + 1;
            }
        }
        bits[i] = lo;
        result.precision_bits = lo;
        if (lo != original) {
            if (warm() && hi_passed) {
                // The closing verification would repeat the passing trial
                // the bisection just converged on — same config, same set,
                // outcome exactly implied. Warm-started searches elide the
                // repeat (booked as skipped); the cold path keeps its
                // legacy trial sequence byte-for-byte.
                ++result.skipped;
                return result;
            }
            ++result.runs;
            if (!trial(set, bits, /*bound=*/false)) {
                // Clamp bottom-out (lo == hi_clamped was never tested) or
                // non-monotone corner: keep the known-good value.
                result.precision_bits = original;
            }
        }
        return result;
    }

    /// Joins a warm-started search's final binding toward its seed: if
    /// the pointwise min of `bits` and the seed passes every input set
    /// (verified end-to-end, unbound and bound), it becomes the result.
    /// The min can only LOWER precisions, and a chained seed is exactly
    /// feasible at the current epsilon, so whenever the join verifies it
    /// keeps chained sweep results per-signal ordered across epsilons even
    /// where independent greedy searches are not (the greedy trades
    /// signals off differently per requirement). A no-op for cold
    /// searches, for seeds at or above the result, and when the joined
    /// binding misses the requirement (then `bits` — already verified by
    /// repair — stands).
    void monotone_join(std::vector<int>& bits) {
        if (!warm()) return;
        std::vector<int> joined(bits.size());
        bool lowers = false;
        for (std::size_t i = 0; i < bits.size(); ++i) {
            joined[i] = std::min(bits[i], seed_of(i));
            lowers = lowers || joined[i] < bits[i];
        }
        if (!lowers) return;
        for (const bool bound : {false, true}) {
            for (const unsigned set : options_.input_sets) {
                if (!trial_counted(set, joined, bound)) return;
            }
        }
        bits = joined;
    }

    /// Widens `bits` until every input set passes, or the round budget is
    /// spent. Each round evaluates all sets (concurrently when the engine
    /// has a pool) and repairs the lowest-indexed failing one.
    void repair(std::vector<int>& bits, bool bound) {
        for (int round = 0; round < options_.max_refinement_rounds; ++round) {
            const std::vector<char> passed = util::indexed_map(
                engine_.pool(), options_.input_sets.size(),
                [this, &bits, bound](std::size_t s) -> char {
                    return trial(options_.input_sets[s], bits, bound) ? 1 : 0;
                });
            runs_ += options_.input_sets.size();
            const auto failing = std::find(passed.begin(), passed.end(), 0);
            if (failing == passed.end()) break;
            const std::size_t s =
                static_cast<std::size_t>(failing - passed.begin());
            widen_for_set(options_.input_sets[s], bits, bound);
        }
    }

    /// Widens precisions until `set` passes, preferring the narrowest
    /// variables (those most likely responsible for the quality loss).
    /// Inherently sequential: every step depends on the previous trial.
    /// Identical for cold and warm searches: repair is what guarantees
    /// every result meets its requirement, seeded or not, so it never
    /// consults the warm start.
    void widen_for_set(unsigned set, std::vector<int>& bits, bool bound) {
        while (!trial_counted(set, bits, bound)) {
            std::size_t narrowest = names_.size();
            for (std::size_t i = 0; i < bits.size(); ++i) {
                if (bits[i] >= kMaxPrecisionBits) continue;
                if (narrowest == names_.size() || bits[i] < bits[narrowest]) {
                    narrowest = i;
                }
            }
            if (narrowest == names_.size()) return; // everything maxed out
            ++bits[narrowest];
        }
    }

    EvalEngine& engine_;
    SearchOptions options_;
    std::vector<std::string> names_;
    std::vector<std::size_t> elements_;
    std::size_t runs_ = 0;
    std::size_t skipped_ = 0; // see EvalStats::trials_skipped_by_bounds
};

} // namespace

apps::TypeConfig TuningResult::type_config() const {
    apps::TypeConfig config(signals.size());
    for (apps::SignalId i = 0; i < signals.size(); ++i) {
        config.set(i, format_of(signals[i].bound));
    }
    return config;
}

PrecisionConfig TuningResult::precision_config() const {
    PrecisionConfig config;
    for (const SignalResult& sr : signals) {
        config[sr.name] = sr.precision_bits;
    }
    return config;
}

std::array<int, 4> TuningResult::variables_per_format() const {
    std::array<int, 4> counts{};
    for (const SignalResult& sr : signals) {
        ++counts[static_cast<std::size_t>(sr.bound)];
    }
    return counts;
}

std::array<std::size_t, kMaxPrecisionBits + 1>
TuningResult::locations_per_precision() const {
    std::array<std::size_t, kMaxPrecisionBits + 1> histogram{};
    for (const SignalResult& sr : signals) {
        assert(sr.precision_bits >= 1 && sr.precision_bits <= kMaxPrecisionBits);
        histogram[static_cast<std::size_t>(sr.precision_bits)] += sr.elements;
    }
    return histogram;
}

TuningResult distributed_search(apps::App& app, const SearchOptions& options) {
    EvalEngine engine{app, EvalEngine::Options{.threads = options.threads,
                                               .memoize = true}};
    return distributed_search(engine, options);
}

TuningResult distributed_search(EvalEngine& engine, const SearchOptions& options) {
    if (options.static_bounds) {
        // Resolve the flag into explicit warm-start lower bounds before the
        // searcher sees the request: the analysis runs on a private clone
        // (it clobbers the prepared workload) and costs no trials.
        const std::unique_ptr<apps::App> app = engine.prototype().clone();
        const WarmStart derived = analysis::derive_warm_start(
            *app, options.epsilon, options.input_sets, options.type_system);
        SearchOptions resolved = options;
        resolved.static_bounds = false;
        if (!resolved.warm_start) {
            resolved.warm_start = derived;
        } else {
            WarmStart& warm = *resolved.warm_start;
            if (warm.lower_bounds.empty()) {
                warm.lower_bounds = derived.lower_bounds;
            } else if (warm.lower_bounds.size() == derived.lower_bounds.size()) {
                for (std::size_t i = 0; i < warm.lower_bounds.size(); ++i) {
                    warm.lower_bounds[i] = std::max(warm.lower_bounds[i],
                                                    derived.lower_bounds[i]);
                }
            }
            // An upper bound below a derived lower contradicts soundness
            // only apparently (the caller's bound wins the probe clamp);
            // keep the pair consistent so validation stays happy.
            if (!warm.upper_bounds.empty() &&
                warm.upper_bounds.size() == warm.lower_bounds.size()) {
                for (std::size_t i = 0; i < warm.lower_bounds.size(); ++i) {
                    warm.lower_bounds[i] =
                        std::min(warm.lower_bounds[i], warm.upper_bounds[i]);
                }
            }
        }
        Searcher searcher{engine, resolved};
        return searcher.run();
    }
    Searcher searcher{engine, options};
    return searcher.run();
}

WarmStart warm_start_from(const TuningResult& result) {
    WarmStart warm;
    warm.seed_bits.reserve(result.signals.size());
    for (const SignalResult& sr : result.signals) {
        warm.seed_bits.push_back(sr.precision_bits);
    }
    // Monotonicity bound: a looser requirement never needs more precision
    // than the seed's, so the seed doubles as the probe ceiling.
    warm.upper_bounds = warm.seed_bits;
    return warm;
}

std::vector<TuningResult> sweep_search(EvalEngine& engine,
                                       const SearchOptions& base,
                                       const std::vector<double>& epsilons,
                                       bool warm_start_chain) {
    std::vector<TuningResult> results;
    results.reserve(epsilons.size());
    for (std::size_t e = 0; e < epsilons.size(); ++e) {
        SearchOptions options = base;
        options.epsilon = epsilons[e];
        if (warm_start_chain) {
            // Seed from the tightest completed epsilon not exceeding this
            // one: its result is exactly feasible here (quality is a fixed
            // number per config, so meeting a tighter epsilon meets every
            // looser one). For the conventional tight-to-loose order this
            // is simply the previous result.
            const TuningResult* seed = nullptr;
            for (std::size_t c = 0; c < e; ++c) {
                if (epsilons[c] > epsilons[e]) continue;
                if (seed == nullptr || epsilons[c] > seed->epsilon) {
                    seed = &results[c];
                }
            }
            if (seed != nullptr) options.warm_start = warm_start_from(*seed);
        }
        results.push_back(distributed_search(engine, options));
    }
    return results;
}

std::vector<TuningResult> sweep_search(apps::App& app,
                                       const SearchOptions& base,
                                       const std::vector<double>& epsilons,
                                       bool warm_start_chain) {
    EvalEngine engine{app, EvalEngine::Options{.threads = base.threads,
                                               .memoize = true}};
    return sweep_search(engine, base, epsilons, warm_start_chain);
}

} // namespace tp::tuning
