#include "tuning/search.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "tuning/quality.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {
namespace {

/// One prepared input set: the workload index and its exact output.
struct InputSet {
    unsigned index = 0;
    std::vector<double> golden;
};

/// Outcome of one per-signal precision probe (a binary search run as a
/// single pool task).
struct ProbeResult {
    int precision_bits = kMaxPrecisionBits;
    std::size_t runs = 0;
};

class Searcher {
public:
    Searcher(apps::App& app, const SearchOptions& options)
        : app_(app), options_(options) {
        for (const apps::SignalSpec& spec : app.signals()) {
            names_.push_back(spec.name);
            elements_.push_back(spec.elements);
        }
        for (unsigned set : options.input_sets) {
            sets_.push_back(InputSet{set, app_.golden(set)});
        }
        if (options.threads > 1) {
            pool_ = std::make_unique<util::ThreadPool>(options.threads);
        }
    }

    TuningResult run() {
        const std::size_t n = names_.size();
        std::vector<int> joined(n, kMinPrecisionBits);

        // Phase 1: independent search per input set; Phase 2 joins by
        // taking the per-variable maximum (the "statistical refinement").
        for (const InputSet& set : sets_) {
            std::vector<int> bits = search_one_set(set);
            for (std::size_t i = 0; i < n; ++i) {
                joined[i] = std::max(joined[i], bits[i]);
            }
        }

        // The joined binding can still fail on some set (precision demands
        // interact); repair by widening the narrowest signals first.
        repair(joined, /*bound=*/false);

        // Final check under the *bound* formats: binding substitutes the
        // band's concrete type for the trial format, which carries more
        // mantissa bits — usually at least as accurate, but rounding is not
        // monotone in precision, so the requirement is re-verified with the
        // formats the program will actually ship with.
        repair(joined, /*bound=*/true);

        TuningResult result;
        result.type_system = options_.type_system.kind();
        result.epsilon = options_.epsilon;
        result.program_runs = runs_;
        for (std::size_t i = 0; i < n; ++i) {
            SignalResult sr;
            sr.name = names_[i];
            sr.elements = elements_[i];
            sr.precision_bits = joined[i];
            sr.bound = options_.type_system.format_for_precision(joined[i]);
            result.signals.push_back(std::move(sr));
        }
        return result;
    }

private:
    /// Executes `app` with the given per-signal precision bits and checks
    /// the quality requirement on one input set. With `bound` the
    /// evaluation uses the concrete type each precision binds to instead
    /// of the trial format. Pure: touches only `app` (which the caller
    /// owns) — this is the unit of work the thread pool schedules.
    bool trial(apps::App& app, const InputSet& set, const std::vector<int>& bits,
               bool bound) const {
        apps::TypeConfig config;
        for (std::size_t i = 0; i < names_.size(); ++i) {
            const FpFormat format =
                bound ? format_of(options_.type_system.format_for_precision(bits[i]))
                      : options_.type_system.trial_format(bits[i]);
            config.set(names_[i], format);
        }
        app.prepare(set.index);
        sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
        const std::vector<double> out = app.run(ctx, config);
        return meets_requirement(set.golden, out, options_.epsilon);
    }

    /// trial() on the shared prototype app — serial sections only.
    bool trial_counted(const InputSet& set, const std::vector<int>& bits,
                       bool bound) {
        ++runs_;
        return trial(app_, set, bits, bound);
    }

    /// Greedy passes over all signals, one input set. Within a pass every
    /// signal is probed against the *pass-start* binding, which makes the
    /// probes independent of one another — the parallel axis — at the cost
    /// of a repair step when the combined proposals overshoot.
    std::vector<int> search_one_set(const InputSet& set) {
        const std::size_t n = names_.size();
        std::vector<int> bits(n, kMaxPrecisionBits);
        for (int pass = 0; pass < options_.max_passes; ++pass) {
            const std::vector<ProbeResult> probes = util::indexed_map(
                pool_.get(), n, [this, &set, &bits](std::size_t i) {
                    return probe(set, bits, i);
                });
            bool changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                runs_ += probes[i].runs;
                changed = changed || probes[i].precision_bits != bits[i];
            }
            if (!changed) break;
            const std::vector<int> before = bits;
            for (std::size_t i = 0; i < n; ++i) {
                bits[i] = probes[i].precision_bits;
            }
            // Each probe assumed the others kept their pass-start precision;
            // the combined proposals can miss the requirement. Re-establish
            // a passing binding before the next pass sharpens it.
            widen_for_set(set, bits, /*bound=*/false);
            // If the repair reverted every proposal, the next pass would
            // deterministically repeat the identical probes — fixpoint.
            if (bits == before) break;
        }
        return bits;
    }

    /// Lowest precision of signal `i` that passes on `set`, holding every
    /// other signal at its value in `frozen`. Quality is monotone in
    /// precision to a good approximation; a final verification guards
    /// against the rare non-monotone case. Runs as one pool task with a
    /// private app clone.
    ProbeResult probe(const InputSet& set, const std::vector<int>& frozen,
                      std::size_t i) const {
        const std::unique_ptr<apps::App> app = app_.clone();
        std::vector<int> bits = frozen;
        ProbeResult result;
        const int original = bits[i];
        int lo = kMinPrecisionBits;
        int hi = original;
        while (lo < hi) {
            const int mid = lo + (hi - lo) / 2;
            bits[i] = mid;
            ++result.runs;
            if (trial(*app, set, bits, /*bound=*/false)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bits[i] = lo;
        result.precision_bits = lo;
        if (lo != original) {
            ++result.runs;
            if (!trial(*app, set, bits, /*bound=*/false)) {
                // Non-monotone corner: keep the known-good value.
                result.precision_bits = original;
            }
        }
        return result;
    }

    /// Widens `bits` until every input set passes, or the round budget is
    /// spent. Each round evaluates all sets (concurrently when a pool is
    /// available) and repairs the lowest-indexed failing one.
    void repair(std::vector<int>& bits, bool bound) {
        for (int round = 0; round < options_.max_refinement_rounds; ++round) {
            const std::vector<char> passed = util::indexed_map(
                pool_.get(), sets_.size(),
                [this, &bits, bound](std::size_t s) -> char {
                    const std::unique_ptr<apps::App> app = app_.clone();
                    return trial(*app, sets_[s], bits, bound) ? 1 : 0;
                });
            runs_ += sets_.size();
            const auto failing = std::find(passed.begin(), passed.end(), 0);
            if (failing == passed.end()) break;
            const std::size_t s =
                static_cast<std::size_t>(failing - passed.begin());
            widen_for_set(sets_[s], bits, bound);
        }
    }

    /// Widens precisions until `set` passes, preferring the narrowest
    /// variables (those most likely responsible for the quality loss).
    /// Inherently sequential: every step depends on the previous trial.
    void widen_for_set(const InputSet& set, std::vector<int>& bits, bool bound) {
        while (!trial_counted(set, bits, bound)) {
            std::size_t narrowest = names_.size();
            for (std::size_t i = 0; i < bits.size(); ++i) {
                if (bits[i] >= kMaxPrecisionBits) continue;
                if (narrowest == names_.size() || bits[i] < bits[narrowest]) {
                    narrowest = i;
                }
            }
            if (narrowest == names_.size()) return; // everything maxed out
            ++bits[narrowest];
        }
    }

    apps::App& app_;
    SearchOptions options_;
    std::vector<std::string> names_;
    std::vector<std::size_t> elements_;
    std::vector<InputSet> sets_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::size_t runs_ = 0;
};

} // namespace

apps::TypeConfig TuningResult::type_config() const {
    apps::TypeConfig config;
    for (const SignalResult& sr : signals) {
        config.set(sr.name, format_of(sr.bound));
    }
    return config;
}

PrecisionConfig TuningResult::precision_config() const {
    PrecisionConfig config;
    for (const SignalResult& sr : signals) {
        config[sr.name] = sr.precision_bits;
    }
    return config;
}

std::array<int, 4> TuningResult::variables_per_format() const {
    std::array<int, 4> counts{};
    for (const SignalResult& sr : signals) {
        ++counts[static_cast<std::size_t>(sr.bound)];
    }
    return counts;
}

std::array<std::size_t, kMaxPrecisionBits + 1>
TuningResult::locations_per_precision() const {
    std::array<std::size_t, kMaxPrecisionBits + 1> histogram{};
    for (const SignalResult& sr : signals) {
        assert(sr.precision_bits >= 1 && sr.precision_bits <= kMaxPrecisionBits);
        histogram[static_cast<std::size_t>(sr.precision_bits)] += sr.elements;
    }
    return histogram;
}

TuningResult distributed_search(apps::App& app, const SearchOptions& options) {
    Searcher searcher{app, options};
    return searcher.run();
}

} // namespace tp::tuning
