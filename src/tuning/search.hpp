// DistributedSearch — heuristic per-variable precision minimization
// (reimplementation of the fpPrecisionTuning tool the paper uses).
//
// Contract, as described in the paper's Section II:
//   * input: a runnable program, a target (exact) output, and a
//     configuration of per-variable precision bits;
//   * the tool runs the program many times, searching for the minimum
//     precision of each variable that still satisfies the output-quality
//     requirement, for a fixed input set;
//   * a second phase performs a statistical refinement joining the
//     bindings derived from different input sets.
//
// The dynamic range of each trial follows the type system's hypothesis map
// (types/type_system.hpp): DistributedSearch itself never tunes exponent
// widths, exactly as in the paper.
//
// Determinism contract of the parallel engine
// -------------------------------------------
// With SearchOptions::threads > 1, independent trials are dispatched onto a
// fixed-size thread pool: the per-signal precision probes inside a greedy
// pass (each a binary search holding every other signal at its pass-start
// precision) and the per-input-set quality evaluations of the refinement
// phase. The result is bit-identical to the serial path (threads == 1)
// because:
//   * every task is a pure function of its inputs — it owns a private
//     apps::App clone and sim::TpContext, and FlexFloat arithmetic is
//     deterministic double arithmetic, so a trial's outcome does not depend
//     on which thread runs it or when;
//   * reductions are by task index, never by completion order: probe
//     results are applied in signal order, per-set search results are
//     joined in input-set order, the refinement phase repairs the
//     lowest-indexed failing set, and trial counts are summed in index
//     order;
//   * the serial path executes the exact same trials in the same index
//     order inline, so program_runs also matches bit-for-bit.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "tuning/config_io.hpp"
#include "types/type_system.hpp"

namespace tp::tuning {

struct SearchOptions {
    double epsilon = 1e-1;                 // output-quality requirement
    TypeSystem type_system{TypeSystemKind::V2};
    std::vector<unsigned> input_sets{0, 1, 2};
    int max_refinement_rounds = 64;
    int max_passes = 3; // greedy sweeps per input set
    /// Worker threads for trial evaluation. 1 runs the serial reference
    /// path; any value returns the same TuningResult (see the determinism
    /// contract above).
    unsigned threads = 1;
};

struct SignalResult {
    std::string name;
    std::size_t elements = 1;  // memory locations (Fig. 4 weights)
    int precision_bits = kMaxPrecisionBits;
    FormatKind bound = FormatKind::Binary32; // concrete type after binding
};

struct TuningResult {
    std::vector<SignalResult> signals;
    TypeSystemKind type_system = TypeSystemKind::V2;
    double epsilon = 0.0;
    std::size_t program_runs = 0; // trials executed by the search

    /// Concrete per-signal formats (step 3 of the programming flow).
    [[nodiscard]] apps::TypeConfig type_config() const;

    /// Tuned precision bits per signal, as a config file would store them.
    [[nodiscard]] PrecisionConfig precision_config() const;

    /// Variables per bound type — one row of the paper's Table I.
    [[nodiscard]] std::array<int, 4> variables_per_format() const;

    /// Memory locations per minimum precision (index 1..24) — one row of
    /// the paper's Fig. 4.
    [[nodiscard]] std::array<std::size_t, kMaxPrecisionBits + 1>
    locations_per_precision() const;
};

/// Runs the two-phase search on `app`. Deterministic for fixed options.
[[nodiscard]] TuningResult distributed_search(apps::App& app,
                                              const SearchOptions& options);

} // namespace tp::tuning
