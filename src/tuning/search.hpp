// DistributedSearch — heuristic per-variable precision minimization
// (reimplementation of the fpPrecisionTuning tool the paper uses).
//
// Contract, as described in the paper's Section II:
//   * input: a runnable program, a target (exact) output, and a
//     configuration of per-variable precision bits;
//   * the tool runs the program many times, searching for the minimum
//     precision of each variable that still satisfies the output-quality
//     requirement, for a fixed input set;
//   * a second phase performs a statistical refinement joining the
//     bindings derived from different input sets.
//
// The dynamic range of each trial follows the type system's hypothesis map
// (types/type_system.hpp): DistributedSearch itself never tunes exponent
// widths, exactly as in the paper.
//
// Determinism contract of the parallel, memoizing engine
// ------------------------------------------------------
// Trials are submitted through a shared EvalEngine (tuning/eval_engine.hpp)
// that owns the thread pool, the app-clone pool, and a memoized trial
// cache. The TuningResult is bit-identical across BOTH axes:
//
//   * threads — with SearchOptions::threads > 1, independent trials (the
//     per-signal precision probes inside a greedy pass, each a binary
//     search holding every other signal at its pass-start precision, and
//     the per-input-set quality evaluations of the refinement phase) are
//     dispatched onto a fixed-size thread pool. Every task is a pure
//     function of its inputs — it runs on an engine-owned apps::App clone
//     with a private sim::TpContext, and FlexFloat arithmetic is
//     deterministic double arithmetic — and reductions are by task index,
//     never by completion order: probe results are applied in signal
//     order, per-set search results are joined in input-set order, the
//     refinement phase repairs the lowest-indexed failing set, and trial
//     counts are summed in index order. The serial path (threads == 1)
//     executes the exact same trials in the same index order inline.
//
//   * cache state — kernels are pure in (input_set, config), so a cache
//     hit returns exactly what the re-run would. A cold cache, a cache
//     warmed by any previous search (e.g. an earlier distributed_search
//     on the same engine, or the base search inside cast_aware), a cache
//     partially evicted by the engine's LRU memory budget (an eviction
//     only costs a re-run, which reproduces the evicted bytes), and a
//     disabled cache all yield the same TuningResult. program_runs counts
//     trials SUBMITTED — it equals the pre-memoization engine's count
//     bit-for-bit; the executions the cache eliminated are visible in
//     EvalEngine::stats() (kernel_runs vs cache_hits, exact at any
//     thread count thanks to single-flight execution). The greedy
//     fixpoint pass and the probe-confirmation trials of repeated binary
//     searches are the main hit sources inside one search; overlapping
//     requests on a shared long-lived engine (tuning/service.hpp) hit
//     across searches.
//
//   * scheduling — a corollary of the two axes above that the async
//     TuningService (tuning/service.hpp) leans on: a search's result is a
//     function of its request alone, never of WHEN or WHERE it ran. The
//     priority a request was admitted at, the deadline it carried, the
//     admission order around it, cancellation of other requests, which
//     scheduler worker executed it, and whatever the shared caches held
//     when it started are all invisible in the TuningResult — QoS knobs
//     reorder work, they cannot change bits. (A cancelled request has no
//     result at all; cancellation never stops a search mid-flight, so no
//     partially-evaluated state can leak into a neighbour's trials.)
//     The fairness and admission-control knobs extend this axis, never
//     weaken it: anti-starvation aging (the scheduler's aging quantum)
//     only moves a request's START time, per-class queue caps and
//     deadline-aware admission only decide WHETHER a request is admitted
//     (a rejection is a typed error before any ticket exists), and live
//     vs tombstone queue accounting only changes what admission sees.
//     Every request that completes returns the same bits it would have
//     returned from a direct distributed_search / sweep_search call —
//     aging, rejections, and caps around it included.
//
//   * warm starts — SearchOptions::warm_start is PART of the request, so
//     the axes above extend unchanged: a warm-started search is a pure
//     function of (app, options, warm_start) and returns the same bits at
//     any thread count, cache state, priority, or admission order. A warm
//     start changes WHICH trials are submitted, never the search's
//     structure: the seed caps where each probe's bisection starts
//     (instead of kMaxPrecisionBits), the per-signal feasibility bounds
//     clamp the range further, and probes elide the closing verification
//     when its outcome is exactly implied by a trial the same bisection
//     already ran. program_runs still counts trials SUBMITTED and is
//     deterministic in its own right — smaller than the cold search's;
//     the steps the clamps removed and the elided repeats are visible in
//     EvalStats::trials_skipped_by_bounds (tuning/eval_engine.hpp). The
//     greedy trajectory otherwise matches the cold search's — probes hold
//     the same frozen context and the repair loop is identical and
//     warm-start-blind — so every warm-started result meets its epsilon
//     unconditionally (repair guarantees it, seeded or not), and with a
//     seed from a search at a TIGHTER epsilon (quality monotonicity in
//     epsilon makes its feasibility exact, the basis of sweep_search's
//     chaining) the tuned per-signal precisions track the independent
//     search's (asserted per app in bench_eval_engine's
//     sweep_warm_start gates). A warm-started search ends with a
//     monotone join: if the pointwise min of the result and the seed
//     verifies on every input set, it becomes the result — the min only
//     lowers precisions, and it is what keeps a chained sweep's
//     per-signal minima ordered across epsilons even where independent
//     greedy searches trade signals off differently per requirement. A
//     seed or bound that clamps a probe below every passing value costs
//     nothing but the clamped probe: the closing verification catches it
//     and keeps the pass-start value, and repair restores feasibility as
//     always.
//
//   * delta costing — the cast-aware phase's cost probes may route
//     through EvalEngine::report_delta (CastAwareOptions::delta_cost, on
//     by default), which re-costs only the regions the static
//     region-impact analysis (analysis/region_impact.hpp) cannot prove
//     untouched and splices the rest from the memoized base report. By
//     the delta-cost soundness contract (full statement at
//     EvalEngine::report_delta in tuning/eval_engine.hpp) the returned
//     RunReport is BIT-IDENTICAL to a full simulation — over-approximate
//     impact sets, per-region signature verification with full-recost
//     fallback, and a debug-build delta==full cross-check stack so an
//     analysis bug can only cost speed, never bits — so every axis above
//     extends unchanged. Only the EvalStats::regions_recosted /
//     regions_skipped_by_impact split moves, and it too is exact at any
//     thread count (probes within a round share one base binding).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "tuning/config_io.hpp"
#include "types/type_system.hpp"

namespace tp::tuning {

class EvalEngine;

/// An optional warm-start binding for distributed_search: where the
/// search begins and how far each per-signal probe may range. All three
/// vectors are in SignalId (declaration) order and validated against the
/// app's SignalTable size before any trial runs.
struct WarmStart {
    /// Per-signal starting precision bits: each signal's first probe
    /// bisects [kMinPrecisionBits, seed] instead of the full lattice.
    /// Meaningful seeds meet the request's epsilon on every input set —
    /// a TuningResult at a tighter epsilon (exactly feasible, by quality
    /// monotonicity in epsilon), or a saved config from a previous run
    /// (config_io::read_warm_start_seed). A seed below a signal's true
    /// minimum only costs the probe it clamps (the closing verification
    /// rejects it); the result still meets the requirement.
    std::vector<int> seed_bits;
    /// Optional per-signal feasibility bounds clamping every probe's
    /// binary-search range to [lower, upper]; empty means unbounded
    /// ([kMinPrecisionBits, kMaxPrecisionBits]). Steps a clamp removes
    /// from a probe are counted in EvalStats::trials_skipped_by_bounds.
    std::vector<int> lower_bounds;
    std::vector<int> upper_bounds;

    friend bool operator==(const WarmStart&, const WarmStart&) = default;
};

struct SearchOptions {
    double epsilon = 1e-1;                 // output-quality requirement
    TypeSystem type_system{TypeSystemKind::V2};
    std::vector<unsigned> input_sets{0, 1, 2};
    int max_refinement_rounds = 64;
    int max_passes = 3; // greedy sweeps per input set
    /// Worker threads for trial evaluation. 1 runs the serial reference
    /// path; any value returns the same TuningResult (see the determinism
    /// contract above). Ignored when an external EvalEngine is supplied —
    /// the engine's pool is used instead.
    unsigned threads = 1;
    /// Optional warm start (see WarmStart). Part of the request: two
    /// searches with the same warm start return the same bits at any
    /// thread count and cache state; absent, the search is the cold
    /// all-kMaxPrecisionBits search it always was.
    std::optional<WarmStart> warm_start{};
    /// Run the static precision-dataflow analysis
    /// (analysis/derive_bounds.hpp) before the first trial and fold its
    /// sound per-signal lower bounds into the warm start: seeds and upper
    /// bounds are untouched (added to warm_start's if one is set, where
    /// lower bounds combine by max). Costs |input_sets| shadow reference
    /// executions and no trials; by the analysis' soundness contract the
    /// TuningResult's signals are bit-identical to the unbounded search's
    /// — only program_runs shrinks, the pruned bisection steps showing up
    /// in EvalStats::trials_skipped_by_bounds.
    bool static_bounds = false;
};

struct SignalResult {
    std::string name;
    std::size_t elements = 1;  // memory locations (Fig. 4 weights)
    int precision_bits = kMaxPrecisionBits;
    FormatKind bound = FormatKind::Binary32; // concrete type after binding

    friend bool operator==(const SignalResult&, const SignalResult&) = default;
};

struct TuningResult {
    std::vector<SignalResult> signals; // in SignalTable (declaration) order
    TypeSystemKind type_system = TypeSystemKind::V2;
    double epsilon = 0.0;
    std::size_t program_runs = 0; // trials submitted by the search

    /// Memberwise — THE bit-identity predicate of the determinism
    /// contract; benches and tests share it rather than each comparing a
    /// hand-picked subset of fields.
    friend bool operator==(const TuningResult&, const TuningResult&) = default;

    /// Concrete per-signal formats (step 3 of the programming flow),
    /// indexed by SignalId in the app's declaration order.
    [[nodiscard]] apps::TypeConfig type_config() const;

    /// Tuned precision bits per signal, as a config file would store them.
    [[nodiscard]] PrecisionConfig precision_config() const;

    /// Variables per bound type — one row of the paper's Table I.
    [[nodiscard]] std::array<int, 4> variables_per_format() const;

    /// Memory locations per minimum precision (index 1..24) — one row of
    /// the paper's Fig. 4.
    [[nodiscard]] std::array<std::size_t, kMaxPrecisionBits + 1>
    locations_per_precision() const;
};

/// Runs the two-phase search on `app` with a private EvalEngine.
/// Deterministic for fixed options.
[[nodiscard]] TuningResult distributed_search(apps::App& app,
                                              const SearchOptions& options);

/// Same search, submitting trials through a caller-owned engine — shares
/// its thread pool and trial cache with other searches on the same app
/// (options.threads is ignored). The result is bit-identical to the
/// private-engine overload for any cache state.
[[nodiscard]] TuningResult distributed_search(EvalEngine& engine,
                                              const SearchOptions& options);

/// The warm start a completed search induces for a LOOSER requirement:
/// seed and upper bounds both at the result's per-signal bits. Quality is
/// monotone in epsilon — a config meeting a tighter epsilon meets every
/// looser one — so the seed is feasible there by construction.
[[nodiscard]] WarmStart warm_start_from(const TuningResult& result);

/// An epsilon sweep with cross-epsilon warm-starting: one
/// distributed_search per entry of `epsilons` (in order, on one engine),
/// where each search is seeded — via warm_start_from — with the result of
/// the TIGHTEST epsilon already completed that does not exceed its own
/// (for the conventional tight-to-loose order, simply the previous one).
/// Searches with no tighter predecessor (the first, or any out-of-order
/// tightening) run with `base.warm_start` as given. With
/// `warm_start_chain` false every search uses `base.warm_start` verbatim
/// — the three-independent-searches reference. base.epsilon is ignored;
/// results are in `epsilons` order, each a pure function of
/// (app, base, epsilons, warm_start_chain) by the determinism contract.
[[nodiscard]] std::vector<TuningResult> sweep_search(
    EvalEngine& engine, const SearchOptions& base,
    const std::vector<double>& epsilons, bool warm_start_chain = true);

/// Sweep on a private engine (created like distributed_search's).
[[nodiscard]] std::vector<TuningResult> sweep_search(
    apps::App& app, const SearchOptions& base,
    const std::vector<double>& epsilons, bool warm_start_chain = true);

} // namespace tp::tuning
