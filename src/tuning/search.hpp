// DistributedSearch — heuristic per-variable precision minimization
// (reimplementation of the fpPrecisionTuning tool the paper uses).
//
// Contract, as described in the paper's Section II:
//   * input: a runnable program, a target (exact) output, and a
//     configuration of per-variable precision bits;
//   * the tool runs the program many times, searching for the minimum
//     precision of each variable that still satisfies the output-quality
//     requirement, for a fixed input set;
//   * a second phase performs a statistical refinement joining the
//     bindings derived from different input sets.
//
// The dynamic range of each trial follows the type system's hypothesis map
// (types/type_system.hpp): DistributedSearch itself never tunes exponent
// widths, exactly as in the paper.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "tuning/config_io.hpp"
#include "types/type_system.hpp"

namespace tp::tuning {

struct SearchOptions {
    double epsilon = 1e-1;                 // output-quality requirement
    TypeSystem type_system{TypeSystemKind::V2};
    std::vector<unsigned> input_sets{0, 1, 2};
    int max_refinement_rounds = 64;
    int max_passes = 3; // greedy sweeps per input set
};

struct SignalResult {
    std::string name;
    std::size_t elements = 1;  // memory locations (Fig. 4 weights)
    int precision_bits = kMaxPrecisionBits;
    FormatKind bound = FormatKind::Binary32; // concrete type after binding
};

struct TuningResult {
    std::vector<SignalResult> signals;
    TypeSystemKind type_system = TypeSystemKind::V2;
    double epsilon = 0.0;
    std::size_t program_runs = 0; // trials executed by the search

    /// Concrete per-signal formats (step 3 of the programming flow).
    [[nodiscard]] apps::TypeConfig type_config() const;

    /// Tuned precision bits per signal, as a config file would store them.
    [[nodiscard]] PrecisionConfig precision_config() const;

    /// Variables per bound type — one row of the paper's Table I.
    [[nodiscard]] std::array<int, 4> variables_per_format() const;

    /// Memory locations per minimum precision (index 1..24) — one row of
    /// the paper's Fig. 4.
    [[nodiscard]] std::array<std::size_t, kMaxPrecisionBits + 1>
    locations_per_precision() const;
};

/// Runs the two-phase search on `app`. Deterministic for fixed options.
[[nodiscard]] TuningResult distributed_search(apps::App& app,
                                              const SearchOptions& options);

} // namespace tp::tuning
