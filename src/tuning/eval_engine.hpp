// EvalEngine — the shared trial-evaluation service of the tuning layer.
//
// Every tuning algorithm in this repository (DistributedSearch's greedy
// probes, its statistical-refinement repair loop, the cast-aware energy
// pass) reduces to the same primitive: "run the kernel on input set S
// under per-signal binding C and look at the output". Before this engine
// each caller owned its private copy of the machinery — app clones, a
// thread pool, golden outputs — and re-ran kernels it had already run:
// the greedy fixpoint pass deterministically repeats identical probes,
// the repair loop re-verifies bindings the widen step just evaluated,
// and repeated searches over the same app share nothing.
//
// The engine centralizes that machinery and memoizes trial outcomes,
// keyed by (input_set, TypeConfig) — cheap because interned TypeConfigs
// (apps/signal_table.hpp) are flat, hashable values:
//
//   * clone pool     — worker-private apps::App copies, recycled across
//                      trials instead of re-cloned per task;
//   * thread pool    — one util::ThreadPool shared by every phase of a
//                      search (and across search phases, e.g. the
//                      DistributedSearch base run inside cast_aware);
//   * golden cache   — binary64 reference outputs per input set, pinned
//                      for the engine's lifetime;
//   * trial cache    — (input_set, config) -> program output, and
//                      (input_set, config, simd) -> sim::RunReport for
//                      the platform-cost oracle, bounded by an LRU
//                      memory budget (Options::cache_budget_bytes).
//
// Concurrent first requests for the same key are single-flighted: the
// first requester executes the kernel, later requesters wait on its
// in-flight result and count as cache hits. A long-lived engine serving
// overlapping searches (tuning/service.hpp) therefore never runs the
// same trial twice concurrently, and the EvalStats counters are exact at
// any thread count.
//
// Cache-coherent determinism contract
// -----------------------------------
// Kernels are pure functions of (input_set, config): deterministic
// FlexFloat double arithmetic over deterministically generated inputs.
// A cache hit therefore returns exactly the bytes a re-run would
// produce, so ANY cache state (cold, warm from a previous search,
// partially evicted under a memory budget, or memoization disabled) and
// ANY thread count yield bit-identical search results. Callers count
// logical trials themselves (TuningResult::program_runs is the number of
// trials *submitted*, unchanged from the pre-cache engine); EvalStats
// separately reports how many kernel executions the cache eliminated
// (kernel_runs vs cache_hits).
#pragma once

#include <cstddef>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "util/thread_pool.hpp"

namespace tp::analysis {
struct RegionImpactMap;
} // namespace tp::analysis

namespace tp::tuning {

/// Observability counters for the memoized trial cache. `trials` counts
/// evaluation requests, of which `cache_hits` were served from memory
/// (including waits on a concurrent in-flight execution of the same key)
/// and `kernel_runs` actually executed the kernel, so
/// trials == cache_hits + kernel_runs always. Single-flight execution
/// makes every counter exact at any thread count: concurrent first
/// requests for the same key execute the kernel exactly once. Golden
/// (binary64 reference) executions are tracked separately — they are not
/// trials. `evictions` counts cache entries dropped by the LRU memory
/// budget. `trials_skipped_by_bounds` counts trials a warm start
/// provably removed from a search's probes (tuning/search.hpp): the
/// bisection steps its seed / feasibility bounds clamped away plus the
/// closing verifications whose outcome a trial in the same bisection
/// already implied. Never submitted, so NOT part of the
/// trials == cache_hits + kernel_runs invariant; a deterministic
/// function of the request, booked by the search via
/// note_trials_skipped() so scoped attribution sees it too.
/// `regions_recosted` / `regions_skipped_by_impact` account the
/// delta-cost path's work exactly: every traced execution books each
/// cost region (sim/platform.hpp) either as re-costed or — when
/// report_delta() proved it unreachable from the changed signals and
/// verified its signature — as spliced from the memoized base report.
/// For one traced execution recosted + skipped equals the trace's region
/// count; a full simulation books every region as re-costed.
struct EvalStats {
    std::size_t trials = 0;
    std::size_t kernel_runs = 0;
    std::size_t cache_hits = 0;
    std::size_t golden_runs = 0;
    std::size_t evictions = 0;
    std::size_t trials_skipped_by_bounds = 0;
    std::size_t regions_recosted = 0;
    std::size_t regions_skipped_by_impact = 0;

    /// Fraction of trials served from the cache, in [0, 1].
    [[nodiscard]] double hit_rate() const noexcept {
        return trials == 0
                   ? 0.0
                   : static_cast<double>(cache_hits) / static_cast<double>(trials);
    }

    /// Counter-wise sum / difference — aggregation across engines and
    /// before/after deltas (counters are monotone, so a - b of a later
    /// snapshot minus an earlier one never underflows).
    EvalStats& operator+=(const EvalStats& other) noexcept {
        trials += other.trials;
        kernel_runs += other.kernel_runs;
        cache_hits += other.cache_hits;
        golden_runs += other.golden_runs;
        evictions += other.evictions;
        trials_skipped_by_bounds += other.trials_skipped_by_bounds;
        regions_recosted += other.regions_recosted;
        regions_skipped_by_impact += other.regions_skipped_by_impact;
        return *this;
    }
    friend EvalStats operator+(EvalStats a, const EvalStats& b) noexcept {
        return a += b;
    }
    friend EvalStats operator-(EvalStats a, const EvalStats& b) noexcept {
        a.trials -= b.trials;
        a.kernel_runs -= b.kernel_runs;
        a.cache_hits -= b.cache_hits;
        a.golden_runs -= b.golden_runs;
        a.evictions -= b.evictions;
        a.trials_skipped_by_bounds -= b.trials_skipped_by_bounds;
        a.regions_recosted -= b.regions_recosted;
        a.regions_skipped_by_impact -= b.regions_skipped_by_impact;
        return a;
    }

    friend bool operator==(const EvalStats&, const EvalStats&) = default;
};

/// RAII accumulator for per-caller counter deltas. While a scope is
/// alive, every EvalStats bump any engine makes FROM THE CURRENT THREAD
/// is added to the scope as well as to the engine's own stats(). Scopes
/// nest (inner and outer both count) and are engine-agnostic (a thread
/// touching several engines sums across them).
///
/// The thread-locality is the point and the caveat: a pool-LESS engine
/// evaluates every trial inline on the calling thread, so a scope around
/// a search captures that search's delta exactly — even when concurrent
/// threads hammer the same engine, because each bump lands in exactly one
/// thread's scopes, scoped deltas across threads sum to the engine delta
/// with nothing counted twice. (Single-flight keeps the attribution
/// honest: the executor books the kernel_run, each waiter books its own
/// cache_hit.) An engine that owns a pool runs trials on its workers,
/// OUTSIDE the submitting thread's scopes — don't wrap pooled searches
/// and expect exact deltas. The TuningService's per-request stats ride on
/// this: its engines are pool-less and each request runs inline on one
/// scheduler worker.
class EvalStatsScope {
public:
    EvalStatsScope();
    ~EvalStatsScope();
    EvalStatsScope(const EvalStatsScope&) = delete;
    EvalStatsScope& operator=(const EvalStatsScope&) = delete;

    /// The bumps observed so far (live — readable mid-scope).
    [[nodiscard]] const EvalStats& stats() const noexcept { return stats_; }

private:
    EvalStats stats_;
};

class EvalEngine {
public:
    struct Options {
        /// Worker threads for fanned-out trials; <= 1 keeps the serial
        /// reference path (no pool is created). The engine's public
        /// methods are thread-safe regardless — external callers (e.g.
        /// the TuningService's batch workers) may share a pool-less
        /// engine.
        unsigned threads = 1;
        /// Trial memoization. Disabling re-runs every trial — results are
        /// identical by the determinism contract; only EvalStats change.
        bool memoize = true;
        /// Upper bound, in bytes, of memoized trial outputs and reports;
        /// least-recently-used entries are evicted once it is exceeded.
        /// 0 means unbounded. Goldens are pinned and never count against
        /// the budget. Eviction only costs re-runs: results stay
        /// bit-identical in any eviction state.
        std::size_t cache_budget_bytes = 0;
        /// Pin every kernel (trials and goldens) this engine runs to the
        /// emulated arithmetic backend — applied as a thread-scoped
        /// override around each execution, so it also covers pool
        /// workers. Results are bit-identical to the native fast path by
        /// the backend contract (differential-testing knob; the env
        /// TP_FORCE_EMULATED reaches the same state process-wide). See
        /// flexfloat/arith_backend.hpp.
        bool force_emulated = false;
    };

    /// Snapshots `prototype` (one clone) — the engine never mutates or
    /// re-reads the caller's instance afterwards.
    EvalEngine(const apps::App& prototype, const Options& options);

    EvalEngine(const EvalEngine&) = delete;
    EvalEngine& operator=(const EvalEngine&) = delete;
    ~EvalEngine();

    [[nodiscard]] const apps::App& prototype() const noexcept { return *master_; }
    [[nodiscard]] const apps::SignalTable& signal_table() const noexcept {
        return master_->signal_table();
    }

    /// Shared pool for callers' own indexed_map fan-outs; null when
    /// threads <= 1 (serial path).
    [[nodiscard]] util::ThreadPool* pool() noexcept { return pool_.get(); }

    /// Binary64 reference output for `input_set`, computed once
    /// (concurrent first requests are single-flighted). The returned
    /// reference stays valid for the engine's lifetime — goldens are
    /// pinned: neither clear_cache() nor the LRU budget touches them.
    const std::vector<double>& golden(unsigned input_set);

    /// Program output under `config` on `input_set` (untraced run).
    /// Memoized; safe to call from pool workers.
    std::vector<double> output(unsigned input_set, const apps::TypeConfig& config);

    /// One quality trial: does the output under `config` meet the
    /// requirement `epsilon` against the golden output? Counts as one
    /// trial; epsilon is applied to the (cached) output, so the same
    /// config can be checked against several requirements for one run.
    bool meets(unsigned input_set, const apps::TypeConfig& config, double epsilon);

    /// Traced run + virtual-platform simulation (the cast-aware pass's
    /// cost oracle). Memoized per (input_set, config, simd).
    sim::RunReport report(unsigned input_set, const apps::TypeConfig& config,
                          bool simd);

    /// report() with delta costing: when the report for `base_config` is
    /// already memoized, only the cost regions the static region-impact
    /// analysis (analysis/region_impact.hpp) proves reachable from the
    /// changed signals are re-accounted; every other region's memoized
    /// RegionCost is signature-verified and spliced.
    ///
    /// Delta-cost soundness contract: the returned report is BIT-IDENTICAL
    /// to report(input_set, config, simd) in every field, for any base.
    /// Three layers enforce it — (1) the impact sets over-approximate
    /// (region_impact.hpp's contract), (2) each spliced region's cost
    /// signature must equal the base's (any mismatch, e.g. a diverged
    /// branch skeleton, falls back to full re-costing), and (3) debug
    /// builds cross-check the assembled report against a full simulation.
    /// The path is opportunistic: without a memoized base (cold cache,
    /// memoization off, evicted entry) or a usable impact map it degrades
    /// to a plain full report. Counters: one trial either way;
    /// EvalStats::regions_skipped_by_impact books exactly the regions
    /// spliced instead of re-costed.
    sim::RunReport report_delta(unsigned input_set,
                                const apps::TypeConfig& base_config,
                                const apps::TypeConfig& config, bool simd);

    [[nodiscard]] EvalStats stats() const;

    /// Books `n` trials a warm start / feasibility bound made unnecessary
    /// (EvalStats::trials_skipped_by_bounds). Called by the search, not by
    /// evaluation itself — skipped trials never reach the engine; routing
    /// them through it keeps the counter visible to EvalStatsScope.
    void note_trials_skipped(std::size_t n);

    /// Bytes currently charged to the trial cache (outputs + reports,
    /// excluding pinned goldens). Never exceeds a non-zero
    /// Options::cache_budget_bytes once an insertion completes.
    [[nodiscard]] std::size_t cache_bytes() const;

    /// Drops every memoized trial output and report; goldens and counters
    /// are kept. Safe to call concurrently with evaluations — readers
    /// hold shared ownership of the values they are using, and in-flight
    /// executions publish into the now-empty cache.
    void clear_cache();

private:
    /// One key space for both caches: `kind` separates untraced outputs
    /// from traced (input_set, config, simd) platform reports so the two
    /// can share the LRU list and the memory budget.
    struct CacheKey {
        enum class Kind : unsigned char { Output, Report };
        Kind kind = Kind::Output;
        unsigned input_set = 0;
        bool simd = false; // only meaningful for report entries
        apps::TypeConfig config;
        friend bool operator==(const CacheKey&, const CacheKey&) = default;
    };
    struct CacheKeyHash {
        [[nodiscard]] std::size_t operator()(const CacheKey& key) const noexcept {
            std::uint64_t h = key.config.hash();
            h = (h ^ key.input_set) * 1099511628211ULL;
            h = (h ^ static_cast<std::uint64_t>(key.simd)) * 1099511628211ULL;
            h = (h ^ static_cast<std::uint64_t>(key.kind)) * 1099511628211ULL;
            return static_cast<std::size_t>(h);
        }
    };

    /// What an in-flight execution resolves to: the output for Output
    /// keys, the report for Report keys. Shared ownership keeps a value
    /// alive for waiters and readers even after the LRU budget evicts its
    /// cache entry. Report entries keep the full per-region decomposition
    /// (sim::RegionReport) so later report_delta() calls can splice from
    /// them.
    struct CacheValue {
        std::shared_ptr<const std::vector<double>> output;
        std::shared_ptr<const sim::RegionReport> report;
    };
    struct Flight; // promise/shared_future pair, defined in the .cpp

    /// Everything a delta-costed traced execution splices from: the
    /// memoized base decomposition, the input set's impact map, and the
    /// base binding (to diff against the candidate's).
    struct DeltaBasis {
        std::shared_ptr<const sim::RegionReport> base;
        std::shared_ptr<const analysis::RegionImpactMap> impact;
        apps::TypeConfig base_config;
    };

    struct CacheEntry {
        CacheValue value;
        std::size_t bytes = 0;
        std::list<CacheKey>::iterator lru; // position in lru_
    };

    void check_config(const apps::TypeConfig& config) const;

    [[nodiscard]] std::unique_ptr<apps::App> acquire_clone();
    void release_clone(std::unique_ptr<apps::App> clone);

    /// Memoized lookup with single-flight execution: returns the cached
    /// value, waits on a concurrent execution of the same key, or runs
    /// `key` itself (one untraced run for Output keys, one traced run +
    /// platform simulation for Report keys). Counts kernel_runs /
    /// cache_hits exactly once per call. A non-null `basis` lets the
    /// runner's simulation take the delta-cost path; waiters receive the
    /// same (bit-identical) value regardless of their own basis.
    CacheValue obtain(const CacheKey& key, const DeltaBasis* basis);

    /// Executes `key`'s kernel run on a pooled clone. For Report keys the
    /// produced output is returned too, so it can seed the output cache.
    [[nodiscard]] CacheValue execute(const CacheKey& key,
                                     const DeltaBasis* basis);

    /// The input set's region-impact map, built once per engine lifetime
    /// from one tagged shadow capture (single-flighted; not a trial, so
    /// no counters move). Failures — e.g. more signals than tag formats —
    /// yield an empty map, permanently downgrading delta requests for the
    /// set to plain full reports.
    [[nodiscard]] std::shared_ptr<const analysis::RegionImpactMap> impact_for(
        unsigned input_set);

    /// Inserts `value` for `key` (if absent), charges its bytes, and
    /// evicts LRU entries past the budget. Returns entries evicted.
    std::size_t publish(const CacheKey& key, const CacheValue& value);

    std::unique_ptr<apps::App> master_; // immutable after construction
    bool memoize_ = true;
    std::size_t cache_budget_bytes_ = 0;
    bool force_emulated_ = false;
    std::unique_ptr<util::ThreadPool> pool_;

    std::mutex clones_mutex_;
    std::vector<std::unique_ptr<apps::App>> clones_;

    mutable std::mutex cache_mutex_;
    std::map<unsigned, std::vector<double>> goldens_; // pinned, node-stable
    std::map<unsigned, std::shared_ptr<Flight>> golden_flights_;
    std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
    std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights_;
    std::list<CacheKey> lru_; // front = most recently used
    std::size_t cache_bytes_ = 0;

    /// Region-impact maps per input set, single-flighted via shared
    /// futures (separate mutex: building a map runs a kernel and must not
    /// hold up the trial cache).
    std::mutex impact_mutex_;
    std::map<unsigned,
             std::shared_future<std::shared_ptr<const analysis::RegionImpactMap>>>
        impact_futures_;

    mutable std::mutex stats_mutex_;
    EvalStats stats_;
};

} // namespace tp::tuning
