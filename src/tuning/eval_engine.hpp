// EvalEngine — the shared trial-evaluation service of the tuning layer.
//
// Every tuning algorithm in this repository (DistributedSearch's greedy
// probes, its statistical-refinement repair loop, the cast-aware energy
// pass) reduces to the same primitive: "run the kernel on input set S
// under per-signal binding C and look at the output". Before this engine
// each caller owned its private copy of the machinery — app clones, a
// thread pool, golden outputs — and re-ran kernels it had already run:
// the greedy fixpoint pass deterministically repeats identical probes,
// the repair loop re-verifies bindings the widen step just evaluated,
// and repeated searches over the same app share nothing.
//
// The engine centralizes that machinery and memoizes trial outcomes,
// keyed by (input_set, TypeConfig) — cheap because interned TypeConfigs
// (apps/signal_table.hpp) are flat, hashable values:
//
//   * clone pool     — worker-private apps::App copies, recycled across
//                      trials instead of re-cloned per task;
//   * thread pool    — one util::ThreadPool shared by every phase of a
//                      search (and across search phases, e.g. the
//                      DistributedSearch base run inside cast_aware);
//   * golden cache   — binary64 reference outputs per input set;
//   * trial cache    — (input_set, config) -> program output, and
//                      (input_set, config, simd) -> sim::RunReport for
//                      the platform-cost oracle.
//
// Cache-coherent determinism contract
// -----------------------------------
// Kernels are pure functions of (input_set, config): deterministic
// FlexFloat double arithmetic over deterministically generated inputs.
// A cache hit therefore returns exactly the bytes a re-run would
// produce, so ANY cache state (cold, warm from a previous search, or
// memoization disabled) and ANY thread count yield bit-identical search
// results. Callers count logical trials themselves (TuningResult::
// program_runs is the number of trials *submitted*, unchanged from the
// pre-cache engine); EvalStats separately reports how many kernel
// executions the cache eliminated (kernel_runs vs cache_hits).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {

/// Observability counters for the memoized trial cache. `trials` counts
/// evaluation requests, of which `cache_hits` were served from memory and
/// `kernel_runs` actually executed the kernel (trials == hits + runs).
/// Golden (binary64 reference) executions are tracked separately — they
/// are not trials. With threads > 1 concurrent first requests for the
/// same key may, in principle, both execute (both produce identical
/// values); counters are exact on the serial path.
struct EvalStats {
    std::size_t trials = 0;
    std::size_t kernel_runs = 0;
    std::size_t cache_hits = 0;
    std::size_t golden_runs = 0;

    /// Fraction of trials served from the cache, in [0, 1].
    [[nodiscard]] double hit_rate() const noexcept {
        return trials == 0
                   ? 0.0
                   : static_cast<double>(cache_hits) / static_cast<double>(trials);
    }
};

class EvalEngine {
public:
    struct Options {
        /// Worker threads for fanned-out trials; <= 1 keeps the serial
        /// reference path (no pool is created).
        unsigned threads = 1;
        /// Trial memoization. Disabling re-runs every trial — results are
        /// identical by the determinism contract; only EvalStats change.
        bool memoize = true;
    };

    /// Snapshots `prototype` (one clone) — the engine never mutates or
    /// re-reads the caller's instance afterwards.
    EvalEngine(const apps::App& prototype, const Options& options);

    EvalEngine(const EvalEngine&) = delete;
    EvalEngine& operator=(const EvalEngine&) = delete;
    ~EvalEngine();

    [[nodiscard]] const apps::App& prototype() const noexcept { return *master_; }
    [[nodiscard]] const apps::SignalTable& signal_table() const noexcept {
        return master_->signal_table();
    }

    /// Shared pool for callers' own indexed_map fan-outs; null when
    /// threads <= 1 (serial path).
    [[nodiscard]] util::ThreadPool* pool() noexcept { return pool_.get(); }

    /// Binary64 reference output for `input_set`, computed once. The
    /// returned reference stays valid for the engine's lifetime —
    /// clear_cache() keeps the goldens.
    const std::vector<double>& golden(unsigned input_set);

    /// Program output under `config` on `input_set` (untraced run).
    /// Memoized; safe to call from pool workers.
    std::vector<double> output(unsigned input_set, const apps::TypeConfig& config);

    /// One quality trial: does the output under `config` meet the
    /// requirement `epsilon` against the golden output? Counts as one
    /// trial; epsilon is applied to the (cached) output, so the same
    /// config can be checked against several requirements for one run.
    bool meets(unsigned input_set, const apps::TypeConfig& config, double epsilon);

    /// Traced run + virtual-platform simulation (the cast-aware pass's
    /// cost oracle). Memoized per (input_set, config, simd).
    sim::RunReport report(unsigned input_set, const apps::TypeConfig& config,
                          bool simd);

    [[nodiscard]] EvalStats stats() const;

    /// Drops every memoized trial output and report; goldens and counters
    /// are kept. Must not run concurrently with in-flight evaluations.
    void clear_cache();

private:
    struct TrialKey {
        unsigned input_set = 0;
        bool simd = false; // only meaningful for the report cache
        apps::TypeConfig config;
        friend bool operator==(const TrialKey&, const TrialKey&) = default;
    };
    struct TrialKeyHash {
        [[nodiscard]] std::size_t operator()(const TrialKey& key) const noexcept {
            std::uint64_t h = key.config.hash();
            h = (h ^ key.input_set) * 1099511628211ULL;
            h = (h ^ static_cast<std::uint64_t>(key.simd)) * 1099511628211ULL;
            return static_cast<std::size_t>(h);
        }
    };

    void check_config(const apps::TypeConfig& config) const;

    [[nodiscard]] std::unique_ptr<apps::App> acquire_clone();
    void release_clone(std::unique_ptr<apps::App> clone);

    /// Cached output for `key`, or null on a miss. The pointee is stable
    /// (map nodes are only destroyed by clear_cache, which must not race
    /// with evaluations), so callers may read it after the lock drops.
    [[nodiscard]] const std::vector<double>* find_output(const TrialKey& key);

    /// Executes the kernel (one untraced run) and memoizes the output.
    std::vector<double> run_output(const TrialKey& key);

    std::unique_ptr<apps::App> master_; // immutable after construction
    bool memoize_ = true;
    std::unique_ptr<util::ThreadPool> pool_;

    std::mutex clones_mutex_;
    std::vector<std::unique_ptr<apps::App>> clones_;

    std::mutex cache_mutex_;
    std::map<unsigned, std::vector<double>> goldens_;
    std::unordered_map<TrialKey, std::vector<double>, TrialKeyHash> outputs_;
    std::unordered_map<TrialKey, sim::RunReport, TrialKeyHash> reports_;

    mutable std::mutex stats_mutex_;
    EvalStats stats_;
};

} // namespace tp::tuning
