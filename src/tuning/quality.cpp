#include "tuning/quality.hpp"

#include "util/statistics.hpp"

namespace tp::tuning {

double output_error(std::span<const double> golden, std::span<const double> out) {
    return util::relative_rms_error(golden, out);
}

double output_sqnr(std::span<const double> golden, std::span<const double> out) {
    return util::sqnr(golden, out);
}

bool meets_requirement(std::span<const double> golden, std::span<const double> out,
                       double epsilon) {
    // epsilon bounds the noise-to-signal POWER ratio (SQNR >= 1/epsilon).
    const double amplitude_error = output_error(golden, out);
    return amplitude_error * amplitude_error <= epsilon;
}

} // namespace tp::tuning
