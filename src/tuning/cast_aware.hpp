// Cast-aware precision tuning — the paper's first future-work item
// (Section VI): "the study of new techniques of precision tuning, that
// take into account the costs of casts with the aim to formulate a
// multi-objective optimization problem."
//
// DistributedSearch minimizes precision bits per variable and nothing
// else; the paper shows (PCA, Fig. 6/7) that the casts this introduces
// can push cycle and energy counts ABOVE the binary32 baseline. This pass
// post-processes a DistributedSearch binding with a greedy local search
// whose objective is the *simulated platform energy*: it evaluates, for
// each variable, re-binding to each other member format of the type system
// (typically promoting a variable to its neighbours' format so a cast
// chain disappears), accepts the move only when the quality requirement
// still holds on every input set AND total energy decreases, and repeats
// until a fixpoint.
#pragma once

#include <string>

#include "apps/app.hpp"
#include "sim/platform.hpp"
#include "tuning/eval_engine.hpp"
#include "tuning/search.hpp"

namespace tp::tuning {

struct CastAwareOptions {
    /// Phase 1: plain DistributedSearch; search.threads also parallelizes
    /// this pass's candidate-cost and quality probes. search.warm_start
    /// seeds that base search unchanged (see the contract in search.hpp) —
    /// e.g. warm_start_from(a completed plain search at the same epsilon)
    /// lets a service-engine cast-aware pass skip most of the base
    /// search's probe ranges and start phase 2 from the same binding.
    SearchOptions search;
    bool simd = true;          // platform configuration for the cost oracle
    int max_rounds = 4;        // greedy sweeps over all variables
    unsigned cost_input_set = 0; // workload used for energy evaluation
    /// Delta-cost the candidate probes: each probe differs from the
    /// current binding in one signal, so its cost report is obtained via
    /// EvalEngine::report_delta — the static region-impact analysis
    /// splices every provably unaffected cost region from the current
    /// binding's memoized report instead of re-accounting it. Results are
    /// bit-identical either way (the delta-cost soundness contract in
    /// eval_engine.hpp / search.hpp); only the
    /// EvalStats::regions_recosted / regions_skipped_by_impact split
    /// moves.
    bool delta_cost = true;
};

/// A cast-aware pass as a service request: the payload of the cast-aware
/// variant of tuning::Request (tuning/service.hpp). Pairs the app name
/// with the pass options; the service resolves the name to the app's
/// long-lived engine at admission, so a cast-aware request shares the
/// service caches exactly like TuningService::cast_aware always has.
struct CastAwareRequest {
    std::string app;           // apps::make_app name
    CastAwareOptions options{}; // options.search.threads is ignored (the
                               // service engines are pool-less)
};

struct CastAwareResult {
    TuningResult base;             // the DistributedSearch starting point
    apps::TypeConfig config;       // the cast-aware binding (by SignalId)
    double base_energy_pj = 0.0;   // platform energy of the base binding
    double tuned_energy_pj = 0.0;  // platform energy after the pass
    std::uint64_t base_casts = 0;
    std::uint64_t tuned_casts = 0;
    int moves_accepted = 0;
    /// Trial-cache counter delta of the engine over this call (on a
    /// private engine that equals the engine's lifetime stats). On a
    /// shared long-lived engine it excludes everything that ran before
    /// the call; work OTHER threads push onto the same engine during the
    /// call interleaves into it (the TuningService batch-stats caveat).
    EvalStats eval_stats;
};

/// Runs DistributedSearch, then the cast-aware refinement, on a private
/// EvalEngine shared by both phases (pool, clones, memoized trials).
[[nodiscard]] CastAwareResult cast_aware_search(apps::App& app,
                                                const CastAwareOptions& options);

/// Same two-phase search, submitting every trial and platform-cost probe
/// through a caller-owned engine — e.g. a TuningService's long-lived
/// per-app engine (TuningService::cast_aware), so cast-aware requests
/// share the service caches: the base search hits configs earlier batches
/// probed, and the refinement's quality checks hit the base search's
/// trials. options.search.threads is ignored; the engine's pool (or its
/// serial path) is used. By the engine's cache-coherent determinism
/// contract the result is bit-identical to the private-engine overload
/// for any cache state and thread count.
[[nodiscard]] CastAwareResult cast_aware_search(EvalEngine& engine,
                                                const CastAwareOptions& options);

} // namespace tp::tuning
