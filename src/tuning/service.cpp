#include "tuning/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <utility>

#include "apps/app.hpp"
#include "util/priority_scheduler.hpp"

namespace tp::tuning {

namespace detail {

/// The shared state behind one TicketHandle. The queue's closure and
/// every handle copy co-own it; `mutex`/`cv` guard the lifecycle fields,
/// which only ever move forward (kQueued -> kRunning -> terminal), so a
/// reader that observes a terminal status may read `value`/`stats`/
/// `error` without re-checking. `request.work` is an exception to the
/// forward-only rule: a kQueued -> kCancelled/kExpired transition clears
/// it (the payload is dead weight once nothing will run it); only the
/// kQueued -> kRunning transition licenses reading it afterwards.
struct ServiceTicket {
    using Clock = std::chrono::steady_clock;

    // Immutable after submit().
    std::uint64_t id = 0;
    Request request;
    EvalEngine* engine = nullptr;
    Clock::time_point submitted_at{};
    // The scheduler entry behind this ticket, for cancel-time discarding.
    // scheduler is set before the ticket is shared; task_id is written by
    // the submitter (under mutex) once the scheduler admits the entry and
    // stays kNoTask until then.
    std::weak_ptr<util::PriorityScheduler> scheduler;
    std::uint64_t task_id = util::PriorityScheduler::kNoTask;

    mutable std::mutex mutex;
    std::condition_variable cv;
    RequestStatus status = RequestStatus::kQueued;
    RequestResult value;
    EvalStats stats;               // exact per-request delta (EvalStatsScope)
    std::exception_ptr error;      // set for kFailed
    Clock::time_point completed_at{}; // set on the terminal transition
};

/// Running mean of completed requests' execution time (queue wait
/// excluded), feeding the deadline-admission backlog estimate. Shared by
/// the service and the worker closures.
struct RunTimeEstimator {
    std::mutex mutex;
    double total_seconds = 0.0;
    std::uint64_t runs = 0;

    void record(double seconds) {
        const std::lock_guard<std::mutex> lock{mutex};
        total_seconds += seconds;
        ++runs;
    }
    [[nodiscard]] double mean_seconds() {
        const std::lock_guard<std::mutex> lock{mutex};
        return runs == 0 ? 0.0 : total_seconds / static_cast<double>(runs);
    }
};

} // namespace detail

namespace {

using detail::RunTimeEstimator;
using detail::ServiceTicket;
using Clock = std::chrono::steady_clock;

[[nodiscard]] bool is_terminal(RequestStatus status) noexcept {
    return status != RequestStatus::kQueued &&
           status != RequestStatus::kRunning;
}

/// A ticket that just went terminal without running never needs its work
/// payload again — drop the app name, input sets, options and warm-start
/// vectors now instead of holding them until the last handle dies.
/// Caller holds the ticket lock and has just completed a kQueued ->
/// kCancelled/kExpired transition (never later: a running request is
/// reading its work).
void release_work_payload(ServiceTicket& ticket) {
    ticket.request.work = TuningRequest{.app = {}, .input_sets = {}};
}

/// Queued -> Cancelled, if still queued. Shared by TicketHandle::cancel()
/// and the service destructor. Also discards the scheduler queue entry so
/// cancelled work stops counting toward queue depth and class caps the
/// moment it is cancelled — no tombstone lingers.
bool cancel_ticket(ServiceTicket& ticket) {
    std::shared_ptr<util::PriorityScheduler> scheduler;
    std::uint64_t task_id = util::PriorityScheduler::kNoTask;
    {
        const std::lock_guard<std::mutex> lock{ticket.mutex};
        if (ticket.status != RequestStatus::kQueued) return false;
        ticket.status = RequestStatus::kCancelled;
        ticket.completed_at = Clock::now();
        release_work_payload(ticket);
        scheduler = ticket.scheduler.lock();
        task_id = ticket.task_id;
        ticket.cv.notify_all();
    }
    // Outside the ticket lock: discard takes the scheduler lock, and the
    // two are only ever taken scheduler-then-ticket elsewhere. A race
    // with a pop is benign — the popped closure re-checks the status.
    if (scheduler != nullptr) (void)scheduler->discard(task_id);
    return true;
}

/// Queued -> Expired: the deadline rejection. Reached eagerly via the
/// scheduler's expiry purge (TaskOptions::on_discard) and lazily via the
/// pop-time backstop in run_ticket.
void expire_ticket(ServiceTicket& ticket) {
    const std::lock_guard<std::mutex> lock{ticket.mutex};
    if (ticket.status != RequestStatus::kQueued) return;
    ticket.status = RequestStatus::kExpired;
    ticket.completed_at = Clock::now();
    release_work_payload(ticket);
    ticket.cv.notify_all();
}

/// Every work variant names its app; admission resolves it to an engine.
const std::string& app_of(const Request::Work& work) {
    return std::visit([](const auto& r) -> const std::string& { return r.app; },
                      work);
}

/// Per-search options with the request-level fields folded in.
SearchOptions resolve(SearchOptions options, double epsilon,
                      const std::vector<unsigned>& input_sets) {
    options.epsilon = epsilon;
    options.input_sets = input_sets;
    options.threads = 1; // unused: the service engines are pool-less
    return options;
}

template <typename... Ts>
struct Overloaded : Ts... {
    using Ts::operator()...;
};
template <typename... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

/// Runs one admitted request's work on its app's engine, inline on the
/// calling scheduler worker. Pure in (engine caches aside) the work
/// payload — the determinism contract's scheduling-independence rests on
/// this function never looking at priority, deadline, or ticket state.
RequestResult execute_work(EvalEngine& engine, const Request::Work& work) {
    return std::visit(
        Overloaded{
            [&engine](const TuningRequest& r) -> RequestResult {
                return distributed_search(
                    engine, resolve(r.options, r.epsilon, r.input_sets));
            },
            [&engine](const CastAwareRequest& r) -> RequestResult {
                return cast_aware_search(engine, r.options);
            },
            [&engine](const SweepRequest& r) -> RequestResult {
                // resolve()'s epsilon is overwritten per entry by
                // sweep_search; it normalizes input_sets and threads.
                return sweep_search(engine,
                                    resolve(r.options, r.epsilons.empty()
                                                           ? 1e-1
                                                           : r.epsilons.front(),
                                            r.input_sets),
                                    r.epsilons, r.warm_start);
            },
        },
        work);
}

/// The closure body a worker pops: admission checks (tombstone, deadline)
/// under the ticket lock, then the actual search OUTSIDE any lock, then
/// the terminal transition. Owns no reference to the service — the
/// ticket carries everything, so destruction-time draining never races
/// service members.
void run_ticket(const std::shared_ptr<ServiceTicket>& ticket,
                const std::shared_ptr<RunTimeEstimator>& estimator) {
    {
        const std::lock_guard<std::mutex> lock{ticket->mutex};
        if (ticket->status != RequestStatus::kQueued) return; // cancelled
        if (ticket->request.deadline.has_value() &&
            Clock::now() >= *ticket->request.deadline) {
            // Pop-time backstop of the deadline protocol: the eager
            // purge usually expires queued entries first, but a pop can
            // race the expiry. Costs the worker a pop, never a kernel.
            ticket->status = RequestStatus::kExpired;
            ticket->completed_at = Clock::now();
            release_work_payload(*ticket);
            ticket->cv.notify_all();
            return;
        }
        ticket->status = RequestStatus::kRunning;
    }

    const Clock::time_point run_started = Clock::now();
    RequestStatus terminal = RequestStatus::kDone;
    RequestResult value;
    EvalStats delta;
    std::exception_ptr error;
    {
        // The scope captures exactly this request's counter bumps: the
        // engine is pool-less, so every trial runs on this thread. It
        // wraps the catch too — a failed search bumped real counters
        // before throwing, and per-ticket deltas must still sum to the
        // engine delta.
        const EvalStatsScope scope;
        try {
            value = execute_work(*ticket->engine, ticket->request.work);
        } catch (...) {
            error = std::current_exception();
            terminal = RequestStatus::kFailed;
        }
        delta = scope.stats();
    }
    // cast_aware_search reports a before/after engine snapshot, which on
    // a shared engine can interleave foreign traffic; the scoped delta is
    // exact, so it is what the stored result carries.
    if (auto* cast = std::get_if<CastAwareResult>(&value)) {
        cast->eval_stats = delta;
    }
    // Failed runs count too: they consumed a worker for this long, which
    // is what the deadline-admission backlog estimate is modelling.
    estimator->record(std::chrono::duration<double>(Clock::now() - run_started)
                          .count());

    {
        const std::lock_guard<std::mutex> lock{ticket->mutex};
        ticket->status = terminal;
        ticket->value = std::move(value);
        ticket->stats = delta;
        ticket->error = error;
        ticket->completed_at = Clock::now();
        ticket->cv.notify_all();
    }
}

} // namespace

// --- TicketHandle -----------------------------------------------------------

std::uint64_t TicketHandle::id() const { return ticket_->id; }

RequestStatus TicketHandle::status() const {
    const std::lock_guard<std::mutex> lock{ticket_->mutex};
    return ticket_->status;
}

void TicketHandle::wait() const {
    std::unique_lock<std::mutex> lock{ticket_->mutex};
    ticket_->cv.wait(lock, [this] { return is_terminal(ticket_->status); });
}

const RequestResult& TicketHandle::get() const {
    std::unique_lock<std::mutex> lock{ticket_->mutex};
    ticket_->cv.wait(lock, [this] { return is_terminal(ticket_->status); });
    switch (ticket_->status) {
        case RequestStatus::kCancelled:
            throw RequestCancelled{ticket_->id};
        case RequestStatus::kExpired:
            throw DeadlineExpired{ticket_->id};
        case RequestStatus::kFailed:
            std::rethrow_exception(ticket_->error);
        default:
            // Terminal fields are immutable once set; the reference stays
            // valid as long as any handle keeps the ticket alive.
            return ticket_->value;
    }
}

const TuningResult& TicketHandle::search_result() const {
    return std::get<TuningResult>(get());
}

const CastAwareResult& TicketHandle::cast_aware_result() const {
    return std::get<CastAwareResult>(get());
}

const std::vector<TuningResult>& TicketHandle::sweep_results() const {
    return std::get<std::vector<TuningResult>>(get());
}

bool TicketHandle::cancel() const { return cancel_ticket(*ticket_); }

EvalStats TicketHandle::stats() const {
    const std::lock_guard<std::mutex> lock{ticket_->mutex};
    return is_terminal(ticket_->status) ? ticket_->stats : EvalStats{};
}

std::chrono::steady_clock::time_point TicketHandle::submitted_at() const {
    return ticket_->submitted_at;
}

std::chrono::steady_clock::time_point TicketHandle::completed_at() const {
    const std::lock_guard<std::mutex> lock{ticket_->mutex};
    return ticket_->completed_at;
}

// --- TuningService ----------------------------------------------------------

TuningService::TuningService() : TuningService(Options{}) {}

TuningService::TuningService(const Options& options)
    : options_(options),
      estimator_(std::make_shared<detail::RunTimeEstimator>()),
      scheduler_(std::make_shared<util::PriorityScheduler>(
          util::PriorityScheduler::Options{
              .threads = options.threads,
              .per_class_cap = options.max_queued_per_class,
              .aging_quantum = options.aging_quantum})) {}

TuningService::~TuningService() {
    // Cancel everything still queued: their queue entries are discarded on
    // the spot (payloads released) and their waiters wake with kCancelled.
    // Running requests are left alone — the scheduler stop below waits for
    // them.
    std::vector<std::shared_ptr<detail::ServiceTicket>> live;
    {
        const std::lock_guard<std::mutex> lock{tickets_mutex_};
        for (const auto& weak : tickets_) {
            if (auto ticket = weak.lock()) live.push_back(std::move(ticket));
        }
        tickets_.clear();
    }
    for (const auto& ticket : live) (void)cancel_ticket(*ticket);
    // Stop explicitly while the engines the workers reference are still
    // alive, THEN drop the reference: tickets hold weak_ptrs to the
    // scheduler, so a late cancel() on a surviving handle may briefly
    // extend its lifetime past reset() — by then the workers are already
    // joined and destruction is trivial wherever it happens.
    scheduler_->stop();
    scheduler_.reset();
}

EvalEngine& TuningService::engine(std::string_view app_name) {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    const auto it = engines_.find(app_name);
    if (it != engines_.end()) return *it->second;
    // Engines are pool-less (threads = 1): a request evaluates its trials
    // inline on its scheduler worker, so no worker ever blocks on a
    // queued task. Cross-request concurrency on the shared caches is
    // handled by the engine's own locking and single-flight execution.
    const std::unique_ptr<apps::App> prototype = apps::make_app(app_name);
    auto created = std::make_unique<EvalEngine>(
        *prototype,
        EvalEngine::Options{.threads = 1,
                            .memoize = options_.memoize,
                            .cache_budget_bytes = options_.cache_budget_bytes});
    return *engines_.emplace(std::string(app_name), std::move(created))
                .first->second;
}

TicketHandle TuningService::submit(Request request) {
    // Admission control: resolve the app before anything is enqueued —
    // an unknown name throws std::out_of_range here and the service is
    // untouched.
    EvalEngine& request_engine = engine(app_of(request.work));

    const Clock::time_point now = Clock::now();
    if (options_.deadline_admission && request.deadline.has_value()) {
        // Backlog estimate: the live work queued at >= this priority, at
        // the mean completed-run time, spread over the workers. Zero runs
        // completed means zero estimate — only an already-past deadline
        // rejects then. Conservative by construction (aged-up lower
        // classes are ignored), so a refusal is never spurious in the
        // strict-priority model; an admitted-but-doomed request still
        // expires on the queued path.
        const auto backlog = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                estimator_->mean_seconds() *
                static_cast<double>(scheduler_->pending_at_least(
                    static_cast<int>(request.priority))) /
                static_cast<double>(std::max(1u, options_.threads))));
        if (*request.deadline <= now + backlog) {
            {
                const std::lock_guard<std::mutex> lock{tickets_mutex_};
                ++admission_stats_.rejected_deadline;
            }
            throw RequestRejected{
                RequestRejected::Reason::kDeadlineUnmeetable,
                "tuning request refused at submit: its deadline cannot be "
                "met given the current backlog estimate"};
        }
    }

    auto ticket = std::make_shared<detail::ServiceTicket>();
    ticket->request = std::move(request);
    ticket->engine = &request_engine;
    ticket->submitted_at = now;
    ticket->scheduler = scheduler_;
    {
        const std::lock_guard<std::mutex> lock{tickets_mutex_};
        ticket->id = next_ticket_id_++;
    }

    std::uint64_t task_id = util::PriorityScheduler::kNoTask;
    try {
        task_id = scheduler_->submit(
            static_cast<int>(ticket->request.priority),
            [ticket, estimator = estimator_] { run_ticket(ticket, estimator); },
            util::PriorityScheduler::TaskOptions{
                .expiry = ticket->request.deadline,
                // Eager deadline rejection: the purge expires the ticket
                // (and releases its payload) the moment any thread touches
                // the queue past the deadline — no pop required.
                .on_discard = [ticket] { expire_ticket(*ticket); }});
    } catch (const util::PriorityScheduler::ClassFull& full) {
        {
            const std::lock_guard<std::mutex> lock{tickets_mutex_};
            ++admission_stats_.rejected_queue_full;
        }
        // The never-shared ticket dies here: rejected means no ticket, no
        // queue entry, no engine work.
        throw RequestRejected{
            RequestRejected::Reason::kQueueFull,
            "tuning request refused at submit: priority class " +
                std::to_string(full.priority()) +
                " is at its live-queue cap (" + std::to_string(full.cap()) +
                ")"};
    }
    {
        // The ticket is shared with the queue now — cancel() needs the
        // task id to discard the entry, so publish it under the lock.
        const std::lock_guard<std::mutex> lock{ticket->mutex};
        ticket->task_id = task_id;
    }

    {
        const std::lock_guard<std::mutex> lock{tickets_mutex_};
        ++admission_stats_.admitted;
        std::erase_if(tickets_,
                      [](const auto& weak) { return weak.expired(); });
        tickets_.push_back(ticket);
    }
    return TicketHandle{std::move(ticket)};
}

TuningBatchResult TuningService::run(const std::vector<TuningRequest>& batch) {
    // Validate every app up front, serially, in request order: creation
    // is deterministic, and an unknown app rejects the batch before any
    // request is admitted.
    for (const TuningRequest& request : batch) (void)engine(request.app);

    std::vector<TicketHandle> handles;
    handles.reserve(batch.size());
    for (const TuningRequest& request : batch) {
        handles.push_back(submit(Request{.work = request}));
    }

    TuningBatchResult result;
    result.results.reserve(batch.size());
    // Every ticket is awaited even after a failure (the pre-async run()
    // awaited all its futures the same way); the first error is rethrown
    // once the whole batch is terminal.
    std::exception_ptr first_error;
    for (const TicketHandle& handle : handles) {
        try {
            result.results.push_back(handle.search_result());
            result.stats += handle.stats();
        } catch (...) {
            if (first_error == nullptr) first_error = std::current_exception();
        }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
    return result;
}

CastAwareResult TuningService::cast_aware(std::string_view app_name,
                                          const CastAwareOptions& options) {
    const TicketHandle handle = submit(
        Request{.work = CastAwareRequest{std::string(app_name), options}});
    return handle.cast_aware_result();
}

std::size_t TuningService::engine_count() const {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    return engines_.size();
}

EvalStats TuningService::stats() const {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    EvalStats total;
    for (const auto& [name, engine] : engines_) total += engine->stats();
    return total;
}

std::size_t TuningService::queued() const { return scheduler_->pending(); }

AdmissionStats TuningService::admission_stats() const {
    const std::lock_guard<std::mutex> lock{tickets_mutex_};
    return admission_stats_;
}

} // namespace tp::tuning
