#include "tuning/service.hpp"

#include <utility>

#include "apps/app.hpp"
#include "util/thread_pool.hpp"

namespace tp::tuning {

TuningService::TuningService() : TuningService(Options{}) {}

TuningService::TuningService(const Options& options) : options_(options) {
    if (options.threads > 1) {
        pool_ = std::make_unique<util::ThreadPool>(options.threads);
    }
}

// Batch workers reference the engines; the pool must drain first (same
// ordering argument as EvalEngine's destructor).
TuningService::~TuningService() { pool_.reset(); }

EvalEngine& TuningService::engine(std::string_view app_name) {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    const auto it = engines_.find(app_name);
    if (it != engines_.end()) return *it->second;
    // Engines are pool-less (threads = 1): a search task evaluates its
    // trials inline on its batch worker, so no worker ever blocks on a
    // queued task. Cross-request concurrency on the shared caches is
    // handled by the engine's own locking and single-flight execution.
    const std::unique_ptr<apps::App> prototype = apps::make_app(app_name);
    auto created = std::make_unique<EvalEngine>(
        *prototype,
        EvalEngine::Options{.threads = 1,
                            .memoize = options_.memoize,
                            .cache_budget_bytes = options_.cache_budget_bytes});
    return *engines_.emplace(std::string(app_name), std::move(created))
                .first->second;
}

CastAwareResult TuningService::cast_aware(std::string_view app_name,
                                          const CastAwareOptions& options) {
    return cast_aware_search(engine(app_name), options);
}

std::size_t TuningService::engine_count() const {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    return engines_.size();
}

EvalStats TuningService::stats() const {
    const std::lock_guard<std::mutex> lock{engines_mutex_};
    EvalStats total;
    for (const auto& [name, engine] : engines_) total += engine->stats();
    return total;
}

TuningBatchResult TuningService::run(const std::vector<TuningRequest>& batch) {
    // Resolve engines up front, serially, in request order: creation is
    // deterministic, and an unknown app rejects the batch before any
    // search runs.
    std::vector<EvalEngine*> engines;
    engines.reserve(batch.size());
    for (const TuningRequest& request : batch) {
        engines.push_back(&engine(request.app));
    }

    const EvalStats before = stats();
    std::vector<TuningResult> results = util::indexed_map(
        pool_.get(), batch.size(), [&batch, &engines](std::size_t i) {
            const TuningRequest& request = batch[i];
            SearchOptions options = request.options;
            options.epsilon = request.epsilon;
            options.input_sets = request.input_sets;
            options.threads = 1; // unused: the engine has no pool
            return distributed_search(*engines[i], options);
        });

    TuningBatchResult result;
    result.results = std::move(results);
    result.stats = stats() - before;
    return result;
}

} // namespace tp::tuning
