#include "types/format.hpp"

namespace tp {

std::string_view name_of(BackendKind kind) noexcept {
    switch (kind) {
    case BackendKind::kEmulated: return "emulated";
    case BackendKind::kNativeF64: return "native_f64";
    case BackendKind::kNativeF32: return "native_f32";
    case BackendKind::kNativeF16: return "native_f16";
    }
    return "unknown";
}

std::string_view name_of(FormatKind kind) noexcept {
    switch (kind) {
    case FormatKind::Binary8: return "binary8";
    case FormatKind::Binary16: return "binary16";
    case FormatKind::Binary16Alt: return "binary16alt";
    case FormatKind::Binary32: return "binary32";
    }
    return "unknown";
}

bool kind_of(FpFormat format, FormatKind& out) noexcept {
    for (FormatKind kind : kAllFormatKinds) {
        if (format_of(kind) == format) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace tp
