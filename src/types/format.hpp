// Floating-point format descriptors.
//
// A format is fully described by the width of its exponent field `e` and of
// its stored mantissa (fraction) field `m`; the total width is 1 + e + m
// (paper, Section III-A). The four formats of the paper's extended type
// system (Fig. 1) are provided as named constants:
//
//   binary8      1 | 5 | 2    same dynamic range as binary16, less precision
//   binary16     1 | 5 | 10   IEEE 754 half precision
//   binary16alt  1 | 8 | 7    same dynamic range as binary32 (bfloat16-like)
//   binary32     1 | 8 | 23   IEEE 754 single precision
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string_view>

// Native binary16 support: _Float16 arithmetic/conversions are used on the
// fast path only where the compiler provides a conforming IEEE binary16
// (mantissa digits == 11) AND the target has hardware float<->half
// conversions (x86 F16C/AVX512-FP16, or AArch64's always-present FP16
// converts). Without the hardware converts, _Float16 conversions lower to
// libgcc calls that are an order of magnitude SLOWER than the emulated
// integer re-rounding — a "fast path" in name only — so plain
// __FLT16_MANT_DIG__ is deliberately not enough. Define TP_NO_NATIVE_F16
// to force the emulated path for binary16 regardless (build knob for
// differential testing and for toolchains with broken half support).
#if !defined(TP_NO_NATIVE_F16) && defined(__FLT16_MANT_DIG__) &&  \
    __FLT16_MANT_DIG__ == 11 &&                                   \
    (defined(__F16C__) || defined(__AVX512FP16__) ||              \
     defined(__ARM_FP16_FORMAT_IEEE))
#define TP_NATIVE_F16 1
#else
#define TP_NATIVE_F16 0
#endif

namespace tp {

/// Arithmetic backend a format resolves to (see flexfloat/arith_backend.hpp
/// for the entry points). Formats whose bit-level semantics coincide with a
/// hardware FP type compute natively in that type and convert at the format
/// boundary; every other (e, m) pair takes the emulated
/// compute-in-binary64-then-sanitize path. Both backends are bit-identical
/// by contract (property-tested across the format lattice), so the choice
/// is purely a speed lever.
enum class BackendKind : std::uint8_t {
    kEmulated = 0, ///< binary64 arithmetic + detail::sanitize re-rounding
    kNativeF64 = 1, ///< hardware double (binary64)
    kNativeF32 = 2, ///< hardware float (binary32)
    kNativeF16 = 3, ///< hardware _Float16 (binary16), where the compiler has it
};

/// Human-readable backend name ("emulated", "native_f64", ...).
[[nodiscard]] std::string_view name_of(BackendKind kind) noexcept;

/// Static description of a sign/exponent/mantissa floating-point format.
///
/// Invariants: 1 <= exp_bits <= 11 and 1 <= mant_bits <= 52, so that every
/// representable value (including subnormals) is exactly representable in an
/// IEEE binary64, which the emulation layers use as the working type.
struct FpFormat {
    std::uint8_t exp_bits;
    std::uint8_t mant_bits;

    friend constexpr auto operator<=>(const FpFormat&, const FpFormat&) = default;

    /// Total storage width in bits, including the sign.
    [[nodiscard]] constexpr int width_bits() const noexcept {
        return 1 + exp_bits + mant_bits;
    }

    /// Bytes a memory access of this format moves (rounded up to a power of
    /// two, as a load/store unit would).
    [[nodiscard]] constexpr int storage_bytes() const noexcept {
        const int w = width_bits();
        if (w <= 8) return 1;
        if (w <= 16) return 2;
        if (w <= 32) return 4;
        return 8;
    }

    /// Exponent bias: 2^(e-1) - 1.
    [[nodiscard]] constexpr int bias() const noexcept {
        return (1 << (exp_bits - 1)) - 1;
    }

    /// Largest unbiased exponent of a normal number (= bias()).
    [[nodiscard]] constexpr int max_exp() const noexcept { return bias(); }

    /// Smallest unbiased exponent of a normal number (1 - bias()).
    [[nodiscard]] constexpr int min_exp() const noexcept { return 1 - bias(); }

    /// Significand precision in bits, including the hidden bit.
    [[nodiscard]] constexpr int precision() const noexcept { return mant_bits + 1; }

    /// Whether the format can be emulated bit-exactly through binary64
    /// arithmetic followed by re-rounding (innocuous double rounding
    /// requires 53 >= 2 * precision + 2).
    [[nodiscard]] constexpr bool exact_via_double() const noexcept {
        return exp_bits <= 11 && 2 * precision() + 2 <= 53;
    }

    /// True for the descriptor limits this library supports.
    [[nodiscard]] constexpr bool valid() const noexcept {
        return exp_bits >= 1 && exp_bits <= 11 && mant_bits >= 1 && mant_bits <= 52;
    }

    /// Arithmetic backend this format resolves to: the hardware type whose
    /// IEEE semantics match (e, m) exactly, or kEmulated for every other
    /// shape. Use this instead of ad-hoc comparisons against kBinary32 /
    /// kBinary64 when deciding whether a format maps onto hardware — the
    /// classifier also folds in compile-time _Float16 availability.
    /// Backend *resolution* (which additionally honors the force-emulated
    /// override knob) lives in tp::arith::resolve().
    [[nodiscard]] constexpr BackendKind backend() const noexcept {
        if (exp_bits == 11 && mant_bits == 52) return BackendKind::kNativeF64;
        if (exp_bits == 8 && mant_bits == 23) return BackendKind::kNativeF32;
#if TP_NATIVE_F16
        if (exp_bits == 5 && mant_bits == 10) return BackendKind::kNativeF16;
#endif
        return BackendKind::kEmulated;
    }
};

/// The invalid-format sentinel (valid() is false): the value of fields
/// that carry a format only conditionally — e.g. sim::Instr::fmt2, which
/// is meaningful for casts alone. Test with valid(), never by comparing
/// against a named format.
inline constexpr FpFormat kNoFormat{0, 0};

inline constexpr FpFormat kBinary8{5, 2};
inline constexpr FpFormat kBinary16{5, 10};
inline constexpr FpFormat kBinary16Alt{8, 7};
inline constexpr FpFormat kBinary32{8, 23};
inline constexpr FpFormat kBinary64{11, 52};

/// The concrete formats of the paper's extended FP type system.
enum class FormatKind : std::uint8_t {
    Binary8 = 0,
    Binary16 = 1,
    Binary16Alt = 2,
    Binary32 = 3,
};

inline constexpr std::array<FormatKind, 4> kAllFormatKinds{
    FormatKind::Binary8, FormatKind::Binary16, FormatKind::Binary16Alt,
    FormatKind::Binary32};

/// Descriptor for a named format.
[[nodiscard]] constexpr FpFormat format_of(FormatKind kind) noexcept {
    switch (kind) {
    case FormatKind::Binary8: return kBinary8;
    case FormatKind::Binary16: return kBinary16;
    case FormatKind::Binary16Alt: return kBinary16Alt;
    case FormatKind::Binary32: return kBinary32;
    }
    return kBinary32;
}

/// Human-readable name ("binary16alt", ...).
[[nodiscard]] std::string_view name_of(FormatKind kind) noexcept;

/// Reverse lookup of a named format descriptor; returns true for the four
/// kinds above and fills `out`.
[[nodiscard]] bool kind_of(FpFormat format, FormatKind& out) noexcept;

} // namespace tp
