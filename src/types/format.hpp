// Floating-point format descriptors.
//
// A format is fully described by the width of its exponent field `e` and of
// its stored mantissa (fraction) field `m`; the total width is 1 + e + m
// (paper, Section III-A). The four formats of the paper's extended type
// system (Fig. 1) are provided as named constants:
//
//   binary8      1 | 5 | 2    same dynamic range as binary16, less precision
//   binary16     1 | 5 | 10   IEEE 754 half precision
//   binary16alt  1 | 8 | 7    same dynamic range as binary32 (bfloat16-like)
//   binary32     1 | 8 | 23   IEEE 754 single precision
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string_view>

namespace tp {

/// Static description of a sign/exponent/mantissa floating-point format.
///
/// Invariants: 1 <= exp_bits <= 11 and 1 <= mant_bits <= 52, so that every
/// representable value (including subnormals) is exactly representable in an
/// IEEE binary64, which the emulation layers use as the working type.
struct FpFormat {
    std::uint8_t exp_bits;
    std::uint8_t mant_bits;

    friend constexpr auto operator<=>(const FpFormat&, const FpFormat&) = default;

    /// Total storage width in bits, including the sign.
    [[nodiscard]] constexpr int width_bits() const noexcept {
        return 1 + exp_bits + mant_bits;
    }

    /// Bytes a memory access of this format moves (rounded up to a power of
    /// two, as a load/store unit would).
    [[nodiscard]] constexpr int storage_bytes() const noexcept {
        const int w = width_bits();
        if (w <= 8) return 1;
        if (w <= 16) return 2;
        if (w <= 32) return 4;
        return 8;
    }

    /// Exponent bias: 2^(e-1) - 1.
    [[nodiscard]] constexpr int bias() const noexcept {
        return (1 << (exp_bits - 1)) - 1;
    }

    /// Largest unbiased exponent of a normal number (= bias()).
    [[nodiscard]] constexpr int max_exp() const noexcept { return bias(); }

    /// Smallest unbiased exponent of a normal number (1 - bias()).
    [[nodiscard]] constexpr int min_exp() const noexcept { return 1 - bias(); }

    /// Significand precision in bits, including the hidden bit.
    [[nodiscard]] constexpr int precision() const noexcept { return mant_bits + 1; }

    /// Whether the format can be emulated bit-exactly through binary64
    /// arithmetic followed by re-rounding (innocuous double rounding
    /// requires 53 >= 2 * precision + 2).
    [[nodiscard]] constexpr bool exact_via_double() const noexcept {
        return exp_bits <= 11 && 2 * precision() + 2 <= 53;
    }

    /// True for the descriptor limits this library supports.
    [[nodiscard]] constexpr bool valid() const noexcept {
        return exp_bits >= 1 && exp_bits <= 11 && mant_bits >= 1 && mant_bits <= 52;
    }
};

inline constexpr FpFormat kBinary8{5, 2};
inline constexpr FpFormat kBinary16{5, 10};
inline constexpr FpFormat kBinary16Alt{8, 7};
inline constexpr FpFormat kBinary32{8, 23};
inline constexpr FpFormat kBinary64{11, 52};

/// The concrete formats of the paper's extended FP type system.
enum class FormatKind : std::uint8_t {
    Binary8 = 0,
    Binary16 = 1,
    Binary16Alt = 2,
    Binary32 = 3,
};

inline constexpr std::array<FormatKind, 4> kAllFormatKinds{
    FormatKind::Binary8, FormatKind::Binary16, FormatKind::Binary16Alt,
    FormatKind::Binary32};

/// Descriptor for a named format.
[[nodiscard]] constexpr FpFormat format_of(FormatKind kind) noexcept {
    switch (kind) {
    case FormatKind::Binary8: return kBinary8;
    case FormatKind::Binary16: return kBinary16;
    case FormatKind::Binary16Alt: return kBinary16Alt;
    case FormatKind::Binary32: return kBinary32;
    }
    return kBinary32;
}

/// Human-readable name ("binary16alt", ...).
[[nodiscard]] std::string_view name_of(FormatKind kind) noexcept;

/// Reverse lookup of a named format descriptor; returns true for the four
/// kinds above and fills `out`.
[[nodiscard]] bool kind_of(FpFormat format, FormatKind& out) noexcept;

} // namespace tp
