// The extended transprecision FP type systems and the precision-to-range
// hypothesis map (paper, Section III-A).
//
// DistributedSearch tunes only the *precision* of each variable — expressed
// in significand bits including the hidden bit, so binary8 provides 3
// precision bits (2 explicit), binary16 provides 11, binary16alt 8 and
// binary32 24. The dynamic range (exponent width) is fixed by a map from
// precision intervals to exponent widths. The paper evaluates two systems:
//
//   V1 = { binary8, binary16, binary32 }
//        precision (0,3] -> e=5 (binary8), (3,11] -> e=5 (binary16),
//        above 11 -> e=8 (binary32)
//   V2 = V1 + { binary16alt }
//        precision (0,3] -> e=5 (binary8), (3,8] -> e=8 (binary16alt),
//        (8,11] -> e=5 (binary16), above 11 -> e=8 (binary32)
#pragma once

#include <string_view>

#include "types/format.hpp"

namespace tp {

enum class TypeSystemKind : std::uint8_t { V1 = 0, V2 = 1 };

[[nodiscard]] constexpr std::string_view name_of(TypeSystemKind kind) noexcept {
    return kind == TypeSystemKind::V1 ? "V1" : "V2";
}

/// Maximum precision (significand bits, hidden bit included) the tuner
/// explores; equal to the binary32 precision, the widest type of both
/// systems.
inline constexpr int kMaxPrecisionBits = 24;

/// Minimum precision the tuner may probe. FpFormat requires at least one
/// stored mantissa bit (see types/format.hpp), so the narrowest trial
/// format carries 2 significand bits — probing 1 would construct the
/// invalid format {e, m=0}.
inline constexpr int kMinPrecisionBits = 2;

class TypeSystem {
public:
    explicit constexpr TypeSystem(TypeSystemKind kind) noexcept : kind_(kind) {}

    [[nodiscard]] constexpr TypeSystemKind kind() const noexcept { return kind_; }
    [[nodiscard]] constexpr std::string_view name() const noexcept {
        return name_of(kind_);
    }

    /// Concrete format a variable tuned to `precision_bits` binds to
    /// (the colour bands of the paper's Fig. 4).
    [[nodiscard]] constexpr FormatKind format_for_precision(int precision_bits) const noexcept {
        if (precision_bits <= 3) return FormatKind::Binary8;
        if (kind_ == TypeSystemKind::V2) {
            if (precision_bits <= 8) return FormatKind::Binary16Alt;
            if (precision_bits <= 11) return FormatKind::Binary16;
            return FormatKind::Binary32;
        }
        if (precision_bits <= 11) return FormatKind::Binary16;
        return FormatKind::Binary32;
    }

    /// The dynamic-range hypothesis: exponent width assumed while the tuner
    /// evaluates a candidate precision.
    [[nodiscard]] constexpr int exp_bits_for_precision(int precision_bits) const noexcept {
        return format_of(format_for_precision(precision_bits)).exp_bits;
    }

    /// Format used during a tuning trial: hypothesis exponent width plus the
    /// candidate precision (stored mantissa = precision - 1 because of the
    /// hidden bit).
    [[nodiscard]] constexpr FpFormat trial_format(int precision_bits) const noexcept {
        return FpFormat{static_cast<std::uint8_t>(exp_bits_for_precision(precision_bits)),
                        static_cast<std::uint8_t>(precision_bits - 1)};
    }

    /// Number of member formats (3 for V1, 4 for V2).
    [[nodiscard]] constexpr int member_count() const noexcept {
        return kind_ == TypeSystemKind::V2 ? 4 : 3;
    }

    /// Whether `kind` belongs to this type system.
    [[nodiscard]] constexpr bool contains(FormatKind kind) const noexcept {
        return kind != FormatKind::Binary16Alt || kind_ == TypeSystemKind::V2;
    }

private:
    TypeSystemKind kind_;
};

inline constexpr TypeSystem kTypeSystemV1{TypeSystemKind::V1};
inline constexpr TypeSystem kTypeSystemV2{TypeSystemKind::V2};

} // namespace tp
