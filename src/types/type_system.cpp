#include "types/type_system.hpp"

// All members are constexpr and defined in the header; this translation unit
// exists so the library has a home for future non-inline additions and so the
// CMake target has at least one source.
namespace tp {
static_assert(kTypeSystemV1.format_for_precision(3) == FormatKind::Binary8);
static_assert(kTypeSystemV1.format_for_precision(4) == FormatKind::Binary16);
static_assert(kTypeSystemV1.format_for_precision(11) == FormatKind::Binary16);
static_assert(kTypeSystemV1.format_for_precision(12) == FormatKind::Binary32);
static_assert(kTypeSystemV2.format_for_precision(4) == FormatKind::Binary16Alt);
static_assert(kTypeSystemV2.format_for_precision(8) == FormatKind::Binary16Alt);
static_assert(kTypeSystemV2.format_for_precision(9) == FormatKind::Binary16);
static_assert(kTypeSystemV2.format_for_precision(12) == FormatKind::Binary32);
static_assert(kTypeSystemV2.trial_format(8) == FpFormat{8, 7});
static_assert(kTypeSystemV2.trial_format(3) == FpFormat{5, 2});
} // namespace tp
