#include "types/encoding.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace tp {
namespace {

/// Shifts `sig` right by `shift` bits with round-to-nearest-even.
/// `shift` may exceed the word width (the result is then 0; ties cannot
/// occur because sig < 2^63 implies sig / 2^shift < 1/2 for shift >= 64).
std::uint64_t shift_right_rne(std::uint64_t sig, int shift) noexcept {
    if (shift <= 0) return sig << -shift;
    if (shift >= 64) return 0;
    const std::uint64_t kept = sig >> shift;
    const std::uint64_t rem = sig & ((1ULL << shift) - 1);
    const std::uint64_t half = 1ULL << (shift - 1);
    if (rem > half || (rem == half && (kept & 1))) return kept + 1;
    return kept;
}

} // namespace

std::uint64_t encode(double value, FpFormat format) noexcept {
    assert(format.valid());
    const int e = format.exp_bits;
    const int m = format.mant_bits;
    const std::uint64_t sign = std::signbit(value) ? 1ULL << (e + m) : 0;
    const std::uint64_t exp_mask = (1ULL << e) - 1;

    if (std::isnan(value)) {
        // Canonical quiet NaN: exponent all ones, mantissa MSB set, sign +.
        return (exp_mask << m) | (1ULL << (m - 1));
    }
    if (std::isinf(value)) return sign | (exp_mask << m);
    if (value == 0.0) return sign; // preserves the sign of zero

    // Split |value| = sig * 2^(exp - 53) with sig in [2^52, 2^53).
    int exp = 0;
    const double frac = std::frexp(std::fabs(value), &exp); // frac in [0.5, 1)
    const auto sig = static_cast<std::uint64_t>(std::ldexp(frac, 53));
    assert(sig >= (1ULL << 52) && sig < (1ULL << 53));
    // Unbiased exponent of value when written as 1.xxx * 2^e_unb:
    const int e_unb = exp - 1;

    const int p = format.precision(); // significand bits incl. hidden
    if (e_unb >= format.min_exp()) {
        // Normal range (before rounding): keep the top p of 53 bits.
        std::uint64_t rounded = shift_right_rne(sig, 53 - p);
        int res_exp = e_unb;
        if (rounded == (1ULL << p)) { // carry out of the significand
            rounded >>= 1;
            ++res_exp;
        }
        if (res_exp > format.max_exp()) return sign | (exp_mask << m); // overflow
        const auto biased = static_cast<std::uint64_t>(res_exp + format.bias());
        return sign | (biased << m) | (rounded & ((1ULL << m) - 1));
    }

    // Subnormal range: the result is mant_field * 2^(min_exp - m).
    // Shift so that one unit of the mantissa field is one ulp.
    const int shift = (53 - p) + (format.min_exp() - e_unb);
    std::uint64_t mant_field = shift_right_rne(sig, shift);
    if (mant_field >= (1ULL << m)) {
        // Rounded up into the smallest normal.
        return sign | (1ULL << m);
    }
    return sign | mant_field;
}

double decode(std::uint64_t bits, FpFormat format) noexcept {
    assert(format.valid());
    const int e = format.exp_bits;
    const int m = format.mant_bits;
    const std::uint64_t exp_mask = (1ULL << e) - 1;
    const std::uint64_t mant = bits & ((1ULL << m) - 1);
    const std::uint64_t biased = (bits >> m) & exp_mask;
    const bool negative = ((bits >> (e + m)) & 1) != 0;

    double magnitude = 0.0;
    if (biased == exp_mask) {
        if (mant != 0) return std::numeric_limits<double>::quiet_NaN();
        magnitude = std::numeric_limits<double>::infinity();
    } else if (biased == 0) {
        magnitude = std::ldexp(static_cast<double>(mant), format.min_exp() - m);
    } else {
        const double sig = 1.0 + std::ldexp(static_cast<double>(mant), -m);
        magnitude = std::ldexp(sig, static_cast<int>(biased) - format.bias());
    }
    return negative ? -magnitude : magnitude;
}

double quantize(double value, FpFormat format) noexcept {
    return decode(encode(value, format), format);
}

bool representable(double value, FpFormat format) noexcept {
    if (std::isnan(value)) return true; // NaN maps to NaN
    const double q = quantize(value, format);
    return q == value && std::signbit(q) == std::signbit(value);
}

double max_finite(FpFormat format) noexcept {
    const int m = format.mant_bits;
    const double sig = 2.0 - std::ldexp(1.0, -m);
    return std::ldexp(sig, format.max_exp());
}

double min_normal(FpFormat format) noexcept {
    return std::ldexp(1.0, format.min_exp());
}

double min_subnormal(FpFormat format) noexcept {
    return std::ldexp(1.0, format.min_exp() - format.mant_bits);
}

} // namespace tp
