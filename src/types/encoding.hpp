// Bit-level encoding between binary64 and arbitrary (e, m) formats.
//
// This is the "sanitizing" primitive of the FlexFloat approach (paper,
// Section III-A): arithmetic is performed on a native type, then the result
// is re-rounded to the exact binary representation of the target format.
// encode() implements IEEE 754 round-to-nearest-even, gradual underflow,
// overflow to infinity and NaN canonicalization; decode() is exact because
// every (e <= 11, m <= 52) value is representable in binary64.
#pragma once

#include <cstdint>

#include "types/format.hpp"

namespace tp {

/// Rounds `value` to `format` and returns the packed bit pattern
/// (sign at bit e+m, exponent below it, mantissa in the low m bits).
[[nodiscard]] std::uint64_t encode(double value, FpFormat format) noexcept;

/// Expands a packed bit pattern of `format` to the exact binary64 value.
/// NaN patterns map to a quiet NaN; infinities and signed zeros round-trip.
[[nodiscard]] double decode(std::uint64_t bits, FpFormat format) noexcept;

/// decode(encode(value)) — the value `format` hardware would produce when a
/// binary64 intermediate result is written back to an (e, m) register.
[[nodiscard]] double quantize(double value, FpFormat format) noexcept;

/// True if `value` is exactly representable in `format`
/// (i.e. quantize() is the identity on it).
[[nodiscard]] bool representable(double value, FpFormat format) noexcept;

/// Largest finite value of `format`.
[[nodiscard]] double max_finite(FpFormat format) noexcept;

/// Smallest positive normal value of `format`.
[[nodiscard]] double min_normal(FpFormat format) noexcept;

/// Smallest positive subnormal value of `format`.
[[nodiscard]] double min_subnormal(FpFormat format) noexcept;

/// Mask with the low width_bits() bits set; encode() results fit in it.
[[nodiscard]] constexpr std::uint64_t bit_mask(FpFormat format) noexcept {
    const int w = format.width_bits();
    return w >= 64 ? ~0ULL : ((1ULL << w) - 1);
}

} // namespace tp
