// Parametric software floating-point emulation, implemented purely with
// integer arithmetic (in the style of Berkeley SoftFloat, which the paper
// discusses as the bit-accurate-but-slow alternative to FlexFloat).
//
// Every operation takes packed bit patterns of an arbitrary (e, m) format
// (1 <= e <= 11, 1 <= m <= 52) and returns the correctly rounded packed
// result using round-to-nearest-even, with gradual underflow, signed zeros,
// infinities and a canonical quiet NaN.
//
// The module plays two roles in this reproduction:
//   1. an independent oracle: tests prove that FlexFloat's native-backend
//      "compute in double, then sanitize" strategy is bit-identical to a
//      dedicated hardware unit of the target format;
//   2. the baseline for the FlexFloat-vs-emulation speed comparison
//      (bench_flexfloat_overhead), mirroring the paper's Section III-A
//      claim that FlexFloat "produces binaries that are fast to execute".
#pragma once

#include <cstdint>

#include "types/format.hpp"

namespace tp::softfloat {

/// Correctly rounded a + b in `format`.
[[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;

/// Correctly rounded a - b in `format`.
[[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;

/// Correctly rounded a * b in `format`.
[[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;

/// Correctly rounded a / b in `format`.
[[nodiscard]] std::uint64_t div(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;

/// Correctly rounded sqrt(a) in `format`; sqrt of a negative non-zero value
/// returns the canonical NaN.
[[nodiscard]] std::uint64_t sqrt(std::uint64_t a, FpFormat format) noexcept;

/// Correctly rounded fused multiply-add: a * b + c with a single rounding.
/// (The paper's unit provides add/sub/mul; FMA is the natural extension its
/// successor FPU implements, provided here for completeness.)
[[nodiscard]] std::uint64_t fma(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                FpFormat format) noexcept;

/// Format conversion with correct rounding (the FPU's FP<->FP cast).
[[nodiscard]] std::uint64_t cast(std::uint64_t a, FpFormat from, FpFormat to) noexcept;

/// Signed integer to FP conversion with correct rounding.
[[nodiscard]] std::uint64_t from_int(std::int64_t value, FpFormat format) noexcept;

/// FP to signed integer, round-to-nearest-even. NaN and out-of-range values
/// saturate to the int64 limits (NaN maps to 0), matching common FPU
/// conversion semantics.
[[nodiscard]] std::int64_t to_int(std::uint64_t a, FpFormat format) noexcept;

/// Negation (sign-bit flip; exact, affects NaN sign too as on real FPUs).
[[nodiscard]] std::uint64_t neg(std::uint64_t a, FpFormat format) noexcept;

/// Magnitude (sign-bit clear).
[[nodiscard]] std::uint64_t abs(std::uint64_t a, FpFormat format) noexcept;

/// IEEE comparisons: NaN compares unordered (eq/lt/le all false);
/// +0 == -0.
[[nodiscard]] bool eq(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;
[[nodiscard]] bool lt(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;
[[nodiscard]] bool le(std::uint64_t a, std::uint64_t b, FpFormat format) noexcept;

[[nodiscard]] bool is_nan(std::uint64_t a, FpFormat format) noexcept;
[[nodiscard]] bool is_inf(std::uint64_t a, FpFormat format) noexcept;
[[nodiscard]] bool is_zero(std::uint64_t a, FpFormat format) noexcept;

/// Canonical quiet NaN pattern of `format`.
[[nodiscard]] std::uint64_t quiet_nan(FpFormat format) noexcept;

/// Infinity with the given sign.
[[nodiscard]] std::uint64_t infinity(FpFormat format, bool negative) noexcept;

/// Value wrapper offering infix arithmetic on a fixed format — convenient in
/// tests and in the emulation-overhead benchmark. All operators round
/// correctly in the wrapper's format; mixing formats is a logic error and
/// asserts.
class SoftFloat {
public:
    SoftFloat(double value, FpFormat format) noexcept;
    static SoftFloat from_bits(std::uint64_t bits, FpFormat format) noexcept;

    [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
    [[nodiscard]] FpFormat format() const noexcept { return format_; }
    [[nodiscard]] double to_double() const noexcept;

    SoftFloat operator+(const SoftFloat& rhs) const noexcept;
    SoftFloat operator-(const SoftFloat& rhs) const noexcept;
    SoftFloat operator*(const SoftFloat& rhs) const noexcept;
    SoftFloat operator/(const SoftFloat& rhs) const noexcept;
    SoftFloat operator-() const noexcept;

    bool operator==(const SoftFloat& rhs) const noexcept;
    bool operator<(const SoftFloat& rhs) const noexcept;
    bool operator<=(const SoftFloat& rhs) const noexcept;

private:
    SoftFloat(std::uint64_t bits, FpFormat format, int) noexcept
        : bits_(bits), format_(format) {}

    std::uint64_t bits_;
    FpFormat format_;
};

} // namespace tp::softfloat
