#include "softfloat/softfloat.hpp"

#include <bit>
#include <cassert>
#include <limits>

#include "types/encoding.hpp"

namespace tp::softfloat {
namespace {

using u64 = std::uint64_t;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic" // __int128 is a GNU extension
using u128 = unsigned __int128;
#pragma GCC diagnostic pop

enum class Class : std::uint8_t { Zero, Finite, Inf, NaN };

// Working representation: magnitude significand normalized so the leading
// (hidden) bit sits at bit 61; the value is sig * 2^(exp - 61). Two headroom
// bits (62, 63) absorb addition carries, and at least nine bits of guard
// space remain below the narrowest rounding position (p <= 53), so a jammed
// sticky bit at bit 0 never reaches the round bit.
constexpr int kHiddenBit = 61;

struct Unpacked {
    Class cls = Class::Zero;
    bool sign = false;
    int exp = 0; // unbiased exponent for Class::Finite
    u64 sig = 0; // [2^61, 2^62) for Class::Finite
};

/// Right shift that ORs all shifted-out bits into the result LSB
/// ("shift right jam", the classic SoftFloat sticky-preserving shift).
constexpr u64 shift_right_jam(u64 x, int count) noexcept {
    if (count <= 0) return x;
    if (count >= 64) return x != 0 ? 1 : 0;
    return (x >> count) | ((x << (64 - count)) != 0 ? 1 : 0);
}

constexpr u64 shift_right_jam128(u128 x, int count) noexcept {
    if (count >= 128) return x != 0 ? 1 : 0;
    const u128 shifted = x >> count;
    const bool lost = (x & ((u128{1} << count) - 1)) != 0;
    return static_cast<u64>(shifted) | (lost ? 1 : 0);
}

Unpacked unpack(u64 bits, FpFormat f) noexcept {
    const int e = f.exp_bits;
    const int m = f.mant_bits;
    const u64 exp_mask = (1ULL << e) - 1;
    Unpacked r;
    r.sign = ((bits >> (e + m)) & 1) != 0;
    const u64 biased = (bits >> m) & exp_mask;
    const u64 mant = bits & ((1ULL << m) - 1);
    if (biased == exp_mask) {
        r.cls = mant != 0 ? Class::NaN : Class::Inf;
        return r;
    }
    if (biased == 0 && mant == 0) {
        r.cls = Class::Zero;
        return r;
    }
    r.cls = Class::Finite;
    if (biased == 0) {
        // Subnormal: normalize so the leading set bit becomes the hidden bit.
        const int lead = 63 - std::countl_zero(mant);
        r.exp = f.min_exp() - (m - lead);
        r.sig = mant << (kHiddenBit - lead);
    } else {
        r.exp = static_cast<int>(biased) - f.bias();
        r.sig = (mant | (1ULL << m)) << (kHiddenBit - m);
    }
    return r;
}

/// Rounds a significand with hidden bit at kHiddenBit (so `sig` is in
/// [2^61, 2^62)) to `f` and packs it. The LSB of `sig` may carry a jammed
/// sticky bit. Handles subnormal results, underflow to zero and overflow to
/// infinity.
u64 pack_round(bool sign, int exp, u64 sig, FpFormat f) noexcept {
    const int m = f.mant_bits;
    const int p = f.precision();
    const u64 sign_bit = sign ? 1ULL << (f.exp_bits + m) : 0;
    const u64 exp_mask = (1ULL << f.exp_bits) - 1;
    assert(sig >= (1ULL << kHiddenBit) && sig < (1ULL << (kHiddenBit + 1)));

    int shift = (kHiddenBit + 1) - p; // bits to drop for a normal result
    bool subnormal = false;
    if (exp < f.min_exp()) {
        shift += f.min_exp() - exp;
        subnormal = true;
    }

    u64 kept;
    if (shift >= 64) {
        kept = 0;
        // All bits lost; sig != 0, so the remainder is non-zero but far
        // below half of the smallest subnormal only when shift > 64.
        if (shift == 64) {
            // Tie possible only if sig's top bit is the half point with
            // nothing below, which cannot round up to an odd `kept` of 0;
            // rounding up occurs when remainder > half.
            const u64 half_top = 1ULL << 63;
            if (sig > half_top) kept = 1;
        }
    } else {
        kept = sig >> shift;
        const u64 rem = sig & ((1ULL << shift) - 1);
        const u64 half = 1ULL << (shift - 1);
        if (rem > half || (rem == half && (kept & 1))) ++kept;
    }

    if (subnormal) {
        if (kept >= (1ULL << m)) {
            // Rounded up into the smallest normal number.
            return sign_bit | (1ULL << m);
        }
        return sign_bit | kept; // biased exponent 0
    }

    if (kept == (1ULL << p)) { // carry out of the significand
        kept >>= 1;
        ++exp;
    }
    if (exp > f.max_exp()) return sign_bit | (exp_mask << m); // overflow
    const auto biased = static_cast<u64>(exp + f.bias());
    return sign_bit | (biased << m) | (kept & ((1ULL << m) - 1));
}

u64 signed_zero(bool sign, FpFormat f) noexcept {
    return sign ? 1ULL << (f.exp_bits + f.mant_bits) : 0;
}

/// Magnitude addition: |a| + |b| with the given result sign.
u64 add_mags(bool sign, Unpacked a, Unpacked b, FpFormat f) noexcept {
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig)) std::swap(a, b);
    b.sig = shift_right_jam(b.sig, a.exp - b.exp);
    u64 sum = a.sig + b.sig;
    int exp = a.exp;
    if (sum >= (1ULL << (kHiddenBit + 1))) {
        sum = (sum >> 1) | (sum & 1);
        ++exp;
    }
    return pack_round(sign, exp, sum, f);
}

/// Magnitude subtraction: |a| - |b| where the caller guarantees nothing
/// about the ordering; the result sign follows the larger magnitude.
u64 sub_mags(bool sign_a, Unpacked a, Unpacked b, FpFormat f) noexcept {
    bool sign = sign_a;
    if (a.exp < b.exp || (a.exp == b.exp && a.sig < b.sig)) {
        std::swap(a, b);
        sign = !sign_a;
    }
    if (a.exp == b.exp && a.sig == b.sig) {
        return signed_zero(false, f); // exact cancellation is +0 in RNE
    }
    b.sig = shift_right_jam(b.sig, a.exp - b.exp);
    u64 dif = a.sig - b.sig;
    int exp = a.exp;
    // Renormalize: cancellation can clear any number of leading bits, but
    // bits were only jammed (and thus approximate) when the exponents
    // differed by >= 2, in which case at most one leading bit cancels.
    const int lead = 63 - std::countl_zero(dif);
    const int shift_left = kHiddenBit - lead;
    dif <<= shift_left;
    exp -= shift_left;
    return pack_round(sign, exp, dif, f);
}

} // namespace

u64 quiet_nan(FpFormat f) noexcept {
    const u64 exp_mask = (1ULL << f.exp_bits) - 1;
    return (exp_mask << f.mant_bits) | (1ULL << (f.mant_bits - 1));
}

u64 infinity(FpFormat f, bool negative) noexcept {
    const u64 exp_mask = (1ULL << f.exp_bits) - 1;
    return signed_zero(negative, f) | (exp_mask << f.mant_bits);
}

bool is_nan(u64 a, FpFormat f) noexcept { return unpack(a, f).cls == Class::NaN; }
bool is_inf(u64 a, FpFormat f) noexcept { return unpack(a, f).cls == Class::Inf; }
bool is_zero(u64 a, FpFormat f) noexcept { return unpack(a, f).cls == Class::Zero; }

u64 neg(u64 a, FpFormat f) noexcept {
    return a ^ (1ULL << (f.exp_bits + f.mant_bits));
}

u64 abs(u64 a, FpFormat f) noexcept {
    return a & ~(1ULL << (f.exp_bits + f.mant_bits));
}

u64 add(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return quiet_nan(f);
    if (ua.cls == Class::Inf && ub.cls == Class::Inf) {
        return ua.sign == ub.sign ? infinity(f, ua.sign) : quiet_nan(f);
    }
    if (ua.cls == Class::Inf) return infinity(f, ua.sign);
    if (ub.cls == Class::Inf) return infinity(f, ub.sign);
    if (ua.cls == Class::Zero && ub.cls == Class::Zero) {
        return signed_zero(ua.sign && ub.sign, f);
    }
    if (ua.cls == Class::Zero) return b;
    if (ub.cls == Class::Zero) return a;
    if (ua.sign == ub.sign) return add_mags(ua.sign, ua, ub, f);
    return sub_mags(ua.sign, ua, ub, f);
}

u64 sub(u64 a, u64 b, FpFormat f) noexcept { return add(a, neg(b, f), f); }

u64 mul(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    const bool sign = ua.sign != ub.sign;
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return quiet_nan(f);
    if (ua.cls == Class::Inf || ub.cls == Class::Inf) {
        if (ua.cls == Class::Zero || ub.cls == Class::Zero) return quiet_nan(f);
        return infinity(f, sign);
    }
    if (ua.cls == Class::Zero || ub.cls == Class::Zero) return signed_zero(sign, f);

    // Product of two [2^61, 2^62) significands is in [2^122, 2^124).
    const u128 prod = static_cast<u128>(ua.sig) * ub.sig;
    int exp = ua.exp + ub.exp;
    u64 sig;
    if (prod >= (u128{1} << 123)) {
        sig = shift_right_jam128(prod, 123 - kHiddenBit);
        ++exp;
    } else {
        sig = shift_right_jam128(prod, 122 - kHiddenBit);
    }
    return pack_round(sign, exp, sig, f);
}

u64 div(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    const bool sign = ua.sign != ub.sign;
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return quiet_nan(f);
    if (ua.cls == Class::Inf) {
        return ub.cls == Class::Inf ? quiet_nan(f) : infinity(f, sign);
    }
    if (ub.cls == Class::Inf) return signed_zero(sign, f);
    if (ub.cls == Class::Zero) {
        return ua.cls == Class::Zero ? quiet_nan(f) : infinity(f, sign);
    }
    if (ua.cls == Class::Zero) return signed_zero(sign, f);

    // q = siga * 2^62 / sigb is in (2^61, 2^63).
    const u128 numer = static_cast<u128>(ua.sig) << 62;
    u64 q = static_cast<u64>(numer / ub.sig);
    const bool rem = (numer % ub.sig) != 0;
    int exp = ua.exp - ub.exp;
    if (q >= (1ULL << 62)) {
        q = (q >> 1) | (q & 1) | (rem ? 1 : 0);
    } else {
        --exp;
        q |= rem ? 1 : 0;
    }
    return pack_round(sign, exp, q, f);
}

u64 sqrt(u64 a, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    if (ua.cls == Class::NaN) return quiet_nan(f);
    if (ua.cls == Class::Zero) return a; // sqrt(+-0) = +-0
    if (ua.sign) return quiet_nan(f);
    if (ua.cls == Class::Inf) return infinity(f, false);

    // Make the exponent even so sqrt(2^exp) is a power of two.
    u64 sig = ua.sig;
    int exp = ua.exp;
    int sig_top = kHiddenBit;
    if (exp & 1) {
        // Borrow one bit from the exponent into the significand.
        sig <<= 1;
        sig_top = kHiddenBit + 1;
        --exp;
    }
    // value = sig * 2^(exp - kHiddenBit); with X = sig << kHiddenBit,
    // sqrt(value) = floor_sqrt(X) * 2^(exp/2 - kHiddenBit), and
    // floor_sqrt(X) lands in [2^61, 2^63) for sig_top in {61, 62}.
    const u128 radicand = static_cast<u128>(sig) << kHiddenBit;
    // Bitwise integer square root of a 128-bit value.
    u128 rem = 0;
    u128 root = 0;
    for (int i = 126; i >= 0; i -= 2) {
        rem = (rem << 2) | ((radicand >> i) & 0x3);
        const u128 trial = (root << 2) | 1;
        root <<= 1;
        if (rem >= trial) {
            rem -= trial;
            root |= 1;
        }
    }
    u64 s = static_cast<u64>(root);
    const bool inexact = rem != 0;
    int res_exp = exp / 2;
    if (s >= (1ULL << 62)) {
        // sig_top was 62 (odd original exponent): sqrt in [2^61.5, 2^62.5).
        s = (s >> 1) | (s & 1) | (inexact ? 1 : 0);
        ++res_exp;
        (void)sig_top;
    } else {
        s |= inexact ? 1 : 0;
    }
    return pack_round(false, res_exp, s, f);
}

u64 fma(u64 a, u64 b, u64 c, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    const Unpacked uc = unpack(c, f);
    const bool psign = ua.sign != ub.sign;
    if (ua.cls == Class::NaN || ub.cls == Class::NaN || uc.cls == Class::NaN) {
        return quiet_nan(f);
    }
    if (ua.cls == Class::Inf || ub.cls == Class::Inf) {
        if (ua.cls == Class::Zero || ub.cls == Class::Zero) return quiet_nan(f);
        if (uc.cls == Class::Inf && uc.sign != psign) return quiet_nan(f);
        return infinity(f, psign);
    }
    if (uc.cls == Class::Inf) return infinity(f, uc.sign);
    if (ua.cls == Class::Zero || ub.cls == Class::Zero) {
        // Exact zero product: the result is c (with the +0 rule on 0 + -0).
        if (uc.cls == Class::Zero) return signed_zero(psign && uc.sign, f);
        return c;
    }
    if (uc.cls == Class::Zero) return mul(a, b, f);

    // Exact product, normalized (losslessly) to a hidden bit at position
    // 123: value = psig * 2^(pexp - 123), psig in [2^123, 2^124).
    u128 psig = static_cast<u128>(ua.sig) * ub.sig; // [2^122, 2^124)
    int pexp = ua.exp + ub.exp;
    if (psig < (u128{1} << 123)) {
        psig <<= 1;
    } else {
        ++pexp;
    }
    // The addend, exactly, on the same hidden-at-123 grid.
    u128 csig = static_cast<u128>(uc.sig) << (123 - kHiddenBit);
    int cexp = uc.exp;

    const bool big_is_product = pexp > cexp || (pexp == cexp && psig >= csig);
    const bool rsign = big_is_product ? psign : uc.sign;
    int rexp = big_is_product ? pexp : cexp;
    const int diff = big_is_product ? pexp - cexp : cexp - pexp;
    u128 big = big_is_product ? psig : csig;
    u128 small = big_is_product ? csig : psig;

    u128 rsig;
    if (psign == uc.sign) {
        // Addition tolerates a jammed alignment at any distance.
        if (diff > 0) {
            const u128 shifted = diff >= 128 ? 0 : small >> diff;
            const bool lost = diff >= 128
                                  ? small != 0
                                  : (small & ((u128{1} << diff) - 1)) != 0;
            small = shifted | (lost ? 1 : 0);
        }
        rsig = big + small; // < 2^125
        if (rsig >= (u128{1} << 124)) {
            rsig = (rsig >> 1) | (rsig & 1);
            ++rexp;
        }
    } else if (diff <= 2) {
        // Close exponents: deep cancellation is possible, so subtract
        // EXACTLY (shift the larger operand left — it fits: 2^124 << 2).
        big <<= diff;
        rexp -= diff;
        if (big == small) return signed_zero(false, f); // exact cancellation
        rsig = big > small ? big - small : small - big;
        // (big >= small by construction on true magnitudes, but after the
        //  left shift the roles are already correct: big' = big * 2^diff
        //  aligns both on the smaller operand's grid.)
        int lead = 127;
        while (((rsig >> lead) & 1) == 0) --lead;
        const int shift_left = 123 - lead;
        if (shift_left > 0) {
            rsig <<= shift_left;
            rexp -= shift_left;
        } else if (shift_left < 0) {
            rsig = (rsig >> -shift_left) | ((rsig & ((u128{1} << -shift_left) - 1)) != 0 ? 1 : 0);
            rexp += -shift_left;
        }
    } else {
        // Distant exponents: at most one leading bit cancels, so a jammed
        // alignment is harmless (the jam stays far below the round bit).
        const u128 shifted = diff >= 128 ? 0 : small >> diff;
        const bool lost = diff >= 128
                              ? small != 0
                              : (small & ((u128{1} << diff) - 1)) != 0;
        small = shifted | (lost ? 1 : 0);
        rsig = big - small;
        int lead = 127;
        while (((rsig >> lead) & 1) == 0) --lead;
        const int shift_left = 123 - lead;
        if (shift_left > 0) {
            rsig <<= shift_left;
            rexp -= shift_left;
        }
    }
    // Reduce the hidden-at-123 significand to the 62-bit working width.
    const u64 sig = shift_right_jam128(rsig, 123 - kHiddenBit);
    return pack_round(rsign, rexp, sig, f);
}

u64 cast(u64 a, FpFormat from, FpFormat to) noexcept {
    const Unpacked ua = unpack(a, from);
    switch (ua.cls) {
    case Class::NaN: return quiet_nan(to);
    case Class::Inf: return infinity(to, ua.sign);
    case Class::Zero: return signed_zero(ua.sign, to);
    case Class::Finite: return pack_round(ua.sign, ua.exp, ua.sig, to);
    }
    return quiet_nan(to);
}

u64 from_int(std::int64_t value, FpFormat f) noexcept {
    if (value == 0) return 0;
    const bool sign = value < 0;
    // Magnitude without UB for INT64_MIN.
    u64 mag = sign ? (~static_cast<u64>(value) + 1) : static_cast<u64>(value);
    const int lead = 63 - std::countl_zero(mag);
    int exp = lead;
    u64 sig;
    if (lead <= kHiddenBit) {
        sig = mag << (kHiddenBit - lead);
    } else {
        sig = shift_right_jam(mag, lead - kHiddenBit);
    }
    return pack_round(sign, exp, sig, f);
}

std::int64_t to_int(u64 a, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    switch (ua.cls) {
    case Class::NaN: return 0;
    case Class::Zero: return 0;
    case Class::Inf:
        return ua.sign ? std::numeric_limits<std::int64_t>::min()
                       : std::numeric_limits<std::int64_t>::max();
    case Class::Finite: break;
    }
    if (ua.exp < -1) return 0; // |value| < 1/2 rounds to 0
    if (ua.exp > 62) {
        return ua.sign ? std::numeric_limits<std::int64_t>::min()
                       : std::numeric_limits<std::int64_t>::max();
    }
    // value = sig * 2^(exp - kHiddenBit); shift to integer weight with RNE.
    const int shift = kHiddenBit - ua.exp;
    u64 mag;
    if (shift <= 0) {
        mag = ua.sig << -shift;
    } else if (shift >= 64) {
        mag = 0;
    } else {
        const u64 kept = ua.sig >> shift;
        const u64 rem = ua.sig & ((1ULL << shift) - 1);
        const u64 half = 1ULL << (shift - 1);
        mag = kept;
        if (rem > half || (rem == half && (kept & 1))) ++mag;
    }
    if (!ua.sign && mag > static_cast<u64>(std::numeric_limits<std::int64_t>::max())) {
        return std::numeric_limits<std::int64_t>::max();
    }
    if (ua.sign && mag >= static_cast<u64>(std::numeric_limits<std::int64_t>::max()) + 1) {
        return std::numeric_limits<std::int64_t>::min(); // exact for mag == 2^63
    }
    return ua.sign ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

bool eq(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return false;
    if (ua.cls == Class::Zero && ub.cls == Class::Zero) return true;
    return a == b;
}

bool lt(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return false;
    if (ua.cls == Class::Zero && ub.cls == Class::Zero) return false;
    if (ua.sign != ub.sign) {
        if (ua.cls == Class::Zero) return !ub.sign;
        if (ub.cls == Class::Zero) return ua.sign;
        return ua.sign;
    }
    // Same sign (or one is zero): compare magnitudes via the packed layout,
    // which is monotonic in magnitude for a fixed sign.
    const u64 mag_a = abs(a, f);
    const u64 mag_b = abs(b, f);
    const bool negative = ua.cls == Class::Zero ? ub.sign : ua.sign;
    return negative ? mag_a > mag_b : mag_a < mag_b;
}

bool le(u64 a, u64 b, FpFormat f) noexcept {
    const Unpacked ua = unpack(a, f);
    const Unpacked ub = unpack(b, f);
    if (ua.cls == Class::NaN || ub.cls == Class::NaN) return false;
    return eq(a, b, f) || lt(a, b, f);
}

SoftFloat::SoftFloat(double value, FpFormat format) noexcept
    : bits_(encode(value, format)), format_(format) {}

SoftFloat SoftFloat::from_bits(u64 bits, FpFormat format) noexcept {
    return SoftFloat{bits & bit_mask(format), format, 0};
}

double SoftFloat::to_double() const noexcept { return decode(bits_, format_); }

SoftFloat SoftFloat::operator+(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return SoftFloat{add(bits_, rhs.bits_, format_), format_, 0};
}

SoftFloat SoftFloat::operator-(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return SoftFloat{sub(bits_, rhs.bits_, format_), format_, 0};
}

SoftFloat SoftFloat::operator*(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return SoftFloat{mul(bits_, rhs.bits_, format_), format_, 0};
}

SoftFloat SoftFloat::operator/(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return SoftFloat{div(bits_, rhs.bits_, format_), format_, 0};
}

SoftFloat SoftFloat::operator-() const noexcept {
    return SoftFloat{softfloat::neg(bits_, format_), format_, 0};
}

bool SoftFloat::operator==(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return eq(bits_, rhs.bits_, format_);
}

bool SoftFloat::operator<(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return lt(bits_, rhs.bits_, format_);
}

bool SoftFloat::operator<=(const SoftFloat& rhs) const noexcept {
    assert(format_ == rhs.format_);
    return le(bits_, rhs.bits_, format_);
}

} // namespace tp::softfloat
