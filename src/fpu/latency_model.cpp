#include "fpu/latency_model.hpp"

namespace tp::fpu {

int latency_cycles(FpOp op, FpFormat format) noexcept {
    const int width = format.width_bits();
    switch (op) {
    case FpOp::Add:
    case FpOp::Sub:
    case FpOp::Mul:
    case FpOp::Fma:
        // One pipeline stage for 32- and 16-bit slices, none for 8-bit.
        return width <= 8 ? 1 : 2;
    case FpOp::Div:
    case FpOp::Sqrt:
        // Iterative digit-serial datapath: cycles grow with mantissa width
        // (cf. Tong et al., discussed in the paper's related work).
        if (width <= 8) return 6;
        if (width <= 16) return 10;
        return 15;
    case FpOp::Neg:
    case FpOp::Abs:
    case FpOp::Cmp:
    case FpOp::FromInt:
    case FpOp::ToInt:
        return 1;
    }
    return 1;
}

int initiation_interval(FpOp op, FpFormat format) noexcept {
    return is_pipelined(op, format) ? 1 : latency_cycles(op, format);
}

int cast_latency_cycles() noexcept { return 1; }

bool is_pipelined(FpOp op, FpFormat format) noexcept {
    switch (op) {
    case FpOp::Div:
    case FpOp::Sqrt:
        return false;
    default:
        (void)format;
        return true;
    }
}

} // namespace tp::fpu
