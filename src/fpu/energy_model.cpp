#include "fpu/energy_model.hpp"

namespace tp::fpu {
namespace {

enum class WidthClass { W8, W16, W16Alt, W32 };

WidthClass width_class(FpFormat f) noexcept {
    if (f.width_bits() <= 8) return WidthClass::W8;
    if (f.width_bits() <= 16) {
        // Distinguish the two 16-bit formats by exponent width; anything
        // with a binary32-style exponent behaves like binary16alt.
        return f.exp_bits >= 8 ? WidthClass::W16Alt : WidthClass::W16;
    }
    return WidthClass::W32;
}

} // namespace

/// Datapath-only energy of a scalar FP operation.
static double datapath_energy(const EnergyModel& m, FpOp op, FpFormat format) noexcept {
    const WidthClass w = width_class(format);
    switch (op) {
    case FpOp::Add:
    case FpOp::Sub:
        switch (w) {
        case WidthClass::W8: return m.fp8_add;
        case WidthClass::W16: return m.fp16_add;
        case WidthClass::W16Alt: return m.fp16alt_add;
        case WidthClass::W32: return m.fp32_add;
        }
        break;
    case FpOp::Mul:
        switch (w) {
        case WidthClass::W8: return m.fp8_mul;
        case WidthClass::W16: return m.fp16_mul;
        case WidthClass::W16Alt: return m.fp16alt_mul;
        case WidthClass::W32: return m.fp32_mul;
        }
        break;
    case FpOp::Fma:
        // Fused datapath: one multiplier plus one adder sharing the
        // normalization stage — slightly cheaper than the two separate ops.
        return 0.9 * (datapath_energy(m, FpOp::Add, format) +
                      datapath_energy(m, FpOp::Mul, format));
    case FpOp::Div:
    case FpOp::Sqrt:
        switch (w) {
        case WidthClass::W8: return m.fp8_div;
        case WidthClass::W16:
        case WidthClass::W16Alt: return m.fp16_div;
        case WidthClass::W32: return m.fp32_div;
        }
        break;
    case FpOp::Cmp: return m.fp_cmp;
    case FpOp::Neg:
    case FpOp::Abs: return m.fp_sign;
    case FpOp::FromInt:
    case FpOp::ToInt: return m.cast_fp_int;
    }
    return m.fp_cmp;
}

double EnergyModel::fp_op(FpOp op, FpFormat format) const noexcept {
    return instr_base + datapath_energy(*this, op, format);
}

double EnergyModel::fp_op_simd(FpOp op, FpFormat format, int lanes) const noexcept {
    if (lanes <= 1) return fp_op(op, format);
    return instr_base +
           static_cast<double>(lanes) * datapath_energy(*this, op, format) *
               simd_lane_factor +
           simd_issue_overhead;
}

double EnergyModel::cast(FpFormat from, FpFormat to) const noexcept {
    // Casts between formats sharing an exponent width are cheaper shifts
    // ("using the same number of exponent bits ... makes conversions much
    //  cheaper"), modelled as a 25% datapath discount.
    const double datapath =
        from.exp_bits == to.exp_bits ? cast_fp_fp * 0.75 : cast_fp_fp;
    return instr_base + datapath;
}

int EnergyModel::idle_slices(FpFormat format, int lanes) noexcept {
    // Slice inventory per Fig. 3: one 32-bit, two 16-bit, four 8-bit.
    constexpr int kTotal = 7;
    int active = 0;
    if (format.width_bits() <= 8) {
        active = lanes; // 1..4 of the 8-bit slices
    } else if (format.width_bits() <= 16) {
        active = lanes; // 1..2 of the 16-bit slices
    } else {
        active = 1; // the single 32-bit slice
    }
    return kTotal - active;
}

const EnergyModel& default_energy_model() noexcept {
    static const EnergyModel model{};
    return model;
}

} // namespace tp::fpu
