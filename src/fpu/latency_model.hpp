// Timing model of the transprecision FPU (paper, Section IV).
//
// "To meet the timing requirements of the container core, arithmetic
//  operations in binary32 as well as both 16-bit formats are pipelined with
//  one stage, hence featuring a bandwidth of one operation per cycle and a
//  latency of two clock cycles. Arithmetic operations in binary8 as well as
//  all conversion operations have a one cycle latency."
//
// Division and square root are not provided by the paper's unit; they are
// modelled as iterative (digit-serial) multi-cycle operations in the style
// of the RI5CY private FPU so that kernels containing divisions remain
// simulatable. This extension is documented in DESIGN.md.
#pragma once

#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp::fpu {

/// Issue-to-result latency in cycles of an FP operation at the given format.
[[nodiscard]] int latency_cycles(FpOp op, FpFormat format) noexcept;

/// Minimum cycles between two issues of the same operation kind
/// (1 for pipelined ops, = latency for blocking div/sqrt).
[[nodiscard]] int initiation_interval(FpOp op, FpFormat format) noexcept;

/// Latency of a format conversion (any FP<->FP or FP<->int cast): 1 cycle.
[[nodiscard]] int cast_latency_cycles() noexcept;

/// True if the operation is executed by a pipelined datapath.
[[nodiscard]] bool is_pipelined(FpOp op, FpFormat format) noexcept;

} // namespace tp::fpu
