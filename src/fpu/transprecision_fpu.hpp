// Functional + accounting model of the transprecision FPU (paper, Fig. 3).
//
// The unit is built from three kinds of fixed-width slices — one 32-bit,
// two 16-bit and four 8-bit — each hosting the arithmetic operations of the
// formats matching its width plus the conversion datapaths. Replicated
// narrow slices provide sub-word SIMD: two 16-bit or four 8-bit operations
// per instruction. Unused slices are operand-silenced (inputs forced to
// zero), leaving only a small residual energy per idle slice.
//
// This class computes *values* through FlexFloat (bit-exact for every
// supported format) while accumulating the energy and busy-cycle cost of
// each instruction from the latency and energy models. It backs the FPU
// unit tests and the per-op energy bench; the virtual platform uses the
// same models directly on its instruction trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flexfloat/flexfloat_dyn.hpp"
#include "fpu/energy_model.hpp"
#include "fpu/latency_model.hpp"
#include "types/format.hpp"

namespace tp::fpu {

/// Slice inventory of the unit.
struct SliceInfo {
    int width_bits;
    int count;
};
inline constexpr SliceInfo kSlices[] = {{32, 1}, {16, 2}, {8, 4}};

class TransprecisionFpu {
public:
    struct Counters {
        std::uint64_t scalar_ops = 0;
        std::uint64_t simd_instrs = 0;
        std::uint64_t simd_lanes = 0;
        std::uint64_t casts = 0;
        std::uint64_t busy_cycles = 0;
        double energy_pj = 0.0;
    };

    explicit TransprecisionFpu(const EnergyModel& model = default_energy_model())
        : model_(model) {}

    /// Whether the paper's unit implements `op` at `format`.
    /// Addition, subtraction and multiplication exist on every slice;
    /// division and square root are an extension of this model (see
    /// latency_model.hpp) and report false here.
    [[nodiscard]] static bool supports(FpOp op, FpFormat format) noexcept;

    /// SIMD lanes available at `format` width: 4 for 8-bit, 2 for 16-bit,
    /// 1 for 32-bit.
    [[nodiscard]] static int max_lanes(FpFormat format) noexcept;

    /// Scalar two-operand instruction. Operand formats must match.
    FlexFloatDyn execute(FpOp op, const FlexFloatDyn& a, const FlexFloatDyn& b);

    /// Scalar one-operand instruction (neg/abs/sqrt).
    FlexFloatDyn execute_unary(FpOp op, const FlexFloatDyn& a);

    /// Fused multiply-add: a * b + c with a single rounding. A model
    /// extension (the paper's unit implements add/sub/mul; its successor
    /// adds FMA).
    FlexFloatDyn execute_fma(const FlexFloatDyn& a, const FlexFloatDyn& b,
                             const FlexFloatDyn& c);

    /// Sub-word SIMD instruction: element i of the result is a[i] op b[i].
    /// The span length must not exceed max_lanes(format).
    std::vector<FlexFloatDyn> execute_simd(FpOp op,
                                           std::span<const FlexFloatDyn> a,
                                           std::span<const FlexFloatDyn> b);

    /// FP -> FP conversion instruction.
    FlexFloatDyn convert(const FlexFloatDyn& a, FpFormat to);

    /// Integer <-> FP conversion instructions.
    FlexFloatDyn from_int(std::int64_t value, FpFormat format);
    std::int64_t to_int(const FlexFloatDyn& a);

    [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
    void reset_counters() noexcept { counters_ = Counters{}; }

    [[nodiscard]] const EnergyModel& energy_model() const noexcept { return model_; }

private:
    void account(FpOp op, FpFormat format, int lanes);

    EnergyModel model_;
    Counters counters_;
};

} // namespace tp::fpu
