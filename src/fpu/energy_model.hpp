// Energy model of the transprecision platform, in picojoules per event.
//
// The paper evaluates a UMC 65 nm post-place-&-route netlist at 350 MHz,
// worst-case corner, and reports *normalized* energy only. The absolute
// numbers below are therefore a calibration, not a measurement.
//
// Structure: every instruction pays a shared per-instruction base cost
// (instruction fetch, decode, register file — the bulk of the energy of a
// small in-order core) plus the switching energy of the datapath it
// activates. This structure reproduces the paper's two central
// observations:
//   * on the binary32 baseline, FP instructions account for roughly 30%
//     of core+memory energy and FP operand movement for another ~20%;
//   * narrowing scalar operations alone saves little (JACOBI stays at
//     ~97%), because the instruction base dominates — the savings come
//     from sub-word SIMD, which amortizes one instruction base over 2 or 4
//     element operations, and from packed memory accesses.
//
// All figures in pJ.
#pragma once

#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp::fpu {

struct EnergyModel {
    /// Shared per-instruction cost: fetch, decode, operand read/writeback.
    double instr_base = 3.0;

    // --- FPU datapath switching energy (on top of instr_base) -------------
    double fp32_add = 1.6;
    double fp32_mul = 2.6;
    double fp16_add = 0.80;     // binary16 (e=5): 11-bit significand adder
    double fp16_mul = 1.20;
    double fp16alt_add = 0.85;  // binary16alt (e=8): wider exponent datapath
    double fp16alt_mul = 1.05;  // but an 8-bit significand multiplier
    double fp8_add = 0.25;      // "operations on binary8 become very cheap"
    double fp8_mul = 0.35;
    // Iterative div/sqrt datapath energy per operation (not per cycle).
    double fp32_div = 21.0;
    double fp16_div = 10.0;
    double fp8_div = 4.0;
    // Comparison / sign manipulation datapaths.
    double fp_cmp = 0.2;
    double fp_sign = 0.1;
    // Conversion unit datapaths (all casts are single-cycle instructions).
    double cast_fp_fp = 0.4;
    double cast_fp_int = 0.6;
    // SIMD: one instruction base + per-lane datapath energy; control and
    // operand isolation add a small fixed overhead.
    double simd_lane_factor = 0.9;
    double simd_issue_overhead = 0.2;
    // Operand silencing (Section IV): unused slices are forced to zero and
    // pay only a residual per instruction.
    double idle_slice = 0.1;
    // Moving an operand between the integer core and the FPU input/output
    // registers (the FPU is not integrated into the core yet; the paper
    // accounts for these transfers explicitly).
    double fpu_reg_move = 0.5;

    // --- Core and memories --------------------------------------------------
    // Full-instruction costs for non-FP instructions.
    double int_op = 3.3;
    double branch_op = 3.6;
    // Data memory access instruction: base + TCDM array access. The
    // scratchpad is word-organized, so a sub-word access still reads a
    // full word from the array — only the bus amplitude scales with the
    // accessed width. Memory energy therefore drops with *fewer accesses*
    // (packed SIMD loads/stores), not with narrower scalar accesses,
    // exactly the paper's argument for vectorization.
    double mem_access_fixed = 0.6;
    double mem_array = 2.8;
    double mem_access_per_byte = 0.2;
    // A pipeline stall / idle cycle (clock tree and fetch kept alive).
    double stall_cycle = 1.5;

    /// Energy of one scalar FP arithmetic instruction in `format`.
    [[nodiscard]] double fp_op(FpOp op, FpFormat format) const noexcept;

    /// Energy of an n-lane SIMD FP instruction (n = 2 for 16-bit formats,
    /// n = 4 for binary8). `lanes` == 1 degenerates to fp_op.
    [[nodiscard]] double fp_op_simd(FpOp op, FpFormat format, int lanes) const noexcept;

    /// Energy of a format cast instruction.
    [[nodiscard]] double cast(FpFormat from, FpFormat to) const noexcept;

    /// Energy of a memory access instruction moving `bytes` bytes.
    [[nodiscard]] double mem_access(int bytes) const noexcept {
        return instr_base + mem_access_fixed + mem_array +
               mem_access_per_byte * bytes;
    }

    /// Number of idle (operand-silenced) slices when executing at `format`
    /// with `lanes` lanes. The unit has 1x32-bit, 2x16-bit and 4x8-bit
    /// slices (7 total).
    [[nodiscard]] static int idle_slices(FpFormat format, int lanes) noexcept;
};

/// The default calibration used across benches and tests.
[[nodiscard]] const EnergyModel& default_energy_model() noexcept;

} // namespace tp::fpu
