#include "fpu/transprecision_fpu.hpp"

#include <cassert>
#include <stdexcept>

namespace tp::fpu {

bool TransprecisionFpu::supports(FpOp op, FpFormat format) noexcept {
    FormatKind kind;
    if (!kind_of(format, kind)) return false; // only the four named formats
    switch (op) {
    case FpOp::Add:
    case FpOp::Sub:
    case FpOp::Mul:
    case FpOp::Cmp:
    case FpOp::Neg:
    case FpOp::Abs:
    case FpOp::FromInt:
    case FpOp::ToInt:
        return true;
    case FpOp::Fma:
    case FpOp::Div:
    case FpOp::Sqrt:
        return false; // model extensions, not in the paper's unit
    }
    return false;
}

int TransprecisionFpu::max_lanes(FpFormat format) noexcept {
    const int width = format.width_bits();
    if (width <= 8) return 4;
    if (width <= 16) return 2;
    return 1;
}

void TransprecisionFpu::account(FpOp op, FpFormat format, int lanes) {
    const double active = lanes == 1 ? model_.fp_op(op, format)
                                     : model_.fp_op_simd(op, format, lanes);
    const double silenced =
        model_.idle_slice * EnergyModel::idle_slices(format, lanes);
    counters_.energy_pj += active + silenced;
    counters_.busy_cycles +=
        static_cast<std::uint64_t>(initiation_interval(op, format));
    if (lanes == 1) {
        ++counters_.scalar_ops;
    } else {
        ++counters_.simd_instrs;
        counters_.simd_lanes += static_cast<std::uint64_t>(lanes);
    }
}

FlexFloatDyn TransprecisionFpu::execute(FpOp op, const FlexFloatDyn& a,
                                        const FlexFloatDyn& b) {
    if (a.format() != b.format()) {
        throw std::invalid_argument(
            "TransprecisionFpu: operand formats must match; insert a convert");
    }
    account(op, a.format(), 1);
    switch (op) {
    case FpOp::Add: return a + b;
    case FpOp::Sub: return a - b;
    case FpOp::Mul: return a * b;
    case FpOp::Div: return a / b;
    default: throw std::invalid_argument("TransprecisionFpu: not a binary op");
    }
}

FlexFloatDyn TransprecisionFpu::execute_fma(const FlexFloatDyn& a,
                                            const FlexFloatDyn& b,
                                            const FlexFloatDyn& c) {
    if (a.format() != b.format() || b.format() != c.format()) {
        throw std::invalid_argument(
            "TransprecisionFpu: fma operand formats must match");
    }
    account(FpOp::Fma, a.format(), 1);
    return fma(a, b, c);
}

FlexFloatDyn TransprecisionFpu::execute_unary(FpOp op, const FlexFloatDyn& a) {
    account(op, a.format(), 1);
    switch (op) {
    case FpOp::Neg: return -a;
    case FpOp::Abs: return abs(a);
    case FpOp::Sqrt: return sqrt(a);
    default: throw std::invalid_argument("TransprecisionFpu: not a unary op");
    }
}

std::vector<FlexFloatDyn> TransprecisionFpu::execute_simd(
    FpOp op, std::span<const FlexFloatDyn> a, std::span<const FlexFloatDyn> b) {
    if (a.empty() || a.size() != b.size()) {
        throw std::invalid_argument("TransprecisionFpu: lane count mismatch");
    }
    const FpFormat format = a[0].format();
    const int lanes = static_cast<int>(a.size());
    if (lanes > max_lanes(format)) {
        throw std::invalid_argument(
            "TransprecisionFpu: more lanes than slices of this width");
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].format() != format || b[i].format() != format) {
            throw std::invalid_argument(
                "TransprecisionFpu: SIMD lanes must share one format");
        }
    }
    account(op, format, lanes);
    std::vector<FlexFloatDyn> result;
    result.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        switch (op) {
        case FpOp::Add: result.push_back(a[i] + b[i]); break;
        case FpOp::Sub: result.push_back(a[i] - b[i]); break;
        case FpOp::Mul: result.push_back(a[i] * b[i]); break;
        default:
            throw std::invalid_argument(
                "TransprecisionFpu: SIMD supports add/sub/mul only");
        }
    }
    return result;
}

FlexFloatDyn TransprecisionFpu::convert(const FlexFloatDyn& a, FpFormat to) {
    counters_.energy_pj += model_.cast(a.format(), to) +
                           model_.idle_slice * EnergyModel::idle_slices(to, 1);
    counters_.busy_cycles += static_cast<std::uint64_t>(cast_latency_cycles());
    ++counters_.casts;
    return a.cast_to(to);
}

FlexFloatDyn TransprecisionFpu::from_int(std::int64_t value, FpFormat format) {
    counters_.energy_pj += model_.fp_op(FpOp::FromInt, format);
    counters_.busy_cycles += static_cast<std::uint64_t>(cast_latency_cycles());
    ++counters_.casts;
    return FlexFloatDyn{static_cast<double>(value), format};
}

std::int64_t TransprecisionFpu::to_int(const FlexFloatDyn& a) {
    counters_.energy_pj += model_.fp_op(FpOp::ToInt, a.format());
    counters_.busy_cycles += static_cast<std::uint64_t>(cast_latency_cycles());
    ++counters_.casts;
    // Round-to-nearest-even, saturating — matches softfloat::to_int.
    const double v = a.value();
    if (v != v) return 0;
    const double r = __builtin_nearbyint(v);
    return static_cast<std::int64_t>(r);
}

} // namespace tp::fpu
