#include "apps/app.hpp"

namespace tp::apps {

std::unique_ptr<App> make_jacobi();
std::unique_ptr<App> make_knn();
std::unique_ptr<App> make_pca(bool manual_vectorization);
std::unique_ptr<App> make_dwt();
std::unique_ptr<App> make_svm();
std::unique_ptr<App> make_conv();
std::unique_ptr<App> make_fft();
std::unique_ptr<App> make_iir();
std::unique_ptr<App> make_mlp();

std::vector<double> App::golden(unsigned input_set) {
    prepare(input_set);
    sim::TpContext ctx{sim::TpContext::Config{.trace = false}};
    return run(ctx, uniform_config(kBinary64));
}

const std::vector<std::string>& app_names() {
    // The paper's six kernels in the paper's order, then the ROADMAP's
    // follow-on workloads in the order they were added.
    static const std::vector<std::string> names{"jacobi", "knn", "pca",
                                                "dwt",    "svm", "conv",
                                                "fft",    "iir", "mlp"};
    return names;
}

std::unique_ptr<App> make_app(std::string_view name) {
    if (name == "jacobi") return make_jacobi();
    if (name == "knn") return make_knn();
    if (name == "pca") return make_pca(false);
    if (name == "pca-manual-vec") return make_pca(true);
    if (name == "dwt") return make_dwt();
    if (name == "svm") return make_svm();
    if (name == "conv") return make_conv();
    if (name == "fft") return make_fft();
    if (name == "iir") return make_iir();
    if (name == "mlp") return make_mlp();
    throw std::out_of_range("unknown application: " + std::string(name));
}

std::vector<std::unique_ptr<App>> make_all_apps() {
    std::vector<std::unique_ptr<App>> apps;
    for (const std::string& name : app_names()) {
        apps.push_back(make_app(name));
    }
    return apps;
}

} // namespace tp::apps
