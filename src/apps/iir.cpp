// IIR — cascaded biquad lowpass filter (ROADMAP "new workloads": the
// embedded-DSP staple).
//
// Four direct-form-II-transposed sections, the biquad cascade of an
// 8th-order Butterworth lowpass (RBJ cookbook coefficients at a per-input-
// set cutoff). Each section gets its own coefficient-table signal and its
// own state-register signal: feedback error accumulates differently along
// the cascade (the high-Q section is the precision-critical one), which is
// what per-section tuning exposes. The recurrence makes every sample
// depend on the previous one — no section is vectorizable, so the app
// lands at the scalar end of the registry next to JACOBI.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kSections = 4;
constexpr std::size_t kSamples = 96;
constexpr std::size_t kCoeffs = 5; // b0 b1 b2 a1 a2 (a0 normalized away)

// Butterworth Q factors for an 8th-order lowpass split into biquads:
// Q_k = 1 / (2 cos((2k+1) pi / 16)), ordered low to high.
constexpr std::array<double, kSections> kQ{0.50979557910415918,
                                           0.60134488693504529,
                                           0.89997622313641570,
                                           2.5629154477415055};

class Iir final : public App {
public:
    // SignalIds, in declaration order: input, per-section coefficient
    // tables, per-section state registers, output.
    enum : SignalId {
        kInputSig,
        kCoef0Sig, // kCoef0Sig + k is section k's coefficient table
        kCoef1Sig,
        kCoef2Sig,
        kCoef3Sig,
        kState0Sig, // kState0Sig + k is section k's state/accumulator pair
        kState1Sig,
        kState2Sig,
        kState3Sig,
        kOutputSig,
    };

    Iir()
        : App({
              {"input", kSamples},   // time-domain samples
              {"coef0", kCoeffs},    // per-section biquad coefficients
              {"coef1", kCoeffs},
              {"coef2", kCoeffs},
              {"coef3", kCoeffs},
              {"state0", 2},         // per-section DF2T state registers
              {"state1", 2},
              {"state2", 2},
              {"state3", 2},
              {"output", kSamples},  // filtered samples
          }) {}

    [[nodiscard]] std::string_view name() const override { return "iir"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Iir>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0x11F117E12ULL + input_set};
        constexpr double kTwoPi = 6.283185307179586476925286766559;

        // Cutoff varies per input set: the tuned binding has to hold over
        // a band of filter responses, not one fixed pole placement.
        const double fc = rng.uniform(0.08, 0.12); // normalized cutoff
        const double w0 = kTwoPi * fc;
        const double cw = __builtin_cos(w0);
        const double sw = __builtin_sin(w0);
        coef_.assign(kSections, {});
        for (std::size_t k = 0; k < kSections; ++k) {
            const double alpha = sw / (2.0 * kQ[k]);
            const double a0 = 1.0 + alpha;
            coef_[k] = {(1.0 - cw) / 2.0 / a0, // b0
                        (1.0 - cw) / a0,       // b1
                        (1.0 - cw) / 2.0 / a0, // b2
                        -2.0 * cw / a0,        // a1
                        (1.0 - alpha) / a0};   // a2
        }

        // Passband tone + stopband tone + noise: the filter must preserve
        // the former and attenuate the latter, so coefficient quantization
        // shows up directly in the output error.
        input_.assign(kSamples, 0.0);
        const double phase = rng.uniform(0.0, 6.28);
        for (std::size_t i = 0; i < kSamples; ++i) {
            const double t = static_cast<double>(i);
            input_[i] = 30.0 * __builtin_sin(kTwoPi * 0.04 * t + phase) +
                        15.0 * __builtin_sin(kTwoPi * 0.31 * t) +
                        rng.normal(0.0, 2.0);
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat input_f = config.at(kInputSig);
        const FpFormat output_f = config.at(kOutputSig);

        sim::TpArray input = ctx.make_array(input_f, kSamples);
        for (std::size_t i = 0; i < kSamples; ++i) input.set_raw(i, input_[i]);
        sim::TpArray output = ctx.make_array(output_f, kSamples);

        // Coefficients load once and stay register-resident in their
        // section's state format for the whole record.
        std::array<std::array<sim::TpValue, kCoeffs>, kSections> c;
        std::array<sim::TpValue, kSections> s1;
        std::array<sim::TpValue, kSections> s2;
        std::vector<sim::TpArray> coef_storage;
        coef_storage.reserve(kSections);
        for (std::size_t k = 0; k < kSections; ++k) {
            const FpFormat state_f = config.at(kState0Sig + k);
            coef_storage.push_back(
                ctx.make_array(config.at(kCoef0Sig + k), kCoeffs));
            for (std::size_t i = 0; i < kCoeffs; ++i) {
                coef_storage.back().set_raw(i, coef_[k][i]);
            }
            for (std::size_t i = 0; i < kCoeffs; ++i) {
                c[k][i] = to(coef_storage.back().load(i), state_f);
            }
            s1[k] = ctx.constant(0.0, state_f);
            s2[k] = ctx.constant(0.0, state_f);
        }

        // DF2T per section:  y = b0 x + s1;  s1 = b1 x - a1 y + s2;
        //                    s2 = b2 x - a2 y.
        // The recurrence on (s1, s2) serializes the sample loop.
        for (std::size_t i = 0; i < kSamples; ++i) {
            ctx.loop_iteration();
            sim::TpValue x = input.load(i);
            for (std::size_t k = 0; k < kSections; ++k) {
                ctx.int_ops(1); // section bookkeeping
                const FpFormat state_f = config.at(kState0Sig + k);
                const sim::TpValue xs = to(x, state_f);
                const sim::TpValue y = xs * c[k][0] + s1[k];
                s1[k] = (xs * c[k][1] - y * c[k][3]) + s2[k];
                s2[k] = xs * c[k][2] - y * c[k][4];
                x = y; // feeds the next section
            }
            output.store(i, to(x, output_f));
        }

        std::vector<double> out;
        out.reserve(kSamples);
        for (std::size_t i = 0; i < kSamples; ++i) out.push_back(output.raw(i));
        return out;
    }

private:
    std::vector<double> input_;
    std::vector<std::array<double, kCoeffs>> coef_;
};

} // namespace

std::unique_ptr<App> make_iir() { return std::make_unique<Iir>(); }

} // namespace tp::apps
