// Signal interning: dense ids for an application's tunable variable groups.
//
// The tuning engine evaluates the same kernel thousands of times under
// slightly different per-signal format bindings. Before interning, every
// binding lived in a string-keyed map and every kernel paid a string
// lookup per signal per run. A SignalTable assigns each signal a dense
// SignalId (its position in the app's declaration order), so a per-signal
// binding becomes a flat array indexed in O(1) — and, being a flat array
// of two-byte descriptors, trivially hashable, which is what makes trial
// memoization (tuning/eval_engine.hpp) cheap. Name-based access survives
// only at the configuration-file boundary (tuning/config_io.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tp::apps {

/// A tunable variable group: one program variable or array.
struct SignalSpec {
    std::string name;
    std::size_t elements = 1; // memory locations it contributes (Fig. 4 weights)
};

/// Dense signal index: the position of a signal in its app's declaration
/// order. Kernels bind ids to compile-time constants (an enum mirroring the
/// declaration order), so format lookups compile to an array index.
using SignalId = std::uint32_t;

/// Immutable name <-> id mapping for one application's signals. Ids are
/// declaration-order positions; name lookup is for the config-file boundary
/// and diagnostics only — kernels and the tuning engine work in ids.
class SignalTable {
public:
    SignalTable() = default;

    /// Throws std::invalid_argument on duplicate signal names.
    explicit SignalTable(std::vector<SignalSpec> specs);

    [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

    [[nodiscard]] const std::vector<SignalSpec>& specs() const noexcept {
        return specs_;
    }

    /// The id a kernel's declaration order assigns to `name`; throws
    /// std::out_of_range for unknown names.
    [[nodiscard]] SignalId id(std::string_view name) const;

    /// Like id(), but empty instead of throwing.
    [[nodiscard]] std::optional<SignalId> find(std::string_view name) const noexcept;

    [[nodiscard]] bool contains(std::string_view name) const noexcept {
        return find(name).has_value();
    }

    [[nodiscard]] const std::string& name(SignalId id) const {
        return specs_.at(id).name;
    }

    [[nodiscard]] const SignalSpec& spec(SignalId id) const {
        return specs_.at(id);
    }

private:
    std::vector<SignalSpec> specs_;
    std::vector<SignalId> by_name_; // ids sorted by signal name (binary search)
};

} // namespace tp::apps
