// MLP — two-layer perceptron inference (ROADMAP "new workloads": small
// embedded-ML classifier head).
//
// A batch of feature vectors flows through dense(16 -> 12) + ReLU +
// dense(12 -> 4). Weights, biases, the inter-layer activation storage and
// each layer's accumulator are separate signals: quantization noise
// injected before the ReLU behaves very differently from noise on the
// logits, which is the interesting tuning structure. The dot products
// unroll into four independent lanes, so both layers are tagged
// vectorizable (the SVM pattern, one layer deeper).
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kIn = 16;     // input features
constexpr std::size_t kHidden = 12; // hidden units
constexpr std::size_t kOut = 4;     // output logits
constexpr std::size_t kBatch = 8;   // samples per inference batch
constexpr std::size_t kLanes = 4;   // dot-product unroll width

class Mlp final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId {
        kInputSig,
        kW1Sig,
        kB1Sig,
        kAcc1Sig,
        kHiddenSig,
        kW2Sig,
        kB2Sig,
        kAcc2Sig,
        kOutputSig,
    };

    Mlp()
        : App({
              {"input", kBatch * kIn},     // feature vectors
              {"w1", kIn * kHidden},       // layer-1 weights
              {"b1", kHidden},             // layer-1 biases
              {"acc1", 1},                 // layer-1 accumulator register
              {"hidden", kBatch * kHidden},// post-ReLU activations
              {"w2", kHidden * kOut},      // layer-2 weights
              {"b2", kOut},                // layer-2 biases
              {"acc2", 1},                 // layer-2 accumulator register
              {"output", kBatch * kOut},   // logits
          }) {}

    [[nodiscard]] std::string_view name() const override { return "mlp"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Mlp>(*this);
    }

    void prepare(unsigned input_set) override {
        // The model is fixed (one trained network); only the inference
        // batch varies with the input set.
        util::Xoshiro256 weights_rng{0x317ED0DE1ULL};
        w1_.assign(kIn * kHidden, 0.0);
        b1_.assign(kHidden, 0.0);
        w2_.assign(kHidden * kOut, 0.0);
        b2_.assign(kOut, 0.0);
        const double r1 = 0.46291004988627577; // Xavier: sqrt(6 / (16 + 12))
        const double r2 = 0.61237243569579447; // Xavier: sqrt(6 / (12 + 4))
        for (double& w : w1_) w = weights_rng.uniform(-r1, r1);
        for (double& b : b1_) b = weights_rng.uniform(-0.1, 0.1);
        for (double& w : w2_) w = weights_rng.uniform(-r2, r2);
        for (double& b : b2_) b = weights_rng.uniform(-0.1, 0.1);

        util::Xoshiro256 rng{0x317ED47AULL + input_set};
        input_.assign(kBatch * kIn, 0.0);
        // Standardized features with a few saturated outliers — the range
        // mix a real feature pipeline produces.
        for (double& x : input_) {
            x = rng.normal(0.0, 1.0);
            if (rng.uniform() < 0.05) x *= 4.0;
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat input_f = config.at(kInputSig);
        const FpFormat w1_f = config.at(kW1Sig);
        const FpFormat b1_f = config.at(kB1Sig);
        const FpFormat acc1_f = config.at(kAcc1Sig);
        const FpFormat hidden_f = config.at(kHiddenSig);
        const FpFormat w2_f = config.at(kW2Sig);
        const FpFormat b2_f = config.at(kB2Sig);
        const FpFormat acc2_f = config.at(kAcc2Sig);
        const FpFormat output_f = config.at(kOutputSig);

        sim::TpArray input = ctx.make_array(input_f, input_.size());
        sim::TpArray w1 = ctx.make_array(w1_f, w1_.size());
        sim::TpArray b1 = ctx.make_array(b1_f, b1_.size());
        sim::TpArray hidden = ctx.make_array(hidden_f, kBatch * kHidden);
        sim::TpArray w2 = ctx.make_array(w2_f, w2_.size());
        sim::TpArray b2 = ctx.make_array(b2_f, b2_.size());
        sim::TpArray output = ctx.make_array(output_f, kBatch * kOut);
        for (std::size_t i = 0; i < input_.size(); ++i) input.set_raw(i, input_[i]);
        for (std::size_t i = 0; i < w1_.size(); ++i) w1.set_raw(i, w1_[i]);
        for (std::size_t i = 0; i < b1_.size(); ++i) b1.set_raw(i, b1_[i]);
        for (std::size_t i = 0; i < w2_.size(); ++i) w2.set_raw(i, w2_[i]);
        for (std::size_t i = 0; i < b2_.size(); ++i) b2.set_raw(i, b2_[i]);

        const sim::TpValue zero1 = ctx.constant(0.0, acc1_f);
        const sim::TpValue zero2 = ctx.constant(0.0, acc2_f);

        for (std::size_t n = 0; n < kBatch; ++n) {
            ctx.loop_iteration();

            // Layer 1: x . w1[:, h] + b1[h], then ReLU, stored to the
            // activation array. The sample's features stay in registers
            // across all hidden units.
            std::array<sim::TpValue, kIn> x;
            for (std::size_t d = 0; d < kIn; ++d) {
                x[d] = to(input.load(n * kIn + d), acc1_f);
            }
            {
                const auto region = ctx.vector_region();
                for (std::size_t h = 0; h < kHidden; ++h) {
                    ctx.loop_iteration();
                    ctx.int_ops(1); // weight-column base address
                    std::array<sim::TpValue, kLanes> acc{zero1, zero1, zero1,
                                                         zero1};
                    for (std::size_t d = 0; d < kIn; d += kLanes) {
                        ctx.int_ops(2); // pointer and chunk bookkeeping
                        for (std::size_t lane = 0; lane < kLanes; ++lane) {
                            const sim::TpValue w = w1.load((d + lane) * kHidden + h);
                            acc[lane] = acc[lane] + to(w, acc1_f) * x[d + lane];
                        }
                    }
                    const sim::TpValue dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
                    const sim::TpValue pre = dot + to(b1.load(h), acc1_f);
                    // ReLU: the compare runs on the FP unit, the select on
                    // the integer core.
                    ctx.branch(1);
                    const sim::TpValue act = pre > zero1 ? pre : zero1;
                    hidden.store(n * kHidden + h, to(act, hidden_f));
                }
            }

            // Layer 2: hidden . w2[:, o] + b2[o] — the logits.
            std::array<sim::TpValue, kHidden> a;
            for (std::size_t h = 0; h < kHidden; ++h) {
                a[h] = to(hidden.load(n * kHidden + h), acc2_f);
            }
            {
                const auto region = ctx.vector_region();
                for (std::size_t o = 0; o < kOut; ++o) {
                    ctx.loop_iteration();
                    ctx.int_ops(1);
                    std::array<sim::TpValue, kLanes> acc{zero2, zero2, zero2,
                                                         zero2};
                    for (std::size_t h = 0; h < kHidden; h += kLanes) {
                        ctx.int_ops(2);
                        for (std::size_t lane = 0; lane < kLanes; ++lane) {
                            const sim::TpValue w = w2.load((h + lane) * kOut + o);
                            acc[lane] = acc[lane] + to(w, acc2_f) * a[h + lane];
                        }
                    }
                    const sim::TpValue dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
                    const sim::TpValue logit = dot + to(b2.load(o), acc2_f);
                    output.store(n * kOut + o, to(logit, output_f));
                }
            }
        }

        std::vector<double> out;
        out.reserve(kBatch * kOut);
        for (std::size_t i = 0; i < kBatch * kOut; ++i) out.push_back(output.raw(i));
        return out;
    }

private:
    std::vector<double> input_;
    std::vector<double> w1_;
    std::vector<double> b1_;
    std::vector<double> w2_;
    std::vector<double> b2_;
};

} // namespace

std::unique_ptr<App> make_mlp() { return std::make_unique<Mlp>(); }

} // namespace tp::apps
