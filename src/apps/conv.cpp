// CONV — 5x5 convolution kernel over a grayscale image
// (paper, Section V-A).
//
// The 25-tap accumulation unrolls into four rotating partial accumulators,
// making the inner loops fully vectorizable. Pixel values live in [0, 255]
// and the kernel is normalized, so the output range matches the input.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kImage = 20;           // input side
constexpr std::size_t kKernel = 5;           // kernel side
constexpr std::size_t kOut = kImage - kKernel + 1; // valid convolution

class Conv final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kImageSig, kKernelSig, kAccSig, kOutSig };

    Conv()
        : App({
              {"image", kImage * kImage},   // input pixels
              {"kernel", kKernel * kKernel},// filter weights
              {"acc", 1},                   // tap accumulator register
              {"out", kOut * kOut},         // output pixels
          }) {}

    [[nodiscard]] std::string_view name() const override { return "conv"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Conv>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0xC0471E57ULL + input_set};
        image_.assign(kImage * kImage, 0.0);
        // Smooth gradient plus texture noise, 8-bit-camera-like range.
        const double gx = rng.uniform(2.0, 8.0);
        const double gy = rng.uniform(2.0, 8.0);
        for (std::size_t i = 0; i < kImage; ++i) {
            for (std::size_t j = 0; j < kImage; ++j) {
                double v = 40.0 + gx * static_cast<double>(i) +
                           gy * static_cast<double>(j) + rng.uniform(0.0, 60.0);
                image_[i * kImage + j] = v > 255.0 ? 255.0 : v;
            }
        }
        // Unsharp-masking kernel: a strong positive center ringed by
        // negative weights (sum 1). The signed taps cancel on smooth
        // regions, so weight and pixel quantization noise is *amplified*
        // relative to the output — a precision-demanding convolution.
        kernel_.assign(kKernel * kKernel, 0.0);
        double ring_sum = 0.0;
        for (std::size_t r = 0; r < kKernel; ++r) {
            for (std::size_t c = 0; c < kKernel; ++c) {
                const double dr = static_cast<double>(r) - 2.0;
                const double dc = static_cast<double>(c) - 2.0;
                if (dr == 0.0 && dc == 0.0) continue;
                const double w = -1.0 / (1.0 + 0.8 * (dr * dr + dc * dc));
                kernel_[r * kKernel + c] = w;
                ring_sum += w;
            }
        }
        kernel_[2 * kKernel + 2] = 1.0 - ring_sum; // normalized to sum 1
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat image_f = config.at(kImageSig);
        const FpFormat kernel_f = config.at(kKernelSig);
        const FpFormat acc_f = config.at(kAccSig);
        const FpFormat out_f = config.at(kOutSig);

        sim::TpArray image = ctx.make_array(image_f, image_.size());
        sim::TpArray kernel = ctx.make_array(kernel_f, kernel_.size());
        sim::TpArray out = ctx.make_array(out_f, kOut * kOut);
        for (std::size_t i = 0; i < image_.size(); ++i) image.set_raw(i, image_[i]);
        for (std::size_t i = 0; i < kernel_.size(); ++i) kernel.set_raw(i, kernel_[i]);

        // The 25 weights stay register-resident for the whole image.
        std::array<sim::TpValue, kKernel * kKernel> w;
        for (std::size_t t = 0; t < w.size(); ++t) {
            w[t] = to(kernel.load(t), acc_f);
        }

        const sim::TpValue zero = ctx.constant(0.0, acc_f);
        {
            const auto region = ctx.vector_region();
            for (std::size_t oi = 0; oi < kOut; ++oi) {
                for (std::size_t oj = 0; oj < kOut; ++oj) {
                    ctx.loop_iteration();
                    ctx.int_ops(2); // window base address
                    std::array<sim::TpValue, 4> acc{zero, zero, zero, zero};
                    std::size_t tap = 0;
                    for (std::size_t r = 0; r < kKernel; ++r) {
                        ctx.int_ops(1); // row address step
                        for (std::size_t c = 0; c < kKernel; ++c, ++tap) {
                            // Column index bookkeeping and the tap-counter
                            // update the compiler cannot elide.
                            ctx.int_ops(2);
                            const sim::TpValue px =
                                image.load((oi + r) * kImage + oj + c);
                            const sim::TpValue prod = to(px, acc_f) * w[tap];
                            acc[tap % 4] = acc[tap % 4] + prod;
                        }
                    }
                    const sim::TpValue s01 = acc[0] + acc[1];
                    const sim::TpValue s23 = acc[2] + acc[3];
                    out.store(oi * kOut + oj, to(s01 + s23, out_f));
                }
            }
        }

        std::vector<double> output;
        output.reserve(kOut * kOut);
        for (std::size_t i = 0; i < kOut * kOut; ++i) output.push_back(out.raw(i));
        return output;
    }

private:
    std::vector<double> image_;
    std::vector<double> kernel_;
};

} // namespace

std::unique_ptr<App> make_conv() { return std::make_unique<Conv>(); }

} // namespace tp::apps
