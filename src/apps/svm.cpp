// SVM — prediction stage of a support vector machine with a degree-2
// polynomial kernel (paper, Section V-A).
//
// decision(x) = sum_i alpha_i * (gamma * <sv_i, x> + c)^2 + b
//
// The support-vector dot products dominate and unroll into four independent
// lanes; inputs are normalized to [0, 1]. The paper reports SVM as the
// application with the highest vectorizable fraction (~60% of FP
// operations) and the largest memory-access reduction (48%).
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kSupportVectors = 32;
constexpr std::size_t kDim = 16;
constexpr std::size_t kQueries = 16;
constexpr double kGamma = 0.125;
constexpr double kCoef0 = 0.5;
constexpr double kBias = -0.35;

class Svm final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kSv, kAlpha, kInput, kDot, kKernel, kDecision };

    Svm()
        : App({
              {"sv", kSupportVectors * kDim}, // support vector coordinates
              {"alpha", kSupportVectors},     // dual coefficients
              {"input", kQueries * kDim},     // query samples
              {"dot", 1},                     // dot-product accumulator
              {"kernel", 1},                  // kernel value register
              {"decision", kQueries},         // decision values
          }) {}

    [[nodiscard]] std::string_view name() const override { return "svm"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Svm>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0x57A7E5EEULL + input_set};
        sv_.assign(kSupportVectors * kDim, 0.0);
        alpha_.assign(kSupportVectors, 0.0);
        input_.assign(kQueries * kDim, 0.0);
        for (double& x : sv_) x = rng.uniform();
        for (double& x : input_) x = rng.uniform();
        for (std::size_t i = 0; i < kSupportVectors; ++i) {
            // Signed duals, moderate magnitude.
            alpha_[i] = rng.uniform(-1.0, 1.0);
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat sv_f = config.at(kSv);
        const FpFormat alpha_f = config.at(kAlpha);
        const FpFormat input_f = config.at(kInput);
        const FpFormat dot_f = config.at(kDot);
        const FpFormat kernel_f = config.at(kKernel);
        const FpFormat decision_f = config.at(kDecision);

        sim::TpArray sv = ctx.make_array(sv_f, sv_.size());
        sim::TpArray alpha = ctx.make_array(alpha_f, alpha_.size());
        sim::TpArray input = ctx.make_array(input_f, input_.size());
        sim::TpArray decision = ctx.make_array(decision_f, kQueries);
        for (std::size_t i = 0; i < sv_.size(); ++i) sv.set_raw(i, sv_[i]);
        for (std::size_t i = 0; i < alpha_.size(); ++i) alpha.set_raw(i, alpha_[i]);
        for (std::size_t i = 0; i < input_.size(); ++i) input.set_raw(i, input_[i]);

        const sim::TpValue gamma = ctx.constant(kGamma, kernel_f);
        const sim::TpValue coef0 = ctx.constant(kCoef0, kernel_f);
        const sim::TpValue bias = ctx.constant(kBias, decision_f);
        const sim::TpValue zero_dot = ctx.constant(0.0, dot_f);

        for (std::size_t query = 0; query < kQueries; ++query) {
            ctx.loop_iteration();
            // The query vector stays in FP registers across the SV scan.
            std::array<sim::TpValue, kDim> x;
            for (std::size_t d = 0; d < kDim; ++d) {
                x[d] = to(input.load(query * kDim + d), dot_f);
            }

            sim::TpValue dec = ctx.constant(0.0, decision_f);
            {
                const auto region = ctx.vector_region();
                for (std::size_t i = 0; i < kSupportVectors; ++i) {
                    ctx.loop_iteration();
                    ctx.int_ops(1);
                    std::array<sim::TpValue, 4> acc{zero_dot, zero_dot, zero_dot,
                                                    zero_dot};
                    for (std::size_t d = 0; d < kDim; d += 4) {
                        ctx.int_ops(3); // pointer updates and chunk counter
                        for (std::size_t lane = 0; lane < 4; ++lane) {
                            const sim::TpValue s = sv.load(i * kDim + d + lane);
                            acc[lane] = acc[lane] + to(s, dot_f) * x[d + lane];
                        }
                    }
                    const sim::TpValue dot =
                        (acc[0] + acc[1]) + (acc[2] + acc[3]);
                    const sim::TpValue affine =
                        to(dot, kernel_f) * gamma + coef0;
                    const sim::TpValue k2 = affine * affine;
                    const sim::TpValue a = to(alpha.load(i), kernel_f);
                    dec = dec + to(a * k2, decision_f);
                }
            }
            decision.store(query, dec + bias);
        }

        std::vector<double> output;
        output.reserve(kQueries);
        for (std::size_t q = 0; q < kQueries; ++q) output.push_back(decision.raw(q));
        return output;
    }

private:
    std::vector<double> sv_;
    std::vector<double> alpha_;
    std::vector<double> input_;
};

} // namespace

std::unique_ptr<App> make_svm() { return std::make_unique<Svm>(); }

} // namespace tp::apps
