// JACOBI — Jacobi relaxation on a 2D heat grid (paper, Section V-A).
//
// The kernel repeatedly replaces every interior cell by the average of its
// four neighbours. The stencil's unaligned accesses keep the paper's
// version scalar: no section is tagged vectorizable, which is exactly why
// JACOBI shows neither cycle nor energy gains in Figs. 5-7.
#include <cstddef>

#include "apps/app.hpp"
#include "types/encoding.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kN = 16;  // grid side
constexpr int kIterations = 150; // relaxation sweeps (errors accumulate)

class Jacobi final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kGridIn, kGrid, kCoeff, kTmp };

    Jacobi()
        : App({
              {"grid_in", kN * kN}, // the initial temperature field
              {"grid", kN * kN},    // the iterated field (both buffers)
              {"coeff", 1},         // the 1/4 averaging coefficient
              {"tmp", 1},           // the accumulator holding the 4-neighbour sum
          }) {}

    [[nodiscard]] std::string_view name() const override { return "jacobi"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Jacobi>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0xA110C0DEULL + input_set};
        init_.assign(kN * kN, 0.0);
        // Hot top edge, cool interior with mild noise.
        for (std::size_t j = 0; j < kN; ++j) {
            init_[j] = 80.0 + 40.0 * rng.uniform();
        }
        for (std::size_t i = 1; i + 1 < kN; ++i) {
            for (std::size_t j = 1; j + 1 < kN; ++j) {
                init_[i * kN + j] = 25.0 * rng.uniform();
            }
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat grid_in_f = config.at(kGridIn);
        const FpFormat grid_f = config.at(kGrid);
        const FpFormat coeff_f = config.at(kCoeff);
        const FpFormat tmp_f = config.at(kTmp);

        sim::TpArray front = ctx.make_array(grid_f, kN * kN);
        sim::TpArray back = ctx.make_array(grid_f, kN * kN);
        for (std::size_t i = 0; i < init_.size(); ++i) {
            // The initial field arrives in its own (input) format before
            // entering the working grid — diffusion smooths its
            // quantization noise away, so it tolerates far fewer bits.
            const double staged = quantize(init_[i], grid_in_f);
            front.set_raw(i, staged);
            back.set_raw(i, staged); // boundary cells are never rewritten
        }

        // The averaging constant lives in a register for the whole kernel.
        const sim::TpValue coeff = to(ctx.constant(0.25, coeff_f), tmp_f);

        sim::TpArray* src = &front;
        sim::TpArray* dst = &back;
        for (int it = 0; it < kIterations; ++it) {
            for (std::size_t i = 1; i + 1 < kN; ++i) {
                // Register reuse across the row sweep, as an optimizing
                // compiler produces it: west(j+1) equals east(j), so only
                // north, south and east are loaded per cell.
                sim::TpValue west = src->load(i * kN);
                for (std::size_t j = 1; j + 1 < kN; ++j) {
                    ctx.loop_iteration();
                    ctx.int_ops(2); // stencil index arithmetic
                    const sim::TpValue north = src->load((i - 1) * kN + j);
                    const sim::TpValue south = src->load((i + 1) * kN + j);
                    const sim::TpValue east = src->load(i * kN + j + 1);
                    sim::TpValue sum = north + south;
                    sum = sum + west;
                    sum = sum + east;
                    const sim::TpValue avg = to(sum, tmp_f) * coeff;
                    dst->store(i * kN + j, to(avg, grid_f));
                    west = east;
                }
            }
            std::swap(src, dst);
        }

        std::vector<double> output;
        output.reserve(kN * kN);
        for (std::size_t i = 0; i < kN * kN; ++i) output.push_back(src->raw(i));
        return output;
    }

private:
    std::vector<double> init_;
};

} // namespace

std::unique_ptr<App> make_jacobi() { return std::make_unique<Jacobi>(); }

} // namespace tp::apps
