// FFT — radix-2 decimation-in-time complex FFT over 32 points
// (ROADMAP "new workloads": the canonical near-sensor spectral kernel).
//
// Every stage halves the number of butterfly groups and doubles the
// twiddle count, and the rounding behaviour differs per stage: early
// stages see raw samples, late stages see partially-accumulated spectra
// whose magnitude has grown by the stage gain. The tuner therefore gets
// one data-format signal and one twiddle-table signal PER STAGE — eleven
// signals in total, the widest SignalTable in the registry, which is
// exactly the stress the engine/service stack never saw from the paper's
// six kernels.
//
// The butterflies inside a stage are independent (disjoint pairs), so
// each stage is tagged vectorizable.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kN = 32;      // transform length (complex points)
constexpr std::size_t kStages = 5;  // log2(kN)

/// Bit-reversal of `i` over log2(kN) bits (the DIT input permutation).
constexpr std::size_t bit_reverse(std::size_t i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < kStages; ++b) {
        r = (r << 1) | ((i >> b) & 1);
    }
    return r;
}

class Fft final : public App {
public:
    // SignalIds, in declaration order: input, then per-stage twiddle
    // tables, then per-stage butterfly outputs.
    enum : SignalId {
        kInputSig,
        kTw0Sig,    // kTw0Sig + s is stage s's twiddle table
        kTw1Sig,
        kTw2Sig,
        kTw3Sig,
        kTw4Sig,
        kStage0Sig, // kStage0Sig + s is stage s's butterfly output
        kStage1Sig,
        kStage2Sig,
        kStage3Sig,
        kStage4Sig,
    };

    Fft()
        : App({
              {"input", 2 * kN},  // interleaved re/im time samples
              {"tw0", 2},         // stage-0 twiddles (1 complex root)
              {"tw1", 4},         // stage-1 twiddles (2 complex roots)
              {"tw2", 8},
              {"tw3", 16},
              {"tw4", 32},        // stage-4 twiddles (16 complex roots)
              {"stage0", 2 * kN}, // per-stage butterfly outputs (re/im)
              {"stage1", 2 * kN},
              {"stage2", 2 * kN},
              {"stage3", 2 * kN},
              {"stage4", 2 * kN}, // the output spectrum
          }) {}

    [[nodiscard]] std::string_view name() const override { return "fft"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Fft>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0xFF7B17F1EULL + input_set};
        input_.assign(2 * kN, 0.0);
        // Two tones on exact bins plus one off-bin tone and noise: the
        // spectrum has both dominant lines and a leakage floor, so the
        // quality metric sees large and small coefficients at once.
        const double phase = rng.uniform(0.0, 6.28);
        const std::size_t bin_a = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        for (std::size_t i = 0; i < kN; ++i) {
            const double t = static_cast<double>(i);
            const double re =
                20.0 * __builtin_cos(kTwoPi * static_cast<double>(bin_a) * t /
                                         static_cast<double>(kN) +
                                     phase) +
                6.0 * __builtin_cos(kTwoPi * 7.3 * t / static_cast<double>(kN)) +
                rng.normal(0.0, 1.0);
            const double im =
                12.0 * __builtin_sin(kTwoPi * 5.0 * t / static_cast<double>(kN)) +
                rng.normal(0.0, 1.0);
            input_[2 * i] = re;
            input_[2 * i + 1] = im;
        }
        // Twiddle tables: stage s uses the 2^s roots W_{2^(s+1)}^j,
        // j = 0..2^s-1. Constants, but regenerated here so a clone's
        // prepare() is self-contained.
        twiddle_.assign(kStages, {});
        for (std::size_t s = 0; s < kStages; ++s) {
            const std::size_t half = std::size_t{1} << s;
            twiddle_[s].assign(2 * half, 0.0);
            for (std::size_t j = 0; j < half; ++j) {
                const double angle =
                    -kTwoPi * static_cast<double>(j) /
                    static_cast<double>(2 * half);
                twiddle_[s][2 * j] = __builtin_cos(angle);
                twiddle_[s][2 * j + 1] = __builtin_sin(angle);
            }
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat input_f = config.at(kInputSig);

        sim::TpArray input = ctx.make_array(input_f, 2 * kN);
        for (std::size_t i = 0; i < 2 * kN; ++i) input.set_raw(i, input_[i]);

        std::array<sim::TpArray*, kStages> stages{};
        std::vector<sim::TpArray> stage_storage;
        stage_storage.reserve(kStages);
        std::vector<sim::TpArray> tw_storage;
        tw_storage.reserve(kStages);
        for (std::size_t s = 0; s < kStages; ++s) {
            stage_storage.push_back(
                ctx.make_array(config.at(kStage0Sig + s), 2 * kN));
            tw_storage.push_back(ctx.make_array(config.at(kTw0Sig + s),
                                                twiddle_[s].size()));
            for (std::size_t i = 0; i < twiddle_[s].size(); ++i) {
                tw_storage.back().set_raw(i, twiddle_[s][i]);
            }
            stages[s] = &stage_storage[s];
        }

        for (std::size_t s = 0; s < kStages; ++s) {
            const FpFormat acc_f = config.at(kStage0Sig + s);
            const std::size_t half = std::size_t{1} << s;

            // The stage's twiddle roots stay register-resident across all
            // its butterfly groups.
            std::vector<sim::TpValue> wr(half);
            std::vector<sim::TpValue> wi(half);
            for (std::size_t j = 0; j < half; ++j) {
                wr[j] = to(tw_storage[s].load(2 * j), acc_f);
                wi[j] = to(tw_storage[s].load(2 * j + 1), acc_f);
            }

            sim::TpArray& dst = *stages[s];
            const auto region = ctx.vector_region();
            for (std::size_t base = 0; base < kN; base += 2 * half) {
                for (std::size_t j = 0; j < half; ++j) {
                    ctx.loop_iteration();
                    ctx.int_ops(3); // butterfly pair + twiddle indexing
                    const std::size_t a = base + j;
                    const std::size_t b = base + j + half;

                    // Stage 0 reads the input in bit-reversed order; later
                    // stages read their predecessor's output.
                    sim::TpValue ur;
                    sim::TpValue ui;
                    sim::TpValue vr;
                    sim::TpValue vi;
                    if (s == 0) {
                        ctx.int_ops(2); // bit-reversed address generation
                        ur = to(input.load(2 * bit_reverse(a)), acc_f);
                        ui = to(input.load(2 * bit_reverse(a) + 1), acc_f);
                        vr = to(input.load(2 * bit_reverse(b)), acc_f);
                        vi = to(input.load(2 * bit_reverse(b) + 1), acc_f);
                    } else {
                        sim::TpArray& src = *stages[s - 1];
                        ur = to(src.load(2 * a), acc_f);
                        ui = to(src.load(2 * a + 1), acc_f);
                        vr = to(src.load(2 * b), acc_f);
                        vi = to(src.load(2 * b + 1), acc_f);
                    }

                    // t = W * v (complex), then the butterfly u +- t. The
                    // four products are independent — the SIMD target.
                    const sim::TpValue tr = vr * wr[j] - vi * wi[j];
                    const sim::TpValue ti = vr * wi[j] + vi * wr[j];
                    dst.store(2 * a, ur + tr);
                    dst.store(2 * a + 1, ui + ti);
                    dst.store(2 * b, ur - tr);
                    dst.store(2 * b + 1, ui - ti);
                }
            }
        }

        // Program output: the interleaved complex spectrum.
        std::vector<double> output;
        output.reserve(2 * kN);
        for (std::size_t i = 0; i < 2 * kN; ++i) {
            output.push_back(stages[kStages - 1]->raw(i));
        }
        return output;
    }

private:
    std::vector<double> input_;
    std::vector<std::vector<double>> twiddle_; // per stage, interleaved re/im
};

} // namespace

std::unique_ptr<App> make_fft() { return std::make_unique<Fft>(); }

} // namespace tp::apps
