#include "apps/signal_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace tp::apps {

SignalTable::SignalTable(std::vector<SignalSpec> specs)
    : specs_(std::move(specs)) {
    by_name_.resize(specs_.size());
    for (SignalId id = 0; id < by_name_.size(); ++id) by_name_[id] = id;
    std::sort(by_name_.begin(), by_name_.end(),
              [this](SignalId a, SignalId b) {
                  return specs_[a].name < specs_[b].name;
              });
    for (std::size_t k = 1; k < by_name_.size(); ++k) {
        if (specs_[by_name_[k - 1]].name == specs_[by_name_[k]].name) {
            throw std::invalid_argument("SignalTable: duplicate signal '" +
                                        specs_[by_name_[k]].name + "'");
        }
    }
}

std::optional<SignalId> SignalTable::find(std::string_view name) const noexcept {
    const auto it = std::lower_bound(
        by_name_.begin(), by_name_.end(), name,
        [this](SignalId id, std::string_view n) { return specs_[id].name < n; });
    if (it == by_name_.end() || specs_[*it].name != name) return std::nullopt;
    return *it;
}

SignalId SignalTable::id(std::string_view name) const {
    const std::optional<SignalId> found = find(name);
    if (!found) {
        throw std::out_of_range("SignalTable: unknown signal '" +
                                std::string(name) + "'");
    }
    return *found;
}

} // namespace tp::apps
