// KNN — k-nearest neighbours by (squared) Euclidean distance
// (paper, Section V-A).
//
// The distance kernel is the archetypal vectorizable loop: per reference
// point, independent per-dimension subtract/multiply lanes feed four
// independent partial accumulators (the unrolled form a sub-word
// vectorizing compiler produces for a reduction). Inputs live in [0, 1],
// so every value fits the binary8 dynamic range — this is the application
// the paper reports as using binary8 for all program variables and
// reaching the maximum (30%) energy saving.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kPoints = 64;
constexpr std::size_t kDim = 8;
constexpr std::size_t kNeighbours = 5;

class Knn final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kTrain, kQuery, kDiff, kDist };

    Knn()
        : App({
              {"train", kPoints * kDim}, // reference point coordinates
              {"query", kDim},           // the query point
              {"diff", 1},               // per-dimension difference register
              {"dist", kPoints},         // squared distances
          }) {}

    [[nodiscard]] std::string_view name() const override { return "knn"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Knn>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0x5EEDBEEFULL + input_set};
        train_.assign(kPoints * kDim, 0.0);
        query_.assign(kDim, 0.0);
        for (double& x : train_) x = rng.uniform();
        for (double& x : query_) x = rng.uniform();
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat train_f = config.at(kTrain);
        const FpFormat query_f = config.at(kQuery);
        const FpFormat diff_f = config.at(kDiff);
        const FpFormat dist_f = config.at(kDist);

        sim::TpArray train = ctx.make_array(train_f, train_.size());
        sim::TpArray query = ctx.make_array(query_f, query_.size());
        sim::TpArray dist = ctx.make_array(dist_f, kPoints);
        for (std::size_t i = 0; i < train_.size(); ++i) train.set_raw(i, train_[i]);
        for (std::size_t i = 0; i < query_.size(); ++i) query.set_raw(i, query_[i]);

        // The query is small enough to keep in FP registers across the
        // whole scan (one load + at most one cast per dimension).
        std::array<sim::TpValue, kDim> q;
        for (std::size_t d = 0; d < kDim; ++d) {
            q[d] = to(query.load(d), diff_f);
        }

        const sim::TpValue zero = ctx.constant(0.0, dist_f);
        {
            const auto region = ctx.vector_region();
            for (std::size_t p = 0; p < kPoints; ++p) {
                ctx.loop_iteration();
                ctx.int_ops(1); // row base address
                std::array<sim::TpValue, 4> acc{zero, zero, zero, zero};
                for (std::size_t d = 0; d < kDim; d += 4) {
                    ctx.int_ops(2); // pointer update and chunk counter
                    for (std::size_t lane = 0; lane < 4; ++lane) {
                        const sim::TpValue x = train.load(p * kDim + d + lane);
                        const sim::TpValue delta = to(x, diff_f) - q[d + lane];
                        const sim::TpValue sq = delta * delta;
                        acc[lane] = acc[lane] + to(sq, dist_f);
                    }
                }
                const sim::TpValue r01 = acc[0] + acc[1];
                const sim::TpValue r23 = acc[2] + acc[3];
                dist.store(p, r01 + r23);
            }
        }

        // Selection of the k smallest distances (scalar control flow; the
        // FP compares execute on the unit, the bookkeeping on the integer
        // core).
        std::array<bool, kPoints> taken{};
        std::vector<double> nearest;
        for (std::size_t k = 0; k < kNeighbours; ++k) {
            std::size_t best = kPoints;
            sim::TpValue best_v;
            for (std::size_t p = 0; p < kPoints; ++p) {
                ctx.loop_iteration();
                if (taken[p]) continue;
                const sim::TpValue v = dist.load(p);
                if (best == kPoints || v < best_v) {
                    best = p;
                    best_v = v;
                }
                ctx.int_ops(1); // index bookkeeping for the running minimum
            }
            taken[best] = true;
            nearest.push_back(best_v.to_double());
        }

        // Program output: the full distance vector, then the k minima.
        std::vector<double> output;
        output.reserve(kPoints + kNeighbours);
        for (std::size_t p = 0; p < kPoints; ++p) output.push_back(dist.raw(p));
        for (double v : nearest) output.push_back(v);
        return output;
    }

private:
    std::vector<double> train_;
    std::vector<double> query_;
};

} // namespace

std::unique_ptr<App> make_knn() { return std::make_unique<Knn>(); }

} // namespace tp::apps
