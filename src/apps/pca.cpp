// PCA — principal component analysis: column means, centering, covariance,
// dominant eigenvector by power iteration, and sample projection
// (paper, Section V-A).
//
// Long scalar dot-product chains dominate, and the data's dynamic range
// (covariance accumulations beyond the binary16 maximum of 65504) forces
// wide-exponent formats — this is the application the paper singles out
// for cast overhead exceeding 10-20% of the operations and energy *above*
// the binary32 baseline. A manual-vectorization variant (the paper's
// Fig. 7 annotations 1-3) tags the centering, covariance and projection
// loops as vector regions with unrolled partial accumulators.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kSamples = 32;
constexpr std::size_t kFeatures = 8;
constexpr int kPowerIterations = 12;

class Pca final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kData, kMean, kCentered, kCov, kVec, kAcc, kProj };

    explicit Pca(bool manual_vectorization)
        : App({
              {"data", kSamples * kFeatures},     // input samples
              {"mean", kFeatures},                // per-feature means
              {"centered", kSamples * kFeatures}, // centered data matrix
              {"cov", kFeatures * kFeatures},     // covariance matrix
              {"vec", kFeatures},                 // eigenvector iterate
              {"acc", 1},                         // dot-product accumulator
              {"proj", kSamples},                 // projections on the PC
          }),
          manual_vec_(manual_vectorization) {}

    [[nodiscard]] std::string_view name() const override {
        return manual_vec_ ? "pca-manual-vec" : "pca";
    }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Pca>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0xCAFED00DULL + input_set};
        data_.assign(kSamples * kFeatures, 0.0);
        // Features with distinct offsets and spreads; the magnitudes are
        // chosen so covariance accumulations overflow a 5-bit exponent.
        std::array<double, kFeatures> offset{};
        std::array<double, kFeatures> scale{};
        for (std::size_t f = 0; f < kFeatures; ++f) {
            offset[f] = rng.uniform(-150.0, 150.0);
            scale[f] = rng.uniform(20.0, 80.0);
        }
        // Two latent factors with a small eigengap: the power iteration
        // converges slowly, so the eigenvector output is sensitive to
        // rounding in the covariance accumulation — this is what pushes
        // PCA's accumulators to wide formats in the paper.
        for (std::size_t s = 0; s < kSamples; ++s) {
            const double latent1 = rng.normal();
            const double latent2 = rng.normal();
            for (std::size_t f = 0; f < kFeatures; ++f) {
                const double loading1 = 0.5 + 0.4 * static_cast<double>(f % 3);
                const double loading2 = (f % 2 == 0) ? 0.8 : -0.6;
                data_[s * kFeatures + f] =
                    offset[f] + scale[f] * (loading1 * latent1 +
                                            0.97 * loading2 * latent2 +
                                            0.4 * rng.normal());
            }
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat data_f = config.at(kData);
        const FpFormat mean_f = config.at(kMean);
        const FpFormat centered_f = config.at(kCentered);
        const FpFormat cov_f = config.at(kCov);
        const FpFormat vec_f = config.at(kVec);
        const FpFormat acc_f = config.at(kAcc);
        const FpFormat proj_f = config.at(kProj);

        sim::TpArray data = ctx.make_array(data_f, data_.size());
        for (std::size_t i = 0; i < data_.size(); ++i) data.set_raw(i, data_[i]);
        sim::TpArray mean = ctx.make_array(mean_f, kFeatures);
        sim::TpArray centered = ctx.make_array(centered_f, data_.size());
        sim::TpArray cov = ctx.make_array(cov_f, kFeatures * kFeatures);
        sim::TpArray vec = ctx.make_array(vec_f, kFeatures);
        sim::TpArray proj = ctx.make_array(proj_f, kSamples);

        const sim::TpValue inv_n =
            ctx.constant(1.0 / static_cast<double>(kSamples), acc_f);
        const sim::TpValue inv_n1 =
            ctx.constant(1.0 / static_cast<double>(kSamples - 1), acc_f);

        // --- per-feature means --------------------------------------------
        for (std::size_t f = 0; f < kFeatures; ++f) {
            ctx.loop_iteration();
            sim::TpValue acc = ctx.constant(0.0, acc_f);
            for (std::size_t s = 0; s < kSamples; ++s) {
                ctx.loop_iteration();
                ctx.int_ops(1);
                acc = acc + to(data.load(s * kFeatures + f), acc_f);
            }
            mean.store(f, to(acc * inv_n, mean_f));
        }

        // --- centering ----------------------------------------------------
        run_centering(ctx, data, mean, centered, centered_f);

        // --- covariance (upper triangle + symmetric fill) -----------------
        run_covariance(ctx, centered, cov, centered_f, cov_f, acc_f, inv_n1);

        // --- power iteration for the dominant eigenvector -----------------
        for (std::size_t f = 0; f < kFeatures; ++f) {
            vec.set_raw(f, 1.0); // deterministic start
        }
        sim::TpValue eigenvalue = ctx.constant(0.0, acc_f);
        for (int it = 0; it < kPowerIterations; ++it) {
            ctx.loop_iteration();
            std::array<sim::TpValue, kFeatures> w;
            for (std::size_t i = 0; i < kFeatures; ++i) {
                ctx.loop_iteration();
                sim::TpValue acc = ctx.constant(0.0, acc_f);
                for (std::size_t j = 0; j < kFeatures; ++j) {
                    ctx.loop_iteration();
                    ctx.int_ops(1);
                    const sim::TpValue cij = cov.load(i * kFeatures + j);
                    const sim::TpValue vj = vec.load(j);
                    acc = acc + to(to(cij, vec_f) * vj, acc_f);
                }
                w[i] = acc;
            }
            sim::TpValue norm2 = ctx.constant(0.0, acc_f);
            for (std::size_t i = 0; i < kFeatures; ++i) {
                norm2 = norm2 + w[i] * w[i];
            }
            const sim::TpValue norm = sqrt(norm2);
            eigenvalue = norm;
            const sim::TpValue rcp = ctx.constant(1.0, acc_f) / norm;
            for (std::size_t i = 0; i < kFeatures; ++i) {
                vec.store(i, to(w[i] * rcp, vec_f));
            }
        }

        // --- projections on the principal component -----------------------
        run_projection(ctx, centered, vec, proj, centered_f, vec_f, acc_f, proj_f);

        std::vector<double> output;
        output.reserve(kFeatures + 1 + kSamples);
        for (std::size_t f = 0; f < kFeatures; ++f) output.push_back(vec.raw(f));
        output.push_back(eigenvalue.to_double());
        for (std::size_t s = 0; s < kSamples; ++s) output.push_back(proj.raw(s));
        return output;
    }

private:
    void run_centering(sim::TpContext& ctx, sim::TpArray& data, sim::TpArray& mean,
                       sim::TpArray& centered, FpFormat centered_f) {
        // The eight means fit in FP registers for the whole loop.
        std::array<sim::TpValue, kFeatures> m;
        for (std::size_t f = 0; f < kFeatures; ++f) {
            m[f] = to(mean.load(f), centered_f);
        }
        const auto body = [&] {
            for (std::size_t s = 0; s < kSamples; ++s) {
                ctx.loop_iteration();
                for (std::size_t f = 0; f < kFeatures; ++f) {
                    ctx.int_ops(1);
                    const sim::TpValue x = to(data.load(s * kFeatures + f), centered_f);
                    centered.store(s * kFeatures + f, x - m[f]);
                }
            }
        };
        if (manual_vec_) {
            const auto region = ctx.vector_region();
            body();
        } else {
            body();
        }
    }

    void run_covariance(sim::TpContext& ctx, sim::TpArray& centered,
                        sim::TpArray& cov, FpFormat centered_f, FpFormat cov_f,
                        FpFormat acc_f, const sim::TpValue& inv_n1) {
        (void)centered_f;
        const auto body = [&] {
            for (std::size_t a = 0; a < kFeatures; ++a) {
                for (std::size_t b = a; b < kFeatures; ++b) {
                    ctx.loop_iteration();
                    std::array<sim::TpValue, 2> acc{ctx.constant(0.0, acc_f),
                                                    ctx.constant(0.0, acc_f)};
                    for (std::size_t s = 0; s < kSamples; s += 2) {
                        ctx.loop_iteration();
                        ctx.int_ops(2);
                        for (std::size_t lane = 0; lane < 2; ++lane) {
                            const sim::TpValue ca =
                                centered.load((s + lane) * kFeatures + a);
                            const sim::TpValue cb =
                                centered.load((s + lane) * kFeatures + b);
                            acc[lane] = acc[lane] + to(ca * cb, acc_f);
                        }
                    }
                    const sim::TpValue cab = (acc[0] + acc[1]) * inv_n1;
                    cov.store(a * kFeatures + b, to(cab, cov_f));
                    if (a != b) {
                        ctx.int_ops(1);
                        cov.store(b * kFeatures + a, to(cab, cov_f));
                    }
                }
            }
        };
        if (manual_vec_) {
            const auto region = ctx.vector_region();
            body();
        } else {
            body();
        }
    }

    void run_projection(sim::TpContext& ctx, sim::TpArray& centered,
                        sim::TpArray& vec, sim::TpArray& proj, FpFormat centered_f,
                        FpFormat vec_f, FpFormat acc_f, FpFormat proj_f) {
        (void)centered_f;
        const auto body = [&] {
            for (std::size_t s = 0; s < kSamples; ++s) {
                ctx.loop_iteration();
                std::array<sim::TpValue, 2> acc{ctx.constant(0.0, acc_f),
                                                ctx.constant(0.0, acc_f)};
                for (std::size_t f = 0; f < kFeatures; f += 2) {
                    ctx.int_ops(1);
                    for (std::size_t lane = 0; lane < 2; ++lane) {
                        const sim::TpValue c = centered.load(s * kFeatures + f + lane);
                        const sim::TpValue v = to(vec.load(f + lane), centered_f);
                        acc[lane] = acc[lane] + to(c * v, acc_f);
                    }
                }
                proj.store(s, to(acc[0] + acc[1], proj_f));
            }
        };
        (void)vec_f;
        if (manual_vec_) {
            const auto region = ctx.vector_region();
            body();
        } else {
            body();
        }
    }

    bool manual_vec_;
    std::vector<double> data_;
};

} // namespace

std::unique_ptr<App> make_pca(bool manual_vectorization) {
    return std::make_unique<Pca>(manual_vectorization);
}

} // namespace tp::apps
