// Benchmark application interface.
//
// The paper evaluates six kernels representative of near-sensor computing
// and embedded machine learning: JACOBI, KNN, PCA, DWT, SVM and CONV
// (Section V-A). The registry has since grown the ROADMAP's follow-on
// workloads — FFT, IIR and MLP — through the same seam. Each application
// here:
//
//   * declares its tunable variable groups ("signals" — program variables
//     or arrays whose FP format the tuning tool controls) as a SignalTable
//     with dense SignalIds in declaration order;
//   * generates deterministic synthetic inputs per input-set index (the
//     tuner's statistical refinement runs over several input sets);
//   * runs its kernel against a TpContext under an arbitrary per-signal
//     format assignment, inserting explicit casts where differently-typed
//     values meet (the type system forbids implicit mixing), and tagging
//     its vectorizable sections.
//
// One kernel source therefore serves as: the binary32 baseline, every
// precision-tuning trial, the final mixed-format build, and the traced
// run measured by the virtual platform.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "apps/signal_table.hpp"
#include "sim/context.hpp"
#include "types/format.hpp"

namespace tp::apps {

/// Per-signal format assignment: a flat array indexed by SignalId, in the
/// app's declaration order. Value-cheap (a handful of two-byte
/// descriptors), equality-comparable, and hashable — the key the trial
/// memoization cache (tuning/eval_engine.hpp) is built on. Signal names
/// appear only at the config-file boundary (tuning/config_io.hpp), which
/// translates them through the app's SignalTable.
class TypeConfig {
public:
    TypeConfig() = default;

    /// `signal_count` slots, all set to `fill`.
    explicit TypeConfig(std::size_t signal_count, FpFormat fill = kBinary32)
        : formats_(signal_count, fill) {}

    [[nodiscard]] std::size_t size() const noexcept { return formats_.size(); }

    void set(SignalId id, FpFormat format) { formats_.at(id) = format; }

    /// Bounds-checked O(1) lookup; throws std::out_of_range past size().
    /// The kernels use this (a handful of lookups per run, so the check is
    /// free) — an undersized or wrong-app config fails loudly, as the old
    /// name-keyed map did.
    [[nodiscard]] FpFormat at(SignalId id) const { return formats_.at(id); }

    /// Unchecked O(1) lookup, for callers that validated the size.
    [[nodiscard]] FpFormat operator[](SignalId id) const noexcept {
        return formats_[id];
    }

    [[nodiscard]] const std::vector<FpFormat>& formats() const noexcept {
        return formats_;
    }

    friend bool operator==(const TypeConfig&, const TypeConfig&) = default;

    /// FNV-1a over the (exp_bits, mant_bits) byte pairs.
    [[nodiscard]] std::uint64_t hash() const noexcept {
        std::uint64_t h = 14695981039346656037ULL;
        for (const FpFormat f : formats_) {
            h = (h ^ f.exp_bits) * 1099511628211ULL;
            h = (h ^ f.mant_bits) * 1099511628211ULL;
        }
        return h;
    }

private:
    std::vector<FpFormat> formats_;
};

class App {
public:
    virtual ~App() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Interned signal declarations; ids are declaration-order positions.
    /// Shared (immutable) between an app and all its clones.
    [[nodiscard]] const SignalTable& signal_table() const noexcept {
        return *table_;
    }

    [[nodiscard]] const std::vector<SignalSpec>& signals() const noexcept {
        return table_->specs();
    }

    /// Deep copy, including any prepared workload. The parallel tuning
    /// engine gives each worker thread its own clone so trial evaluations
    /// never share mutable state.
    [[nodiscard]] virtual std::unique_ptr<App> clone() const = 0;

    /// Regenerates the workload for the given input set (deterministic).
    virtual void prepare(unsigned input_set) = 0;

    /// Executes the kernel under `config` and returns the program output
    /// (the sequence the quality constraint is evaluated on).
    virtual std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) = 0;

    /// Same format for every signal (e.g. the binary32 baseline).
    [[nodiscard]] TypeConfig uniform_config(FpFormat format) const {
        return TypeConfig{table_->size(), format};
    }

    /// Reference output: binary64 throughout, no tracing.
    [[nodiscard]] std::vector<double> golden(unsigned input_set);

protected:
    /// Concrete apps declare their signals here; the declaration order
    /// fixes the SignalIds their kernel uses as compile-time constants.
    explicit App(std::vector<SignalSpec> specs)
        : table_(std::make_shared<const SignalTable>(std::move(specs))) {}

    App(const App&) = default;
    App& operator=(const App&) = default;

private:
    std::shared_ptr<const SignalTable> table_;
};

/// Names of all registered applications: the paper's six kernels in the
/// paper's order, then the follow-on workloads (fft, iir, mlp).
[[nodiscard]] const std::vector<std::string>& app_names();

/// Factory; throws std::out_of_range for unknown names.
[[nodiscard]] std::unique_ptr<App> make_app(std::string_view name);

/// All registered applications, in app_names() order.
[[nodiscard]] std::vector<std::unique_ptr<App>> make_all_apps();

/// Casts `v` to `format` unless it already has it (emitting the cast
/// instruction a mixed-format expression requires).
[[nodiscard]] inline sim::TpValue to(const sim::TpValue& v, FpFormat format) {
    return v.format() == format ? v : v.cast_to(format);
}

} // namespace tp::apps
